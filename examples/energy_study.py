#!/usr/bin/env python3
"""Where does HMC energy go under each prefetching scheme? (Figure 9, zoomed)

Breaks the energy model's total into its categories (activate, precharge,
column reads/writes, TSV row transfers, buffer accesses, link flits,
background) for BASE, MMD and CAMPS-MOD on one memory-intensive mix, and
shows why BASE pays the most: indiscriminate whole-row fetches inflate the
activate/precharge and TSV-transfer terms.

Run:  python examples/energy_study.py
"""

from repro import mix, run_system

CATEGORIES = [
    "activate",
    "precharge",
    "read",
    "write",
    "row_tsv",
    "buffer",
    "link",
    "background",
]
SCHEMES = ["base", "mmd", "camps-mod"]


def main() -> None:
    traces = mix("HM1", refs_per_core=4000, seed=1)
    results = {s: run_system(traces, scheme=s, workload="HM1") for s in SCHEMES}
    base_total = results["base"].energy_pj

    print("HMC energy breakdown, HM1 mix (uJ; normalized-to-BASE in brackets)\n")
    header = f"{'category':<12}" + "".join(f"{s:>16}" for s in SCHEMES)
    print(header)
    print("-" * len(header))
    for cat in CATEGORIES:
        row = f"{cat:<12}"
        for s in SCHEMES:
            pj = results[s].energy_breakdown[cat]
            row += f"{pj / 1e6:>11.1f} uJ "
        print(row)
    print("-" * len(header))
    totals = f"{'TOTAL':<12}"
    for s in SCHEMES:
        r = results[s]
        totals += f"{r.energy_pj / 1e6:>8.1f} ({r.energy_pj / base_total:4.2f}) "
    print(totals)

    b, c = results["base"], results["camps-mod"]
    act_saving = 1 - c.energy_breakdown["activate"] / b.energy_breakdown["activate"]
    tsv_saving = 1 - c.energy_breakdown["row_tsv"] / b.energy_breakdown["row_tsv"]
    print(
        f"\nCAMPS-MOD saves {act_saving:.0%} of activation energy and "
        f"{tsv_saving:.0%} of TSV row-transfer energy versus BASE\n"
        f"(paper: 8.5% total saving, 'mainly due to fewer activation and "
        f"precharge operations')."
    )


if __name__ == "__main__":
    main()
