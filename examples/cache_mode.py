#!/usr/bin/env python3
"""Full-hierarchy mode: raw reference streams through L1/L2/L3 into the HMC.

The figure experiments drive the cube with post-LLC miss traces (that is the
level the paper's statistics live at), but the library also models the whole
Table I cache hierarchy.  This example builds a raw reference stream with a
cache-friendly hot set plus a streaming component, runs it through the full
hierarchy, and reports per-level hit rates, the realized LLC MPKI, and how
the prefetching scheme below the caches still matters for what misses.

Run:  python examples/cache_mode.py
"""

import numpy as np

from repro import run_system
from repro.workloads.trace import Trace


def make_raw_trace(n: int, seed: int) -> Trace:
    """A raw (pre-cache) reference stream: 70% hot-set reuse that caches
    will absorb, 30% streaming that will miss through to memory."""
    rng = np.random.default_rng(seed)
    hot_lines = np.arange(512) * 64  # 32 KB hot set, fits in L1/L2
    refs = np.empty(n, dtype=np.int64)
    stream_cursor = 1 << 24
    for i in range(n):
        if rng.random() < 0.7:
            refs[i] = hot_lines[rng.integers(len(hot_lines))]
        else:
            refs[i] = stream_cursor
            stream_cursor += 64
    gaps = rng.geometric(1 / 4.0, size=n).astype(np.int64) - 1
    writes = rng.random(n) < 0.25
    return Trace(gaps, refs, writes, name=f"raw.c{seed}")


def main() -> None:
    traces = [make_raw_trace(6000, seed=i) for i in range(4)]

    print("running raw traces through the full L1/L2/L3 hierarchy...\n")
    for scheme in ("none", "camps-mod"):
        r = run_system(traces, scheme=scheme, workload="raw", use_caches=True)
        print(f"scheme={scheme}")
        print(f"  cycles            {r.cycles}")
        print(f"  geomean IPC       {r.geomean_ipc:.3f}")
        print(f"  LLC hit rate      {r.extra['llc_hit_rate']:.1%}")
        llc_mpki = 1000 * r.extra["llc_misses"] / sum(r.core_instructions)
        print(f"  LLC MPKI          {llc_mpki:.1f}")
        print(f"  memory reads/writes reaching the cube: "
              f"{r.demand_accesses + r.buffer_hits}")
        if scheme != "none":
            print(f"  prefetch accuracy {r.row_accuracy:.1%}")
        print()

    print(
        "The caches absorb the hot set; only the streaming component reaches "
        "the HMC,\nwhere CAMPS-MOD turns its row locality into prefetch "
        "buffer hits."
    )


if __name__ == "__main__":
    main()
