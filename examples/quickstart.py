#!/usr/bin/env python3
"""Quickstart: run one workload mix under two prefetching schemes.

This is the 60-second tour of the public API:

1. generate the paper's HM1 mix (Table II) at laptop scale,
2. simulate it on the Table I HMC under BASE and CAMPS-MOD,
3. print the headline comparison (Figure 5's metric for one mix).

Run:  python examples/quickstart.py
"""

from repro import mix, run_system


def main() -> None:
    # Eight per-core traces for the HM1 mix: bwaves, gems, gcc, lbm (x2 each).
    # 5000 post-LLC references per core keeps this under a minute.
    traces = mix("HM1", refs_per_core=5000, seed=1)
    print(f"generated {len(traces)} core traces, "
          f"{sum(len(t) for t in traces)} references total")
    for t in traces[:4]:
        print(f"  {t.name}: mpki={t.mpki:.1f} writes={t.write_fraction:.0%}")

    print("\nsimulating BASE (whole-row prefetch on every access)...")
    base = run_system(traces, scheme="base", workload="HM1")

    print("simulating CAMPS-MOD (conflict-aware + utilization/recency buffer)...")
    camps = run_system(traces, scheme="camps-mod", workload="HM1")

    print(f"\n{'metric':<28}{'BASE':>12}{'CAMPS-MOD':>12}")
    rows = [
        ("geomean IPC", f"{base.geomean_ipc:.3f}", f"{camps.geomean_ipc:.3f}"),
        ("row-buffer conflict rate", f"{base.conflict_rate:.3f}", f"{camps.conflict_rate:.3f}"),
        ("prefetch accuracy", f"{base.row_accuracy:.1%}", f"{camps.row_accuracy:.1%}"),
        ("mean read latency (cyc)", f"{base.mean_read_latency:.0f}", f"{camps.mean_read_latency:.0f}"),
        ("HMC energy (uJ)", f"{base.energy_pj / 1e6:.1f}", f"{camps.energy_pj / 1e6:.1f}"),
    ]
    for name, b, c in rows:
        print(f"{name:<28}{b:>12}{c:>12}")

    speedup = camps.speedup_vs(base)
    print(f"\nCAMPS-MOD speedup over BASE: {speedup:.3f}x "
          f"(paper reports 1.249x for HM workloads at full scale)")


if __name__ == "__main__":
    main()
