#!/usr/bin/env python3
"""Anatomy of the synthetic SPEC-like workloads.

For each benchmark class, this script runs the fast functional row-buffer
analyzer (no full simulation) and prints exactly the statistics CAMPS's two
mechanisms key on:

* mean distinct lines per row visit and the fraction of visits reaching the
  RUT threshold of 4 (the utilization trigger), and
* the number of rows that get conflicted out and then revisited (the
  Conflict Table's catchable set).

Note how the aliased multi-stream sweeps make the CT path dominant: bursts
switch rows after 2-4 lines, so few visits reach the RUT threshold in place,
but thousands of rows are conflicted-then-revisited - exactly the population
the Conflict Table converts into whole-row prefetches.

Run:  python examples/workload_anatomy.py
"""

from repro.workloads.analysis import analyze_mix, analyze_row_buffer
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace

SHOW = ["lbm", "bwaves", "gems", "gcc", "mcf", "omnetpp", "h264ref", "astar"]


def main() -> None:
    print(f"{'bench':<9}{'class':>6}{'mpki':>7}{'hit%':>7}{'conf%':>7}"
          f"{'visit util':>11}{'rut4%':>7}{'ct rows':>8}")
    print("-" * 62)
    for bench in SHOW:
        trace = generate_trace(bench, 8000, seed=1)
        p = analyze_row_buffer(trace)
        prof = PROFILES[bench]
        print(
            f"{bench:<9}{prof.memory_intensity:>6}{trace.mpki:>7.1f}"
            f"{p.hit_rate:>7.1%}{p.conflict_rate:>7.1%}"
            f"{p.mean_visit_utilization:>11.1f}"
            f"{p.rut_trigger_fraction():>7.1%}{p.conflict_revisit_rows:>8}"
        )

    print("\nMultiprogrammed interleaving (gems x 4 cores):")
    traces = [generate_trace("gems", 4000, seed=i, core_id=i) for i in range(4)]
    solo = analyze_row_buffer(traces[0])
    merged = analyze_mix(traces)
    print(f"  single core : {solo.summary()}")
    print(f"  interleaved : {merged.summary()}")
    print(
        "\nStreaming codes (lbm, bwaves) keep row-buffer hit rates high and "
        "leave a large\nconflict-revisit population for the CT; pointer codes "
        "(mcf, astar) show\nsingle-line visits and few catchable rows - CAMPS "
        "correctly leaves them alone\nwhile BASE fetches a whole row for every "
        "touch."
    )


if __name__ == "__main__":
    main()
