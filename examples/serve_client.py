#!/usr/bin/env python3
"""Drive the campaign service end to end (repro.serve demo).

Starts an in-process :class:`ServeService` (the same object ``repro
serve`` runs), then walks the full client loop a deployment would:

1. submit a mixed-priority batch with :class:`ServeClient` — a quick
   interactive job plus a bulk grid — and watch the quick lane finish
   first;
2. overload the service on purpose and handle the `429` shed path
   (:class:`Shed` carries ``retry_after``; backing off and resubmitting
   is the whole client-side contract);
3. scrape ``/snapshot`` and ``/metrics`` (validated with
   :func:`repro.obs.promtext.parse_exposition`) while work drains;
4. drain gracefully and show the merged manifest holding every cell
   exactly once.

Against a *real* service you would skip the launcher and point
:class:`ServeClient` (or ``python -m repro submit``) at its URL — the
calls below are identical either way.

Run:  python examples/serve_client.py [--refs N] [--jobs N]
"""

import argparse
import asyncio
import tempfile
import threading
import time
from pathlib import Path

from repro.campaign import Manifest
from repro.obs.promtext import parse_exposition
from repro.serve import ServeClient, ServeConfig, ServeService, Shed


class ServiceThread:
    """Run one ServeService on a background event loop (launcher only)."""

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        service = ServeService(self.cfg)
        await service.start()
        self.port = service.port
        self._ready.set()
        await service.node.stopped.wait()  # ends after a drain
        if service._server is not None:
            service._server.close()
            await service._server.wait_closed()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service failed to start")
        return self

    def join(self) -> None:
        self._thread.join(timeout=60)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=800)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="serve_demo_"))
    manifest = workdir / "svc.jsonl"
    svc = ServiceThread(
        ServeConfig(
            manifest=str(manifest),
            jobs=args.jobs,
            quick_cap=4,  # small on purpose: step 2 overloads it
            use_cache=False,
            telemetry=False,
            tick_interval=0.1,
        )
    ).start()
    client = ServeClient("127.0.0.1", svc.port)

    # -- 1. mixed-priority submission -------------------------------------
    quick = client.submit(
        cells=[{"workload": "HM1", "scheme": "camps", "refs": args.refs}],
        lane="quick",
    )
    bulk = client.submit(
        grid={
            "mixes": ["HM1", "LM1"],
            "schemes": ["base", "camps"],
            "refs": args.refs,
        },
        lane="bulk",
    )
    print(f"submitted quick job {quick['job']} and bulk job {bulk['job']} "
          f"({len(bulk['cells'])} cells)")
    info = client.wait(quick["job"], timeout=120.0, poll=0.1)
    print(f"quick job finished first: {info['status']} "
          f"({info['done']}/{info['total']} cells)")

    # -- 2. overload and the shed path ------------------------------------
    shed = 0
    accepted = []
    for seed in range(2, 30):
        spec = {"workload": "HM1", "scheme": "base",
                "refs": args.refs, "seed": seed}
        try:
            accepted.append(client.submit(cells=[spec], lane="quick"))
        except Shed as exc:
            shed += 1
            if shed == 1:
                print(f"admission shed us (429): retry in "
                      f"{exc.retry_after:.1f}s — backing off")
            time.sleep(0.02)
    print(f"burst: {len(accepted)} jobs accepted, {shed} shed with 429")

    # -- 3. observe while it drains ---------------------------------------
    snap = client.snapshot()["serve"]
    print(f"snapshot: inflight={snap['inflight']} "
          f"pending={snap['pending']} shed_total="
          f"{snap['admission']['shed_total']}")
    families = parse_exposition(client.metrics_text())
    jobs_metric = families["repro_serve_jobs"]["samples"]
    print(f"/metrics parses: repro_serve_jobs -> "
          f"{[(dict(l), v) for l, v in jobs_metric]}")

    for job in [bulk] + accepted:
        client.wait(job["job"], timeout=300.0, poll=0.1)

    # -- 4. graceful drain + exactly-once merge ---------------------------
    client.drain()
    svc.join()
    records = Manifest(manifest).records()
    print(f"drained; manifest holds {len(records)} cells, "
          f"all ok: {all(r.ok for r in records.values())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
