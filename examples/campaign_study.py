#!/usr/bin/env python3
"""Sharded ablation study with a resumable manifest (repro.campaign demo).

Runs a prefetch-buffer-size ablation — (3 mixes) x (camps-mod at 4/8/16/32
buffer entries, plus the BASE control) — as one campaign sharded across
worker processes.  Every finished cell lands in a JSONL manifest, so an
interrupted study resumes from where it stopped: the script demonstrates
this by re-running the same campaign with ``resume=True`` and showing that
zero cells are re-simulated.

Run:  python examples/campaign_study.py [--refs N] [--jobs N]
"""

import argparse
import dataclasses
import tempfile
from pathlib import Path

from repro.campaign import CampaignOptions, Cell, Manifest, run_campaign
from repro.experiments.runner import ExperimentConfig
from repro.hmc.config import HMCConfig

WORKLOADS = ["HM1", "LM1", "MX1"]
BUFFER_ENTRIES = [4, 8, 16, 32]


def build_cells(refs: int, seed: int):
    """One cell per (mix, buffer size) plus a BASE control per mix."""
    cells = []
    for workload in WORKLOADS:
        for entries in BUFFER_ENTRIES:
            hmc = HMCConfig(pf_buffer_entries=entries)
            cfg = ExperimentConfig(refs_per_core=refs, seed=seed, hmc=hmc)
            cells.append(Cell(workload, "camps-mod", cfg))
        cells.append(
            Cell(workload, "base", ExperimentConfig(refs_per_core=refs, seed=seed))
        )
    return cells


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=2000,
                        help="memory references per core (default 2000)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes (default 4)")
    parser.add_argument("--timeout", type=float, default=600,
                        help="per-cell wall-clock budget in seconds")
    args = parser.parse_args()

    manifest = Manifest(Path(tempfile.gettempdir()) / "repro_campaign_study.jsonl")
    cells = build_cells(args.refs, args.seed)
    print(f"campaign: {len(cells)} cells across {args.jobs} workers "
          f"(manifest: {manifest.path})")

    res = run_campaign(
        cells,
        CampaignOptions(jobs=args.jobs, timeout=args.timeout, retries=1,
                        progress=True),
        cache=None,  # cold study: always simulate
        manifest=manifest,
    )
    res.raise_on_failure()
    print(f"first pass: {res.stats['executed']} simulated "
          f"in {res.wall_seconds:.1f}s")

    # A second invocation with resume=True finds every cell already in the
    # manifest — this is exactly what re-running after a mid-study kill does.
    res2 = run_campaign(
        cells,
        CampaignOptions(jobs=args.jobs, resume=True),
        cache=None,
        manifest=manifest,
    )
    print(f"resumed pass: {res2.stats['resumed']} resumed, "
          f"{res2.stats['executed']} simulated (expect 0)")

    print(f"\nbuffer-size ablation ({args.refs} refs/core, speedup vs BASE)")
    print(f"{'workload':<10}" + "".join(f"{e:>8}" for e in BUFFER_ENTRIES))
    for workload in WORKLOADS:
        base_cfg = ExperimentConfig(refs_per_core=args.refs, seed=args.seed)
        base = res.result_for(Cell(workload, "base", base_cfg).cell_id)
        row = ""
        for entries in BUFFER_ENTRIES:
            cfg = dataclasses.replace(
                base_cfg, hmc=HMCConfig(pf_buffer_entries=entries)
            )
            r = res.result_for(Cell(workload, "camps-mod", cfg).cell_id)
            row += f"{r.speedup_vs(base):>8.3f}"
        print(f"{workload:<10}{row}")
    print("(the paper's Table I point is 16 entries; gains should saturate "
          "near it)")


if __name__ == "__main__":
    main()
