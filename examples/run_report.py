#!/usr/bin/env python3
"""Run reports: artifacts -> diff -> HTML dashboard.

Every run can leave behind a :class:`~repro.obs.RunReport` - a versioned
JSON artifact holding the config digest, summary metrics, the full counter
tree, and epoch-sampled time series.  This example

1. runs the MX1 mix under CAMPS twice, identical except for the
   prefetch-buffer size (16 vs 4 row entries),
2. saves both runs as RunReport artifacts,
3. diffs them - per-metric deltas, the first cycle the sampled series
   pull apart, and subsystem attribution (which correctly blames the
   buffer/prefetch subsystem, since that is all that changed),
4. renders a self-contained HTML dashboard with sparklines and a
   bank-conflict heatmap.

Run:  python examples/run_report.py
"""

from pathlib import Path

from repro import mix
from repro.obs import Tracer, build_run_report, diff_reports, write_html
from repro.hmc.config import HMCConfig
from repro.obs.timeseries import DEFAULT_EPOCH
from repro.system import System, SystemConfig

OUT = Path("run_report_out")


def simulate(pf_entries: int):
    """One MX1/CAMPS run with tracing and epoch sampling enabled."""
    traces = mix("MX1", refs_per_core=3000, seed=1)
    cfg = SystemConfig(
        hmc=HMCConfig(pf_buffer_entries=pf_entries),
        scheme="camps",
        timeseries_epoch=DEFAULT_EPOCH,
    )
    tracer = Tracer()
    system = System(traces, cfg, workload="MX1", tracer=tracer)
    result = system.run()
    return build_run_report(system, result, pf_buffer_entries=pf_entries)


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # --- 1-2. two runs differing only in buffer size, saved as artifacts --
    big = simulate(pf_entries=16)
    small = simulate(pf_entries=4)
    big.save(OUT / "buffer16.json")
    small.save(OUT / "buffer4.json")
    print(f"wrote {OUT}/buffer16.json and {OUT}/buffer4.json")
    for r in (big, small):
        print(
            f"  {r.label}: ipc={r.summary['geomean_ipc']:.3f} "
            f"hit_rate_series={len(r.series['series']['buffer.hit_rate']['values'])} samples"
        )

    # --- 3. what changed, and which subsystem did it? ---------------------
    diff = diff_reports(big, small)
    print()
    print(diff.to_text(max_counters=5))
    print(f"\ntop subsystem: {diff.top_subsystem()}  "
          "(expected buffer/prefetch - the only knob we turned)")

    # --- 4. the dashboard -------------------------------------------------
    dash = write_html(
        OUT / "dashboard.html",
        [big, small],
        title="CAMPS buffer-size ablation",
    )
    print(f"\nwrote {dash} ({dash.stat().st_size / 1024:.0f} KiB; "
          "single file, opens offline)")


if __name__ == "__main__":
    main()
