#!/usr/bin/env python3
"""Compare all five paper schemes across workload categories (mini Figure 5).

Runs one mix from each Table II category (HM / LM / MX) under every scheme
the paper evaluates, plus the no-prefetch control, and prints the normalized
speedup table with conflict/accuracy/energy columns.

Run:  python examples/scheme_comparison.py [--refs N]
"""

import argparse

from repro import mix, run_system
from repro.core.schemes import PAPER_SCHEMES

WORKLOADS = ["HM1", "LM1", "MX1"]
SCHEMES = ["none"] + PAPER_SCHEMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=4000,
                        help="memory references per core (default 4000)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    for workload in WORKLOADS:
        traces = mix(workload, refs_per_core=args.refs, seed=args.seed)
        results = {}
        for scheme in SCHEMES:
            results[scheme] = run_system(traces, scheme=scheme, workload=workload)
        base = results["base"]

        print(f"\n{workload} ({args.refs} refs/core, 8 cores)")
        print(f"{'scheme':<11}{'speedup':>9}{'conflicts':>11}{'accuracy':>10}"
              f"{'latency':>9}{'energy':>8}")
        print("-" * 58)
        for scheme in SCHEMES:
            r = results[scheme]
            print(
                f"{scheme:<11}"
                f"{r.speedup_vs(base):>9.3f}"
                f"{r.conflict_rate:>11.3f}"
                f"{r.row_accuracy:>10.1%}"
                f"{r.mean_read_latency:>9.0f}"
                f"{r.energy_pj / base.energy_pj:>8.2f}"
            )

    print(
        "\nReading the table: speedup and energy are normalized to BASE "
        "(the paper's baseline).\nExpect CAMPS-MOD on top for speedup, "
        "BASE worst for accuracy and energy,\nand the CAMPS family lowest "
        "on row-buffer conflicts."
    )


if __name__ == "__main__":
    main()
