#!/usr/bin/env python3
"""Trace inspection: audit every prefetch decision CAMPS made in one run.

The observability subsystem (:mod:`repro.obs`) records structured events
with *provenance* - which decision path issued each prefetch.  This example

1. runs the HM1 mix under CAMPS-MOD with a :class:`~repro.obs.Tracer`,
2. splits the prefetch stream by provenance (utilization- vs
   conflict-triggered, the paper's two trigger mechanisms),
3. follows a single prefetched row through its lifecycle
   (issue -> fill -> hits -> evict),
4. reads the hierarchical counter registry, and
5. writes a Chrome trace you can open at https://ui.perfetto.dev.

Run:  python examples/trace_inspection.py
"""

from collections import defaultdict

from repro import mix
from repro.obs import Tracer, write_chrome_trace
from repro.system import System, SystemConfig


def main() -> None:
    traces = mix("HM1", refs_per_core=3000, seed=1)
    tracer = Tracer()
    system = System(
        traces, SystemConfig(scheme="camps-mod"), workload="HM1", tracer=tracer
    )
    result = system.run()
    print(f"simulated {result.cycles} cycles; "
          f"recorded {len(tracer.events)} trace events")

    # --- 1. why was each prefetch issued? --------------------------------
    prov = tracer.provenance_counts()
    total = sum(prov.values())
    print("\nprefetch provenance (the scheme's decision audit):")
    for tag, n in sorted(prov.items(), key=lambda kv: -kv[1]):
        print(f"  {tag:<12} {n:>6}  ({n / total:.0%})")

    # --- 2. lifecycle of one prefetched row ------------------------------
    # pick the row with the most buffer hits and replay its event stream
    hits_per_row = defaultdict(int)
    for e in tracer.events:
        if e.kind == "pf.hit":
            hits_per_row[(e.vault, e.bank, e.args["row"])] += 1
    if hits_per_row:
        vault, bank, row = max(hits_per_row, key=hits_per_row.get)
        print(f"\nlifecycle of the hottest prefetched row "
              f"(vault {vault}, bank {bank}, row {row}):")
        shown = 0
        for e in tracer.events:
            if e.vault == vault and e.bank == bank and e.args \
                    and e.args.get("row") == row and e.kind.startswith("pf."):
                detail = {k: v for k, v in e.args.items() if k != "row"}
                print(f"  cycle {e.time:>8}  {e.kind:<10} {detail}")
                shown += 1
                if shown >= 12:
                    print("  ...")
                    break

    # --- 3. the counter tree ---------------------------------------------
    snapshot = tracer.counters.snapshot()
    print("\nbusiest vaults by prefetches issued:")
    vaults = sorted(
        (k for k in snapshot if k.startswith("vault")),
        key=lambda k: -snapshot[k].get("prefetches_issued", 0),
    )
    for name in vaults[:4]:
        v = snapshot[name]
        print(f"  {name:<8} issued={v['prefetches_issued']:>5.0f}  "
              f"buffer_hits={v['buffer_hits']:>6.0f}  "
              f"tsv_busy={v['tsv_busy_cycles']:>8.0f} cycles")

    # --- 4. export for the Perfetto UI -----------------------------------
    path = write_chrome_trace(tracer, "hm1_camps.trace.json")
    print(f"\nwrote {path} - open it at https://ui.perfetto.dev "
          f"(one process per vault, one thread per bank)")


if __name__ == "__main__":
    main()
