#!/usr/bin/env python3
"""Does memory-side CAMPS survive a routed multi-cube fabric?

Scales one Table II mix from a single cube to 2- and 4-cube daisy chains
(one independent stream homed per cube), running BASE and CAMPS-MOD on
each shape.  Reports per-shape geomean IPC, conflict rate, hop histogram,
mean hops and inter-cube link utilization — showing that the scheme's
conflict-rate win holds per cube even as deeper chains add forwarding
latency and inter-cube contention.

Run:  python examples/fabric_study.py
"""

from repro.fabric import FabricConfig, FabricSystem, FabricSystemConfig
from repro.workloads.multistream import MultiStreamSpec, build_stream_traces

TOPOLOGIES = ["chain:1", "chain:2", "chain:4"]
SCHEMES = ["base", "camps-mod"]
MIX = "MX1"
REFS = 1500
SEED = 1


def run(topology: str, scheme: str):
    fabric = FabricConfig.from_spec(topology)
    spec = MultiStreamSpec.per_cube(MIX, fabric.cubes, REFS, seed=SEED)
    return FabricSystem(
        build_stream_traces(spec, fabric),
        FabricSystemConfig(fabric=fabric, scheme=scheme),
        workload=MIX,
    ).run()


def main() -> None:
    print(f"{MIX} mix, one stream per cube, {REFS} refs/core, seed {SEED}\n")
    header = (
        f"{'topology':<9} {'scheme':<10} {'geo IPC':>8} {'conflict':>9} "
        f"{'hops':>5} {'fabric util':>12} {'energy':>10}"
    )
    print(header)
    print("-" * len(header))
    for topology in TOPOLOGIES:
        results = {s: run(topology, s) for s in SCHEMES}
        for scheme in SCHEMES:
            r = results[scheme]
            fx = r.extra["fabric"]
            print(
                f"{topology:<9} {scheme:<10} {r.geomean_ipc:>8.3f} "
                f"{r.conflict_rate:>9.3f} {fx['mean_hops']:>5.2f} "
                f"{fx['fabric_link_utilization']:>11.1%} "
                f"{r.energy_pj / 1e6:>7.1f} uJ"
            )
        base, camps = results["base"], results["camps-mod"]
        hist = camps.extra["fabric"]["hop_histogram"]
        hist_txt = " ".join(f"{h}:{n}" for h, n in sorted(hist.items()))
        print(
            f"{'':<9} -> CAMPS-MOD {camps.speedup_vs(base):.3f}x vs BASE at "
            f"{camps.energy_pj / base.energy_pj:.2f}x the energy; "
            f"hop histogram {hist_txt}"
        )
        print()

    print(
        "Deeper chains pay forwarding latency on non-local streams (mean\n"
        "hops grows), but conflict awareness is per-vault, per-cube state,\n"
        "so the CAMPS speedup and energy win hold at every fabric size."
    )


if __name__ == "__main__":
    main()
