#!/usr/bin/env python3
"""Plug a custom prefetching scheme into the vault controller.

The scheme interface is three methods (see :mod:`repro.core.prefetcher`);
this example implements a simple *next-row* prefetcher - on every bank
access it stages the sequentially next DRAM row of the same bank - registers
it under a new name, and races it against CAMPS-MOD on a streaming workload.

A next-row scheme looks clever for pure streams but pays heavily on
irregular traffic; the output shows both sides.

Run:  python examples/custom_prefetcher.py
"""

from typing import List

from repro import generate_trace, run_system
from repro.core.prefetcher import PrefetchAction, Prefetcher
from repro.core.schemes import SCHEMES
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


class NextRowPrefetcher(Prefetcher):
    """Stage the next row of the bank whenever a row is activated."""

    name = "next-row"

    def on_demand_access(
        self,
        bank: int,
        row: int,
        column: int,
        is_write: bool,
        outcome: RowOutcome,
        now: int,
    ) -> List[PrefetchAction]:
        if outcome is RowOutcome.HIT:
            return []  # only prefetch on activations
        assert self.controller is not None
        buf = self.controller.buffer
        if buf is not None and (bank, row + 1) in buf:
            return []
        return self._count_issue(
            [PrefetchAction(bank, row + 1, self.full_mask, precharge_after=True)]
        )


def main() -> None:
    # Register the new scheme; it is now usable anywhere a scheme name is.
    SCHEMES["next-row"] = NextRowPrefetcher

    workloads = {
        "streaming (lbm-like)": [
            generate_trace("lbm", 4000, seed=i, core_id=i) for i in range(4)
        ],
        "irregular (mcf-like)": [
            generate_trace("mcf", 4000, seed=i, core_id=i) for i in range(4)
        ],
    }

    for label, traces in workloads.items():
        results = {
            s: run_system(traces, scheme=s, workload=label)
            for s in ("base", "next-row", "camps-mod")
        }
        base = results["base"]
        print(f"\n{label}")
        print(f"{'scheme':<11}{'speedup':>9}{'accuracy':>10}{'prefetches':>12}")
        print("-" * 42)
        for s, r in results.items():
            print(
                f"{s:<11}{r.speedup_vs(base):>9.3f}"
                f"{r.row_accuracy:>10.1%}{r.prefetches_issued:>12}"
            )

    print(
        "\nThe next-row scheme guesses; CAMPS-MOD waits for evidence "
        "(row utilization or repeated conflicts), which is why its accuracy "
        "holds up on the irregular workload."
    )


if __name__ == "__main__":
    main()
