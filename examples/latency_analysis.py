#!/usr/bin/env python3
"""Where do a request's cycles go?  Latency breakdown by service source.

Runs one memory-intensive mix under BASE and CAMPS-MOD with request
recording on, then slices end-to-end read latency by how each request was
served: a DRAM bank (queue + ACT/RD), the prefetch buffer (22-cycle hit), or
a merge with an in-flight row fetch.  This is the view that explains Figure
8: CAMPS-MOD moves traffic from the slow bank population to the fast buffer
population.

Run:  python examples/latency_analysis.py
"""

from repro import mix
from repro.metrics.latency import (
    format_latency_table,
    latency_by_source,
    latency_segments,
)
from repro.system import System, SystemConfig


def main() -> None:
    traces = mix("HM2", refs_per_core=3000, seed=1)

    for scheme in ("base", "camps-mod"):
        sysm = System(
            traces,
            SystemConfig(scheme=scheme, record_requests=True, sample_interval=2000),
        )
        result = sysm.run()
        reqs = sysm.host.completed_requests

        print(f"\n=== {scheme}  (mean read latency {result.mean_read_latency:.0f} cycles)")
        print(format_latency_table(latency_by_source(reqs), "by service source"))
        print()
        print(format_latency_table(latency_segments(reqs), "by path segment"))
        samples = result.extra["samples"]
        print(
            f"\nsampled state: mean queue depth {samples['queue_depth']['mean']:.1f}, "
            f"mean buffer occupancy {samples['buffer_occupancy']['mean']:.1f} rows, "
            f"outstanding at host {samples['host_outstanding']['mean']:.1f}"
        )

    print(
        "\nReading: under CAMPS-MOD a large share of reads moves into the "
        "'buffer' population\n(~60-90 cycle round trips) that under BASE "
        "either waits in bank queues or stalls\non whole-row fetches "
        "('in_flight')."
    )


if __name__ == "__main__":
    main()
