#!/usr/bin/env python3
"""Watch a campaign from outside its process (repro.obs.telemetry demo).

Launches a small campaign in a background thread with telemetry armed,
then monitors it the way a second process would:

1. poll the spool directory with :class:`TelemetryAggregator` and print a
   status line per refresh (what ``repro monitor`` does under the hood);
2. serve the merged view over HTTP with :class:`TelemetryServer` and
   scrape ``/snapshot`` (JSON) and ``/metrics`` (Prometheus text,
   validated by :func:`repro.obs.promtext.parse_exposition`) — the same
   endpoint contract as ``repro campaign --telemetry-port N``;
3. after the campaign finishes, render the final board with
   :func:`repro.obs.watch.render_board` and reconcile the merged view
   against the manifest's exactly-once cell records.

Against a *real* long campaign you would skip the launcher and simply run
``python -m repro monitor path/to/manifest.jsonl`` — the aggregation below
is exactly what that command does.

Run:  python examples/monitor_campaign.py [--refs N] [--jobs N]
"""

import argparse
import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.campaign import CampaignOptions, Manifest, grid_cells, run_campaign
from repro.experiments.runner import ExperimentConfig
from repro.obs.promtext import parse_exposition
from repro.obs.telemetry import (
    TelemetryAggregator,
    TelemetryServer,
    spool_dir_for,
)
from repro.obs.watch import render_board, render_status_line


def launch_campaign(manifest: Path, refs: int, jobs: int) -> dict:
    """Run a (2 mixes x 2 schemes) grid in a background thread."""
    cells = grid_cells(
        ["HM1", "MX1"],
        ["base", "camps"],
        ExperimentConfig(refs_per_core=refs, seed=1),
    )
    out: dict = {}

    def run() -> None:
        res = run_campaign(
            cells,
            CampaignOptions(
                jobs=jobs,
                progress=False,
                telemetry=True,
                telemetry_interval=0.2,
            ),
            cache=None,
            manifest=Manifest(manifest),
        )
        out["stats"] = res.stats

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    out["thread"] = thread
    return out


def scrape(url: str) -> None:
    with urllib.request.urlopen(f"{url}/snapshot", timeout=5) as resp:
        snap = json.loads(resp.read())
    print(f"  GET /snapshot -> manifest counts {snap['manifest']}")
    with urllib.request.urlopen(f"{url}/metrics", timeout=5) as resp:
        families = parse_exposition(resp.read().decode())
    print(f"  GET /metrics  -> {len(families)} metric families, "
          "valid Prometheus exposition")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--refs", type=int, default=600,
                        help="memory references per core (default 600)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="campaign worker processes (default 2)")
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="repro-monitor-demo-"))
    manifest = tmp / "campaign.jsonl"
    print(f"launching campaign (manifest {manifest}) ...")
    handle = launch_campaign(manifest, args.refs, args.jobs)

    # -- 1. poll the spools like `repro monitor` does -------------------
    aggregator = TelemetryAggregator(
        spool_dir_for(manifest), manifest_path=manifest
    )

    # -- 2. and expose the merged view over HTTP ------------------------
    server = TelemetryServer(
        lambda: aggregator.refresh().to_snapshot(), port=0
    ).start()
    print(f"serving telemetry at {server.url}")

    scraped = False
    while handle["thread"].is_alive():
        snapshot = aggregator.refresh().to_snapshot()
        print("  " + render_status_line(snapshot))
        if not scraped and snapshot["workers"]:
            scrape(server.url)
            scraped = True
        time.sleep(0.3)
    handle["thread"].join()
    if not scraped:  # tiny grids can finish before the first heartbeat
        scrape(server.url)
    server.stop()

    # -- 3. final board + exactly-once reconciliation -------------------
    snapshot = aggregator.refresh().to_snapshot()
    print("\nfinal board:")
    for line in render_board(snapshot):
        print("  " + line)

    stats = handle["stats"]
    manifest_records = Manifest(manifest).records()
    print(f"\ncampaign stats:      {stats['ok']}/{stats['total']} ok")
    print(f"manifest records:    {len(manifest_records)} terminal cells")
    print(f"merged view counts:  {snapshot['manifest']}")
    assert len(manifest_records) == stats["total"], "exactly-once violated"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
