"""Tests for the benchmark history store and `repro bench-trend`."""

import json

import pytest

from repro.obs.trend import (
    HISTORY_VERSION,
    append_entry,
    load_history,
    trend_report,
)


def _seed(path, bench, values, **extra):
    for v in values:
        append_entry(path, bench, wall_seconds=v, normalized=v, **extra)


class TestHistoryStore:
    def test_append_and_load_round_trip(self, tmp_path):
        p = tmp_path / "h.jsonl"
        rec = append_entry(p, "hotpath_quick", 0.135, normalized=0.23,
                           digest="abc123", meta={"refs": 800})
        assert rec["v"] == HISTORY_VERSION
        assert rec["git_sha"]  # resolved from git (or "unknown")
        (loaded,) = load_history(p)
        assert loaded["bench"] == "hotpath_quick"
        assert loaded["normalized"] == 0.23
        assert loaded["digest"] == "abc123"
        assert loaded["meta"] == {"refs": 800}

    def test_normalized_defaults_to_wall(self, tmp_path):
        p = tmp_path / "h.jsonl"
        append_entry(p, "b", 1.5)
        assert load_history(p)[0]["normalized"] == 1.5

    def test_load_skips_garbage_and_bad_versions(self, tmp_path):
        p = tmp_path / "h.jsonl"
        append_entry(p, "good", 1.0)
        with open(p, "a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"v": HISTORY_VERSION + 1, "bench": "x",
                                 "normalized": 1.0}) + "\n")
            fh.write(json.dumps({"v": HISTORY_VERSION, "bench": "neg",
                                 "normalized": -1.0}) + "\n")
            fh.write(json.dumps({"v": HISTORY_VERSION, "bench": "nan",
                                 "normalized": float("nan")}) + "\n")
            fh.write(json.dumps({"v": HISTORY_VERSION, "bench": 42,
                                 "normalized": 1.0}) + "\n")
            torn = json.dumps({"v": HISTORY_VERSION, "bench": "torn"})
            fh.write(torn[:20])
        entries = load_history(p)
        assert [e["bench"] for e in entries] == ["good"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []


class TestTrendReport:
    def test_single_run_has_no_baseline(self, tmp_path):
        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0])
        (t,) = trend_report(load_history(p))
        assert t.median is None and not t.regressed
        assert "no baseline" in t.describe()

    def test_steady_history_is_ok(self, tmp_path):
        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.05, 0.95, 1.0])
        (t,) = trend_report(load_history(p))
        assert t.median == 1.0 and not t.regressed
        assert "ok" in t.describe()

    def test_regression_beyond_tolerance_flagged(self, tmp_path):
        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 1.0, 1.4])
        (t,) = trend_report(load_history(p), tolerance=0.25)
        assert t.regressed and t.ratio == pytest.approx(1.4)
        assert "REGRESSED" in t.describe()

    def test_median_absorbs_one_noisy_prior_run(self, tmp_path):
        # latest-vs-previous would compare 1.0 against the 5.0 outlier and
        # miss a real regression elsewhere; the median does not
        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 5.0, 1.0])
        (t,) = trend_report(load_history(p))
        assert t.median == 1.0 and not t.regressed

    def test_window_limits_history_considered(self, tmp_path):
        p = tmp_path / "h.jsonl"
        # ancient slow runs must fall out of a window of 2
        _seed(p, "b", [10.0, 10.0, 1.0, 1.0, 1.0])
        (t,) = trend_report(load_history(p), window=2)
        assert t.median == 1.0

    def test_benchmarks_reported_independently(self, tmp_path):
        p = tmp_path / "h.jsonl"
        _seed(p, "fast", [1.0, 1.0, 1.0])
        _seed(p, "slow", [1.0, 1.0, 2.0])
        trends = {t.bench: t for t in trend_report(load_history(p))}
        assert not trends["fast"].regressed
        assert trends["slow"].regressed


class TestBenchTrendCLI:
    def test_no_history_warns(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "none.jsonl")
        assert main(["bench-trend", "--history", path]) == 0
        assert "no history" in capsys.readouterr().err

    def test_no_history_fails_check(self, tmp_path):
        from repro.cli import main

        assert main(["bench-trend", "--history",
                     str(tmp_path / "none.jsonl"), "--check"]) == 1

    def test_ok_history_passes_check(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 1.0])
        assert main(["bench-trend", "--history", str(p), "--check"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails_only_with_check(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 2.0])
        assert main(["bench-trend", "--history", str(p)]) == 0
        capsys.readouterr()
        assert main(["bench-trend", "--history", str(p), "--check"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 1.1])
        assert main(["bench-trend", "--history", str(p), "--json"]) == 0
        (verdict,) = json.loads(capsys.readouterr().out)
        assert verdict["bench"] == "b"
        assert verdict["ratio"] == pytest.approx(1.1)
        assert verdict["regressed"] is False

    def test_committed_history_is_loadable(self):
        # the repo ships a seeded BENCH_history.jsonl; it must stay parseable
        from pathlib import Path

        committed = Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"
        if not committed.exists():
            pytest.skip("no committed history in this tree")
        entries = load_history(committed)
        assert entries, "committed history has no valid entries"
        assert {"hotpath_quick"} <= {e["bench"] for e in entries}

    def test_tolerance_flag_respected(self, tmp_path):
        from repro.cli import main

        p = tmp_path / "h.jsonl"
        _seed(p, "b", [1.0, 1.0, 1.2])
        assert main(["bench-trend", "--history", str(p), "--check"]) == 0
        assert main(["bench-trend", "--history", str(p), "--check",
                     "--tolerance", "0.1"]) == 1
