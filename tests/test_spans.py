"""Tests for causal span tracing (repro.obs.spans) and its foundations.

Covers the span model itself (traceparent parsing, payload round-trips,
the SpanLog recorder, manifest persistence and read-back), the critical-path
attribution, the Chrome trace rendering that merges with the simulator
exporters, the shared nearest-rank quantile, the log-bucket histograms that
drive ``retry_after``, and the backward-compatibility contract: span lines
are invisible to every existing manifest reader, so pinned digests cannot
move when tracing is toggled.
"""

import errno
import json
import math

import pytest

from repro.campaign.manifest import ClaimRecord, Manifest
from repro.obs.spans import (
    SERVICE_PID_BASE,
    STAGE_EXECUTE,
    STAGE_MERGE,
    STAGE_QUEUE,
    STAGE_STEAL,
    Span,
    SpanLog,
    attribution,
    critical_path_text,
    format_traceparent,
    merge_chrome,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    read_spans,
    spans_to_chrome,
)
from repro.serve.admission import (
    LANE_BULK,
    LANE_QUICK,
    AdmissionController,
    LogHistogram,
    nearest_rank,
)


# ----------------------------------------------------------------------
# Trace ids and traceparent
# ----------------------------------------------------------------------


class TestTraceparent:
    def test_mint_shapes(self):
        trace = mint_trace_id()
        span = mint_span_id()
        assert len(trace) == 32 and int(trace, 16) >= 0
        assert len(span) == 16 and int(span, 16) >= 0
        assert mint_trace_id() != trace  # 128 random bits: never collides

    def test_parse_standard_header(self):
        trace = "4bf92f3577b34da6a3ce929d0e0e4736"
        header = f"00-{trace}-00f067aa0ba902b7-01"
        assert parse_traceparent(header) == trace
        # any version byte, surrounding whitespace, uppercase
        assert parse_traceparent(f"  CC-{trace.upper()}-00f067aa0ba902b7-00 ") == trace

    def test_parse_bare_hex(self):
        trace = mint_trace_id()
        assert parse_traceparent(trace) == trace
        assert parse_traceparent("deadbeefdeadbeef") == "deadbeefdeadbeef"

    def test_parse_rejects_garbage(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("not a header") is None
        assert parse_traceparent("00-xyz-span-01") is None
        assert parse_traceparent("abc") is None  # too short for bare hex
        assert parse_traceparent(123) is None  # type: ignore[arg-type]

    def test_parse_rejects_all_zero_trace(self):
        zero = "0" * 32
        assert parse_traceparent(zero) is None
        assert parse_traceparent(f"00-{zero}-00f067aa0ba902b7-01") is None

    def test_format_round_trip(self):
        trace = mint_trace_id()
        header = format_traceparent(trace)
        assert parse_traceparent(header) == trace


# ----------------------------------------------------------------------
# Span payloads
# ----------------------------------------------------------------------


class TestSpanPayload:
    def test_round_trip(self):
        span = Span(
            trace_id=mint_trace_id(),
            name=STAGE_EXECUTE,
            start=1234.5,
            dur=0.25,
            worker="nodeA",
            cell_id="cell-1",
            parent_id="aabbccdd00112233",
            attrs={"status": "ok", "attempt": 2},
        )
        back = Span.from_payload(json.loads(json.dumps(span.to_payload())))
        assert back is not None
        assert (back.trace_id, back.name, back.worker) == (
            span.trace_id, span.name, span.worker,
        )
        assert back.cell_id == "cell-1"
        assert back.parent_id == "aabbccdd00112233"
        assert back.attrs == {"status": "ok", "attempt": 2}
        assert back.start == pytest.approx(span.start)
        assert back.dur == pytest.approx(span.dur)

    def test_optional_fields_omitted(self):
        payload = Span(
            trace_id="ab" * 16, name=STAGE_QUEUE, start=0.0, dur=0.0
        ).to_payload()
        assert "cell_id" not in payload
        assert "parent" not in payload
        assert "attrs" not in payload
        assert payload["kind"] == "span"

    @pytest.mark.parametrize(
        "raw",
        [
            {},
            {"trace": "ab" * 16},  # no name/timing
            {"trace": "ab" * 16, "name": "x", "start": "soon", "dur": 0},
            {"trace": None, "name": "x", "start": 0, "dur": 0},
            {"trace": "ab" * 16, "name": 7, "start": 0, "dur": 0},
        ],
    )
    def test_malformed_payloads_return_none(self, raw):
        assert Span.from_payload(raw) is None

    def test_negative_duration_clamped(self):
        span = Span.from_payload(
            {"trace": "ab" * 16, "name": "queue", "start": 1.0, "dur": -5}
        )
        assert span is not None and span.dur == 0.0


# ----------------------------------------------------------------------
# SpanLog: recording, degradation, live stage totals
# ----------------------------------------------------------------------


def _manifest(tmp_path):
    manifest = Manifest(tmp_path / "m.jsonl")
    manifest.reset(meta={"test": True})
    return manifest


class TestSpanLog:
    def test_record_persists_and_accumulates(self, tmp_path):
        manifest = _manifest(tmp_path)
        log = SpanLog(manifest, "nodeA")
        trace = mint_trace_id()
        log.record(STAGE_QUEUE, trace, 10.0, 0.5, cell_id="c1")
        log.record(STAGE_EXECUTE, trace, 10.5, 1.5, cell_id="c1", attempt=1)
        log.record(STAGE_EXECUTE, trace, 12.0, 0.5, cell_id="c1", attempt=2)
        assert log.recorded == 3 and log.dropped == 0
        # attempts sum in the live per-cell totals
        assert log.by_cell["c1"][STAGE_EXECUTE] == pytest.approx(2.0)
        assert log.stage_totals(["c1", "missing"]) == pytest.approx(
            {STAGE_QUEUE: 0.5, STAGE_EXECUTE: 2.0}
        )
        spans = read_spans(manifest.path)
        assert [s.name for s in spans] == [
            STAGE_QUEUE, STAGE_EXECUTE, STAGE_EXECUTE,
        ]
        assert {s.trace_id for s in spans} == {trace}
        assert spans[1].attrs == {"attempt": 1}

    def test_disabled_is_a_noop(self, tmp_path):
        manifest = _manifest(tmp_path)
        before = manifest.path.read_bytes()
        log = SpanLog(manifest, "nodeA", enabled=False)
        assert log.record(STAGE_QUEUE, mint_trace_id(), 0.0, 1.0, cell_id="c") is None
        assert log.by_cell == {} and log.recorded == 0
        assert manifest.path.read_bytes() == before

    def test_traceless_records_are_skipped(self, tmp_path):
        log = SpanLog(_manifest(tmp_path), "nodeA")
        assert log.record(STAGE_QUEUE, None, 0.0, 1.0) is None
        assert log.record(STAGE_QUEUE, "", 0.0, 1.0) is None
        assert log.recorded == 0

    def test_append_failures_counted_not_raised(self, tmp_path):
        manifest = _manifest(tmp_path)

        def boom(payload):
            raise OSError(errno.ENOSPC, "No space left on device")

        manifest.append_span = boom  # type: ignore[method-assign]
        log = SpanLog(manifest, "nodeA")
        span = log.record(STAGE_MERGE, mint_trace_id(), 0.0, 0.1, cell_id="c")
        assert span is not None  # caller still gets the span object
        assert log.dropped == 1 and log.recorded == 0
        assert log.snapshot() == {
            "enabled": True, "recorded": 0, "dropped": 1, "cells": 1,
        }


# ----------------------------------------------------------------------
# read_spans
# ----------------------------------------------------------------------


class TestReadSpans:
    def test_filter_by_trace_and_sorting(self, tmp_path):
        manifest = _manifest(tmp_path)
        log = SpanLog(manifest, "nodeA")
        t1, t2 = mint_trace_id(), mint_trace_id()
        log.record(STAGE_EXECUTE, t1, 20.0, 1.0, cell_id="c1")
        log.record(STAGE_QUEUE, t2, 5.0, 0.1, cell_id="c2")
        log.record(STAGE_QUEUE, t1, 19.0, 1.0, cell_id="c1")
        spans = read_spans(manifest.path)
        assert [s.start for s in spans] == sorted(s.start for s in spans)
        only_t1 = read_spans(manifest.path, trace_id=t1)
        assert {s.trace_id for s in only_t1} == {t1} and len(only_t1) == 2

    def test_tolerates_torn_and_foreign_lines(self, tmp_path):
        manifest = _manifest(tmp_path)
        log = SpanLog(manifest, "nodeA")
        trace = mint_trace_id()
        log.record(STAGE_QUEUE, trace, 1.0, 0.5, cell_id="c1")
        with open(manifest.path, "a") as fh:
            fh.write('{"kind": "span", "trace": "torn-mid-app')  # no newline
        assert [s.name for s in read_spans(manifest.path)] == [STAGE_QUEUE]
        # a healed torn line plus later spans still parse
        log.record(STAGE_EXECUTE, trace, 2.0, 0.5, cell_id="c1")
        names = [s.name for s in read_spans(manifest.path)]
        assert names == [STAGE_QUEUE, STAGE_EXECUTE]

    def test_missing_file(self, tmp_path):
        assert read_spans(tmp_path / "nope.jsonl") == []


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------


class TestAttribution:
    def test_fractions_sum_to_one(self):
        frac = attribution({"queue": 7.1, "execute": 2.4, "merge": 0.5})
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-3)
        assert frac["queue"] == pytest.approx(0.71, abs=1e-3)

    def test_zero_and_negative_stages_dropped(self):
        assert attribution({}) == {}
        assert attribution({"queue": 0.0}) == {}
        frac = attribution({"queue": 1.0, "claim": 0.0})
        assert "claim" not in frac and frac["queue"] == 1.0

    def test_critical_path_text(self):
        text = critical_path_text(
            attribution({"queue": 7.1, "execute": 2.4, "merge": 0.5})
        )
        assert text == "queue 71% / execute 24% / merge 5%"
        assert critical_path_text({}) == ""


# ----------------------------------------------------------------------
# Chrome rendering
# ----------------------------------------------------------------------


def _sample_spans():
    trace = mint_trace_id()
    return trace, [
        Span(trace, "admit", 100.0, 0.01, worker="nodeA"),
        Span(trace, "queue", 100.0, 0.4, worker="nodeA", cell_id="c1"),
        Span(trace, "steal", 101.0, 0.0, worker="nodeB", cell_id="c1"),
        Span(trace, "execute", 101.0, 1.0, worker="nodeB", cell_id="c1"),
    ]


class TestChrome:
    def test_spans_to_chrome_layout(self):
        trace, spans = _sample_spans()
        doc = spans_to_chrome(spans)
        events = [e for e in doc["traceEvents"] if e.get("ph") in ("X", "i")]
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert all(e["pid"] >= SERVICE_PID_BASE for e in events)
        # two workers -> two distinct pids, each with a process_name
        assert len({e["pid"] for e in events}) == 2
        names = {
            m["args"]["name"] for m in meta if m["name"] == "process_name"
        }
        assert names == {"serve nodeA", "serve nodeB"}
        # zero-width steal renders as an instant, timed spans as complete
        by_name = {e["name"]: e for e in events}
        assert by_name["steal"]["ph"] == "i" and by_name["steal"]["s"] == "t"
        assert by_name["execute"]["ph"] == "X"
        assert by_name["execute"]["dur"] == pytest.approx(1e6)
        # timestamps are relative to the earliest span
        assert by_name["admit"]["ts"] == 0.0
        assert by_name["execute"]["ts"] == pytest.approx(1e6)
        assert doc["otherData"]["traces"] == 1
        # cell-less admit lands on the scheduler thread
        assert by_name["admit"]["tid"] == 0
        assert by_name["execute"]["tid"] != 0
        assert by_name["execute"]["args"]["trace"] == trace

    def test_merge_chrome_preserves_sim_tracks(self):
        _, spans = _sample_spans()
        service = spans_to_chrome(spans)
        sim = {
            "traceEvents": [
                {"name": "bank", "ph": "X", "pid": 3, "tid": 1, "ts": 0,
                 "dur": 5},
            ],
            "otherData": {"workload": "HM1"},
        }
        merged = merge_chrome(service, [sim])
        assert sim["traceEvents"][0] in merged["traceEvents"]
        assert len(merged["traceEvents"]) == len(service["traceEvents"]) + 1
        assert merged["otherData"]["sim0"] == {"workload": "HM1"}
        # sim pids stay below the service band: no track collisions
        assert all(
            e["pid"] < SERVICE_PID_BASE
            for e in merged["traceEvents"]
            if e["name"] == "bank"
        )

    def test_empty_input(self):
        doc = spans_to_chrome([])
        assert doc["traceEvents"] == [] and doc["otherData"]["spans"] == 0


# ----------------------------------------------------------------------
# nearest_rank (the shared quantile index)
# ----------------------------------------------------------------------


class TestNearestRank:
    @pytest.mark.parametrize(
        "q,n,expected",
        [
            (0.0, 1, 0), (0.5, 1, 0), (0.99, 1, 0), (1.0, 1, 0),
            (0.0, 2, 0), (0.5, 2, 0), (0.99, 2, 1), (1.0, 2, 1),
            (0.0, 100, 0), (0.5, 100, 49), (0.99, 100, 98), (1.0, 100, 99),
        ],
    )
    def test_textbook_ranks(self, q, n, expected):
        assert nearest_rank(q, n) == expected

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nearest_rank(0.5, 0)

    def test_not_the_biased_int_truncation(self):
        # the old int(q * n) index: at q=0.5, n=2 it picked index 1 (the
        # max); nearest-rank picks the first element (rank 1 of 2)
        assert nearest_rank(0.5, 2) == 0 != int(0.5 * 2)


# ----------------------------------------------------------------------
# LogHistogram
# ----------------------------------------------------------------------


class TestLogHistogram:
    def test_quantile_is_bucket_bound_clamped_to_max(self):
        h = LogHistogram()
        h.observe(0.3)
        # a lone 0.3s sample reports 0.3s, not the 0.5s bucket edge
        assert h.quantile(0.99) == pytest.approx(0.3)
        for _ in range(99):
            h.observe(0.04)
        assert h.quantile(0.5) == pytest.approx(0.05)  # bucket upper bound
        assert h.quantile(1.0) == pytest.approx(0.3)
        assert h.quantile(0.0) == pytest.approx(0.05)

    def test_empty_and_negative(self):
        h = LogHistogram()
        assert h.quantile(0.99) is None
        h.observe(-1.0)  # clamped to zero, lands in the first bucket
        assert h.count == 1 and h.sum == 0.0
        assert h.quantile(0.5) == pytest.approx(0.0)

    def test_overflow_bucket(self):
        h = LogHistogram(bounds=(0.1, 1.0))
        h.observe(5.0)
        snap = h.snapshot()
        assert snap["buckets"][-1]["le"] == math.inf
        assert snap["buckets"][-1]["count"] == 1
        assert snap["buckets"][0]["count"] == 0
        assert h.quantile(0.99) == pytest.approx(5.0)  # inf clamped to max

    def test_snapshot_cumulative(self):
        h = LogHistogram(bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 2.0):
            h.observe(v)
        counts = [b["count"] for b in h.snapshot()["buckets"]]
        assert counts == [1, 3, 4, 4]
        assert h.snapshot()["sum"] == pytest.approx(3.05)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram(bounds=())
        with pytest.raises(ValueError):
            LogHistogram(bounds=(1.0, 1.0))


# ----------------------------------------------------------------------
# retry_after: live queue-age p99, EMA fallback
# ----------------------------------------------------------------------


class TestRetryAfterFromQueueAge:
    def test_cold_start_falls_back_to_ema_estimate(self):
        adm = AdmissionController(quick_cap=4, bulk_cap=4, jobs=2)
        adm.try_admit(LANE_QUICK, 4)
        adm.observe_cell_seconds(2.0)
        # no dispatches yet: backlog x EMA / jobs, the pre-histogram formula
        assert adm.retry_after(LANE_QUICK) == pytest.approx(
            (4 + 1) * 2.0 / 2, abs=0.01
        )

    def test_p99_takes_over_once_lane_dispatches(self):
        adm = AdmissionController(quick_cap=4, bulk_cap=4, jobs=2)
        for _ in range(50):
            adm.observe_queue_age(LANE_QUICK, 4.0)
        hint = adm.retry_after(LANE_QUICK)
        assert hint == pytest.approx(4.0, abs=0.01)  # not backlog-derived
        # the other lane still cold: still the EMA path
        # (empty backlog: (0+1) x default 2.0s EMA / 2 jobs)
        assert adm.retry_after(LANE_BULK) == pytest.approx(1.0)

    def test_hint_clamped(self):
        adm = AdmissionController()
        adm.observe_queue_age(LANE_QUICK, 500.0)
        assert adm.retry_after(LANE_QUICK) == 60.0
        adm2 = AdmissionController()
        adm2.observe_queue_age(LANE_QUICK, 0.001)
        assert adm2.retry_after(LANE_QUICK) == 0.5

    def test_unknown_lane_folds_to_bulk(self):
        adm = AdmissionController()
        adm.observe_queue_age("mystery", 3.0)
        assert adm.queue_age[LANE_BULK].count == 1

    def test_snapshot_carries_histograms_and_hints(self):
        adm = AdmissionController(jobs=2)
        adm.observe_queue_age(LANE_QUICK, 1.2)
        adm.observe_cell_seconds(0.8, lane=LANE_QUICK)
        snap = adm.snapshot()
        assert snap["queue_age"][LANE_QUICK]["count"] == 1
        assert snap["service_time"][LANE_QUICK]["count"] == 1
        assert snap["service_time"][LANE_BULK]["count"] == 0
        assert set(snap["retry_after"]) == {LANE_QUICK, LANE_BULK}
        assert snap["retry_after"][LANE_QUICK] == pytest.approx(1.2, abs=0.01)


# ----------------------------------------------------------------------
# Manifest compatibility: spans are invisible to every existing reader
# ----------------------------------------------------------------------


class TestManifestCompat:
    def test_span_lines_do_not_reach_records_or_scan(self, tmp_path):
        manifest = _manifest(tmp_path)
        log = SpanLog(manifest, "nodeA")
        trace = mint_trace_id()
        log.record(STAGE_QUEUE, trace, 1.0, 0.5, cell_id="c1")
        log.record(STAGE_STEAL, trace, 2.0, 0.0, cell_id="c1")
        assert manifest.records() == {}
        scan = manifest.scan()
        assert scan.records == {} and scan.claims == {}

    def test_digest_inputs_identical_with_and_without_spans(self, tmp_path):
        plain = Manifest(tmp_path / "plain.jsonl")
        plain.reset(meta={})
        traced = Manifest(tmp_path / "traced.jsonl")
        traced.reset(meta={})
        log = SpanLog(traced, "nodeA")
        from repro.campaign.manifest import CellRecord

        rec = CellRecord(
            cell_id="c1", workload="HM1", scheme="base", status="ok",
            attempts=1, elapsed=0.5, summary={"cycles": 10},
        )
        log.record(STAGE_QUEUE, mint_trace_id(), 1.0, 0.5, cell_id="c1")
        plain.append(rec)
        traced.append(rec)
        log.record(STAGE_MERGE, mint_trace_id(), 2.0, 0.01, cell_id="c1")
        assert {
            cid: r.summary for cid, r in plain.records().items()
        } == {cid: r.summary for cid, r in traced.records().items()}

    def test_claim_record_trace_round_trip(self, tmp_path):
        manifest = _manifest(tmp_path)
        trace = mint_trace_id()
        manifest.append_claim(
            ClaimRecord(
                cell_id="c1", worker="nodeA", gen=1, clock=5, lease=25,
                spec={"workload": "HM1"}, trace=trace,
            )
        )
        manifest.append_claim(
            ClaimRecord(cell_id="c2", worker="nodeA", gen=1, clock=6, lease=26)
        )
        scan = manifest.scan()
        assert scan.claims["c1"].trace == trace
        assert scan.claims["c2"].trace is None

    def test_claim_trace_survives_raw_json(self, tmp_path):
        # the wire shape is part of the cross-process contract
        manifest = _manifest(tmp_path)
        trace = mint_trace_id()
        manifest.append_claim(
            ClaimRecord(
                cell_id="c1", worker="nodeA", gen=1, clock=5, lease=25,
                trace=trace,
            )
        )
        lines = [
            json.loads(ln)
            for ln in manifest.path.read_text().splitlines()
            if '"claim"' in ln
        ]
        assert lines[-1]["trace"] == trace
