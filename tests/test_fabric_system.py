"""Integration tests for the routed multi-cube fabric system."""

import dataclasses

import pytest

from repro.faults import LinkFaultConfig
from repro.fabric import (
    FABRIC_LINK_ID_BASE,
    FabricConfig,
    FabricSystem,
    FabricSystemConfig,
)
from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix
from repro.workloads.multistream import MultiStreamSpec, build_stream_traces

SMALL = HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=4)
REFS = 200


def _fabric(spec, scheme="camps-mod", refs=REFS, seed=3, mix_name="HM1", **kw):
    fabric = FabricConfig.from_spec(spec, hmc=SMALL, **kw)
    streams = MultiStreamSpec.per_cube(mix_name, fabric.cubes, refs, seed=seed)
    return FabricSystem(
        build_stream_traces(streams, fabric),
        FabricSystemConfig(fabric=fabric, scheme=scheme),
        workload=mix_name,
    )


class TestSingleCubeParity:
    def test_matches_system_field_for_field(self):
        """A one-cube fabric IS the single-cube System: every result field,
        the event count, and the exact energy breakdown must agree."""
        traces = mix("HM1", REFS, seed=3)
        r_sys = System(
            traces, SystemConfig(hmc=SMALL, scheme="camps-mod"), workload="HM1"
        ).run()
        r_fab = _fabric("chain:1").run()

        for f in dataclasses.fields(r_sys):
            if f.name == "extra":
                continue
            assert getattr(r_fab, f.name) == getattr(r_sys, f.name), f.name
        assert r_fab.extra["events_fired"] == r_sys.extra["events_fired"]
        assert r_fab.extra["bank_outcomes"] == r_sys.extra["bank_outcomes"]
        assert r_fab.energy_breakdown == r_sys.energy_breakdown

    def test_one_cube_has_no_fabric_links(self):
        fsys = _fabric("chain:1")
        assert fsys.host.fabric_links == []
        r = fsys.run()
        fx = r.extra["fabric"]
        assert fx["cubes"] == 1
        assert fx["hop_histogram"] == {1: r.demand_accesses + r.buffer_hits}
        assert fx["mean_hops"] == 1.0
        assert "fabric_hops" not in r.energy_breakdown


class TestMultiCube:
    def test_deterministic(self):
        a = _fabric("chain:2").run()
        b = _fabric("chain:2").run()
        assert a.cycles == b.cycles
        assert a.core_ipc == b.core_ipc
        assert a.energy_pj == b.energy_pj
        assert a.extra["events_fired"] == b.extra["events_fired"]
        assert a.extra["fabric"]["hop_histogram"] == b.extra["fabric"]["hop_histogram"]

    def test_all_schemes_complete(self):
        for scheme in ("none", "base", "mmd", "camps", "camps-mod"):
            r = _fabric("chain:2", scheme=scheme, refs=80).run()
            assert r.cycles > 0
            assert len(r.core_ipc) == 16  # 8 cores per stream, one per cube

    def test_chain_hop_histogram(self):
        """Home placement: cube-0 accesses take 1 hop, cube-1 accesses 2."""
        r = _fabric("chain:2").run()
        fx = r.extra["fabric"]
        hist = fx["hop_histogram"]
        assert set(hist) == {1, 2}
        assert sum(hist.values()) == r.demand_accesses + r.buffer_hits
        # streams are symmetric (same mix, same refs), so the split is even
        assert hist[1] == hist[2]
        assert fx["mean_hops"] == pytest.approx(1.5)

    def test_star_is_always_one_hop(self):
        r = _fabric("star:3", refs=80).run()
        fx = r.extra["fabric"]
        assert set(fx["hop_histogram"]) == {1}
        assert fx["mean_hops"] == 1.0
        assert fx["hop_flits"] == 0  # no inter-cube forwarding at all

    def test_chain_charges_hop_energy(self):
        r = _fabric("chain:2").run()
        fx = r.extra["fabric"]
        assert fx["hop_flits"] > 0
        expected = fx["hop_flits"] * 48.0
        assert r.energy_breakdown["fabric_hops"] == pytest.approx(expected)
        assert r.energy_pj == pytest.approx(sum(r.energy_breakdown.values()))

    def test_fabric_links_carry_traffic(self):
        fsys = _fabric("chain:4", refs=80)
        r = fsys.run()
        assert len(fsys.host.fabric_links) == 3
        for link in fsys.host.fabric_links:
            assert link.link_id >= FABRIC_LINK_ID_BASE
            assert link.total_flits > 0
        assert 0.0 < r.extra["fabric"]["fabric_link_utilization"] <= 1.0

    def test_hop_latency_slows_the_fabric(self):
        fast = _fabric("chain:2", hop_latency=0).run()
        slow = _fabric("chain:2", hop_latency=40).run()
        assert slow.cycles > fast.cycles
        assert slow.mean_memory_latency > fast.mean_memory_latency

    def test_per_cube_counters_sum_to_totals(self):
        r = _fabric("chain:2").run()
        per_cube = r.extra["fabric"]["per_cube"]
        assert len(per_cube) == 2
        assert sum(c["demand_accesses"] for c in per_cube) == r.demand_accesses
        assert sum(c["row_conflicts"] for c in per_cube) == r.row_conflicts
        # cube 0 is the host attach point: its own traffic injects directly
        # and never touches the router, while cube 1's arrives via forwarding
        r0, r1 = per_cube[0]["router"], per_cube[1]["router"]
        assert r0["local_requests"] == 0
        assert r0["forwarded_requests"] > 0
        assert r1["local_requests"] > 0
        assert r1["local_requests"] == r0["forwarded_requests"]

    def test_run_once_only(self):
        fsys = _fabric("chain:2", refs=40)
        fsys.run()
        with pytest.raises(RuntimeError):
            fsys.run()

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            FabricSystem([])


class TestFabricFaults:
    def _faulty(self, ber=2e-6, seed=42):
        fabric = FabricConfig.from_spec("chain:3", hmc=SMALL)
        streams = MultiStreamSpec.per_cube("HM1", 3, 120, seed=1)
        fsys = FabricSystem(
            build_stream_traces(streams, fabric),
            FabricSystemConfig(fabric=fabric, scheme="camps-mod"),
            workload="HM1",
        )
        cfg = LinkFaultConfig(ber=ber, seed=seed)
        for link in (*fsys.host.links, *fsys.host.fabric_links):
            link.attach_faults(cfg)
        return fsys

    def test_per_hop_faults_are_injected(self):
        fsys = self._faulty()
        r = fsys.run()
        summary = r.extra["link_faults"]
        per_link = summary["per_link"]
        fabric_keys = [
            k for k in per_link if int(k.replace("link", "")) >= FABRIC_LINK_ID_BASE
        ]
        assert len(fabric_keys) == 2  # chain:3 has two inter-cube links
        assert summary["replays"] > 0

    def test_fault_runs_are_deterministic(self):
        a = self._faulty().run()
        b = self._faulty().run()
        assert a.cycles == b.cycles
        assert a.extra["link_faults"] == b.extra["link_faults"]

    def test_fabric_link_rng_independent_of_host(self):
        """Fabric link ids live above FABRIC_LINK_ID_BASE, so their error
        streams differ from the host links' (and from each other)."""
        r = self._faulty(ber=5e-6).run()
        per_link = r.extra["link_faults"]["per_link"]
        replays = [v["replays"] for v in per_link.values()]
        assert any(x != replays[0] for x in replays[1:])
