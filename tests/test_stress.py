"""Adversarial stress tests: pathological workloads and saturation.

These exercise the corners that normal workloads avoid: every request to one
bank, worst-case row ping-pong, zero-gap request storms that saturate the
bounded queues, degenerate single-entry structures, and gigantic bursts.
The system must never deadlock, lose a request, or violate invariants.
"""

import numpy as np
import pytest

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig, run_system
from repro.workloads.trace import Trace


def coords_trace(coords, gap=0, writes=None):
    m = AddressMapping(HMCConfig())
    addrs = [m.encode(v, b, r, c) for v, b, r, c in coords]
    n = len(addrs)
    w = np.zeros(n, bool) if writes is None else np.array(writes, bool)
    return Trace(np.full(n, gap), np.array(addrs), w)


SCHEMES = ["none", "base", "base-hit", "mmd", "camps", "camps-mod"]


class TestSingleBankSaturation:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_requests_one_bank_completes(self, scheme):
        """500 zero-gap requests to a single bank: queue overflows into
        staging, everything still drains."""
        coords = [(0, 0, i % 3, i % 16) for i in range(500)]
        t = coords_trace(coords)
        r = run_system([t], scheme=scheme)
        assert r.core_instructions[0] == t.instructions

    def test_single_row_hammer(self):
        """The same line, 1000 times: all hits or buffer hits; no conflicts."""
        t = coords_trace([(0, 0, 7, 3)] * 1000)
        for scheme in ("none", "camps-mod"):
            r = run_system([t], scheme=scheme)
            assert r.row_conflicts == 0

    def test_worst_case_pingpong(self):
        """Alternating rows in one bank, fully serialized (mlp=1 so FR-FCFS
        cannot batch same-row requests): the conflict worst case.  CAMPS
        must convert it into buffer hits; NONE must not."""
        from repro.cpu.core import CoreParams

        serial = CoreParams(mlp=1, rob_size=8)
        coords = [(0, 0, i % 2, (i // 2) % 16) for i in range(600)]
        t = coords_trace(coords)
        none = run_system([t], scheme="none", core_params=serial)
        camps = run_system([t], scheme="camps-mod", core_params=serial)
        assert none.conflict_rate > 0.5
        assert camps.buffer_hits > 0
        assert camps.conflict_rate < none.conflict_rate
        assert camps.geomean_ipc > none.geomean_ipc

    def test_frfcfs_defuses_queued_pingpong(self):
        """The same ping-pong under deep MLP: FR-FCFS reorders the queue
        into row-hit batches, collapsing the conflict rate on its own."""
        coords = [(0, 0, i % 2, (i // 2) % 16) for i in range(600)]
        t = coords_trace(coords)
        r = run_system([t], scheme="none")  # default mlp=8, zero gaps
        assert r.conflict_rate < 0.2


class TestSaturationStorms:
    def test_eight_cores_zero_gap_storm(self):
        """8 cores, all zero-gap, same vault window: maximal queue pressure."""
        traces = []
        for core in range(8):
            coords = [(core % 4, 0, i % 5, i % 16) for i in range(300)]
            traces.append(coords_trace(coords))
        r = run_system(traces, scheme="camps-mod")
        assert all(i > 0 for i in r.core_ipc)

    def test_write_only_storm_drains(self):
        """Pure write traffic exercises the write-drain watermark path."""
        coords = [(i % 2, i % 4, i % 6, i % 16) for i in range(400)]
        t = coords_trace(coords, writes=[True] * 400)
        r = run_system([t], scheme="camps-mod")
        assert r.cycles > 0

    def test_tiny_buffer_thrash(self):
        """A 1-entry prefetch buffer under BASE: constant eviction churn."""
        cfg = HMCConfig(pf_buffer_entries=1)
        coords = [(0, 0, i % 8, i % 16) for i in range(300)]
        r = run_system([coords_trace(coords)], scheme="base", hmc=cfg)
        assert r.prefetches_issued > 50  # thrash happened
        assert r.cycles > 0  # and completed

    def test_single_vault_single_bank_cube(self):
        """Degenerate 1x1 cube still works end to end."""
        cfg = HMCConfig(vaults=1, banks_per_vault=1, pf_buffer_entries=2)
        m = AddressMapping(cfg)
        addrs = [m.encode(0, 0, i % 4, i % 16) for i in range(200)]
        t = Trace(np.zeros(200), np.array(addrs), np.zeros(200, bool))
        for scheme in ("none", "base", "camps-mod"):
            r = run_system([t], scheme=scheme, hmc=cfg)
            assert r.cycles > 0


class TestExtremeParameters:
    def test_mlp_one_fully_serial_core(self):
        from repro.cpu.core import CoreParams

        coords = [(i % 4, i % 4, i % 4, i % 16) for i in range(150)]
        t = coords_trace(coords, gap=2)
        serial = run_system(
            [t], scheme="none", core_params=CoreParams(mlp=1, rob_size=4)
        )
        parallel = run_system(
            [t], scheme="none", core_params=CoreParams(mlp=16, rob_size=512)
        )
        assert serial.cycles > parallel.cycles

    def test_huge_gaps_idle_system(self):
        """Sparse traffic (gap 50k instructions) - long idle stretches must
        not confuse wake logic or refresh."""
        coords = [(i % 8, 0, i, 0) for i in range(20)]
        t = coords_trace(coords, gap=50_000)
        r = run_system(
            [t], scheme="camps-mod", hmc=HMCConfig(refresh_enabled=True)
        )
        assert r.cycles > 20 * 50_000 / 4  # at least the compute time

    def test_request_to_enormous_row_id(self):
        """Row indices far beyond any real capacity still simulate (the
        model is not capacity-checked by design - traces define the space)."""
        m = AddressMapping(HMCConfig())
        addrs = [m.encode(0, 0, (1 << 30) + i, 0) for i in range(50)]
        t = Trace(np.zeros(50), np.array(addrs), np.zeros(50, bool))
        r = run_system([t], scheme="camps-mod")
        assert r.cycles > 0

    def test_interleaved_read_write_same_line(self):
        """R/W/R/W to one line: dirty state must survive buffer residency."""
        coords = [(0, 0, 5, 3)] * 40
        writes = [i % 2 == 1 for i in range(40)]
        t = coords_trace(coords, writes=writes)
        r = run_system([t], scheme="base")
        assert r.cycles > 0
