"""Tests for the epoch timeseries sampler, RunReport artifacts, run diffing,
and the HTML dashboard (repro.obs.timeseries / report / html)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.hmc.config import HMCConfig
from repro.obs import (
    CounterRegistry,
    DEFAULT_EPOCH,
    ReportDiff,
    RunReport,
    Series,
    TimeseriesSampler,
    Tracer,
    build_run_report,
    diff_reports,
    has_series,
    render_html,
    write_html,
)
from repro.obs.report import RUN_REPORT_VERSION, config_digest, subsystem_of
from repro.obs.html import load_manifest_rows
from repro.sim.engine import Engine
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix as make_mix
from repro.workloads.synthetic import generate_trace


def small_system(epoch=None, tracer=None, pf_entries=4):
    traces = [generate_trace("gems", 600, seed=i, core_id=i) for i in range(2)]
    cfg = SystemConfig(
        hmc=HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=pf_entries),
        scheme="camps-mod",
        timeseries_epoch=epoch,
    )
    return System(traces, cfg, workload="ts-test", tracer=tracer)


class TestSeries:
    def test_append_and_unroll(self):
        s = Series("x", capacity=8)
        for i in range(5):
            s.append(i * 10, float(i))
        assert len(s) == 5
        assert not s.wrapped
        assert s.times.tolist() == [0, 10, 20, 30, 40]
        assert s.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_ring_overwrites_oldest(self):
        s = Series("x", capacity=4)
        for i in range(7):
            s.append(i, float(i))
        assert len(s) == 4
        assert s.wrapped
        assert s.times.tolist() == [3, 4, 5, 6]  # chronological, oldest first
        assert s.values.tolist() == [3.0, 4.0, 5.0, 6.0]

    def test_exact_wrap_boundary(self):
        s = Series("x", capacity=3)
        for i in range(6):  # lands exactly on a multiple of capacity
            s.append(i, float(i))
        assert s.times.tolist() == [3, 4, 5]
        assert not s.wrapped  # _idx back at 0: the buffer IS chronological

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Series("x", capacity=0)

    def test_payload_shape_and_rounding(self):
        s = Series("x", capacity=4)
        s.append(0, 1 / 3)
        p = s.to_payload()
        assert p["times"] == [0]
        assert p["values"] == [pytest.approx(1 / 3, abs=1e-9)]
        assert len(repr(p["values"][0])) <= 12  # rounded, not full float64
        assert p["wrapped"] is False


class TestSampler:
    def test_track_flavors(self):
        eng = Engine()
        ts = TimeseriesSampler(eng, epoch=10, capacity=16)
        state = {"raw": 0.0, "num": 0.0, "den": 0.0}
        ts.track("raw", lambda: state["raw"])
        ts.track_rate("rate", lambda: state["raw"])
        ts.track_ratio("ratio", lambda: state["num"], lambda: state["den"])
        ts.start()

        def bump():
            state["raw"] += 20.0
            state["num"] += 1.0
            state["den"] += 4.0

        for t in (5, 15, 25):
            eng.schedule_at(t, bump)
        eng.schedule_at(31, lambda: None)  # keep the run alive past 3 ticks
        eng.run()
        assert ts.samples_taken == 3
        assert ts.get("raw").values.tolist() == [20.0, 40.0, 60.0]
        assert ts.get("rate").values.tolist() == [2.0, 2.0, 2.0]
        assert ts.get("ratio").values.tolist() == [0.25, 0.25, 0.25]

    def test_ratio_zero_denominator(self):
        eng = Engine()
        ts = TimeseriesSampler(eng, epoch=5)
        ts.track_ratio("r", lambda: 3.0, lambda: 7.0)  # deltas are both 0
        ts.start()
        eng.schedule_at(12, lambda: None)
        eng.run()
        assert ts.get("r").values.tolist() == [0.0, 0.0]

    def test_track_registry_patterns(self):
        eng = Engine()
        reg = CounterRegistry()
        reg.scope("vault0").register("hits", lambda: 5)
        reg.scope("vault1").register("hits", lambda: 7)
        reg.scope("host").register("retries", lambda: 1)
        ts = TimeseriesSampler(eng, epoch=4)
        made = ts.track_registry(reg, "vault*.hits")
        assert sorted(s.name for s in made) == ["vault0.hits", "vault1.hits"]
        ts.start()
        eng.schedule_at(4, lambda: None)
        eng.run()
        assert ts.get("vault0.hits").values.tolist() == [5.0]
        assert ts.get("host.retries") is None

    def test_duplicate_series_rejected(self):
        ts = TimeseriesSampler(Engine(), epoch=4)
        ts.track("x", lambda: 0.0)
        with pytest.raises(ValueError, match="duplicate series"):
            ts.track("x", lambda: 1.0)

    def test_epoch_validated(self):
        with pytest.raises(ValueError):
            TimeseriesSampler(Engine(), epoch=0)

    def test_weak_tick_never_extends_the_run(self):
        # The last strong event is at t=12; epoch ticks at 10, 20, 30...
        # must not keep the engine alive past 12 or advance now beyond it.
        eng = Engine()
        ts = TimeseriesSampler(eng, epoch=10)
        ts.track("n", lambda: 1.0)
        ts.start()
        eng.schedule_at(12, lambda: None)
        eng.run()
        assert eng.now == 12
        assert ts.samples_taken == 1  # only the t=10 tick fired

    def test_tick_is_invisible_to_events_fired(self):
        eng = Engine()
        ts = TimeseriesSampler(eng, epoch=5)
        ts.track("n", lambda: 1.0)
        ts.start()
        for t in (3, 9, 14):
            eng.schedule_at(t, lambda: None)
        eng.run()
        assert ts.samples_taken == 2  # ticks at 5 and 10
        assert eng.events_fired == 3  # the 3 real events only


class TestSystemWiring:
    @pytest.fixture(scope="class")
    def sampled_run(self):
        system = small_system(epoch=256)
        result = system.run()
        return system, result

    def test_standard_gauges_present(self, sampled_run):
        system, _ = sampled_run
        names = set(system.timeseries.series())
        assert {
            "buffer.hit_rate", "prefetch.row_accuracy", "queues.occupancy",
            "link.utilization", "tsv.utilization", "sched.drain_residency",
        } <= names
        assert {f"vault{v}.conflict_rate" for v in range(4)} <= names

    def test_gauge_values_sane(self, sampled_run):
        system, _ = sampled_run
        ts = system.timeseries
        assert ts.samples_taken > 0
        for name in ("buffer.hit_rate", "link.utilization", "tsv.utilization"):
            vals = ts.get(name).values
            assert np.all(vals >= 0.0) and np.all(vals <= 1.0), name

    def test_payload_in_result_extra(self, sampled_run):
        _, result = sampled_run
        payload = result.extra["timeseries"]
        assert payload["epoch"] == 256
        assert payload["samples_taken"] > 0
        assert "buffer.hit_rate" in payload["series"]

    def test_sampling_leaves_results_identical(self):
        plain = small_system().run()
        sampled = small_system(epoch=256).run()
        assert sampled.cycles == plain.cycles
        assert sampled.extra["events_fired"] == plain.extra["events_fired"]
        assert sampled.core_ipc == plain.core_ipc
        assert sampled.row_conflicts == plain.row_conflicts
        assert sampled.energy_pj == plain.energy_pj

    def test_unsampled_system_has_no_sampler(self):
        assert small_system().timeseries is None


class TestRunReport:
    @pytest.fixture(scope="class")
    def report(self):
        tracer = Tracer()
        system = small_system(epoch=256, tracer=tracer)
        result = system.run()
        return build_run_report(system, result, seed=1, refs=600)

    def test_fields(self, report):
        assert report.workload == "ts-test"
        assert report.scheme == "camps-mod"
        assert len(report.config_digest) == 12
        assert report.summary["cycles"] > 0
        assert "geomean_ipc" in report.summary
        assert any(".bank" in k for k in report.counters)
        assert report.series["series"]["buffer.hit_rate"]["values"]
        assert report.meta == {"seed": 1, "refs": 600}
        assert "ts-test/camps-mod@" in report.label

    def test_save_load_round_trip(self, report, tmp_path):
        p = report.save(tmp_path / "r.json")
        loaded = RunReport.load(p)
        assert loaded.to_dict() == report.to_dict()

    def test_future_version_rejected(self, tmp_path):
        p = tmp_path / "future.json"
        p.write_text(json.dumps({"version": RUN_REPORT_VERSION + 1}))
        with pytest.raises(ValueError, match="version"):
            RunReport.load(p)

    def test_config_digest_stable_and_sensitive(self):
        a = SystemConfig(hmc=HMCConfig(pf_buffer_entries=16))
        b = SystemConfig(hmc=HMCConfig(pf_buffer_entries=16))
        c = SystemConfig(hmc=HMCConfig(pf_buffer_entries=4))
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(c)


class TestSubsystemOf:
    @pytest.mark.parametrize("name,expected", [
        ("vault3.buffer_hits", "buffer/prefetch"),
        ("vault0.prefetch_lines", "buffer/prefetch"),
        ("vault1.dirty_row_writebacks", "buffer/prefetch"),
        ("vault2.ct_evictions", "buffer/prefetch"),
        ("vault5.bank11.conflicts", "bank"),
        ("vault0.sched_drains", "scheduler"),
        ("link2.tx_flits", "link"),
        ("vault4.tsv_busy", "tsv/bus"),
        ("host.queue_full_stalls", "host/queues"),
        ("device.cycles", "device"),
    ])
    def test_classification(self, name, expected):
        assert subsystem_of(name) == expected


class TestDiff:
    @pytest.fixture(scope="class")
    def buffer_size_pair(self):
        """Two MX1/camps runs differing ONLY in prefetch-buffer entries."""
        reports = []
        for entries in (16, 4):
            tracer = Tracer()
            traces = make_mix("MX1", 800, seed=1)
            cfg = SystemConfig(
                hmc=HMCConfig(pf_buffer_entries=entries),
                scheme="camps",
                timeseries_epoch=DEFAULT_EPOCH,
            )
            system = System(traces, cfg, workload="MX1", tracer=tracer)
            result = system.run()
            reports.append(build_run_report(system, result, entries=entries))
        return reports

    def test_buffer_size_diff_blames_buffer_subsystem(self, buffer_size_pair):
        # The issue's acceptance check: shrinking only the prefetch buffer
        # must rank buffer/prefetch as the top contributing subsystem.
        a, b = buffer_size_pair
        diff = diff_reports(a, b)
        assert diff.top_subsystem() == "buffer/prefetch"

    def test_diff_structure(self, buffer_size_pair):
        a, b = buffer_size_pair
        diff = diff_reports(a, b)
        assert isinstance(diff, ReportDiff)
        metric_names = [m.name for m in diff.metrics]
        assert "cycles" in metric_names and "buffer_hits" in metric_names
        # counters sorted by relative delta, descending
        rels = [c.rel for c in diff.counters]
        assert rels == sorted(rels, reverse=True)
        # every subsystem entry aggregates at least one leaf
        assert all(n >= 1 for _, _, n in diff.subsystems)

    def test_series_divergence_found(self, buffer_size_pair):
        a, b = buffer_size_pair
        diff = diff_reports(a, b)
        hit_rate = [d for d in diff.divergences if d.name == "buffer.hit_rate"]
        assert hit_rate and hit_rate[0].first_cycle is not None
        assert hit_rate[0].max_gap > 0

    def test_to_text_readable(self, buffer_size_pair):
        a, b = buffer_size_pair
        text = diff_reports(a, b).to_text()
        assert "summary metrics" in text
        assert "subsystem attribution" in text
        assert "buffer/prefetch" in text

    def test_identical_reports_diff_clean(self, buffer_size_pair):
        a, _ = buffer_size_pair
        diff = diff_reports(a, a)
        assert diff.top_subsystem() is None
        assert all(m.delta == 0 for m in diff.metrics)
        assert all(d.first_cycle is None for d in diff.divergences)


class TestHtml:
    @pytest.fixture(scope="class")
    def report(self):
        tracer = Tracer()
        system = small_system(epoch=256, tracer=tracer)
        result = system.run()
        return build_run_report(system, result, seed=1)

    def test_render_self_contained(self, report):
        html = render_html([report])
        assert html.startswith("<!doctype html>")
        assert "<polyline" in html  # sparklines
        assert "<rect" in html  # heatmap
        assert "buffer.hit_rate" in html
        assert "vault0.conflict_rate" in html
        # no external assets of any kind
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html and "<link" not in html

    def test_write_html_size_bound(self, report, tmp_path):
        p = write_html(tmp_path / "dash.html", [report, report])
        assert p.stat().st_size < 2 * 1024 * 1024

    def test_render_without_series_still_works(self, report):
        bare = RunReport(
            workload="w", scheme="s", config_digest="d",
            summary={"cycles": 10.0}, counters=dict(report.counters),
        )
        html = render_html([bare])
        assert "<rect" in html  # heatmap still renders from counters

    def test_manifest_rows_and_campaign_table(self, tmp_path):
        man = tmp_path / "m.jsonl"
        lines = [
            {"kind": "header", "version": 1},
            {"cell_id": "a", "workload": "HM1", "scheme": "base",
             "status": "ok", "summary": {"geomean_ipc": 1.0}},
            {"cell_id": "b", "workload": "HM1", "scheme": "camps",
             "status": "ok", "summary": {"geomean_ipc": 1.2}},
            {"cell_id": "c", "workload": "LM1", "scheme": "base",
             "status": "error", "error": "boom"},
            # duplicate cell id: the later record wins
            {"cell_id": "a", "workload": "HM1", "scheme": "base",
             "status": "ok", "summary": {"geomean_ipc": 1.1}},
        ]
        man.write_text("".join(json.dumps(l) + "\n" for l in lines))
        rows = load_manifest_rows(man)
        assert {r["cell_id"] for r in rows} == {"a", "b"}  # errors excluded
        assert [r for r in rows if r["cell_id"] == "a"][0]["summary"] == {
            "geomean_ipc": 1.1
        }
        html = render_html([], manifest_rows=rows)
        assert "campaign comparison" in html
        assert "camps" in html


class TestCampaignReports:
    def test_report_dir_writes_and_links_artifacts(self, tmp_path):
        from repro.campaign import grid_cells, run_campaign
        from repro.campaign.manifest import Manifest
        from repro.experiments.runner import ExperimentConfig

        man = Manifest(tmp_path / "m.jsonl")
        rdir = tmp_path / "reports"
        cells = grid_cells(
            ["HM1"], ["base", "camps"], ExperimentConfig(refs_per_core=150, seed=1)
        )
        run_campaign(cells, manifest=man, report_dir=str(rdir))
        recs = man.records()
        assert len(recs) == 2
        for rec in recs.values():
            assert rec.ok and rec.report is not None
            loaded = RunReport.load(rec.report)
            assert loaded.scheme == rec.scheme
            assert loaded.counters  # tracer registry captured

    def test_cached_cells_carry_no_report(self, tmp_path):
        from repro.campaign import grid_cells, run_campaign
        from repro.campaign.manifest import Manifest
        from repro.experiments.runner import ExperimentConfig, ResultCache

        cache = ResultCache(tmp_path / "cache.json")
        cells = grid_cells(
            ["HM1"], ["base"], ExperimentConfig(refs_per_core=150, seed=1)
        )
        run_campaign(cells, cache=cache)  # populate the cache
        man = Manifest(tmp_path / "m.jsonl")
        rdir = tmp_path / "reports"
        run_campaign(cells, cache=cache, manifest=man, report_dir=str(rdir))
        rec = next(iter(man.records().values()))
        assert rec.cached
        assert rec.report is None  # nothing was simulated


class TestReportCLI:
    def test_run_report_diff_dashboard_pipeline(self, tmp_path, capsys):
        ra, rb = tmp_path / "a.json", tmp_path / "b.json"
        for path, seed in ((ra, 1), (rb, 2)):
            rc = main([
                "run", "HM1", "--scheme", "camps-mod", "--refs", "300",
                "--seed", str(seed), "--report", str(path), "--epoch", "256",
            ])
            assert rc == 0
        capsys.readouterr()

        assert main(["diff", str(ra), str(rb)]) == 0
        out = capsys.readouterr().out
        assert "summary metrics" in out and "subsystem attribution" in out

        assert main(["diff", str(ra), str(rb), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["a"] and payload["b"]

        dash = tmp_path / "dash.html"
        assert main(["report", str(ra), str(rb), "--out", str(dash)]) == 0
        html = dash.read_text()
        assert "<polyline" in html
        assert dash.stat().st_size < 2 * 1024 * 1024

    def test_run_report_default_epoch(self, tmp_path, capsys):
        p = tmp_path / "r.json"
        rc = main([
            "run", "HM1", "--refs", "300", "--report", str(p),
        ])
        assert rc == 0
        report = RunReport.load(p)
        assert report.series["epoch"] == DEFAULT_EPOCH


class TestDiffDegradedSeries:
    """`repro diff` with one-sided / null series payloads (graceful path)."""

    def _report(self, series, cycles=1000.0):
        return RunReport(
            workload="MX1", scheme="camps", config_digest="abcdef123456",
            summary={"cycles": cycles, "geomean_ipc": 1.0},
            counters={"vault0.buffer_hits": 10.0},
            series=series,
        )

    def test_has_series_detects_payloads(self):
        assert not has_series(self._report({}))
        assert not has_series(self._report({"epoch": 1024, "series": None}))
        assert not has_series(self._report(None))
        assert has_series(self._report(
            {"epoch": 1024,
             "series": {"buffer.hit_rate": {"times": [0], "values": [0.5]}}}
        ))

    def test_null_series_payload_does_not_crash_diff(self):
        # regression: {"series": null} raised TypeError mid-diff
        a = self._report({"epoch": 1024, "series": None})
        b = self._report(
            {"epoch": 1024,
             "series": {"buffer.hit_rate": {"times": [0], "values": [0.5]}}},
            cycles=1200.0,
        )
        diff = diff_reports(a, b)
        assert diff.divergences == []
        assert any(m.name == "cycles" for m in diff.metrics)

    def test_cli_one_sided_series_degrades_with_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        a = self._report({"epoch": 1024, "series": None}).save(tmp_path / "a.json")
        b = self._report(
            {"epoch": 1024,
             "series": {"buffer.hit_rate": {"times": [0], "values": [0.5]}}},
            cycles=1200.0,
        ).save(tmp_path / "b.json")
        rc = main(["diff", str(a), str(b)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "summary metrics" in captured.out  # metric diff still printed
        assert str(a) in captured.err and "no series payload" in captured.err

    def test_cli_one_sided_series_json_flags_incomparable(self, tmp_path, capsys):
        from repro.cli import main

        a = self._report({}).save(tmp_path / "a.json")
        b = self._report(
            {"epoch": 1024,
             "series": {"buffer.hit_rate": {"times": [0], "values": [0.5]}}},
        ).save(tmp_path / "b.json")
        assert main(["diff", str(a), str(b), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["series_comparable"] is False

    def test_cli_both_sides_without_series_still_ok(self, tmp_path, capsys):
        from repro.cli import main

        a = self._report({}).save(tmp_path / "a.json")
        b = self._report({}, cycles=1200.0).save(tmp_path / "b.json")
        assert main(["diff", str(a), str(b)]) == 0
        assert "no series payload" not in capsys.readouterr().err
