"""Unit tests for HMCConfig (Table I defaults and validation)."""

import dataclasses

import pytest

from repro.hmc.config import HMCConfig


class TestTable1Defaults:
    def test_structure(self):
        cfg = HMCConfig()
        assert cfg.vaults == 32
        assert cfg.banks_per_vault == 16
        assert cfg.total_banks == 512
        assert cfg.row_bytes == 1024
        assert cfg.line_bytes == 64
        assert cfg.lines_per_row == 16

    def test_queues(self):
        cfg = HMCConfig()
        assert cfg.read_queue_depth == 32
        assert cfg.write_queue_depth == 32

    def test_prefetch_buffer(self):
        cfg = HMCConfig()
        assert cfg.pf_buffer_entries == 16
        assert cfg.pf_buffer_bytes == 16 * 1024
        assert cfg.pf_hit_latency == 22

    def test_links(self):
        cfg = HMCConfig()
        assert cfg.links == 4
        assert cfg.link_lanes == 16
        assert cfg.link_gbps_per_lane == pytest.approx(12.5)

    def test_link_bandwidth_derivation(self):
        cfg = HMCConfig()
        # 16 lanes x 12.5 Gbps = 200 Gbps = 25 GB/s; at 3 GHz -> 8.33 B/cycle
        assert cfg.link_bytes_per_cycle == pytest.approx(25.0 / 3.0)

    def test_dram_timing_is_table1(self):
        t = HMCConfig().timings
        assert (t.trcd, t.trp, t.tcl) == (11, 11, 11)


class TestValidation:
    def test_non_pow2_rejected(self):
        for field in ("vaults", "banks_per_vault", "row_bytes", "line_bytes"):
            with pytest.raises(ValueError):
                HMCConfig(**{field: 3})

    def test_line_bigger_than_row_rejected(self):
        with pytest.raises(ValueError):
            HMCConfig(row_bytes=64, line_bytes=128)

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ValueError):
            HMCConfig(links=0)
        with pytest.raises(ValueError):
            HMCConfig(pf_buffer_entries=0)
        with pytest.raises(ValueError):
            HMCConfig(read_queue_depth=0)

    def test_negative_latencies_rejected(self):
        with pytest.raises(ValueError):
            HMCConfig(serdes_latency=-1)
        with pytest.raises(ValueError):
            HMCConfig(crossbar_latency=-1)

    def test_bad_link_rate_rejected(self):
        with pytest.raises(ValueError):
            HMCConfig(link_gbps_per_lane=0)

    def test_flit_bytes_pow2(self):
        with pytest.raises(ValueError):
            HMCConfig(flit_bytes=24)


class TestOverrides:
    def test_with_overrides_returns_new(self):
        cfg = HMCConfig()
        cfg2 = cfg.with_overrides(pf_buffer_entries=8)
        assert cfg2.pf_buffer_entries == 8
        assert cfg.pf_buffer_entries == 16

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            HMCConfig().with_overrides(vaults=5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            HMCConfig().vaults = 64
