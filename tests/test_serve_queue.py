"""Tests for the manifest work-queue overlay and retry jitter.

Covers the satellite edge cases named in the serve issue: resume over a
manifest whose last record is a torn claim line, duplicate claims from two
generations (higher generation wins), and lease expiry mid-merge — plus the
WorkQueue lifecycle (attach/claim/renew/steal/record) and the deterministic
full-jitter retry backoff shared by the campaign executor and the service.
"""

import json

import pytest

from repro.campaign.executor import MAX_RETRY_DELAY, retry_delay
from repro.campaign.manifest import (
    CellRecord,
    ClaimRecord,
    Manifest,
    STATUS_OK,
)
from repro.serve.jobs import cell_from_spec
from repro.serve.steal import DEFAULT_LEASE_TICKS, WorkQueue


def _spec(workload="HM1", scheme="base", refs=100, seed=1):
    return {"workload": workload, "scheme": scheme, "refs": refs, "seed": seed}


def _cid(spec):
    return cell_from_spec(spec).cell_id


def _record(cell_id, workload="HM1", scheme="base"):
    return CellRecord(
        cell_id=cell_id,
        workload=workload,
        scheme=scheme,
        status=STATUS_OK,
        attempts=1,
        elapsed=0.5,
        summary={"cycles": 10},
    )


# ----------------------------------------------------------------------
# Deterministic full-jitter retry backoff (satellite)
# ----------------------------------------------------------------------


class TestRetryDelay:
    def test_reproducible_per_cell_and_attempt(self):
        a = retry_delay("cell-A", 2, 0.5)
        assert a == retry_delay("cell-A", 2, 0.5)

    def test_different_cells_desynchronized(self):
        delays = {retry_delay(f"cell-{i}", 3, 1.0) for i in range(32)}
        # full jitter: a mass crash must not produce a retry stampede
        assert len(delays) > 16

    def test_bounded_by_exponential_envelope(self):
        for attempt in range(1, 8):
            for cid in ("x", "y", "z"):
                d = retry_delay(cid, attempt, 0.5)
                assert 0.0 <= d <= min(MAX_RETRY_DELAY, 0.5 * 2 ** (attempt - 1))

    def test_cap_override(self):
        for attempt in range(1, 20):
            assert retry_delay("c", attempt, 1.0, cap=2.0) <= 2.0

    def test_zero_base_disables_backoff(self):
        assert retry_delay("c", 5, 0.0) == 0.0


# ----------------------------------------------------------------------
# Claim records in the manifest
# ----------------------------------------------------------------------


class TestClaimRecords:
    def test_beats_prefers_higher_generation(self):
        low = ClaimRecord("c", "a", 1, 9, 20)
        high = ClaimRecord("c", "b", 2, 3, 10)
        assert high.beats(low)
        assert not low.beats(high)
        assert low.beats(None)

    def test_beats_ties_break_on_clock_then_worker(self):
        early = ClaimRecord("c", "a", 1, 3, 10)
        late = ClaimRecord("c", "a", 1, 5, 12)
        assert late.beats(early)
        # full tie on (gen, clock): worker name decides, deterministically
        wa = ClaimRecord("c", "a", 1, 5, 12)
        wb = ClaimRecord("c", "b", 1, 5, 12)
        assert wb.beats(wa) and not wa.beats(wb)

    def test_duplicate_claims_higher_generation_wins(self, tmp_path):
        """Issue edge case: the same cell claimed by two generations."""
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "old", 1, 5, 30, {"workload": "HM1"}))
        m.append_claim(ClaimRecord("c1", "new", 2, 6, 31, {"workload": "HM1"}))
        scan = m.scan()
        assert scan.claims["c1"].worker == "new"
        assert scan.max_gen == 2

    def test_torn_claim_as_last_line_skipped_on_resume(self, tmp_path):
        """Issue edge case: resume over a manifest whose final record is a
        claim torn mid-append by a crash."""
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append(_record("done-cell"))
        m.append_claim(ClaimRecord("c1", "w", 1, 2, 26))
        with open(m.path, "a") as fh:
            fh.write('{"kind": "claim", "cell_id": "c2", "worker": "w", "ge')
        scan = m.scan()
        assert set(scan.claims) == {"c1"}
        assert set(scan.records) == {"done-cell"}
        # and the queue can still attach and make progress on top of it
        q = WorkQueue(m, "survivor")
        q.attach()
        assert q.gen == 2
        q.tick()
        assert m.scan().clock == scan.clock + 1

    def test_writers_heal_a_torn_tail_before_appending(self, tmp_path):
        """A peer's torn line must not swallow the next writer's record."""
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "w", 1, 1, 25))
        with open(m.path, "a") as fh:
            fh.write('{"cell_id": "torn-terminal", "stat')  # crash mid-append
        m.append(_record("c1"))
        scan = m.scan()
        assert set(scan.records) == {"c1"}  # the healed append parsed fine
        raw = open(m.path).read()
        assert not any("stat{" in ln for ln in raw.splitlines())

    def test_lease_expiry_driven_by_logical_clock(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "dead", 1, 2, 4))
        m.append_tick("live", 3)
        assert not m.scan().expired("c1")  # lease 4 >= clock 3
        m.append_tick("live", 5)
        assert m.scan().expired("c1")

    def test_lease_expiry_mid_merge_not_expired_once_terminal(self, tmp_path):
        """Issue edge case: a lease that expires while the merge is landing.

        The terminal record is authoritative: once it is in the file the
        cell is no longer expired/stealable no matter what the claim says.
        """
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "slow", 1, 2, 4))
        m.append_tick("peer", 50)  # lease long gone: peers see it stealable
        assert m.scan().expired("c1")
        m.append(_record("c1"))  # the slow owner's merge finally lands
        scan = m.scan()
        assert not scan.expired("c1")
        assert "c1" in scan.records

    def test_claims_invisible_to_plain_records(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "w", 1, 1, 25))
        m.append(_record("c2"))
        assert set(m.records()) == {"c2"}  # pre-serve readers unchanged


# ----------------------------------------------------------------------
# WorkQueue: attach / claim / renew / steal / record
# ----------------------------------------------------------------------


class TestWorkQueue:
    def test_attach_generations_monotonic(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        a = WorkQueue(m, "a")
        a.attach()
        a.claim("c1", _spec())
        b = WorkQueue(m, "b")
        b.attach()
        assert (a.gen, b.gen) == (1, 2)
        # a restart of "a" outranks its own ghost
        a2 = WorkQueue(m, "a")
        a2.attach()
        assert a2.gen == 3

    def test_seeded_claims_immediately_stealable(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        spec = _spec()
        seeder = WorkQueue(m, "seed-writer")
        seeder.attach()
        seeder.seed([(_cid(spec), spec)])
        node = WorkQueue(m, "node")
        node.attach()
        steals = node.steals(node.scan())
        assert [cid for cid, _ in steals] == [_cid(spec)]

    def test_steals_skip_unexpired_done_and_unportable(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        live_spec = _spec(seed=1)
        done_spec = _spec(seed=2)
        bare_spec = _spec(seed=3)
        lying_spec = _spec(seed=4)
        q = WorkQueue(m, "peer")
        q.attach()
        q.tick()
        clock = q.clock
        # live lease, terminal cell, claim with no spec, claim whose spec
        # rebuilds a *different* cell id, and a corrupt spec
        m.append_claim(ClaimRecord(_cid(live_spec), "w", 1, clock, clock + 10, live_spec))
        m.append_claim(ClaimRecord(_cid(done_spec), "w", 1, 0, 0, done_spec))
        m.append(_record(_cid(done_spec)))
        m.append_claim(ClaimRecord(_cid(bare_spec), "w", 1, 0, 0, None))
        m.append_claim(ClaimRecord("not-the-real-id", "w", 1, 0, 0, lying_spec))
        m.append_claim(ClaimRecord("corrupt", "w", 1, 0, 0, {"workload": "nope"}))
        assert q.steals(q.scan()) == []

    def test_record_dedupes_against_peers(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        a = WorkQueue(m, "a")
        a.attach()
        b = WorkQueue(m, "b")
        b.attach()
        cid = _cid(_spec())
        assert a.record(_record(cid)) is True
        # b raced the same cell (at-least-once execution): merge refuses dup
        assert b.record(_record(cid)) is False
        terminals = [
            ln
            for ln in open(m.path).read().splitlines()
            if '"kind"' not in ln and ln.strip()
        ]
        assert len(terminals) == 1  # exactly once in the file too

    def test_outbid_claim_leaves_mine(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        a = WorkQueue(m, "a")
        a.attach()
        a.claim("c1", _spec())
        assert "c1" in a.mine
        b = WorkQueue(m, "b")
        b.attach()
        b.claim("c1", _spec())  # higher gen: steals it out from under a
        a.scan()
        assert "c1" not in a.mine

    def test_renewals_due_near_lease_end(self, tmp_path):
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        q = WorkQueue(m, "a", lease_ticks=4)
        q.attach()
        q.claim("c1", _spec())
        assert q.renewals_due(q.scan()) == []  # fresh lease
        q.tick()
        q.tick()
        q.tick()  # 1 tick of lease left < 4 * 0.5
        assert q.renewals_due(q.scan()) == ["c1"]
        q.claim("c1", _spec())  # renewal restarts the lease
        assert q.renewals_due(q.scan()) == []

    def test_default_lease_covers_renew_fraction(self):
        assert DEFAULT_LEASE_TICKS >= 2
        with pytest.raises(ValueError):
            WorkQueue(Manifest("unused.jsonl"), "w", lease_ticks=0)

    def test_duplicate_manifest_lines_merge_idempotently(self, tmp_path):
        """Replayed lines (chaos: duplicated appends) change nothing."""
        m = Manifest(tmp_path / "m.jsonl")
        m.reset()
        m.append_claim(ClaimRecord("c1", "w", 1, 1, 25, _spec()))
        m.append(_record("c2"))
        before = m.scan()
        lines = [
            ln for ln in open(m.path).read().splitlines() if "header" not in ln
        ]
        with open(m.path, "a") as fh:
            for ln in lines + lines:
                fh.write(ln + "\n")
        after = m.scan()
        assert set(after.records) == set(before.records)
        assert after.claims["c1"] == before.claims["c1"]
        assert after.max_gen == before.max_gen

    def test_spec_roundtrip_through_claim_json(self):
        """A spec survives JSON (what the manifest actually stores) and
        rebuilds the exact same cell id — the steal-validation invariant."""
        spec = _spec(workload="LM1", scheme="camps", refs=250, seed=7)
        wire = json.loads(json.dumps(spec))
        assert cell_from_spec(wire).cell_id == _cid(spec)
