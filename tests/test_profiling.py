"""Tests for per-subsystem profile attribution (repro.sim.profiling)."""

from __future__ import annotations

import cProfile
import pstats

from repro.sim.profiling import (
    DISPATCH_FRAMES,
    breakdown_table,
    classify,
    is_dispatcher,
    profile_payload,
    subsystem_breakdown,
)
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix


def test_classify_paths():
    assert classify("/repo/src/repro/sim/engine.py") == "engine"
    assert classify("/repo/src/repro/vault/scheduler.py") == "scheduler"
    assert classify("/repo/src/repro/vault/controller.py") == "vault"
    assert classify("/repo/src/repro/dram/bank.py") == "bank"
    assert classify("/repo/src/repro/core/camps.py") == "prefetcher"
    assert classify("~/.pyenv/lib/python3.11/heapq.py") == "other"


def test_is_dispatcher():
    assert is_dispatcher("/repo/src/repro/sim/engine.py", "run")
    assert is_dispatcher("C:\\repo\\src\\repro\\sim\\engine.py", "step")
    assert not is_dispatcher("/repo/src/repro/sim/engine.py", "call_at")
    assert not is_dispatcher("/repo/src/repro/vault/controller.py", "run")
    assert DISPATCH_FRAMES  # the exclusion set is non-empty by contract


def _profiled_run():
    traces = mix("MX1", 150, seed=4)
    system = System(traces, SystemConfig(scheme="camps"), workload="MX1")
    profiler = cProfile.Profile()
    profiler.enable()
    result = system.run()
    profiler.disable()
    return system, result, profiler


def test_dispatcher_cumtime_not_charged_to_engine():
    """Engine.run's cumtime is (nearly) the whole profiled run - every
    dispatched callback re-counted.  The engine row must not report it:
    batch-dispatched work belongs to its owning subsystem."""
    system, _result, profiler = _profiled_run()
    stats = pstats.Stats(profiler)
    run_cum = max(
        cum
        for (filename, _ln, fname), (_cc, _nc, _tot, cum, _callers) in
        stats.stats.items()
        if is_dispatcher(filename, fname)
    )
    breakdown = subsystem_breakdown(profiler)
    assert "engine" in breakdown
    # the engine row's cumtime is its own dominant entry point, strictly
    # below the dispatcher's whole-run cumulative time
    assert breakdown["engine"]["cumtime_s"] < run_cum
    # the dispatch loop's exclusive time still counts as engine work
    assert breakdown["engine"]["tottime_s"] > 0.0


def test_breakdown_tottime_is_additive():
    _system, _result, profiler = _profiled_run()
    stats = pstats.Stats(profiler)
    total = sum(tot for (_k), (_cc, _nc, tot, _cum, _cal) in stats.stats.items())
    breakdown = subsystem_breakdown(profiler)
    assert abs(sum(r["tottime_s"] for r in breakdown.values()) - total) < 1e-9
    # subsystems beyond the engine actually absorbed their own work
    assert {"vault", "bank"} <= set(breakdown)


def test_payload_and_table_render():
    _system, result, profiler = _profiled_run()
    breakdown = subsystem_breakdown(profiler)
    payload = profile_payload(
        breakdown, cycles=result.cycles, events_fired=1, wall_seconds=0.5
    )
    assert payload["subsystems"] is breakdown
    table = breakdown_table(breakdown)
    assert "subsystem" in table and "engine" in table
