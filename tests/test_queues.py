"""Unit tests for the vault request queues."""

import pytest

from repro.request import MemoryRequest
from repro.vault.queues import VaultQueues


def req(addr=0, write=False, bank=0, row=0):
    r = MemoryRequest(addr, write)
    r.bank, r.row = bank, row
    return r


class TestAdmission:
    def test_reads_and_writes_separate(self):
        q = VaultQueues(4, 4)
        assert q.admit(req(write=False))
        assert q.admit(req(write=True))
        assert len(q.reads) == 1 and len(q.writes) == 1

    def test_overflow_goes_to_staging(self):
        q = VaultQueues(read_depth=2, write_depth=2)
        for _ in range(3):
            q.admit(req())
        assert len(q.reads) == 2
        assert len(q.staging) == 1
        assert q.staged == 1

    def test_promote_after_space_frees(self):
        q = VaultQueues(read_depth=1, write_depth=1)
        a, b = req(), req()
        q.admit(a)
        q.admit(b)  # staged
        q.remove(a)
        assert q.promote() == 1
        assert list(q.reads) == [b]

    def test_promote_preserves_order(self):
        q = VaultQueues(read_depth=1, write_depth=4)
        first, second, third = req(row=1), req(row=2), req(row=3)
        q.admit(first)
        q.admit(second)
        q.admit(third)
        q.remove(first)
        q.promote()
        assert list(q.reads) == [second]
        q.remove(second)
        q.promote()
        assert list(q.reads) == [third]

    def test_promote_blocked_direction_does_not_block_other(self):
        q = VaultQueues(read_depth=1, write_depth=1)
        q.admit(req(write=False))
        q.admit(req(write=False))  # staged read, blocked
        w = req(write=True)
        q.admit(w)  # write goes straight in
        assert list(q.writes) == [w]

    def test_max_occupancy_tracked(self):
        q = VaultQueues(8, 8)
        for _ in range(3):
            q.admit(req())
        q.admit(req(write=True))
        assert q.max_read_occupancy == 3
        assert q.max_write_occupancy == 1


class TestRemoval:
    def test_remove_by_identity(self):
        q = VaultQueues()
        a, b = req(row=1), req(row=2)
        q.admit(a)
        q.admit(b)
        q.remove(a)
        assert list(q.reads) == [b]

    def test_remove_unknown_raises(self):
        q = VaultQueues()
        with pytest.raises(ValueError):
            q.remove(req())


class TestViews:
    def test_count_row_reads(self):
        q = VaultQueues()
        q.admit(req(bank=1, row=5))
        q.admit(req(bank=1, row=5))
        q.admit(req(bank=1, row=6))
        q.admit(req(bank=1, row=5, write=True))  # writes not counted
        assert q.count_row_reads(1, 5) == 2

    def test_oldest_read(self):
        q = VaultQueues()
        assert q.oldest_read() is None
        a = req(row=1)
        q.admit(a)
        q.admit(req(row=2))
        assert q.oldest_read() is a

    def test_len_includes_staging(self):
        q = VaultQueues(read_depth=1, write_depth=1)
        for _ in range(3):
            q.admit(req())
        assert len(q) == 3
        assert q.total_pending == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            VaultQueues(read_depth=0)
