"""Coverage for statistics resets, result extras, and the report CLI."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.spec import BenchmarkProfile
from repro.workloads.synthetic import TraceGenerator, generate_trace


@pytest.fixture
def traces():
    return [generate_trace("gems", 400, seed=i, core_id=i) for i in range(2)]


class TestResets:
    def test_device_reset_zeroes_everything(self, traces):
        sysm = System(traces, SystemConfig(scheme="camps-mod"))
        sysm.run()
        sysm.device.reset_statistics()
        assert sysm.device.demand_accesses == 0
        assert sysm.device.row_conflicts == 0
        assert sysm.device.buffer_hits == 0
        assert sysm.device.prefetches_issued() == 0
        e = sysm.device.energy
        assert e.acts == e.pres == e.link_flits == 0

    def test_host_reset_keeps_outstanding_tracking(self, traces):
        sysm = System(traces, SystemConfig(scheme="base"))
        sysm.run()
        before = sysm.host.outstanding
        sysm.host.reset_statistics()
        assert sysm.host.outstanding == before  # counters preserved
        assert sysm.host.latency_hist.n == 0  # histograms cleared

    def test_controller_reset_preserves_buffer_contents(self, traces):
        sysm = System(traces, SystemConfig(scheme="base"))
        sysm.run()
        vc = next(v for v in sysm.device.vaults if v.buffer and len(v.buffer))
        resident = len(vc.buffer)
        vc.reset_statistics()
        assert len(vc.buffer) == resident  # rows stay
        assert vc.buffer.hits == 0
        assert vc.buffer.check_recency_invariant()

    def test_bank_reset_preserves_state(self):
        from repro.dram.bank import AccessKind, Bank
        from repro.dram.timing import DRAMTimings

        b = Bank(0, DRAMTimings(), record_commands=True)
        b.access(AccessKind.READ, 5, 0)
        open_row, busy = b.open_row, b.busy_until
        b.reset_counters()
        assert (b.open_row, b.busy_until) == (open_row, busy)
        assert b.acts == 0 and b.command_log == []


class TestResultExtras:
    def test_camps_decision_breakdown(self, traces):
        r = System(traces, SystemConfig(scheme="camps-mod")).run()
        assert "utilization_prefetches" in r.extra
        assert "conflict_prefetches" in r.extra
        assert (
            r.extra["utilization_prefetches"] + r.extra["conflict_prefetches"]
            == r.prefetches_issued
        )

    def test_mmd_degree_exposed(self, traces):
        r = System(traces, SystemConfig(scheme="mmd")).run()
        degrees = r.extra["mmd_final_degrees"]
        assert len(degrees) == HMCConfig().vaults
        assert all(1 <= d <= 15 for d in degrees)

    def test_base_has_no_camps_extras(self, traces):
        r = System(traces, SystemConfig(scheme="base")).run()
        assert "utilization_prefetches" not in r.extra

    def test_samples_present_when_enabled(self, traces):
        r = System(
            traces, SystemConfig(scheme="camps-mod", sample_interval=500)
        ).run()
        s = r.extra["samples"]
        assert {"queue_depth", "buffer_occupancy", "host_outstanding"} <= set(s)
        assert all(v["n"] > 0 for v in s.values())

    def test_samples_absent_by_default(self, traces):
        r = System(traces, SystemConfig(scheme="camps-mod")).run()
        assert "samples" not in r.extra


class TestReportCLI:
    def test_report_to_stdout(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c.json"))
        rc = main(["report", "--mixes", "LM4", "--refs", "200", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# CAMPS reproduction report" in out

    def test_report_to_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "c.json"))
        out_file = tmp_path / "report.md"
        rc = main([
            "report", "--mixes", "LM4", "--refs", "200",
            "--out", str(out_file), "--quiet",
        ])
        assert rc == 0
        assert "## Headline comparison" in out_file.read_text()


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        mpki=st.floats(min_value=1.0, max_value=60.0),
        wf=st.floats(min_value=0.0, max_value=0.6),
        streams=st.integers(1, 8),
        burst=st.integers(1, 4),
        lpv=st.integers(1, 16),
        seed=st.integers(0, 10_000),
    )
    def test_arbitrary_profiles_generate_valid_traces(
        self, mpki, wf, streams, burst, lpv, seed
    ):
        prof = BenchmarkProfile(
            "fuzz", mpki, wf, 0.6, 0.25, 0.15, streams, burst, lpv, 1 << 15
        )
        gen = TraceGenerator(prof, seed=seed, core_id=seed % 4)
        trace = gen.generate(300)
        assert len(trace) == 300
        assert trace.gaps.min() >= 0
        # every address decodes to legal cube coordinates
        from repro.hmc.address import AddressMapping

        m = AddressMapping(HMCConfig())
        v, b, r, c = m.decode_many(trace.addrs)
        cfg = HMCConfig()
        assert 0 <= v.min() and v.max() < cfg.vaults
        assert 0 <= b.min() and b.max() < cfg.banks_per_vault
        assert 0 <= c.min() and c.max() < cfg.lines_per_row
