"""Unit tests for fabric topologies and static routing."""

import pytest

from repro.fabric.topology import (
    MAX_CUBES,
    TOPOLOGIES,
    FabricConfig,
    Topology,
    parse_topology,
)
from repro.hmc.config import HMCConfig


class TestParseTopology:
    def test_spec_with_count(self):
        assert parse_topology("chain:4") == ("chain", 4)
        assert parse_topology("ring:5") == ("ring", 5)
        assert parse_topology("star:8") == ("star", 8)

    def test_bare_name_means_one_cube(self):
        for name in TOPOLOGIES:
            assert parse_topology(name) == (name, 1)

    def test_case_and_whitespace_tolerant(self):
        assert parse_topology(" Chain:2 ") == ("chain", 2)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            parse_topology("mesh:4")

    def test_bad_count(self):
        with pytest.raises(ValueError, match="bad cube count"):
            parse_topology("chain:four")

    def test_count_out_of_range(self):
        with pytest.raises(ValueError, match="between 1 and"):
            parse_topology("chain:0")
        with pytest.raises(ValueError, match="between 1 and"):
            parse_topology(f"chain:{MAX_CUBES + 1}")


class TestFabricConfig:
    def test_from_spec_round_trips(self):
        cfg = FabricConfig.from_spec("ring:3")
        assert (cfg.topology, cfg.cubes) == ("ring", 3)
        assert cfg.spec == "ring:3"

    def test_defaults(self):
        cfg = FabricConfig()
        assert cfg.cubes == 1
        assert cfg.hop_latency == 6
        assert cfg.hop_energy_pj == 48.0
        assert isinstance(cfg.hmc, HMCConfig)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown topology"):
            FabricConfig(topology="mesh")
        with pytest.raises(ValueError, match="between 1 and"):
            FabricConfig(cubes=0)
        with pytest.raises(ValueError, match="hop_latency"):
            FabricConfig(hop_latency=-1)

    def test_with_hmc(self):
        small = HMCConfig(vaults=4, banks_per_vault=4)
        cfg = FabricConfig.from_spec("chain:2").with_hmc(small)
        assert cfg.hmc.vaults == 4
        assert cfg.cubes == 2


class TestRouting:
    def test_chain_edges_and_hops(self):
        t = Topology(FabricConfig.from_spec("chain:4"))
        assert t.edges == [(0, 1), (1, 2), (2, 3)]
        assert t.host_hops == [1, 2, 3, 4]

    def test_chain_next_hop_walks_the_chain(self):
        t = Topology(FabricConfig.from_spec("chain:4"))
        assert t.next_hop[0][3] == 1
        assert t.next_hop[1][3] == 2
        assert t.next_hop[3][0] == 2
        assert t.next_hop[2][2] == 2  # already home

    def test_ring_takes_shorter_direction(self):
        t = Topology(FabricConfig.from_spec("ring:5"))
        assert (0, 4) in t.edges
        assert t.next_hop[0][4] == 4  # one hop backwards, not four forward
        assert t.next_hop[0][2] == 1
        assert t.host_hops == [1, 2, 3, 3, 2]

    def test_ring_of_two_has_single_edge(self):
        t = Topology(FabricConfig.from_spec("ring:2"))
        assert t.edges == [(0, 1)]

    def test_star_has_no_intercube_edges(self):
        t = Topology(FabricConfig.from_spec("star:6"))
        assert t.edges == []
        assert t.host_hops == [1] * 6
        for c in range(6):
            assert t.entry_cube(c) == c

    def test_chain_entry_is_cube_zero(self):
        t = Topology(FabricConfig.from_spec("chain:4"))
        for c in range(4):
            assert t.entry_cube(c) == 0

    def test_path_length_symmetric(self):
        # star cubes have no inter-cube edges, so only chain/ring route
        # cube-to-cube paths
        for spec in ("chain:5", "ring:6"):
            t = Topology(FabricConfig.from_spec(spec))
            for a in range(t.cubes):
                for b in range(t.cubes):
                    assert t.path_length(a, b) == t.path_length(b, a)

    def test_star_routes_only_self_paths(self):
        t = Topology(FabricConfig.from_spec("star:4"))
        for c in range(4):
            assert t.path_length(c, c) == 0
        with pytest.raises(RuntimeError, match="routing loop"):
            t.path_length(0, 1)

    def test_single_cube_degenerates(self):
        for name in TOPOLOGIES:
            t = Topology(FabricConfig.from_spec(f"{name}:1"))
            assert t.edges == []
            assert t.host_hops == [1]

    def test_describe(self):
        d = Topology(FabricConfig.from_spec("ring:3")).describe()
        assert d["topology"] == "ring"
        assert d["cubes"] == 3
        assert d["host_hops"] == [1, 2, 2]
