"""Tests for the engine backend seam (repro.sim.backend).

mypyc is not a dependency, so in most environments the compiled artifact
does not exist: the contract under test is the *fallback* - ``compiled``
degrades transparently to pure Python with a one-line notice, ``auto``
degrades silently, unknown values fail loudly, and results are identical
across backend selections (trivially when both resolve to python; CI
asserts the same digests when a compiled artifact is present).
"""

from __future__ import annotations

import pytest

from repro.sim import backend
from repro.sim.engine import Engine
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix


def test_default_is_python():
    info = backend.resolve(env={})
    assert info == backend.BackendInfo("python", "python")
    assert backend.engine_class(env={}) is Engine


def test_explicit_python():
    info = backend.resolve(env={backend.BACKEND_ENV: "python"})
    assert info.active == "python" and info.notice is None


def test_compiled_falls_back_with_notice():
    info = backend.resolve(env={backend.BACKEND_ENV: "compiled"})
    if info.active == "compiled":
        pytest.skip("compiled artifact present in this environment")
    assert info.requested == "compiled"
    assert info.active == "python"
    assert info.notice is not None and "falling back" in info.notice
    # the seam still hands out a working kernel
    assert backend.engine_class(env={backend.BACKEND_ENV: "compiled"}).__name__ == "Engine"


def test_auto_is_silent():
    info = backend.resolve(env={backend.BACKEND_ENV: "auto"})
    assert info.notice is None
    assert info.active in ("python", "compiled")


def test_unknown_backend_raises():
    with pytest.raises(ValueError):
        backend.resolve(env={backend.BACKEND_ENV: "cython"})


def test_env_normalization():
    info = backend.resolve(env={backend.BACKEND_ENV: "  PYTHON "})
    assert info.requested == "python"
    info = backend.resolve(env={backend.BACKEND_ENV: ""})
    assert info.requested == "python"


def test_backend_parity_digest(monkeypatch):
    """Results are identical across backend selections.  When no compiled
    artifact exists both selections resolve to the same kernel, making
    this trivially true; when one exists this is the real parity check."""

    def run_with(value):
        monkeypatch.setenv(backend.BACKEND_ENV, value)
        traces = mix("MX1", 120, seed=2)
        r = System(traces, SystemConfig(scheme="camps"), workload="MX1").run()
        return (r.cycles, r.core_ipc, r.row_conflicts, r.buffer_hits,
                r.extra["events_fired"])

    assert run_with("python") == run_with("compiled")


def test_build_without_mypyc_reports_gracefully(capsys):
    try:
        import mypyc  # noqa: F401
    except ImportError:
        assert backend.build(verbose=True) is False
        out = capsys.readouterr().out
        assert "mypyc is not installed" in out
    else:
        pytest.skip("mypyc available; build path exercised by CI instead")
