"""Documentation anti-rot checks.

Docs reference modules, schemes, env vars and files; these tests verify the
referenced things exist so the docs cannot silently drift from the code.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOCS = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "EXPERIMENTS.md",
    REPO / "docs" / "API.md",
    REPO / "docs" / "INTERNALS.md",
    REPO / "CONTRIBUTING.md",
    REPO / "CHANGELOG.md",
]


class TestDocsExist:
    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_doc_present_and_nonempty(self, path):
        assert path.exists(), path
        assert len(path.read_text()) > 500

    def test_design_declares_paper_identity_check(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Paper identity check" in text
        assert "10.1145/3225058.3225112" in text


class TestModuleReferences:
    def _module_refs(self, text):
        # `repro.foo.bar` style references in backticks or prose
        return set(re.findall(r"\brepro(?:\.[a-z_]+)+", text))

    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_referenced_modules_import(self, path):
        text = path.read_text()
        for ref in self._module_refs(text):
            # trim trailing attribute names until something imports
            parts = ref.split(".")
            imported = False
            for k in range(len(parts), 0, -1):
                try:
                    importlib.import_module(".".join(parts[:k]))
                    imported = True
                    break
                except ImportError:
                    continue
            assert imported, f"{path.name} references unimportable {ref}"

    def test_readme_scheme_names_registered(self):
        from repro.core.schemes import SCHEMES

        text = (REPO / "README.md").read_text()
        for name in ("base", "base-hit", "mmd", "camps", "camps-mod", "camps-fdp"):
            assert name in text
            assert name in SCHEMES

    def test_file_references_exist(self):
        """Paths mentioned in DESIGN.md's experiment index must exist."""
        text = (REPO / "DESIGN.md").read_text()
        for ref in re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", text):
            assert (REPO / ref).exists(), ref
        for ref in re.findall(r"`(repro/[a-z_/]+\.py)`", text):
            assert (REPO / "src" / ref).exists(), ref

    def test_examples_referenced_in_readme_exist(self):
        text = (REPO / "README.md").read_text()
        for ref in re.findall(r"(examples/[a-z_]+\.py)", text):
            assert (REPO / ref).exists(), ref

    def test_env_vars_documented_and_used(self):
        readme = (REPO / "README.md").read_text()
        runner = (REPO / "src/repro/experiments/runner.py").read_text()
        for var in ("REPRO_REFS", "REPRO_SEED", "REPRO_CACHE"):
            assert var in readme
            assert var in runner
        assert "REPRO_MIXES" in readme
        assert "REPRO_MIXES" in (REPO / "benchmarks/conftest.py").read_text()
