"""Unit tests for the comparison schemes: BASE, BASE-HIT, MMD."""

import pytest

from repro.core.baselines import (
    BaseHitPrefetcher,
    BasePrefetcher,
    MMDParams,
    MMDPrefetcher,
)
from repro.core.buffer import LRUPolicy, PrefetchBuffer
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


class StubController:
    """Just enough vault controller for scheme unit tests."""

    def __init__(self, config):
        self.buffer = PrefetchBuffer(
            config.pf_buffer_entries, config.lines_per_row, LRUPolicy()
        )
        self._pending = {}

    def pending_row_requests(self, bank, row):
        return self._pending.get((bank, row), 0)


@pytest.fixture
def cfg():
    return HMCConfig()


class TestBase:
    def test_prefetches_on_every_outcome(self, cfg):
        pf = BasePrefetcher(0, cfg)
        for outcome in RowOutcome:
            actions = pf.on_demand_access(0, 5, 2, False, outcome, 0)
            assert len(actions) == 1
            assert actions[0].line_mask == pf.full_mask
            assert actions[0].precharge_after

    def test_seeds_served_line(self, cfg):
        pf = BasePrefetcher(0, cfg)
        a = pf.on_demand_access(0, 5, 9, False, RowOutcome.EMPTY, 0)[0]
        assert a.seed_ref_mask == 1 << 9

    def test_uses_lru(self, cfg):
        assert isinstance(BasePrefetcher(0, cfg).make_policy(), LRUPolicy)


class TestBaseHit:
    def test_no_trigger_without_queue_hits(self, cfg):
        pf = BaseHitPrefetcher(0, cfg)
        pf.bind(StubController(cfg))
        assert pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0) == []

    def test_triggers_at_threshold(self, cfg):
        pf = BaseHitPrefetcher(0, cfg)
        ctl = StubController(cfg)
        pf.bind(ctl)
        ctl._pending[(0, 5)] = 2
        actions = pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)
        assert len(actions) == 1
        assert actions[0].precharge_after

    def test_below_threshold_no_trigger(self, cfg):
        pf = BaseHitPrefetcher(0, cfg)
        ctl = StubController(cfg)
        pf.bind(ctl)
        ctl._pending[(0, 5)] = 1
        assert pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0) == []

    def test_other_row_queue_hits_ignored(self, cfg):
        pf = BaseHitPrefetcher(0, cfg)
        ctl = StubController(cfg)
        pf.bind(ctl)
        ctl._pending[(0, 6)] = 5
        assert pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0) == []

    def test_requires_bind(self, cfg):
        pf = BaseHitPrefetcher(0, cfg)
        with pytest.raises(AssertionError):
            pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)

    def test_threshold_validation(self, cfg):
        with pytest.raises(ValueError):
            BaseHitPrefetcher(0, cfg, queue_hit_threshold=0)


class TestMMDDecision:
    def test_prefetches_forward_degree_lines(self, cfg):
        pf = MMDPrefetcher(0, cfg, params=MMDParams(initial_degree=4))
        pf.bind(StubController(cfg))
        a = pf.on_demand_access(0, 5, 2, False, RowOutcome.HIT, 0)[0]
        assert a.line_mask == 0b1111 << 3  # columns 3..6
        assert not a.precharge_after

    def test_no_wraparound(self, cfg):
        pf = MMDPrefetcher(0, cfg, params=MMDParams(initial_degree=4))
        pf.bind(StubController(cfg))
        actions = pf.on_demand_access(0, 5, 14, False, RowOutcome.HIT, 0)
        assert actions[0].line_mask == 1 << 15  # only column 15, no wrap

    def test_last_column_yields_nothing(self, cfg):
        pf = MMDPrefetcher(0, cfg)
        pf.bind(StubController(cfg))
        assert pf.on_demand_access(0, 5, 15, False, RowOutcome.HIT, 0) == []

    def test_skips_lines_already_buffered(self, cfg):
        pf = MMDPrefetcher(0, cfg, params=MMDParams(initial_degree=2))
        ctl = StubController(cfg)
        pf.bind(ctl)
        ctl.buffer.insert(0, 5, 0b11000, 0, 0)  # columns 3,4 staged
        a = pf.on_demand_access(0, 5, 2, False, RowOutcome.HIT, 0)[0]
        assert a.line_mask == 0b1100000  # columns 5,6 instead

    def test_fully_staged_row_yields_nothing(self, cfg):
        pf = MMDPrefetcher(0, cfg)
        ctl = StubController(cfg)
        pf.bind(ctl)
        ctl.buffer.insert(0, 5, 0xFFFF, 0, 0)
        assert pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0) == []


class TestMMDFeedback:
    def _drive_epoch(self, pf, ctl, used_fraction, epoch_lines):
        """Simulate one epoch's worth of insertions with given usefulness."""
        buf = ctl.buffer
        row = 1000 + pf.degree  # fresh rows each call
        inserted = 0
        while inserted < epoch_lines:
            buf.insert(0, row, 0xFFFF, 0, 0)
            for col in range(int(16 * used_fraction)):
                buf.lookup(0, row, col, False)
            inserted += 16
            row += 1

    def test_degree_doubles_on_high_accuracy(self, cfg):
        params = MMDParams(initial_degree=4, epoch_lines=64)
        pf = MMDPrefetcher(0, cfg, params=params)
        ctl = StubController(cfg)
        pf.bind(ctl)
        self._drive_epoch(pf, ctl, used_fraction=0.9, epoch_lines=64)
        pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)
        assert pf.degree == 8
        assert pf.degree_increases == 1

    def test_degree_halves_on_low_accuracy(self, cfg):
        params = MMDParams(initial_degree=4, epoch_lines=64)
        pf = MMDPrefetcher(0, cfg, params=params)
        ctl = StubController(cfg)
        pf.bind(ctl)
        self._drive_epoch(pf, ctl, used_fraction=0.05, epoch_lines=64)
        pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)
        assert pf.degree == 2
        assert pf.degree_decreases == 1

    def test_degree_respects_bounds(self, cfg):
        params = MMDParams(initial_degree=8, min_degree=8, max_degree=8, epoch_lines=32)
        pf = MMDPrefetcher(0, cfg, params=params)
        ctl = StubController(cfg)
        pf.bind(ctl)
        self._drive_epoch(pf, ctl, 0.9, 32)
        pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)
        assert pf.degree == 8

    def test_mid_accuracy_keeps_degree(self, cfg):
        params = MMDParams(initial_degree=4, epoch_lines=64)
        pf = MMDPrefetcher(0, cfg, params=params)
        ctl = StubController(cfg)
        pf.bind(ctl)
        self._drive_epoch(pf, ctl, 0.45, 64)
        pf.on_demand_access(0, 5, 0, False, RowOutcome.HIT, 0)
        assert pf.degree == 4

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MMDParams(initial_degree=0)
        with pytest.raises(ValueError):
            MMDParams(min_degree=8, initial_degree=4)
        with pytest.raises(ValueError):
            MMDParams(low_watermark=0.9, high_watermark=0.1)
        with pytest.raises(ValueError):
            MMDParams(epoch_lines=0)

    def test_describe_shows_degree(self, cfg):
        pf = MMDPrefetcher(0, cfg)
        assert "degree=4" in pf.describe()
