"""Unit tests for the MSHR file."""

import pytest

from repro.cpu.mshr import MSHRFile
from repro.request import MemoryRequest


def req(addr=0):
    return MemoryRequest(addr, False)


class TestAllocation:
    def test_allocate_and_lookup(self):
        m = MSHRFile(4)
        e = m.allocate(0x100, req(0x100), now=5)
        assert m.lookup(0x100) is e
        assert e.issued_cycle == 5
        assert m.primary_misses == 1

    def test_duplicate_allocation_rejected(self):
        m = MSHRFile(4)
        m.allocate(0x100, req(), 0)
        with pytest.raises(ValueError):
            m.allocate(0x100, req(), 0)

    def test_full_allocation_rejected(self):
        m = MSHRFile(1)
        m.allocate(0x100, req(), 0)
        assert m.full
        with pytest.raises(RuntimeError):
            m.allocate(0x200, req(), 0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestMerging:
    def test_merge_attaches_waiter(self):
        m = MSHRFile(4)
        m.allocate(0x100, req(), 0)
        calls = []
        assert m.merge(0x100, calls.append)
        assert m.secondary_misses == 1
        waiters = m.complete(0x100, req())
        assert waiters == [calls.append]

    def test_merge_miss_returns_false(self):
        m = MSHRFile(4)
        assert not m.merge(0x100, lambda r: None)
        assert m.secondary_misses == 0

    def test_multiple_waiters_order_preserved(self):
        m = MSHRFile(4)
        m.allocate(0x100, req(), 0)
        w1, w2 = (lambda r: 1), (lambda r: 2)
        m.merge(0x100, w1)
        m.merge(0x100, w2)
        assert m.complete(0x100, req()) == [w1, w2]


class TestCompletion:
    def test_complete_frees_slot(self):
        m = MSHRFile(1)
        m.allocate(0x100, req(), 0)
        m.complete(0x100, req())
        assert not m.full
        assert len(m) == 0
        m.allocate(0x200, req(), 0)  # no error

    def test_complete_unknown_raises(self):
        m = MSHRFile(4)
        with pytest.raises(KeyError):
            m.complete(0x999, req())

    def test_stall_counter(self):
        m = MSHRFile(1)
        m.note_stall()
        m.note_stall()
        assert m.stalls == 2
