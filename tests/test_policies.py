"""Unit tests for the buffer replacement policies (paper Section 3.2)."""

import pytest

from repro.core.buffer import (
    BufferEntry,
    LRUPolicy,
    PrefetchBuffer,
    UtilizationRecencyPolicy,
)

FULL = 0xFFFF


def entry(row, recency, served_lines=0, seed=0, valid=FULL):
    e = BufferEntry(0, row, valid, 0, 0)
    e.recency = recency
    for c in range(served_lines):
        e.served_mask |= 1 << c
        e.ref_mask |= 1 << c
        e.accesses += 1
    e.seed_ref(seed)
    return e


class TestLRU:
    def test_min_recency_evicted(self):
        entries = [entry(1, 3), entry(2, 0), entry(3, 2)]
        assert LRUPolicy().choose_victim(entries, 16).row == 2

    def test_ignores_utilization(self):
        hot = entry(1, 0, served_lines=16)
        cold = entry(2, 3, served_lines=0)
        assert LRUPolicy().choose_victim([hot, cold], 16).row == 1


class TestUtilizationRecency:
    def test_fully_consumed_evicted_first(self):
        done = entry(1, 15, served_lines=16)  # MRU but fully consumed
        fresh = entry(2, 0, served_lines=0)
        p = UtilizationRecencyPolicy()
        assert p.choose_victim([fresh, done], 16).row == 1

    def test_min_sum_eviction(self):
        p = UtilizationRecencyPolicy(recency_weight=1)
        a = entry(1, 5, served_lines=2)  # sum 7
        b = entry(2, 1, served_lines=3)  # sum 4 -> victim
        c = entry(3, 10, served_lines=0)  # sum 10
        assert p.choose_victim([a, b, c], 16).row == 2

    def test_tie_breaks_to_lower_utilization(self):
        p = UtilizationRecencyPolicy(recency_weight=1)
        a = entry(1, 0, served_lines=4)  # sum 4, util 4
        b = entry(2, 4, served_lines=0)  # sum 4, util 0 -> victim
        assert p.choose_victim([a, b], 16).row == 2

    def test_recency_weight_scales(self):
        # With weight 2, recency dominates: the stale high-util row loses.
        stale_hot = entry(1, 1, served_lines=6)  # 6 + 2*1 = 8
        fresh_cold = entry(2, 5, served_lines=0)  # 0 + 2*5 = 10
        p = UtilizationRecencyPolicy(recency_weight=2)
        assert p.choose_victim([stale_hot, fresh_cold], 16).row == 1
        # With weight 1 paper-style the cold row loses instead (5 < 7).
        p1 = UtilizationRecencyPolicy(recency_weight=1)
        assert p1.choose_victim([stale_hot, fresh_cold], 16).row == 2

    def test_seeded_utilization_counts(self):
        p = UtilizationRecencyPolicy(recency_weight=1)
        seeded = entry(1, 0, seed=0b1111)  # util 4, sum 4
        cold = entry(2, 2)  # sum 2 -> victim
        assert p.choose_victim([seeded, cold], 16).row == 2

    def test_seed_plus_served_reaches_fully_consumed(self):
        e = entry(1, 7, served_lines=8, seed=0xFF00)
        assert e.fully_consumed(16)
        p = UtilizationRecencyPolicy()
        assert p.choose_victim([e, entry(2, 0)], 16).row == 1


class TestPolicyEndToEnd:
    def test_mod_keeps_high_util_under_pollution(self):
        """A utilization-rich row must survive a pollution flood that would
        evict it under LRU - the paper's motivating case for CAMPS-MOD."""
        lru = PrefetchBuffer(4, 16, LRUPolicy())
        mod = PrefetchBuffer(4, 16, UtilizationRecencyPolicy())
        for buf in (lru, mod):
            buf.insert(0, 100, FULL, 0, 0)
            for col in range(8):  # hot row accumulates utilization
                buf.lookup(0, 100, col, False)
            for i, row in enumerate([1, 2, 3, 4, 5, 6]):  # pollution flood
                buf.insert(0, row, FULL, 0, 0)
        assert (0, 100) not in lru  # LRU lost the hot row
        assert (0, 100) in mod  # MOD kept it

    def test_mod_drains_fully_consumed_before_pollution(self):
        mod = PrefetchBuffer(2, 4, UtilizationRecencyPolicy())
        mod.insert(0, 1, 0b1111, 0, 0)
        for col in range(4):
            mod.lookup(0, 1, col, False)  # fully consumed
        mod.insert(0, 2, 0b1111, 0, 0)
        victim = mod.insert(0, 3, 0b1111, 0, 0)
        assert victim.row == 1  # consumed row left, fresh row 2 kept
