"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.timing import DRAMTimings
from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.sim.engine import Engine


@pytest.fixture
def config() -> HMCConfig:
    """The paper's Table I configuration."""
    return HMCConfig()


@pytest.fixture
def small_config() -> HMCConfig:
    """A shrunken cube for fast integration tests: 4 vaults x 4 banks."""
    return HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=4)


@pytest.fixture
def timings() -> DRAMTimings:
    return DRAMTimings()


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def mapping(config: HMCConfig) -> AddressMapping:
    return AddressMapping(config)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_trace_arrays(addrs, writes=None, gap=4):
    """Build (gaps, addrs, writes) arrays from a list of addresses."""
    n = len(addrs)
    gaps = np.full(n, gap, dtype=np.int64)
    a = np.array(addrs, dtype=np.int64)
    w = np.zeros(n, dtype=bool) if writes is None else np.array(writes, dtype=bool)
    return gaps, a, w
