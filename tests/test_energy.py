"""Unit tests for the event-count energy model."""

import pytest

from repro.dram.bank import AccessKind, Bank
from repro.dram.energy import EnergyModel, EnergyParams
from repro.dram.timing import DRAMTimings


class TestParams:
    def test_defaults_ordering(self):
        p = EnergyParams()
        # activation dominates, buffer access is cheapest dynamic op
        assert p.act_pj > p.row_tsv_pj > p.read_line_pj > p.buffer_access_pj

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(act_pj=-1)


class TestCharging:
    def test_charge_banks_pulls_counters(self):
        t = DRAMTimings()
        b = Bank(0, t)
        b.access(AccessKind.READ, 1, 0)  # ACT + RD
        b.access(AccessKind.WRITE, 2, 0)  # PRE + ACT + WR
        b.fetch_row(2, b.busy_until)  # ROWF + PRE
        em = EnergyModel()
        em.charge_banks([b])
        assert em.acts == 2
        assert em.pres == 2
        assert em.line_reads == 1
        assert em.line_writes == 1
        assert em.row_transfers == 1

    def test_prefetch_line_reads_counted_as_reads(self):
        t = DRAMTimings()
        b = Bank(0, t)
        b.access(AccessKind.READ, 1, 0)
        b.fetch_lines(1, 4, b.busy_until)
        em = EnergyModel()
        em.charge_banks([b])
        assert em.line_reads == 1 + 4

    def test_direct_charges(self):
        em = EnergyModel()
        em.charge_buffer_access(3)
        em.charge_link_flits(10)
        em.charge_row_transfer()
        assert em.buffer_accesses == 3
        assert em.link_flits == 10
        assert em.row_transfers == 1

    def test_set_cycles_validation(self):
        em = EnergyModel()
        with pytest.raises(ValueError):
            em.set_cycles(-1)


class TestTotals:
    def test_breakdown_sums_to_total(self):
        em = EnergyModel()
        em.acts, em.pres, em.line_reads = 10, 10, 50
        em.set_cycles(1000)
        assert em.total_pj() == pytest.approx(sum(em.breakdown_pj().values()))

    def test_dynamic_excludes_background(self):
        em = EnergyModel()
        em.acts = 5
        em.set_cycles(10_000)
        assert em.dynamic_pj() == pytest.approx(5 * em.params.act_pj)
        assert em.total_pj() > em.dynamic_pj()

    def test_empty_model_only_background(self):
        em = EnergyModel()
        em.set_cycles(100)
        assert em.total_pj() == pytest.approx(
            100 * em.params.background_pj_per_cycle
        )

    def test_more_activity_more_energy(self):
        a, b = EnergyModel(), EnergyModel()
        a.acts = 1
        b.acts = 100
        assert b.total_pj() > a.total_pj()

    def test_custom_params_respected(self):
        em = EnergyModel(EnergyParams(act_pj=2.0, background_pj_per_cycle=0.0))
        em.acts = 3
        assert em.total_pj() == pytest.approx(6.0)
