"""Tests for multi-seed aggregation."""

import pytest

from repro.experiments.runner import ExperimentConfig, ResultCache
from repro.experiments.seeds import SeededCell, run_seeded


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("c") / "cache.json")
    cfg = ExperimentConfig(refs_per_core=250, seed=1)
    return run_seeded(
        ["LM4"], ["base", "camps-mod"], cfg, seeds=(1, 2, 3), cache=cache
    )


class TestSeededSpeedups:
    def test_structure(self, seeded):
        assert seeded.seeds == [1, 2, 3]
        assert set(seeded.per_workload) == {"LM4"}
        cell = seeded.per_workload["LM4"]["camps-mod"]
        assert len(cell.values) == 3
        assert cell.low <= cell.mean <= cell.high

    def test_baseline_exactly_one_all_seeds(self, seeded):
        cell = seeded.per_workload["LM4"]["base"]
        assert cell.mean == pytest.approx(1.0)
        assert cell.std == pytest.approx(0.0)

    def test_avg_aggregates_per_seed(self, seeded):
        avg = seeded.avg("camps-mod")
        assert len(avg.values) == 3
        assert min(avg.values) <= avg.mean <= max(avg.values)

    def test_text_renders(self, seeded):
        text = seeded.text()
        assert "LM4" in text and "+/-" in text and "AVG" in text
        assert "ordering stable" in text

    def test_ordering_stability_api(self, seeded):
        assert isinstance(seeded.ordering_stable(), bool)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seeded(["LM4"], ["base"], seeds=())

    def test_cell_values(self):
        c = SeededCell(1.5, 0.1, (1.4, 1.5, 1.6))
        assert c.low == pytest.approx(1.4)
        assert c.high == pytest.approx(1.6)
