"""Unit tests for the three-level cache hierarchy."""

import pytest

from repro.cpu.cache import CacheParams
from repro.cpu.hierarchy import CacheHierarchy, HierarchyParams
from repro.request import MemoryRequest
from repro.sim.engine import Engine


@pytest.fixture
def small_params():
    """Small caches so evictions are easy to provoke."""
    return HierarchyParams(
        l1=CacheParams("L1", 512, 2, 64, 2),
        l2=CacheParams("L2", 1024, 2, 64, 6),
        l3=CacheParams("L3", 4096, 4, 64, 20),
        mshr_capacity=4,
    )


@pytest.fixture
def rig(small_params):
    eng = Engine()
    sent = []

    def send(req):
        sent.append(req)
        # immediate-completion memory: respond next cycle
        if not req.is_write:
            eng.schedule(1, req.callback, req)

    h = CacheHierarchy(small_params, num_cores=2, engine=eng, send_fn=send)
    return eng, h, sent


class TestLookupPath:
    def test_miss_goes_to_memory(self, rig):
        eng, h, sent = rig
        res = h.access(0, 0x10000, False, on_fill=lambda r: None)
        assert res.level == "MEM"
        eng.run()
        assert len(sent) == 1
        assert h.memory_reads == 1

    def test_fill_installs_all_levels(self, rig):
        eng, h, sent = rig
        h.access(0, 0x10000, False)
        eng.run()
        assert h.l1[0].contains(0x10000)
        assert h.l2[0].contains(0x10000)
        assert h.l3.contains(0x10000)

    def test_l1_hit_after_fill(self, rig):
        eng, h, sent = rig
        h.access(0, 0x10000, False)
        eng.run()
        res = h.access(0, 0x10000, False)
        assert res.level == "L1"
        assert res.latency == h.params.l1_latency

    def test_l2_hit_after_l1_eviction(self, rig):
        eng, h, sent = rig
        h.access(0, 0x10000, False)
        eng.run()
        # displace the line from tiny L1 (512 B, 2-way, 4 sets)
        for i in range(1, 5):
            h.access(0, 0x10000 + i * 4 * 64, False)
            eng.run()
        res = h.access(0, 0x10000, False)
        assert res.level in ("L2", "L3")

    def test_l3_shared_across_cores(self, rig):
        eng, h, sent = rig
        h.access(0, 0x10000, False)
        eng.run()
        res = h.access(1, 0x10000, False)  # other core: private miss, L3 hit
        assert res.level == "L3"

    def test_latencies_accumulate(self, small_params):
        p = small_params
        assert p.l1_latency == 2
        assert p.l2_latency == 8
        assert p.l3_latency == 28


class TestMSHRBehaviour:
    def test_secondary_miss_merges(self, rig):
        eng, h, sent = rig
        fills = []
        h.access(0, 0x20000, False, on_fill=fills.append)
        h.access(1, 0x20000, False, on_fill=fills.append)  # same line
        eng.run()
        assert len(sent) == 1  # single memory request
        assert len(fills) == 2  # both waiters notified

    def test_mshr_full_queues_without_loss(self, small_params):
        eng = Engine()
        sent = []

        def send(req):
            sent.append(req)
            if not req.is_write:
                eng.schedule(100, req.callback, req)

        h = CacheHierarchy(small_params, 1, eng, send)
        fills = []
        for i in range(8):  # capacity is 4
            h.access(0, 0x40000 + i * 4096, False, on_fill=fills.append)
        eng.run()
        assert len(fills) == 8
        assert h.mshrs.stalls > 0

    def test_write_miss_fetches_line(self, rig):
        eng, h, sent = rig
        h.access(0, 0x30000, True)
        eng.run()
        assert h.memory_reads == 1  # write-allocate fetch
        assert h.l1[0].is_dirty(0x30000)


class TestWritebacks:
    def test_dirty_l3_eviction_writes_memory(self, small_params):
        eng = Engine()
        sent = []

        def send(req):
            sent.append(req)
            if not req.is_write:
                eng.schedule(1, req.callback, req)

        h = CacheHierarchy(small_params, 1, eng, send)
        # dirty a line, then stream enough conflicting lines that the dirty
        # data cascades L1 -> L2 -> L3 -> memory
        h.access(0, 0x0, True)
        eng.run()
        sets = h.l3.params.num_sets
        for i in range(1, 24):
            h.access(0, i * sets * 64, False)
            eng.run()
        assert h.memory_writes >= 1
        assert any(r.is_write for r in sent)

    def test_mpki(self, rig):
        eng, h, sent = rig
        h.access(0, 0x10000, False)
        eng.run()
        assert h.mpki(1000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            h.mpki(0)

    def test_num_cores_validated(self, small_params):
        with pytest.raises(ValueError):
            CacheHierarchy(small_params, 0, Engine(), lambda r: None)
