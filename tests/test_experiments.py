"""Unit tests for the experiment runner, figures and tables."""

import os

import pytest

from repro.experiments.figures import (
    FIG5_SCHEMES,
    FIG6_SCHEMES,
    FIG9_SCHEMES,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ResultCache,
    run_cell,
    run_matrix,
)
from repro.experiments.tables import table1_text, table2_rows, table2_text
from repro.hmc.config import HMCConfig


@pytest.fixture
def tiny():
    return ExperimentConfig(refs_per_core=150, seed=1)


@pytest.fixture
def nocache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
    return ResultCache(tmp_path / "cache.json")


class TestRunner:
    def test_run_cell_produces_result(self, tiny, nocache):
        r = run_cell("LM4", "base", tiny, cache=nocache)
        assert r.workload == "LM4" and r.scheme == "base"
        assert r.cycles > 0

    def test_cache_hit_round_trip(self, tiny, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        r1 = run_cell("LM4", "base", tiny, cache=cache)
        r2 = run_cell("LM4", "base", tiny, cache=cache)
        assert r2.extra.get("cached") is True
        assert r2.cycles == r1.cycles
        assert r2.core_ipc == r1.core_ipc

    def test_cache_key_distinguishes_inputs(self, tiny):
        k1 = tiny.cache_key("HM1", "base")
        k2 = tiny.cache_key("HM1", "camps")
        k3 = ExperimentConfig(refs_per_core=151, seed=1).cache_key("HM1", "base")
        k4 = ExperimentConfig(
            refs_per_core=150, seed=1, hmc=HMCConfig(pf_buffer_entries=8)
        ).cache_key("HM1", "base")
        assert len({k1, k2, k3, k4}) == 4

    def test_env_scale_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "321")
        monkeypatch.setenv("REPRO_SEED", "9")
        cfg = ExperimentConfig()
        assert cfg.refs_per_core == 321 and cfg.seed == 9

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "lots")
        with pytest.raises(ValueError):
            ExperimentConfig()

    def test_run_matrix_covers_grid(self, tiny, nocache):
        m = run_matrix(["LM4"], ["base", "camps"], tiny, cache=nocache)
        assert ("LM4", "base") in m and ("LM4", "camps") in m


class TestFigures:
    @pytest.fixture
    def matrix(self, tiny, nocache):
        return run_matrix(
            ["HM1", "LM4"], FIG5_SCHEMES, tiny, cache=nocache
        )

    def test_figure5_structure(self, matrix):
        f = figure5(matrix)
        assert f.figure == "Figure 5"
        assert set(f.per_workload) == {"HM1", "LM4"}
        assert "AVG" in f.summary
        assert f.per_workload["HM1"]["base"] == pytest.approx(1.0)
        assert "Figure 5" in f.text()

    def test_figure6_excludes_base(self, matrix):
        f = figure6(matrix)
        assert "base" not in f.schemes
        assert set(f.schemes) == set(FIG6_SCHEMES)

    def test_figure7_bounds(self, matrix):
        f = figure7(matrix)
        for row in f.per_workload.values():
            for v in row.values():
                assert 0.0 <= v <= 1.0

    def test_figure7_line_level_variant(self, matrix):
        f = figure7(matrix, line_level=True)
        assert "line-level" in f.title

    def test_figure8_baseline_zero(self, matrix):
        f = figure8(matrix, schemes=["base", "mmd", "camps-mod"])
        assert f.per_workload["HM1"]["base"] == pytest.approx(0.0)

    def test_figure9_baseline_one(self, matrix):
        f = figure9(matrix)
        assert set(f.schemes) == set(FIG9_SCHEMES)
        assert f.per_workload["HM1"]["base"] == pytest.approx(1.0)

    def test_avg_helper(self, matrix):
        f = figure5(matrix)
        assert f.avg("base") == pytest.approx(1.0)


class TestTables:
    def test_table1_mentions_key_parameters(self):
        text = table1_text()
        for frag in ("32 vaults", "16 banks/vault", "RoRaBaVaCo", "FR-FCFS", "22"):
            assert frag in text

    def test_table2_rows_cover_all_mixes(self):
        rows = table2_rows()
        assert len(rows) == 12
        assert all(len(benches) == 8 for _, _, benches, _ in rows)

    def test_table2_measured_mpki(self):
        rows = table2_rows(measure_mpki=True, refs=500)
        _, _, _, mpki = rows[0]
        assert mpki  # non-empty
        assert all(v > 0 for v in mpki.values())

    def test_table2_text_renders(self):
        text = table2_text()
        assert "HM1" in text and "bwaves" in text
