"""Unit tests for the Row Utilization Table and Conflict Table."""

import pytest

from repro.core.tables import ConflictTable, RowUtilizationTable


class TestRUT:
    def test_empty_initially(self):
        rut = RowUtilizationTable(banks=4)
        assert rut.get(0) is None
        assert rut.occupied() == 0
        assert rut.utilization(0) == 0

    def test_record_creates_entry(self):
        rut = RowUtilizationTable(banks=4)
        util = rut.record_access(0, row=7, column=3, now=100)
        assert util == 1
        e = rut.get(0)
        assert e is not None and e.row == 7 and e.opened_at == 100

    def test_distinct_line_counting(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(0, 7, 3, 0)
        rut.record_access(0, 7, 3, 1)  # same line again
        util = rut.record_access(0, 7, 5, 2)  # new line
        assert util == 2
        assert rut.get(0).accesses == 3

    def test_raw_access_counting_mode(self):
        rut = RowUtilizationTable(banks=4, count_distinct=False)
        rut.record_access(0, 7, 3, 0)
        util = rut.record_access(0, 7, 3, 1)
        assert util == 2

    def test_new_row_resets_entry(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(0, 7, 3, 0)
        util = rut.record_access(0, 8, 1, 5)
        assert util == 1
        assert rut.get(0).row == 8

    def test_replace_returns_displaced(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(0, 7, 3, 0)
        old = rut.replace(0, 8, 10)
        assert old is not None and old.row == 7
        assert rut.get(0).row == 8

    def test_replace_same_row_returns_none(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(0, 7, 3, 0)
        assert rut.replace(0, 7, 10) is None

    def test_replace_empty_bank_returns_none(self):
        rut = RowUtilizationTable(banks=4)
        assert rut.replace(1, 8, 0) is None
        assert rut.get(1).row == 8

    def test_clear(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(2, 7, 3, 0)
        rut.clear(2)
        assert rut.get(2) is None

    def test_banks_independent(self):
        rut = RowUtilizationTable(banks=4)
        rut.record_access(0, 7, 3, 0)
        rut.record_access(1, 9, 2, 0)
        assert rut.get(0).row == 7
        assert rut.get(1).row == 9
        assert rut.occupied() == 2

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            RowUtilizationTable(banks=0)

    def test_line_mask_distinct_property(self):
        rut = RowUtilizationTable(banks=1)
        for col in [0, 5, 5, 15, 0, 3]:
            rut.record_access(0, 1, col, 0)
        assert rut.utilization(0) == 4  # {0, 5, 15, 3}


class TestCT:
    def test_insert_and_contains(self):
        ct = ConflictTable(entries=4)
        ct.insert(0, 7, now=10)
        assert (0, 7) in ct
        assert len(ct) == 1

    def test_check_and_remove_hit(self):
        ct = ConflictTable(entries=4)
        ct.insert(0, 7, 0)
        assert ct.check_and_remove(0, 7) is True
        assert (0, 7) not in ct
        assert ct.promotions == 1

    def test_check_and_remove_miss(self):
        ct = ConflictTable(entries=4)
        assert ct.check_and_remove(0, 7) is False
        assert ct.promotions == 0

    def test_lru_eviction_order(self):
        ct = ConflictTable(entries=2)
        ct.insert(0, 1, 0)
        ct.insert(0, 2, 1)
        evicted = ct.insert(0, 3, 2)
        assert evicted == (0, 1)
        assert (0, 1) not in ct and (0, 2) in ct and (0, 3) in ct

    def test_reinsert_refreshes_lru(self):
        ct = ConflictTable(entries=2)
        ct.insert(0, 1, 0)
        ct.insert(0, 2, 1)
        ct.insert(0, 1, 2)  # refresh row 1
        evicted = ct.insert(0, 3, 3)
        assert evicted == (0, 2)

    def test_reinsert_does_not_duplicate(self):
        ct = ConflictTable(entries=4)
        ct.insert(0, 1, 0)
        ct.insert(0, 1, 1)
        assert len(ct) == 1
        assert ct.insertions == 1

    def test_touch_refreshes_without_removal(self):
        ct = ConflictTable(entries=2)
        ct.insert(0, 1, 0)
        ct.insert(0, 2, 1)
        assert ct.touch(0, 1) is True
        ct.insert(0, 3, 2)
        assert (0, 1) in ct  # refreshed, row 2 evicted instead

    def test_touch_miss(self):
        ct = ConflictTable(entries=2)
        assert ct.touch(0, 1) is False

    def test_shared_across_banks(self):
        ct = ConflictTable(entries=4)
        ct.insert(0, 7, 0)
        ct.insert(1, 7, 1)  # same row id, different bank -> distinct key
        assert len(ct) == 2
        assert ct.check_and_remove(0, 7)
        assert (1, 7) in ct

    def test_eviction_counter(self):
        ct = ConflictTable(entries=1)
        ct.insert(0, 1, 0)
        ct.insert(0, 2, 1)
        assert ct.evictions == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ConflictTable(entries=0)

    def test_paper_capacity_default(self):
        assert ConflictTable().capacity == 32
