"""Simulation integrity layer: watchdog, invariants, crash dumps, and the
campaign's handling of diagnosed failures (terminal, resumable, narrated)."""

import json

import pytest

from repro.campaign import (
    CampaignOptions,
    Cell,
    Manifest,
    run_campaign,
)
from repro.experiments.runner import ExperimentConfig
from repro.sim.engine import Engine
from repro.sim.integrity import (
    CRASH_DIR_ENV,
    ForwardProgressError,
    IntegrityConfig,
    IntegrityError,
    InvariantChecker,
    InvariantViolation,
    Watchdog,
    crash_report,
    write_crash_dump,
)
from repro.system import System, SystemConfig, run_system
from repro.workloads.mixes import mix as make_mix


def _traces(refs=200, workload="HM1"):
    return make_mix(workload, refs, seed=1)


def _system(refs=200, integrity=True, crash_dump_dir=None, scheme="base"):
    return System(
        _traces(refs),
        SystemConfig(scheme=scheme, integrity=integrity, crash_dump_dir=crash_dump_dir),
        workload="HM1",
    )


class TestIntegrityConfig:
    @pytest.mark.parametrize("kwargs", [
        {"check_interval": 0}, {"stall_polls": 0}, {"last_events": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IntegrityConfig(**kwargs)


class TestWatchdog:
    def test_advancing_time_never_fires(self):
        wd = Watchdog(Engine(), IntegrityConfig(check_interval=1, stall_polls=2))
        for t in range(100):
            wd.poll(t)

    def test_wedge_raises_after_stall_polls(self):
        eng = Engine()
        wd = Watchdog(eng, IntegrityConfig(check_interval=1, stall_polls=3))
        wd.poll(5)
        wd.poll(5)
        wd.poll(5)
        with pytest.raises(ForwardProgressError) as exc_info:
            wd.poll(5)
        report = exc_info.value.report
        assert report["reason"] == "forward_progress_stall"
        assert report["now"] == 0  # diagnose reads the engine clock

    def test_progress_resets_stall_count(self):
        wd = Watchdog(Engine(), IntegrityConfig(check_interval=1, stall_polls=2))
        for _ in range(10):
            wd.poll(7)  # 1 stuck poll
            wd.poll(8)  # resets

    def test_diagnose_names_dominant_same_cycle_callback(self):
        eng = Engine()

        def spinner():
            pass

        def bystander():
            pass

        for _ in range(5):
            eng.schedule(0, spinner)
        eng.schedule(0, bystander)
        eng.schedule(10, spinner)  # future event: not part of the wedge
        cancelled = eng.schedule(0, spinner)
        cancelled.cancel()
        diagnosis = Watchdog(eng).diagnose()
        assert "spinner" in diagnosis["stuck_component"]
        assert diagnosis["same_cycle_callbacks"][diagnosis["stuck_component"]] == 5

    def test_on_poll_hook_runs_each_poll(self):
        polled = []
        wd = Watchdog(Engine(), IntegrityConfig(check_interval=1))
        wd.on_poll = polled.append
        wd.poll(1)
        wd.poll(2)
        assert polled == [1, 2]


class TestInvariantChecker:
    def test_clean_system_has_no_violations(self):
        sys_ = _system(integrity=False)
        checker = InvariantChecker(sys_)
        assert checker.check_bounds() == []
        sys_.run()
        assert checker.check_bounds() == []
        assert checker.check_conservation() == []

    def test_overstuffed_read_queue_detected(self):
        sys_ = _system(integrity=False)
        vc = sys_.device.vaults[0]
        vc.queues.reads.extend(object() for _ in range(vc.queues.read_depth + 1))
        violations = InvariantChecker(sys_).check_bounds()
        assert any("read queue" in v for v in violations)

    def test_illegal_bank_state_detected(self):
        sys_ = _system(integrity=False)
        sys_.device.vaults[0].banks[0].acts += 1  # ACT without matching row
        violations = InvariantChecker(sys_).check_bounds()
        assert any("illegal state" in v for v in violations)

    def test_bank_legality_skippable(self):
        sys_ = _system(integrity=False)
        sys_.device.vaults[0].banks[0].acts += 1
        checker = InvariantChecker(sys_, check_bank_legality=False)
        assert checker.check_bounds() == []

    def test_unretired_requests_detected(self):
        sys_ = _system(integrity=False)
        sys_.host.stats.counters["reads_sent"].value += 3  # issued, never retired
        violations = InvariantChecker(sys_).check_conservation()
        assert any("never retired" in v for v in violations)


class TestCrashDumps:
    def test_report_shape(self):
        sys_ = _system(integrity=False)
        sys_.run()
        report = crash_report(sys_, error=RuntimeError("boom"), violations=["v1"])
        assert report["kind"] == "repro.crash_dump"
        assert report["workload"] == "HM1" and report["scheme"] == "base"
        assert report["engine"]["events_fired"] > 0
        assert report["error"] == {"type": "RuntimeError", "message": "boom"}
        assert report["violations"] == ["v1"]
        assert len(report["vaults"]) == len(sys_.device.vaults)
        assert report["host"]["reads_sent"] > 0
        json.dumps(report)  # must be JSON-safe

    def test_write_dump_and_collision_suffix(self, tmp_path):
        report = {"workload": "HM1", "scheme": "base", "engine": {"now": 42}}
        first = write_crash_dump(report, str(tmp_path))
        second = write_crash_dump(report, str(tmp_path))
        assert first.endswith("crash_HM1_base_cycle42.json")
        assert second.endswith("crash_HM1_base_cycle42_1.json")
        assert json.loads((tmp_path / "crash_HM1_base_cycle42.json").read_text())

    def test_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_DIR_ENV, str(tmp_path / "dumps"))
        path = write_crash_dump({"workload": "w", "scheme": "s", "engine": {}})
        assert path.startswith(str(tmp_path / "dumps"))


class TestSystemIntegration:
    def test_clean_run_identical_with_and_without_integrity(self):
        off = run_system(_traces(), scheme="base", workload="HM1")
        on = run_system(_traces(), scheme="base", workload="HM1", integrity=True)
        assert on.cycles == off.cycles
        assert on.core_ipc == off.core_ipc
        assert on.energy_pj == off.energy_pj

    def test_livelock_raises_with_dump_naming_stuck_component(self, tmp_path):
        sys_ = _system(crash_dump_dir=str(tmp_path))

        def spin():
            sys_.engine.schedule(0, spin)

        sys_.engine.schedule(0, spin)
        with pytest.raises(ForwardProgressError) as exc_info:
            sys_.run()
        err = exc_info.value
        assert "spin" in str(err)
        assert err.report["reason"] == "forward_progress_stall"
        assert "spin" in err.report["stuck_component"]
        assert err.dump_path is not None
        dump = json.loads(open(err.dump_path).read())
        assert dump["diagnosis"]["stuck_component"] == err.report["stuck_component"]
        assert dump["engine"]["now"] == 0

    def test_callback_exception_wrapped_with_dump(self, tmp_path):
        sys_ = _system(crash_dump_dir=str(tmp_path))

        def explode():
            raise ValueError("component blew up")

        sys_.engine.schedule(1, explode)
        with pytest.raises(IntegrityError) as exc_info:
            sys_.run()
        err = exc_info.value
        assert err.report["reason"] == "engine_exception"
        assert err.report["error_type"] == "ValueError"
        assert err.dump_path and json.loads(open(err.dump_path).read())

    def test_runtime_invariant_violation_dumped(self, tmp_path):
        sys_ = _system(crash_dump_dir=str(tmp_path))
        # A stats-only corruption: the bank never did this ACT, so execution
        # proceeds normally but the legality check trips at the next poll
        # (or at check_final, whichever comes first).
        sys_.device.vaults[0].banks[0].acts += 1
        with pytest.raises(InvariantViolation) as exc_info:
            sys_.run()
        assert exc_info.value.report["reason"] == "invariant_violation"
        assert any("illegal state" in v for v in exc_info.value.report["violations"])
        assert exc_info.value.dump_path is not None

    def test_integrity_off_exception_passes_through_raw(self):
        sys_ = _system(integrity=False)

        def explode():
            raise ValueError("unmonitored")

        sys_.engine.schedule(1, explode)
        with pytest.raises(ValueError):
            sys_.run()


# ----------------------------------------------------------------------
# Campaign handling of diagnosed failures.  The wedge runner must live at
# module level so the jobs>=2 worker pool can pickle it.
# ----------------------------------------------------------------------


def _wedge_runner(cell, attempt=1):
    """Cell runner that injects a livelock into an integrity-monitored run."""
    from repro.campaign.executor import summarize

    cfg = cell.config
    traces = make_mix(cell.workload, cfg.refs_per_core, seed=cfg.seed)
    sys_ = System(
        traces,
        SystemConfig(hmc=cfg.hmc, scheme=cell.scheme, integrity=True),
        workload=cell.workload,
    )

    def spin():
        sys_.engine.schedule(0, spin)

    sys_.engine.schedule(0, spin)
    return summarize(sys_.run())


class TestCampaignDiagnosis:
    def _cells(self):
        cfg = ExperimentConfig(refs_per_core=100, seed=1)
        return [Cell(workload="HM1", scheme="base", config=cfg)]

    def test_diagnosed_failure_is_terminal_despite_retries(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CRASH_DIR_ENV, str(tmp_path / "dumps"))
        manifest = Manifest(tmp_path / "manifest.jsonl")
        result = run_campaign(
            self._cells(),
            CampaignOptions(retries=2),
            manifest=manifest,
            runner=_wedge_runner,
        )
        rec = next(iter(result.records.values()))
        assert not rec.ok
        assert rec.attempts == 1  # deterministic wedge: no retry burned
        assert rec.diagnosis["reason"] == "forward_progress_stall"
        assert "spin" in rec.diagnosis["stuck_component"]
        assert rec.diagnosis["crash_dump"].startswith(str(tmp_path / "dumps"))
        with pytest.raises(Exception) as exc_info:
            result.raise_on_failure()
        assert "diagnosed: forward_progress_stall" in str(exc_info.value)

    def test_diagnosis_round_trips_through_manifest_and_resume(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CRASH_DIR_ENV, str(tmp_path / "dumps"))
        path = tmp_path / "manifest.jsonl"
        run_campaign(
            self._cells(), CampaignOptions(), manifest=Manifest(path),
            runner=_wedge_runner,
        )
        reloaded = Manifest(path).records()
        rec = next(iter(reloaded.values()))
        assert rec.diagnosis["reason"] == "forward_progress_stall"
        # --resume must skip the diagnosed cell instead of re-wedging it
        resumed = run_campaign(
            self._cells(), CampaignOptions(resume=True),
            manifest=Manifest(path), runner=_wedge_runner,
        )
        assert resumed.stats["resumed"] == 1
        assert resumed.stats["executed"] == 0

    def test_pool_worker_ships_diagnosis(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_DIR_ENV, str(tmp_path / "dumps"))
        result = run_campaign(
            self._cells(),
            CampaignOptions(jobs=2, retries=1),
            manifest=Manifest(tmp_path / "manifest.jsonl"),
            runner=_wedge_runner,
        )
        rec = next(iter(result.records.values()))
        assert not rec.ok and rec.attempts == 1
        assert rec.diagnosis["reason"] == "forward_progress_stall"

    def test_undiagnosed_failure_still_retries(self, tmp_path):
        calls = []

        def flaky(cell, attempt=1):
            calls.append(attempt)
            raise RuntimeError("transient")

        result = run_campaign(
            self._cells(), CampaignOptions(retries=2, backoff=0.0),
            manifest=Manifest(tmp_path / "manifest.jsonl"), runner=flaky,
        )
        rec = next(iter(result.records.values()))
        assert not rec.ok and rec.attempts == 3
        assert rec.diagnosis is None
        assert calls == [1, 2, 3]
