"""Tests for the configurable address-mapping orders (mapping ablation)."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.address import MAPPING_ORDERS, AddressMapping
from repro.hmc.config import HMCConfig


class TestOrders:
    def test_default_is_paper_mapping(self):
        m = AddressMapping(HMCConfig())
        assert m.order == "RoBaVaCo"
        assert m.row_shift > m.bank_shift > m.vault_shift > m.column_shift

    def test_all_orders_have_row_msb(self):
        for order, fields in MAPPING_ORDERS.items():
            assert fields[0] == "row", order

    @pytest.mark.parametrize("order", sorted(MAPPING_ORDERS))
    def test_roundtrip_every_order(self, order):
        m = AddressMapping(HMCConfig(), order=order)
        for coords in [(0, 0, 0, 0), (31, 15, 12345, 15), (7, 3, 99, 5)]:
            d = m.decode(m.encode(*coords))
            assert (d.vault, d.bank, d.row, d.column) == coords

    @pytest.mark.parametrize("order", sorted(MAPPING_ORDERS))
    def test_fields_disjoint(self, order):
        """No two fields may share address bits."""
        m = AddressMapping(HMCConfig(), order=order)
        spans = [
            (m.column_shift, m.column_bits),
            (m.vault_shift, m.vault_bits),
            (m.bank_shift, m.bank_bits),
        ]
        bits = set()
        for shift, width in spans:
            span = set(range(shift, shift + width))
            assert not bits & span
            bits |= span
        assert m.row_shift >= max(s + w for s, w in spans)

    def test_column_high_order_spreads_row_across_vaults(self):
        """Under RoCoBaVa the 16 lines of one (vault,bank,row) triple come
        from 16 *different* byte-address rows - i.e. a contiguous 1 KB block
        spans many vaults, breaking whole-row prefetch locality."""
        paper = AddressMapping(HMCConfig(), order="RoBaVaCo")
        alt = AddressMapping(HMCConfig(), order="RoCoBaVa")
        block = [paper.encode(0, 0, 5, c) for c in range(16)]
        # paper mapping: one row
        assert len({paper.row_key(a) for a in block}) == 1
        # same byte addresses decoded under the alternative mapping: the
        # vault bits land elsewhere, scattering the block
        assert len({alt.row_key(a) for a in block}) > 1

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(HMCConfig(), order="CoRoBaVa")

    def test_config_field_controls_default(self):
        cfg = HMCConfig(address_mapping="RoVaBaCo")
        assert AddressMapping(cfg).order == "RoVaBaCo"

    def test_config_validates_mapping(self):
        with pytest.raises(ValueError):
            HMCConfig(address_mapping="bogus")

    @given(
        order=st.sampled_from(sorted(MAPPING_ORDERS)),
        vault=st.integers(0, 31),
        bank=st.integers(0, 15),
        row=st.integers(0, 1 << 18),
        column=st.integers(0, 15),
    )
    def test_roundtrip_property_all_orders(self, order, vault, bank, row, column):
        m = AddressMapping(HMCConfig(), order=order)
        d = m.decode(m.encode(vault, bank, row, column))
        assert (d.vault, d.bank, d.row, d.column) == (vault, bank, row, column)


class TestEndToEnd:
    def test_simulation_runs_under_alternative_mapping(self):
        from repro.system import run_system
        from repro.workloads.synthetic import generate_trace

        cfg = HMCConfig(address_mapping="RoVaBaCo")
        traces = [
            generate_trace("gcc", 300, seed=i, config=cfg, core_id=i)
            for i in range(2)
        ]
        r = run_system(traces, scheme="camps-mod", hmc=cfg)
        assert r.cycles > 0
