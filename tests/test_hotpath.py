"""Hot-path invariants: event pooling, weak-event recycling, handle-free
``call_at`` scheduling, and MemoryRequest recycling.

The engine freelist makes :class:`~repro.sim.engine.Event` handles
single-use; the contract tested here is the one
``benchmarks/bench_hotpath.py``'s speedup rests on:

* pool reuse must never resurrect a cancelled (or fired) event's callback,
* weak events must recycle through the pool without unbounded growth,
* ``call_at`` entries must order identically to ``schedule_at`` handles
  (both draw ``seq`` from the same counter) while never touching the pool,
* recycled :class:`~repro.request.MemoryRequest` objects must be
  indistinguishable, result-wise, from fresh allocation.
"""

import pytest

from repro.request import MemoryRequest
from repro.sim.engine import Engine, Event


# ----------------------------------------------------------------------
# Event pool: cancellation vs reuse
# ----------------------------------------------------------------------
class TestEventPool:
    def test_cancelled_callback_never_resurrected(self):
        """A cancelled event's callback must not fire — not when its heap
        turn passes, and not after its handle is recycled for new work."""
        eng = Engine()
        fired = []
        victim = eng.schedule(5, fired.append, "victim")
        keeper = eng.schedule(10, fired.append, "keeper")
        victim.cancel()
        eng.run()
        assert fired == ["keeper"]
        # Both handles were recycled with their callbacks cleared: the pool
        # holds no path back to the cancelled callback.
        assert eng.pool_size == 2
        assert victim.fn is None and victim.args == ()
        assert keeper.fn is None and keeper.args == ()
        # The pool reissues those same objects for unrelated callbacks...
        e1 = eng.schedule(1, fired.append, "fresh-1")
        e2 = eng.schedule(2, fired.append, "fresh-2")
        assert {e1, e2} == {victim, keeper}
        eng.run()
        # ...and only the new callbacks run; "victim" never appears.
        assert fired == ["keeper", "fresh-1", "fresh-2"]
        assert eng.events_fired == 3

    def test_fired_handle_is_reset_on_reissue(self):
        eng = Engine()
        fired = []
        first = eng.schedule(1, fired.append, "first")
        eng.run()
        assert first.fired and eng.pool_size == 1
        second = eng.schedule(1, fired.append, "second")
        assert second is first  # pooled reuse
        assert not second.cancelled and not second.fired
        eng.run()
        assert fired == ["first", "second"]

    def test_stale_cancel_after_fire_is_noop(self):
        """cancel() on an already-fired handle must neither corrupt the
        pending counter nor affect later events."""
        eng = Engine()
        fired = []
        ev = eng.schedule(1, fired.append, "x")
        eng.run()
        ev.cancel()  # stale: the event already fired
        assert eng.pending == 0
        eng.schedule(1, fired.append, "y")
        assert eng.pending == 1
        eng.run()
        assert fired == ["x", "y"]

    def test_cancel_then_reschedule_pattern(self):
        """The one supported retained-handle pattern (VaultController's
        wake timer): cancel a pending handle, immediately take a new one."""
        eng = Engine()
        fired = []
        wake = eng.schedule_at(20, fired.append, "late")
        wake.cancel()
        wake = eng.schedule_at(10, fired.append, "early")
        eng.run()
        assert fired == ["early"]
        assert eng.now == 10
        assert eng.pending == 0
        # The cancelled tombstone still sits in the heap; peek_time purges
        # it (recycling the handle) instead of reporting it as live work.
        assert eng.peek_time() is None
        assert eng.pool_size == 2


# ----------------------------------------------------------------------
# Weak events
# ----------------------------------------------------------------------
class TestWeakEvents:
    def test_weak_events_recycle_through_pool(self):
        """A self-rescheduling weak tick (the refresh idiom) must cycle
        through the freelist, not grow it, and must not keep run() alive."""
        eng = Engine()
        ticks = []

        def tick():
            ticks.append(eng.now)
            eng.schedule(10, tick, weak=True)

        eng.schedule(10, tick, weak=True)
        eng.schedule(35, ticks.append, "strong-done")
        n = eng.run()
        assert ticks == [10, 20, 30, "strong-done"]
        assert n == 4
        # run() stopped with the next weak tick still pending...
        assert eng.pending == 1
        # ...and steady-state reuse kept the pool bounded: one recycled tick
        # handle plus the finished strong handle.
        assert eng.pool_size == 2

    def test_cancelled_weak_event_releases_pending(self):
        eng = Engine()
        ev = eng.schedule(5, lambda: None, weak=True)
        assert eng.pending == 1
        ev.cancel()
        assert eng.pending == 0
        assert eng.run() == 0  # nothing strong: the engine never starts
        assert eng.peek_time() is None  # tombstone purged and recycled
        assert eng.pool_size == 1


# ----------------------------------------------------------------------
# Handle-free call_at
# ----------------------------------------------------------------------
class TestCallAt:
    def test_ordering_parity_with_schedule_at(self):
        """call_at and schedule_at share one seq counter: interleaved
        same-cycle entries fire in submission order."""
        eng = Engine()
        order = []
        eng.schedule_at(5, order.append, "a")
        eng.call_at(5, order.append, "b")
        eng.schedule_at(5, order.append, "c")
        eng.call_at(3, order.append, "d")
        eng.run()
        assert order == ["d", "a", "b", "c"]

    def test_priority_breaks_same_cycle_ties(self):
        eng = Engine()
        order = []
        eng.call_at(5, order.append, "second", priority=1)
        eng.call_at(5, order.append, "first", priority=-1)
        eng.run()
        assert order == ["first", "second"]

    def test_past_time_raises(self):
        eng = Engine()
        eng.call_at(4, lambda: None)
        eng.run()
        assert eng.now == 4
        with pytest.raises(ValueError):
            eng.call_at(3, lambda: None)

    def test_counts_and_no_pool_traffic(self):
        eng = Engine()
        eng.call_at(1, lambda: None)
        eng.call_at(2, lambda: None)
        assert eng.pending == 2
        assert eng.run() == 2
        assert eng.pending == 0
        assert eng.events_fired == 2
        # bare tuples: nothing was pooled
        assert eng.pool_size == 0

    def test_max_events_pushes_entry_back(self):
        eng = Engine()
        order = []
        eng.call_at(1, order.append, "x")
        eng.call_at(2, order.append, "y")
        assert eng.run(max_events=1) == 1
        assert order == ["x"] and eng.now == 1 and eng.pending == 1
        assert eng.step()
        assert order == ["x", "y"]
        assert not eng.step()

    def test_until_leaves_future_entry_pending(self):
        eng = Engine()
        hit = []
        eng.call_at(10, hit.append, 1)
        eng.run(until=5)
        assert eng.now == 5 and not hit and eng.pending == 1
        eng.run()
        assert hit == [1] and eng.now == 10

    def test_peek_and_live_events_surface_transient_views(self):
        eng = Engine()

        def fn():
            pass

        eng.call_at(7, fn)
        assert eng.peek_time() == 7
        views = list(eng.live_events())
        assert len(views) == 1
        view = views[0]
        assert isinstance(view, Event)
        assert view.time == 7 and view.fn is fn
        # Documented: the view is not connected to the heap — cancelling it
        # does not cancel the underlying call_at entry.
        view.cancel()
        assert eng.pending == 1
        assert eng.run() == 1


# ----------------------------------------------------------------------
# MemoryRequest pool
# ----------------------------------------------------------------------
@pytest.fixture
def clean_request_pool():
    saved = MemoryRequest._pool
    MemoryRequest._pool = []
    try:
        yield
    finally:
        MemoryRequest._pool = saved


class TestRequestPool:
    def test_release_then_acquire_reuses_object(self, clean_request_pool):
        def cb(req):
            pass

        r1 = MemoryRequest.acquire(0x1000, False, core_id=2, issue_cycle=7)
        rid = r1.req_id
        MemoryRequest.release(r1)
        assert r1.callback is None and r1.meta is None
        r2 = MemoryRequest.acquire(0x2000, True, core_id=5, issue_cycle=9, callback=cb)
        assert r2 is r1  # pooled reuse
        assert r2.req_id == rid + 1  # fresh identity every life
        assert (r2.addr, r2.is_write, r2.core_id, r2.issue_cycle) == (
            0x2000,
            True,
            5,
            9,
        )
        assert r2.callback is cb

    def test_acquire_on_empty_pool_allocates(self, clean_request_pool):
        r1 = MemoryRequest.acquire(1, False)
        r2 = MemoryRequest.acquire(2, False)
        assert r1 is not r2
        assert r2.req_id == r1.req_id + 1


def test_recycling_does_not_change_results():
    """End-to-end: a run with request recycling enabled (the default direct
    front-end) must match a run that records every request (recycling off)
    on every result the digest pins."""
    from repro.system import System, SystemConfig
    from repro.workloads.mixes import mix as make_mix

    def run(record):
        traces = make_mix("MX1", 120, seed=3)
        system = System(
            traces,
            SystemConfig(scheme="camps", record_requests=record),
            workload="MX1",
        )
        assert system.host.recycle_requests is (not record)
        return system.run()

    recycled = run(False)
    recorded = run(True)
    assert recycled.cycles == recorded.cycles
    assert recycled.core_ipc == recorded.core_ipc
    assert recycled.extra["events_fired"] == recorded.extra["events_fired"]
    assert recycled.mean_memory_latency == recorded.mean_memory_latency
    assert recycled.energy_pj == recorded.energy_pj
