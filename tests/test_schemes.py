"""Unit tests for the scheme registry."""

import pytest

from repro.core.baselines import BaseHitPrefetcher, BasePrefetcher, MMDPrefetcher
from repro.core.camps import CampsParams, CampsPrefetcher
from repro.core.prefetcher import NullPrefetcher
from repro.core.schemes import PAPER_SCHEMES, SCHEMES, make_prefetcher, scheme_names
from repro.hmc.config import HMCConfig


@pytest.fixture
def cfg():
    return HMCConfig()


class TestRegistry:
    def test_all_names_present(self):
        assert set(scheme_names()) == {
            "none",
            "base",
            "base-hit",
            "mmd",
            "camps",
            "camps-mod",
            "camps-fdp",
        }

    def test_paper_schemes_order(self):
        assert PAPER_SCHEMES == ["base", "base-hit", "mmd", "camps", "camps-mod"]
        assert all(s in SCHEMES for s in PAPER_SCHEMES)

    def test_factory_types(self, cfg):
        assert isinstance(make_prefetcher("none", 0, cfg), NullPrefetcher)
        assert isinstance(make_prefetcher("base", 0, cfg), BasePrefetcher)
        assert isinstance(make_prefetcher("base-hit", 0, cfg), BaseHitPrefetcher)
        assert isinstance(make_prefetcher("mmd", 0, cfg), MMDPrefetcher)

    def test_camps_variants(self, cfg):
        camps = make_prefetcher("camps", 0, cfg)
        mod = make_prefetcher("camps-mod", 0, cfg)
        assert isinstance(camps, CampsPrefetcher) and not camps.modified
        assert isinstance(mod, CampsPrefetcher) and mod.modified

    def test_unknown_scheme_rejected(self, cfg):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_prefetcher("nope", 0, cfg)

    def test_kwargs_forwarded(self, cfg):
        pf = make_prefetcher(
            "camps", 0, cfg, params=CampsParams(utilization_threshold=7)
        )
        assert pf.params.utilization_threshold == 7

    def test_vault_id_attached(self, cfg):
        assert make_prefetcher("base", 13, cfg).vault_id == 13

    def test_none_has_no_buffer(self, cfg):
        assert make_prefetcher("none", 0, cfg).uses_buffer is False
        assert make_prefetcher("base", 0, cfg).uses_buffer is True
