"""Unit/integration tests for the vault controller."""

import pytest

from repro.core.schemes import make_prefetcher
from repro.hmc.config import HMCConfig
from repro.request import MemoryRequest, ServiceSource
from repro.sim.engine import Engine
from repro.vault.controller import VaultController


@pytest.fixture
def cfg():
    return HMCConfig()


def make_vc(cfg, scheme="camps", engine=None):
    engine = engine or Engine()
    responses = []
    vc = VaultController(
        vault_id=0,
        config=cfg,
        engine=engine,
        prefetcher=make_prefetcher(scheme, 0, cfg),
        respond_fn=lambda req, ready: responses.append((req, ready)),
    )
    return vc, engine, responses


def req(bank=0, row=0, column=0, write=False):
    r = MemoryRequest(0, write)
    r.vault, r.bank, r.row, r.column = 0, bank, row, column
    return r


class TestDemandPath:
    def test_single_read_completes(self, cfg):
        vc, eng, responses = make_vc(cfg)
        r = req()
        eng.schedule(0, vc.receive, r)
        eng.run()
        assert len(responses) == 1
        assert responses[0][0] is r
        assert r.source is ServiceSource.BANK
        assert vc.demand_accesses == 1

    def test_two_reads_same_bank_serialize(self, cfg):
        vc, eng, responses = make_vc(cfg)
        a, b = req(row=1), req(row=1, column=1)
        eng.schedule(0, vc.receive, a)
        eng.schedule(0, vc.receive, b)
        eng.run()
        assert len(responses) == 2
        assert responses[1][1] > responses[0][1]

    def test_reads_different_banks_overlap(self, cfg):
        vc, eng, responses = make_vc(cfg, scheme="none")
        a, b = req(bank=0, row=1), req(bank=1, row=1)
        eng.schedule(0, vc.receive, a)
        eng.schedule(0, vc.receive, b)
        eng.run()
        # parallel banks: completion gap much smaller than full service time
        t0, t1 = sorted(x[1] for x in responses)
        assert t1 - t0 < cfg.timings.row_empty_read

    def test_writes_complete(self, cfg):
        vc, eng, responses = make_vc(cfg)
        w = req(write=True)
        eng.schedule(0, vc.receive, w)
        eng.run()
        assert len(responses) == 1
        assert vc.stats.counter("demand_writes").value == 1

    def test_vault_arrive_timestamp_set(self, cfg):
        vc, eng, _ = make_vc(cfg)
        r = req()
        eng.schedule(17, vc.receive, r)
        eng.run()
        assert r.vault_arrive_cycle == 17


class TestBufferPath:
    def test_prefetched_row_hits_buffer(self, cfg):
        vc, eng, responses = make_vc(cfg, scheme="base")
        first = req(row=5, column=0)
        eng.schedule(0, vc.receive, first)
        eng.run()
        # BASE fetched row 5; a request arriving after the fetch settles
        # hits the buffer
        second = req(row=5, column=3)
        eng.schedule(1000, vc.receive, second)
        eng.run()
        assert second.source is ServiceSource.PREFETCH_BUFFER
        assert vc.stats.counter("buffer_hits").value == 1
        # and it never touched a bank
        assert vc.demand_accesses == 1

    def test_buffer_hit_latency(self, cfg):
        vc, eng, responses = make_vc(cfg, scheme="base")
        eng.schedule(0, vc.receive, req(row=5, column=0))
        eng.run()
        second = req(row=5, column=3)
        eng.schedule(1000, vc.receive, second)  # well after the fetch settles
        eng.run()
        ready = [t for rq, t in responses if rq is second][0]
        assert ready == second.vault_arrive_cycle + cfg.pf_hit_latency

    def test_in_flight_hit_waits_for_row(self, cfg):
        vc, eng, responses = make_vc(cfg, scheme="base")
        first = req(row=5, column=0)
        second = req(row=5, column=3)
        eng.schedule(0, vc.receive, first)
        # Deliver the second request just after the first completes (the
        # fetch is still streaming) - it must merge with the in-flight row.
        fired = eng.run(max_events=2)
        entry = vc.buffer.get(0, 5)
        assert entry is not None
        vc.receive(second)
        assert second.source is ServiceSource.ROW_IN_FLIGHT
        ready = [t for rq, t in responses if rq is second][0]
        assert ready == entry.ready_time + cfg.pf_hit_latency
        eng.run()

    def test_none_scheme_has_no_buffer(self, cfg):
        vc, eng, _ = make_vc(cfg, scheme="none")
        assert vc.buffer is None
        eng.schedule(0, vc.receive, req())
        eng.run()
        assert vc.demand_accesses == 1


class TestPrefetchExecution:
    def test_base_fetches_row_and_precharges(self, cfg):
        vc, eng, _ = make_vc(cfg, scheme="base")
        eng.schedule(0, vc.receive, req(row=5))
        eng.run()
        assert vc.buffer.get(0, 5) is not None
        assert vc.banks[0].open_row is None  # precharged after fetch
        assert vc.banks[0].row_fetches == 1

    def test_camps_threshold_prefetch_through_controller(self, cfg):
        vc, eng, _ = make_vc(cfg, scheme="camps")
        for col in range(4):
            eng.schedule(0, vc.receive, req(row=5, column=col))
        eng.run()
        assert vc.buffer.get(0, 5) is not None
        entry = vc.buffer.get(0, 5)
        assert entry.ref_mask == 0b1111  # seeded with the 4 served lines

    def test_dirty_eviction_restores_row(self, cfg):
        small = cfg.with_overrides(pf_buffer_entries=1)
        vc, eng, _ = make_vc(small, scheme="base")
        w = req(row=5, column=0, write=True)
        eng.schedule(0, vc.receive, w)
        eng.run()
        # write into the buffered row to dirty it
        w2 = req(row=5, column=1, write=True)
        eng.schedule(0, vc.receive, w2)
        eng.run()
        assert vc.buffer.get(0, 5).is_dirty
        # new row evicts the dirty one -> restore_row on the bank
        eng.schedule(0, vc.receive, req(row=9))
        eng.run()
        assert vc.banks[0].row_restores == 1
        assert vc.stats.counter("dirty_row_writebacks").value == 1

    def test_queued_requests_not_redirected_to_buffer(self, cfg):
        """Arrival-only buffer semantics: requests already queued go to the
        bank even if their row is prefetched meanwhile."""
        vc, eng, _ = make_vc(cfg, scheme="base")
        reqs = [req(row=5, column=c) for c in range(3)]
        for r in reqs:
            eng.schedule(0, vc.receive, r)
        eng.run()
        # first request triggered the fetch; the other two were already
        # queued at fetch time (same cycle arrivals) -> served by the bank
        assert all(r.source is ServiceSource.BANK for r in reqs)


class TestStatsAndWakeups:
    def test_conflict_rate_counts_buffer_hits_in_denominator(self, cfg):
        vc, eng, _ = make_vc(cfg, scheme="base")
        eng.schedule(0, vc.receive, req(row=5, column=0))
        eng.run()
        eng.schedule(1000, vc.receive, req(row=5, column=1))
        eng.run()
        assert vc.conflict_rate() == 0.0
        assert vc.demand_accesses == 1

    def test_progress_when_bank_busy_with_prefetch_only(self, cfg):
        """A request queued behind a prefetch transfer (no completion event)
        must still issue via the wake mechanism."""
        vc, eng, responses = make_vc(cfg, scheme="base")
        eng.schedule(0, vc.receive, req(row=5))
        eng.run(max_events=2)  # receive + access_done: fetch now occupies bank
        assert vc.banks[0].busy_until > eng.now
        late = req(row=9)
        vc.receive(late)
        eng.run()
        assert late.is_complete or any(rq is late for rq, _ in responses)

    def test_many_requests_all_complete(self, cfg):
        vc, eng, responses = make_vc(cfg, scheme="camps-mod")
        n = 200
        for i in range(n):
            eng.schedule(
                i * 3, vc.receive, req(bank=i % 4, row=i % 7, column=i % 16, write=i % 5 == 0)
            )
        eng.run()
        assert len(responses) == n
