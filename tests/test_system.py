"""Integration tests for the full system (cores + host + HMC)."""

import numpy as np
import pytest

from repro.hmc.config import HMCConfig
from repro.system import SimulationResult, System, SystemConfig, run_system
from repro.workloads.synthetic import generate_trace


@pytest.fixture
def traces():
    return [generate_trace("gcc", 400, seed=i, core_id=i) for i in range(2)]


class TestRunToCompletion:
    def test_all_schemes_complete(self, traces):
        for scheme in ("none", "base", "base-hit", "mmd", "camps", "camps-mod"):
            r = run_system(traces, scheme=scheme, workload="t")
            assert r.cycles > 0
            assert all(ipc > 0 for ipc in r.core_ipc)
            assert len(r.core_ipc) == 2

    def test_deterministic(self, traces):
        a = run_system(traces, scheme="camps-mod")
        b = run_system(traces, scheme="camps-mod")
        assert a.cycles == b.cycles
        assert a.core_ipc == b.core_ipc
        assert a.energy_pj == b.energy_pj

    def test_run_once_only(self, traces):
        s = System(traces, SystemConfig(scheme="base"))
        s.run()
        with pytest.raises(RuntimeError):
            s.run()

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            System([])

    def test_instructions_match_traces(self, traces):
        r = run_system(traces, scheme="none")
        for got, t in zip(r.core_instructions, traces):
            assert got == t.instructions


class TestResultInvariants:
    def test_base_has_zero_conflicts(self, traces):
        r = run_system(traces, scheme="base")
        assert r.row_conflicts == 0
        assert r.conflict_rate == 0.0

    def test_none_scheme_no_prefetches(self, traces):
        r = run_system(traces, scheme="none")
        assert r.prefetches_issued == 0
        assert r.buffer_hits == 0

    def test_prefetching_schemes_issue_prefetches(self, traces):
        for scheme in ("base", "mmd", "camps"):
            r = run_system(traces, scheme=scheme)
            assert r.prefetches_issued > 0, scheme

    def test_latency_at_least_physical_floor(self, traces):
        cfg = HMCConfig()
        r = run_system(traces, scheme="none")
        floor = 2 * cfg.serdes_latency + 2 * cfg.crossbar_latency
        assert r.mean_read_latency > floor

    def test_accuracy_in_unit_interval(self, traces):
        for scheme in ("base", "camps-mod"):
            r = run_system(traces, scheme=scheme)
            assert 0.0 <= r.row_accuracy <= 1.0
            assert 0.0 <= r.line_accuracy <= 1.0

    def test_energy_breakdown_sums(self, traces):
        r = run_system(traces, scheme="camps")
        assert r.energy_pj == pytest.approx(sum(r.energy_breakdown.values()))

    def test_speedup_vs_self_is_one(self, traces):
        r = run_system(traces, scheme="base")
        assert r.speedup_vs(r) == pytest.approx(1.0)

    def test_speedup_core_count_mismatch(self, traces):
        a = run_system(traces, scheme="base")
        b = run_system(traces[:1], scheme="base")
        with pytest.raises(ValueError):
            a.speedup_vs(b)

    def test_summary_keys(self, traces):
        s = run_system(traces, scheme="camps").summary()
        assert set(s) == {
            "geomean_ipc",
            "conflict_rate",
            "row_accuracy",
            "mean_read_latency",
            "energy_pj",
        }


class TestCacheMode:
    def test_hierarchy_filters_traffic(self):
        # a trace with heavy reuse: most accesses should hit the caches
        rng = np.random.default_rng(7)
        addrs = rng.choice(np.arange(64) * 64, size=2000)  # 64-line hot set
        from repro.workloads.trace import Trace

        t = Trace(np.full(2000, 3), addrs, np.zeros(2000, bool))
        r = run_system([t], scheme="none", use_caches=True)
        assert r.extra["llc_hit_rate"] >= 0.0
        assert r.extra["llc_misses"] <= 200  # most filtered by caches
        assert r.cycles > 0

    def test_cache_mode_faster_than_direct_for_hot_set(self):
        rng = np.random.default_rng(7)
        addrs = rng.choice(np.arange(64) * 64, size=1500)
        from repro.workloads.trace import Trace

        t = Trace(np.full(1500, 3), addrs, np.zeros(1500, bool))
        with_caches = run_system([t], scheme="none", use_caches=True)
        without = run_system([t], scheme="none", use_caches=False)
        assert with_caches.cycles < without.cycles

    def test_cache_mode_all_schemes(self):
        t = generate_trace("h264ref", 300, seed=1)
        for scheme in ("base", "camps-mod"):
            r = run_system([t], scheme=scheme, use_caches=True)
            assert r.cycles > 0
