"""Unit tests for the MemoryRequest record."""

import pytest

from repro.request import MemoryRequest, ServiceSource


class TestMemoryRequest:
    def test_unique_ids(self):
        a, b = MemoryRequest(0, False), MemoryRequest(0, False)
        assert a.req_id != b.req_id

    def test_latency_requires_completion(self):
        r = MemoryRequest(0, False, issue_cycle=10)
        assert not r.is_complete
        with pytest.raises(ValueError):
            _ = r.latency

    def test_latency(self):
        r = MemoryRequest(0, False, issue_cycle=10)
        r.complete_cycle = 150
        assert r.is_complete
        assert r.latency == 140

    def test_defaults(self):
        r = MemoryRequest(0x123, True, core_id=3)
        assert r.is_write and r.core_id == 3
        assert r.vault == -1 and r.source is None

    def test_service_source_values(self):
        assert {s.value for s in ServiceSource} == {"bank", "buffer", "in_flight"}

    def test_repr_shows_kind(self):
        assert " W " in repr(MemoryRequest(0, True))
        assert " R " in repr(MemoryRequest(0, False))
