"""Unit tests for the parallel campaign subsystem (repro.campaign).

The executor tests drive run_campaign with fault-injecting fake cell
runners (module-level so worker processes can resolve them); the
determinism tests use the real simulator at tiny scale and compare the
serial and sharded paths byte-for-byte via matrix_digest.
"""

import json
import os
import time

import pytest

from repro.campaign import (
    CampaignError,
    CampaignOptions,
    Cell,
    Manifest,
    grid_cells,
    matrix_digest,
    run_campaign,
    summarize,
)
from repro.campaign.manifest import MANIFEST_VERSION
from repro.experiments.runner import (
    _CACHED_FIELDS,
    ExperimentConfig,
    ResultCache,
    run_matrix,
)
from repro.hmc.config import HMCConfig
from repro.system import SimulationResult

TINY = ExperimentConfig(refs_per_core=150, seed=1)


# ----------------------------------------------------------------------
# Fault-injecting fake runners (module-level: picklable for workers)
# ----------------------------------------------------------------------


def _summary(cell, cycles=1000):
    return {
        "scheme": cell.scheme,
        "workload": cell.workload,
        "cycles": cycles,
        "core_ipc": [1.0, 0.5],
        "core_instructions": [100, 100],
        "conflict_rate": 0.1,
        "row_conflicts": 5,
        "demand_accesses": 50,
        "buffer_hits": 10,
        "prefetches_issued": 20,
        "row_accuracy": 0.5,
        "line_accuracy": 0.25,
        "mean_memory_latency": 100.0,
        "mean_read_latency": 90.0,
        "energy_pj": 1e6,
        "energy_breakdown": {"activate": 1.0},
        "link_utilization": 0.2,
    }


def ok_runner(cell, attempt):
    return _summary(cell)


def flaky_runner(cell, attempt):
    if attempt == 1:
        raise RuntimeError("transient glitch")
    return _summary(cell)


def always_fail_runner(cell, attempt):
    raise RuntimeError("boom")


def fail_hm1_runner(cell, attempt):
    if cell.workload == "HM1":
        raise RuntimeError("hm1 breaks")
    return _summary(cell)


def hang_hm1_runner(cell, attempt):
    if cell.workload == "HM1":
        time.sleep(60)
    return _summary(cell)


def crash_hm1_runner(cell, attempt):
    if cell.workload == "HM1":
        os._exit(13)
    return _summary(cell)


def fake_result(cell):
    return SimulationResult(extra={}, **_summary(cell))


# ----------------------------------------------------------------------
# Cell spec
# ----------------------------------------------------------------------


class TestCell:
    def test_cell_id_deterministic_and_prefixed(self):
        c = Cell("HM1", "base", TINY)
        assert c.cell_id == Cell("HM1", "base", TINY).cell_id
        assert c.cell_id.startswith(TINY.cache_key("HM1", "base"))

    def test_cell_id_covers_fields_outside_cache_key(self):
        # `links` is not part of ExperimentConfig.cache_key; the cell id
        # must still distinguish configs that differ only there.
        cfg_a = ExperimentConfig(refs_per_core=150, seed=1, hmc=HMCConfig(links=4))
        cfg_b = ExperimentConfig(refs_per_core=150, seed=1, hmc=HMCConfig(links=2))
        assert cfg_a.cache_key("HM1", "base") == cfg_b.cache_key("HM1", "base")
        assert Cell("HM1", "base", cfg_a).cell_id != Cell("HM1", "base", cfg_b).cell_id

    def test_cell_id_covers_scheme_kwargs_and_trace_config(self):
        plain = Cell("HM1", "camps-mod", TINY)
        kw = Cell("HM1", "camps-mod", TINY, scheme_kwargs={"params": None})
        tc = Cell("HM1", "camps-mod", TINY, trace_config=HMCConfig(vaults=16))
        assert len({plain.cell_id, kw.cell_id, tc.cell_id}) == 3
        assert plain.cacheable
        assert not kw.cacheable and not tc.cacheable

    def test_grid_cells_workload_major_order(self):
        cells = grid_cells(["HM1", "LM1"], ["base", "mmd"], TINY)
        assert [(c.workload, c.scheme) for c in cells] == [
            ("HM1", "base"), ("HM1", "mmd"), ("LM1", "base"), ("LM1", "mmd"),
        ]


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


class TestManifest:
    def test_round_trip(self, tmp_path):
        man = Manifest(tmp_path / "m.jsonl")
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        res = run_campaign(cells, manifest=man, runner=ok_runner)
        recs = man.records()
        assert set(recs) == {c.cell_id for c in cells}
        assert all(r.ok and r.summary["cycles"] == 1000 for r in recs.values())
        assert res.stats["executed"] == 2

    def test_exactly_one_record_per_cell(self, tmp_path):
        man = Manifest(tmp_path / "m.jsonl")
        cells = grid_cells(["HM1", "LM1"], ["base", "mmd"], TINY)
        run_campaign(cells, CampaignOptions(jobs=2), manifest=man, runner=ok_runner)
        lines = [json.loads(l) for l in man.path.read_text().splitlines()]
        assert lines[0] == {"kind": "header", "version": MANIFEST_VERSION,
                            "cells": 4, "jobs": 2}
        ids = [l["cell_id"] for l in lines[1:]]
        assert sorted(ids) == sorted(c.cell_id for c in cells)

    def test_fresh_campaign_resets_stale_manifest(self, tmp_path):
        man = Manifest(tmp_path / "m.jsonl")
        cells = grid_cells(["HM1"], ["base"], TINY)
        run_campaign(cells, manifest=man, runner=ok_runner)
        run_campaign(cells, manifest=man, runner=ok_runner)  # no resume
        ids = [
            json.loads(l)["cell_id"]
            for l in man.path.read_text().splitlines()
            if json.loads(l).get("kind") != "header"
        ]
        assert len(ids) == 1  # rewritten, not appended twice

    def test_torn_line_skipped(self, tmp_path):
        man = Manifest(tmp_path / "m.jsonl")
        run_campaign(grid_cells(["HM1", "LM1"], ["base"], TINY),
                     manifest=man, runner=ok_runner)
        with open(man.path, "a") as fh:
            fh.write('{"cell_id": "truncated...')  # crash mid-append
        assert len(man.records()) == 2

    def test_version_mismatch_invalidates(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n'
                        '{"cell_id": "x", "workload": "HM1", "scheme": "base",'
                        ' "status": "ok", "attempts": 1, "elapsed": 1.0}\n')
        assert Manifest(path).records() == {}

    def test_headerless_file_invalidates(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"cell_id": "x", "workload": "HM1", "scheme": "base",'
                        ' "status": "ok", "attempts": 1, "elapsed": 1.0}\n')
        assert Manifest(path).records() == {}


# ----------------------------------------------------------------------
# Executor: failure isolation, retry, timeout, resume
# ----------------------------------------------------------------------


class TestExecutor:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_recovers_transient_failure(self, jobs):
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=jobs, retries=1, backoff=0.01),
            runner=flaky_runner,
        )
        assert res.stats["failed"] == 0
        assert res.stats["retried"] == 2
        assert all(r.attempts == 2 for r in res.records.values())

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_record_error(self, jobs):
        cells = grid_cells(["HM1"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=jobs, retries=1, backoff=0.01),
            runner=always_fail_runner,
        )
        rec = res.records[cells[0].cell_id]
        assert rec.status == "error" and rec.attempts == 2
        assert "boom" in rec.error
        with pytest.raises(CampaignError):
            res.raise_on_failure()

    def test_one_bad_cell_does_not_kill_campaign(self):
        cells = grid_cells(["HM1", "LM1", "MX1"], ["base"], TINY)
        res = run_campaign(cells, CampaignOptions(jobs=2), runner=fail_hm1_runner)
        assert res.stats["ok"] == 2 and res.stats["failed"] == 1
        assert [r.workload for r in res.failures] == ["HM1"]

    def test_timeout_recorded_and_others_finish(self):
        cells = grid_cells(["HM1", "LM1", "MX1"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=2, timeout=0.5),
            runner=hang_hm1_runner,
        )
        rec = res.records[cells[0].cell_id]
        assert rec.status == "timeout"
        assert "exceeded" in rec.error
        assert res.stats["ok"] == 2

    def test_worker_crash_isolated(self):
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        res = run_campaign(cells, CampaignOptions(jobs=2), runner=crash_hm1_runner)
        hm1, lm1 = cells
        assert res.records[hm1.cell_id].status == "error"
        assert "died" in res.records[hm1.cell_id].error
        assert res.records[lm1.cell_id].ok

    def test_resume_reexecutes_only_unfinished_cells(self, tmp_path):
        man = Manifest(tmp_path / "m.jsonl")
        cells = grid_cells(["HM1", "LM1", "MX1"], ["base"], TINY)
        first = run_campaign(cells, CampaignOptions(jobs=2), manifest=man,
                             runner=fail_hm1_runner)
        assert first.stats["failed"] == 1
        second = run_campaign(cells, CampaignOptions(jobs=2, resume=True),
                              manifest=man, runner=ok_runner)
        assert second.stats == {
            "total": 3, "ok": 3, "failed": 0, "executed": 1,
            "cached": 0, "resumed": 2, "retried": 0,
        }
        # the manifest now records the re-run cell as ok (last record wins)
        assert all(r.ok for r in man.records().values())

    def test_duplicate_cells_deduplicated(self):
        cells = grid_cells(["HM1"], ["base"], TINY) * 3
        res = run_campaign(cells, runner=ok_runner)
        assert res.stats["total"] == 1 and len(res.cells) == 1

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        cache.put(TINY.cache_key("HM1", "base"), fake_result(cells[0]))
        res = run_campaign(cells, cache=cache, runner=ok_runner)
        assert res.stats["cached"] == 1 and res.stats["executed"] == 1
        # executed results were written back (and flushed) to the cache
        fresh = ResultCache(tmp_path / "c.json")
        assert fresh.get(TINY.cache_key("LM1", "base")) is not None

    def test_matrix_ordered_by_cell_id(self):
        cells = grid_cells(["MX1", "HM1"], ["mmd", "base"], TINY)
        res = run_campaign(cells, CampaignOptions(jobs=2), runner=ok_runner)
        matrix = res.matrix()
        ordered = sorted(c.cell_id for c in cells)
        got = [
            Cell(r.workload, r.scheme, TINY).cell_id
            for r in matrix.results.values()
        ]
        assert got == ordered

    def test_progress_counters_snapshot(self):
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        res = run_campaign(cells, CampaignOptions(retries=1, backoff=0.01),
                           runner=flaky_runner)
        # stats mirror what a CounterRegistry snapshot exposes
        assert res.stats["ok"] == 2 and res.stats["retried"] == 2

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            CampaignOptions(jobs=0)
        with pytest.raises(ValueError):
            CampaignOptions(retries=-1)
        with pytest.raises(ValueError):
            CampaignOptions(timeout=0)


# ----------------------------------------------------------------------
# Determinism: sharded execution must match the serial loop exactly
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_parallel_matrix_identical_to_serial(self, tmp_path):
        serial = run_matrix(["LM4"], ["base", "camps-mod"], TINY,
                            cache=ResultCache(tmp_path / "a.json"))
        parallel = run_matrix(["LM4"], ["base", "camps-mod"], TINY,
                              cache=ResultCache(tmp_path / "b.json"), jobs=4)
        assert matrix_digest(serial) == matrix_digest(parallel)
        assert serial.workloads() == parallel.workloads()
        assert serial.schemes() == parallel.schemes()

    def test_spawn_start_method_supported(self, tmp_path):
        # Workers must be spawn-safe (fresh interpreter, pickled tasks).
        cells = grid_cells(["LM4"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=2, start_method="spawn"),
            cache=ResultCache(tmp_path / "c.json"),
        )
        res.raise_on_failure()
        assert summarize(res.result_for(cells[0].cell_id))["cycles"] > 0

    def test_run_seeded_jobs_matches_serial(self, tmp_path):
        from repro.experiments.seeds import run_seeded

        kwargs = dict(
            workloads=["LM4"], schemes=["base", "camps-mod"],
            base_config=TINY, seeds=(1, 2),
        )
        serial = run_seeded(cache=ResultCache(tmp_path / "a.json"), **kwargs)
        sharded = run_seeded(cache=ResultCache(tmp_path / "b.json"), jobs=2,
                             **kwargs)
        assert serial.per_workload == sharded.per_workload

    def test_sweep_jobs_matches_serial(self):
        from repro.experiments.sweep import Sweep

        kwargs = dict(refs_per_core=150, seed=1)
        serial = Sweep("pf_buffer_entries", [4, 8]).run("LM4", **kwargs)
        sharded = Sweep("pf_buffer_entries", [4, 8]).run("LM4", jobs=2, **kwargs)
        for a, b in zip(serial.points, sharded.points):
            assert a.result.cycles == b.result.cycles
            assert a.speedup_vs_base == pytest.approx(b.speedup_vs_base)


# ----------------------------------------------------------------------
# ResultCache: atomicity, batching, schema versioning
# ----------------------------------------------------------------------


class TestResultCache:
    def test_put_batches_until_flush(self, tmp_path):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cache.put("k", fake_result(Cell("HM1", "base", TINY)))
        assert not path.exists()  # nothing persisted yet
        assert cache.get("k") is not None  # but visible in memory
        cache.flush()
        assert path.exists()
        assert ResultCache(path).get("k") is not None

    def test_concurrent_writers_merge_not_clobber(self, tmp_path):
        path = tmp_path / "c.json"
        a, b = ResultCache(path), ResultCache(path)
        a.put("ka", fake_result(Cell("HM1", "base", TINY)))
        b.put("kb", fake_result(Cell("LM1", "base", TINY)))
        a.flush()
        b.flush()  # must re-read and keep a's entry
        fresh = ResultCache(path)
        assert fresh.get("ka") is not None and fresh.get("kb") is not None

    def test_flush_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cache.put("k", fake_result(Cell("HM1", "base", TINY)))
        cache.flush()
        assert [p.name for p in tmp_path.iterdir()] == ["c.json"]

    def test_legacy_flat_format_invalidated(self, tmp_path):
        # Pre-schema caches were a flat {key: fields} dict; they must be
        # treated as empty rather than raising KeyError on lookup.
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"k": {"scheme": "base", "cycles": 1}}))
        cache = ResultCache(path)
        assert cache.get("k") is None

    def test_stale_field_list_invalidated(self, tmp_path):
        path = tmp_path / "c.json"
        payload = {
            "schema": 2,
            "fields": _CACHED_FIELDS[:-1],  # written before a field was added
            "entries": {"k": {f: 0 for f in _CACHED_FIELDS[:-1]}},
        }
        path.write_text(json.dumps(payload))
        assert ResultCache(path).get("k") is None

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        cache = ResultCache(path)
        assert cache.get("k") is None
        cache.put("k", fake_result(Cell("HM1", "base", TINY)))
        cache.flush()
        assert ResultCache(path).get("k") is not None

    def test_malformed_entry_is_a_miss(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "schema": 2, "fields": _CACHED_FIELDS,
            "entries": {"k": {"cycles": 1}},  # entry itself is torn
        }))
        assert ResultCache(path).get("k") is None

    def test_disabled_cache_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_CACHE", "off")
        cache = ResultCache()
        cache.put("k", fake_result(Cell("HM1", "base", TINY)))
        cache.flush()
        assert cache.get("k") is None
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCampaignCLI:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["campaign"])
        assert args.jobs >= 1 and args.retries == 0
        assert args.manifest == ".repro_campaign.jsonl"
        assert not args.resume

    def test_unknown_scheme_rejected(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE", "off")
        with pytest.raises(SystemExit):
            main(["campaign", "--schemes", "magic"])

    def test_campaign_command_end_to_end(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
        manifest = tmp_path / "m.jsonl"
        argv = [
            "campaign", "--mixes", "LM4", "--schemes", "base,camps-mod",
            "--refs", "150", "--jobs", "2", "--manifest", str(manifest),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2/2 ok" in out and "geomean IPC" in out
        # resume over a finished manifest simulates nothing
        assert main(argv + ["--resume", "--quiet"]) == 0
        assert "0 simulated" in capsys.readouterr().out


class TestProgressEta:
    """ETA estimation: executed cells only, effective-parallelism divisor."""

    class _Rec:
        def __init__(self, elapsed=2.0, ok=True, cached=False):
            self.ok = ok
            self.status = "ok" if ok else "error"
            self.elapsed = elapsed
            self.cached = cached
            self.workload = "HM1"
            self.scheme = "base"

    def _progress(self, total, jobs):
        from repro.campaign.progress import CampaignProgress

        return CampaignProgress(total=total, jobs=jobs)

    def test_no_estimate_until_one_cell_executed(self):
        p = self._progress(total=4, jobs=2)
        assert p.eta_seconds() is None
        p.cell_done(self._Rec(elapsed=0.0, cached=True), source="cached")
        assert p.eta_seconds() is None  # cache hits carry no signal

    def test_mean_over_executed_cells(self):
        p = self._progress(total=10, jobs=1)
        p.cell_done(self._Rec(elapsed=2.0))
        p.cell_done(self._Rec(elapsed=4.0))
        assert p.eta_seconds() == pytest.approx(8 * 3.0)

    def test_cached_cells_excluded_from_rate(self):
        # 50 instant cache hits must not drag an honest 2 s/cell mean down
        p = self._progress(total=100, jobs=1)
        for _ in range(50):
            p.cell_done(self._Rec(elapsed=0.0, cached=True), source="cached")
        p.cell_done(self._Rec(elapsed=2.0))
        p.cell_done(self._Rec(elapsed=2.0))
        assert p.eta_seconds() == pytest.approx((100 - 52) * 2.0)

    def test_cached_flag_honoured_regardless_of_source(self):
        # a mislabelled source must not leak a 0 s sample into the mean
        p = self._progress(total=4, jobs=1)
        p.cell_done(self._Rec(elapsed=0.0, cached=True), source="executed")
        assert p.cached == 1 and p.eta_seconds() is None
        p.cell_done(self._Rec(elapsed=3.0))
        assert p.eta_seconds() == pytest.approx(2 * 3.0)

    def test_resumed_cells_excluded_from_rate(self):
        p = self._progress(total=4, jobs=1)
        p.cell_done(self._Rec(elapsed=0.0), source="resumed")
        assert p.resumed == 1 and p.eta_seconds() is None

    def test_effective_parallelism_caps_divisor(self):
        # 8 workers with 3 cells left run at most 3 of them: dividing by 8
        # would promise a 3x-too-fast tail
        p = self._progress(total=4, jobs=8)
        p.cell_done(self._Rec(elapsed=6.0))
        assert p.eta_seconds() == pytest.approx(3 * 6.0 / 3)

    def test_full_pool_divides_by_jobs(self):
        p = self._progress(total=100, jobs=4)
        p.cell_done(self._Rec(elapsed=4.0))
        assert p.eta_seconds() == pytest.approx(99 * 4.0 / 4)

    def test_eta_zero_when_finished(self):
        p = self._progress(total=1, jobs=2)
        p.cell_done(self._Rec(elapsed=5.0))
        assert p.eta_seconds() == 0.0

    def test_status_is_json_ready(self):
        p = self._progress(total=2, jobs=2)
        p.cell_done(self._Rec(elapsed=1.0))
        st = p.status()
        assert st["total"] == 2 and st["done"] == 1 and st["executed"] == 1
        assert st["eta_seconds"] == pytest.approx(1.0)
        assert st["wall_seconds"] >= 0
        json.dumps(st)  # must serialize as-is for the driver spool
