"""Integration tests for the host controller + HMC device pair."""

import pytest

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.hmc.host import HostController
from repro.request import MemoryRequest
from repro.sim.engine import Engine


@pytest.fixture
def rig():
    cfg = HMCConfig(vaults=4, banks_per_vault=4)
    eng = Engine()
    dev = HMCDevice(cfg, eng, scheme="camps-mod")
    host = HostController(cfg, eng, dev)
    return cfg, eng, dev, host


def send(host, eng, addr, write=False, at=0):
    req = MemoryRequest(addr, write, issue_cycle=at)
    eng.schedule_at(max(at, eng.now), host.send, req)
    return req


class TestRoundTrip:
    def test_read_completes_with_decode(self, rig):
        cfg, eng, dev, host = rig
        m = AddressMapping(cfg)
        addr = m.encode(2, 1, 77, 5)
        req = send(host, eng, addr)
        eng.run()
        assert req.is_complete
        assert (req.vault, req.bank, req.row, req.column) == (2, 1, 77, 5)
        assert req.latency > 0

    def test_latency_includes_links_and_crossbar(self, rig):
        cfg, eng, dev, host = rig
        req = send(host, eng, 0)
        eng.run()
        floor = (
            2 * cfg.serdes_latency
            + 2 * cfg.crossbar_latency
            + cfg.timings.row_empty_read
        )
        assert req.latency >= floor

    def test_write_round_trip(self, rig):
        cfg, eng, dev, host = rig
        req = send(host, eng, 0, write=True)
        eng.run()
        assert req.is_complete
        assert host.stats.counter("writes_sent").value == 1

    def test_callback_invoked(self, rig):
        cfg, eng, dev, host = rig
        done = []
        req = MemoryRequest(0, False, callback=done.append)
        eng.schedule(0, host.send, req)
        eng.run()
        assert done == [req]

    def test_outstanding_tracks_in_flight(self, rig):
        cfg, eng, dev, host = rig
        send(host, eng, 0)
        assert host.outstanding == 0  # not sent yet
        eng.run(max_events=1)
        assert host.outstanding == 1
        eng.run()
        assert host.outstanding == 0

    def test_many_requests_complete(self, rig):
        cfg, eng, dev, host = rig
        m = AddressMapping(cfg)
        reqs = [
            send(host, eng, m.encode(i % 4, i % 4, i, i % 16), write=i % 3 == 0, at=i * 2)
            for i in range(100)
        ]
        eng.run()
        assert all(r.is_complete for r in reqs)
        assert host.stats.counter("completions").value == 100


class TestDeviceAggregation:
    def test_finalize_idempotent(self, rig):
        cfg, eng, dev, host = rig
        send(host, eng, 0)
        eng.run()
        dev.finalize()
        e1 = dev.energy.total_pj()
        dev.finalize()
        assert dev.energy.total_pj() == e1

    def test_energy_accumulates_all_sources(self, rig):
        cfg, eng, dev, host = rig
        send(host, eng, 0)
        eng.run()
        dev.finalize()
        assert dev.energy.acts >= 1
        assert dev.energy.link_flits >= 2  # request + response
        assert dev.energy.cycles == eng.now

    def test_stats_summary_keys(self, rig):
        cfg, eng, dev, host = rig
        send(host, eng, 0)
        eng.run()
        dev.finalize()
        s = dev.stats_summary()
        for key in (
            "demand_accesses",
            "conflict_rate",
            "row_accuracy",
            "energy_pj",
            "prefetches_issued",
        ):
            assert key in s

    def test_requires_host_attached(self):
        cfg = HMCConfig(vaults=4, banks_per_vault=4)
        eng = Engine()
        dev = HMCDevice(cfg, eng, scheme="none")
        req = MemoryRequest(0, False)
        req.vault, req.bank, req.row, req.column = 0, 0, 0, 0
        with pytest.raises(RuntimeError):
            dev._on_vault_response(req, 0)

    def test_per_vault_controllers_created(self, rig):
        cfg, eng, dev, host = rig
        assert len(dev.vaults) == cfg.vaults
        assert all(vc.prefetcher.name == "camps-mod" for vc in dev.vaults)


class TestLinkAssignment:
    def test_vault_interleaved_static_assignment(self, rig):
        cfg, eng, dev, host = rig
        assert host._link_for(0) is host.links[0]
        assert host._link_for(1) is host.links[1 % len(host.links)]

    def test_link_utilization_reported(self, rig):
        cfg, eng, dev, host = rig
        for i in range(20):
            send(host, eng, i * 64, at=i)
        eng.run()
        assert 0.0 < host.link_utilization() < 1.0

    def test_mean_latency_reported(self, rig):
        cfg, eng, dev, host = rig
        send(host, eng, 0)
        eng.run()
        assert host.mean_memory_latency() > 0
        assert host.mean_read_latency() > 0
