"""Property tests: the batched fast loop is observationally identical to
the serial heap.

``Engine.run()`` with no limit/spans/watchdog takes the cohort-dispatch
fast loop (with time-warp clock jumps); ``run(max_events=1)`` in a step
loop forces the general serial loop.  Both must fire the same callbacks in
the same ``(time, priority, seq)`` order with the same clock readings -
including schedules generated *inside* callbacks (same-cycle reentrancy)
and cancellations.  Hypothesis drives randomized schedules at both
entry points and compares full observation logs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

# One scheduled call: (delay, priority, weak, reentry_spec) where
# reentry_spec is None or (extra_delay, extra_priority) scheduled from
# inside the callback (extra_delay 0 = same-cycle reentrancy).
_CALL = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=-2, max_value=2),
    st.booleans(),
    st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=-2, max_value=2),
        ),
    ),
)

_SCHEDULE = st.lists(_CALL, min_size=1, max_size=40)

#: indices (mod schedule length) of handled events to cancel before running
_CANCELS = st.lists(st.integers(min_value=0, max_value=39), max_size=10)


def _run_trace(schedule, cancels, serial: bool):
    """Build an engine from ``schedule``, run it, return the observation
    log: (tag, engine.now) per fired callback, plus the final clock."""
    eng = Engine()
    log = []

    def make_cb(tag, reentry):
        def cb():
            log.append((tag, eng.now))
            if reentry is not None:
                extra_delay, extra_prio = reentry
                eng.call_at(
                    eng.now + extra_delay,
                    lambda t=f"{tag}+r": log.append((t, eng.now)),
                    priority=extra_prio,
                )

        return cb

    handles = []
    for i, (delay, prio, weak, reentry) in enumerate(schedule):
        cb = make_cb(f"cb{i}", reentry)
        if i % 3 == 0:
            # handled event (cancellable)
            handles.append(eng.schedule(delay, cb, priority=prio, weak=weak))
        elif i % 3 == 1:
            eng.call_at(delay, cb, priority=prio, weak=weak)
        else:
            eng.schedule_at(delay, cb, priority=prio)
    for c in cancels:
        if handles:
            handles[c % len(handles)].cancel()
    if serial:
        while eng.run(max_events=1):
            pass
    else:
        eng.run()
    return log, eng.now, eng.events_fired, eng.idle_cycles_skipped


@settings(max_examples=200, deadline=None)
@given(schedule=_SCHEDULE, cancels=_CANCELS)
def test_fast_loop_matches_serial_heap(schedule, cancels):
    fast = _run_trace(schedule, cancels, serial=False)
    serial = _run_trace(schedule, cancels, serial=True)
    assert fast[0] == serial[0], "fire order/clock diverged"
    assert fast[1] == serial[1], "final clock diverged"
    assert fast[2] == serial[2], "events_fired diverged"


@settings(max_examples=100, deadline=None)
@given(schedule=_SCHEDULE)
def test_warp_accounting_matches_serial(schedule):
    """idle_cycles_skipped is identical between the loops: the fast loop's
    per-cohort warp accounting equals the serial loop's per-event one."""
    fast = _run_trace(schedule, [], serial=False)
    serial = _run_trace(schedule, [], serial=True)
    assert fast[3] == serial[3]


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(
        st.integers(min_value=0, max_value=10), min_size=1, max_size=20
    )
)
def test_same_cycle_cascade(delays):
    """Chains that keep scheduling same-cycle work drain in seq order in
    both loops (the cohort peek must track the live heap, not a snapshot)."""

    def run(serial):
        eng = Engine()
        log = []

        def chain(depth):
            log.append((depth, eng.now))
            if depth < 3:
                # same cycle, lower priority than the default: sorts ahead
                # of everything else pending at this cycle
                eng.call_at(eng.now, chain, depth + 1, priority=-1)

        for d in delays:
            eng.schedule(d, chain, 0)
        if serial:
            while eng.run(max_events=1):
                pass
        else:
            eng.run()
        return log, eng.events_fired

    assert run(False) == run(True)


def test_cancelled_cohort_member_is_skipped():
    """A cancel between scheduling and firing must drop the event in both
    loops, even mid-cohort."""

    def run(serial):
        eng = Engine()
        log = []
        eng.schedule(5, log.append, "a")
        victim = eng.schedule(5, log.append, "victim")
        eng.schedule(5, log.append, "b")
        eng.schedule(0, victim.cancel)
        if serial:
            while eng.run(max_events=1):
                pass
        else:
            eng.run()
        return log

    assert run(False) == run(True) == ["a", "b"]


def test_weak_only_tail_stops_both_loops():
    def run(serial):
        eng = Engine()
        log = []
        eng.schedule(1, log.append, "strong")

        def rearm():
            log.append("weak")
            eng.call_at(eng.now + 1, rearm, weak=True)

        eng.call_at(3, rearm, weak=True)
        if serial:
            while eng.run(max_events=1):
                pass
        else:
            eng.run()
        return log, eng.now

    fast, serial = run(False), run(True)
    assert fast == serial
    assert fast[0] == ["strong"]  # the weak self-rearm never fires
