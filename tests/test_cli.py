"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "HM1"])
        assert args.scheme == "camps-mod"
        assert args.baseline == "base"
        assert args.refs == 4000

    def test_unknown_mix_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "HM9"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "HM1", "--scheme", "magic"])

    def test_figure_numbers(self):
        for n in "56789":
            args = build_parser().parse_args(["figure", n])
            assert args.number == n
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "4"])


class TestCommands:
    def test_schemes_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for s in ("base", "base-hit", "mmd", "camps", "camps-mod", "none"):
            assert s in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "32 vaults" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "HM1" in out and "bwaves" in out

    def test_trace_command(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main(["trace", "gcc", "--refs", "500", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "mpki" in out
        assert out_file.exists()

    def test_trace_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["trace", "doom", "--refs", "100"])

    def test_run_command(self, capsys):
        rc = main(["run", "LM4", "--refs", "300", "--scheme", "camps-mod"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "geomean IPC" in out
        assert "speedup vs base" in out

    def test_run_without_baseline_comparison(self, capsys):
        main(["run", "LM4", "--refs", "300", "--scheme", "base"])
        out = capsys.readouterr().out
        assert "speedup vs" not in out

    def test_figure_command_with_csv_and_chart(self, capsys, tmp_path):
        csv = tmp_path / "fig5.csv"
        rc = main([
            "figure", "5", "--mixes", "LM4", "--refs", "300",
            "--csv", str(csv), "--chart", "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "legend:" in out
        assert csv.exists()

    def test_figure_bad_mixes(self):
        with pytest.raises(SystemExit):
            main(["figure", "5", "--mixes", "NOPE", "--refs", "100"])
