"""Unit + property tests for the prefetch buffer and its recency stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buffer import (
    BufferEntry,
    LRUPolicy,
    PrefetchBuffer,
    UtilizationRecencyPolicy,
)

FULL = 0xFFFF  # 16 lines


def make(entries=4, policy=None, lines=16):
    return PrefetchBuffer(entries, lines, policy or LRUPolicy())


class TestInsertLookup:
    def test_miss_on_empty(self):
        buf = make()
        assert buf.lookup(0, 1, 0, False) is None
        assert buf.misses == 1

    def test_hit_after_insert(self):
        buf = make()
        buf.insert(0, 1, FULL, ready_time=100, now=50)
        e = buf.lookup(0, 1, 3, False)
        assert e is not None
        assert buf.hits == 1
        assert e.ready_time == 100

    def test_partial_mask_line_miss(self):
        buf = make()
        buf.insert(0, 1, 0b0110, 0, 0)
        assert buf.lookup(0, 1, 1, False) is not None
        assert buf.lookup(0, 1, 3, False) is None  # line not staged

    def test_lookup_tracks_utilization(self):
        buf = make()
        buf.insert(0, 1, FULL, 0, 0)
        buf.lookup(0, 1, 3, False)
        buf.lookup(0, 1, 3, False)
        buf.lookup(0, 1, 5, False)
        e = buf.get(0, 1)
        assert e.utilization == 2  # distinct lines
        assert e.accesses == 3
        assert buf.lines_used == 2

    def test_write_marks_dirty(self):
        buf = make()
        buf.insert(0, 1, FULL, 0, 0)
        buf.lookup(0, 1, 3, True)
        assert buf.get(0, 1).is_dirty
        assert buf.get(0, 1).dirty_mask == 1 << 3

    def test_insert_merges_masks(self):
        buf = make()
        buf.insert(0, 1, 0b0011, ready_time=10, now=0)
        victim = buf.insert(0, 1, 0b1100, ready_time=20, now=5)
        assert victim is None
        e = buf.get(0, 1)
        assert e.valid_mask == 0b1111
        assert e.ready_time == 20
        assert len(buf) == 1

    def test_insert_rejects_bad_masks(self):
        buf = make()
        with pytest.raises(ValueError):
            buf.insert(0, 1, 0, 0, 0)
        with pytest.raises(ValueError):
            buf.insert(0, 1, 1 << 16, 0, 0)

    def test_contains(self):
        buf = make()
        buf.insert(2, 9, FULL, 0, 0)
        assert (2, 9) in buf
        assert (2, 8) not in buf


class TestEviction:
    def test_capacity_respected(self):
        buf = make(entries=2)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        victim = buf.insert(0, 3, FULL, 0, 0)
        assert victim is not None
        assert len(buf) == 2

    def test_lru_evicts_oldest_untouched(self):
        buf = make(entries=2)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        victim = buf.insert(0, 3, FULL, 0, 0)
        assert victim.row == 1

    def test_lookup_refreshes_lru(self):
        buf = make(entries=2)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        buf.lookup(0, 1, 0, False)  # row 1 becomes MRU
        victim = buf.insert(0, 3, FULL, 0, 0)
        assert victim.row == 2

    def test_invalidate_removes(self):
        buf = make()
        buf.insert(0, 1, FULL, 0, 0)
        e = buf.invalidate(0, 1)
        assert e is not None and (0, 1) not in buf
        assert buf.invalidate(0, 1) is None

    def test_invalidate_keeps_recency_dense(self):
        buf = make(entries=4)
        for row in range(1, 5):
            buf.insert(0, row, FULL, 0, 0)
        buf.invalidate(0, 2)
        assert buf.check_recency_invariant()


class TestRecencyStack:
    def test_mru_value_is_capacity_minus_one(self):
        buf = make(entries=4)
        buf.insert(0, 1, FULL, 0, 0)
        assert buf.get(0, 1).recency == 3

    def test_paper_semantics_16_entries(self):
        """The paper: MRU row holds 15, LRU row holds 0 with a full buffer."""
        buf = make(entries=16)
        for row in range(16):
            buf.insert(0, row, FULL, 0, 0)
        values = sorted(e.recency for e in buf.entries())
        assert values == list(range(16))
        assert buf.get(0, 15).recency == 15  # last inserted = MRU
        assert buf.get(0, 0).recency == 0  # first inserted = LRU

    def test_access_promotes_and_decrements_above(self):
        buf = make(entries=4)
        for row in [1, 2, 3, 4]:
            buf.insert(0, row, FULL, 0, 0)
        # recencies: r1=0 r2=1 r3=2 r4=3
        buf.lookup(0, 2, 0, False)
        assert buf.get(0, 2).recency == 3
        assert buf.get(0, 3).recency == 1  # was 2, decremented
        assert buf.get(0, 4).recency == 2  # was 3, decremented
        assert buf.get(0, 1).recency == 0  # below, unchanged

    def test_invariant_after_mixed_operations(self):
        buf = make(entries=4)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        buf.lookup(0, 1, 5, False)
        buf.insert(0, 3, FULL, 0, 0)
        buf.insert(0, 4, FULL, 0, 0)
        buf.insert(0, 5, FULL, 0, 0)  # eviction
        buf.lookup(0, 5, 1, True)
        assert buf.check_recency_invariant()

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "lookup", "invalidate"]),
                st.integers(0, 9),  # row
                st.integers(0, 15),  # column
            ),
            max_size=60,
        ),
        entries=st.integers(1, 8),
    )
    def test_recency_invariant_holds_under_any_op_sequence(self, ops, entries):
        buf = make(entries=entries)
        for op, row, col in ops:
            if op == "insert":
                buf.insert(0, row, FULL, 0, 0)
            elif op == "lookup":
                buf.lookup(0, row, col, False)
            else:
                buf.invalidate(0, row)
            assert buf.check_recency_invariant()
            assert len(buf) <= entries


class TestAccuracyAccounting:
    def test_used_row_counts_on_eviction(self):
        buf = make(entries=1)
        buf.insert(0, 1, FULL, 0, 0)
        buf.lookup(0, 1, 0, False)
        buf.insert(0, 2, FULL, 0, 0)  # evicts used row 1
        assert buf.rows_retired_used == 1
        assert buf.rows_retired_unused == 0

    def test_unused_row_counts_on_eviction(self):
        buf = make(entries=1)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        assert buf.rows_retired_unused == 1

    def test_finalize_counts_residents(self):
        buf = make(entries=4)
        buf.insert(0, 1, FULL, 0, 0)
        buf.insert(0, 2, FULL, 0, 0)
        buf.lookup(0, 1, 0, False)
        buf.finalize()
        assert buf.rows_retired_used == 1
        assert buf.rows_retired_unused == 1
        assert buf.row_accuracy == pytest.approx(0.5)

    def test_seeded_rows_not_counted_used_without_hits(self):
        buf = make(entries=1)
        buf.insert(0, 1, FULL, 0, 0)
        buf.get(0, 1).seed_ref(0b1111)
        buf.insert(0, 2, FULL, 0, 0)
        assert buf.rows_retired_unused == 1

    def test_line_accuracy(self):
        buf = make(entries=4)
        buf.insert(0, 1, FULL, 0, 0)  # 16 lines
        buf.lookup(0, 1, 0, False)
        buf.lookup(0, 1, 1, False)
        assert buf.line_accuracy == pytest.approx(2 / 16)

    def test_dirty_eviction_counter(self):
        buf = make(entries=1)
        buf.insert(0, 1, FULL, 0, 0)
        buf.lookup(0, 1, 0, True)
        buf.insert(0, 2, FULL, 0, 0)
        assert buf.dirty_evictions == 1

    def test_accuracy_empty_buffer(self):
        buf = make()
        assert buf.row_accuracy == 0.0
        assert buf.line_accuracy == 0.0


class TestEntry:
    def test_fully_consumed(self):
        e = BufferEntry(0, 1, FULL, 0, 0)
        assert not e.fully_consumed(16)
        e.ref_mask = FULL
        assert e.fully_consumed(16)

    def test_seed_ref_feeds_utilization_only(self):
        e = BufferEntry(0, 1, FULL, 0, 0)
        e.seed_ref(0b111)
        assert e.utilization == 3
        assert not e.was_used

    def test_valid_lines(self):
        e = BufferEntry(0, 1, 0b1010, 0, 0)
        assert e.valid_lines == 2

    def test_key(self):
        assert BufferEntry(3, 9, FULL, 0, 0).key == (3, 9)


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0, 16, LRUPolicy())
        with pytest.raises(ValueError):
            PrefetchBuffer(4, 0, LRUPolicy())

    def test_recency_weight_validated(self):
        with pytest.raises(ValueError):
            UtilizationRecencyPolicy(recency_weight=0)
