"""Campaign integration for fabric cells: grids, ids, determinism, CLI."""

import json

import pytest

from repro.campaign import (
    CampaignOptions,
    Cell,
    Manifest,
    execute_cell,
    fabric_grid_cells,
    grid_cells,
    matrix_digest,
    run_campaign,
)
from repro.cli import build_parser, main
from repro.experiments.runner import ExperimentConfig
from repro.hmc.config import HMCConfig

TINY = ExperimentConfig(
    refs_per_core=100,
    seed=1,
    hmc=HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=4),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))


class TestFabricCells:
    def test_pre_fabric_cell_id_unchanged(self):
        """Cells without a topology must keep their exact pre-fabric id:
        caches, manifests and resume state key on these strings."""
        plain = Cell("HM1", "base", TINY)
        assert plain.topology is None
        assert "@" not in plain.cell_id
        assert plain.cell_id.startswith(TINY.cache_key("HM1", "base"))

    def test_topology_qualifies_id_and_digest(self):
        plain = Cell("HM1", "base", TINY)
        fab = Cell("HM1", "base", TINY, topology="chain:2")
        assert "@chain:2|" in fab.cell_id
        assert fab.cell_id != plain.cell_id
        # the digest token must differ too, not just the readable prefix
        assert fab.cell_id.rsplit("|", 1)[1] != plain.cell_id.rsplit("|", 1)[1]

    def test_distinct_topologies_distinct_ids(self):
        a = Cell("HM1", "base", TINY, topology="chain:2")
        b = Cell("HM1", "base", TINY, topology="ring:2")
        assert a.cell_id != b.cell_id

    def test_fabric_cells_bypass_cache(self):
        assert Cell("HM1", "base", TINY).cacheable
        assert not Cell("HM1", "base", TINY, topology="chain:2").cacheable

    def test_describe(self):
        assert (
            Cell("HM1", "camps", TINY, topology="star:4").describe()
            == "HM1/camps@star:4"
        )


class TestFabricGrid:
    def test_topology_major_order(self):
        cells = fabric_grid_cells(
            ["chain:1", "chain:2"], ["HM1", "MX1"], ["base", "camps"], TINY
        )
        assert len(cells) == 8
        assert [c.topology for c in cells[:4]] == ["chain:1"] * 4
        assert [(c.workload, c.scheme) for c in cells[:4]] == [
            ("HM1", "base"),
            ("HM1", "camps"),
            ("MX1", "base"),
            ("MX1", "camps"),
        ]

    def test_bad_spec_fails_at_build_time(self):
        with pytest.raises(ValueError, match="unknown topology"):
            fabric_grid_cells(["chain:2", "mesh:4"], ["HM1"], ["base"], TINY)

    def test_plain_grid_untouched(self):
        for cell in grid_cells(["HM1"], ["base"], TINY):
            assert cell.topology is None


class TestFabricExecution:
    def test_execute_cell_dispatches_on_topology(self):
        summary = execute_cell(Cell("HM1", "camps-mod", TINY, topology="chain:2"))
        assert summary["cycles"] > 0
        assert summary["workload"] == "HM1@chain:2"
        assert len(summary["core_ipc"]) == 16

    def test_jobs_parity(self, tmp_path):
        """The fabric grid must produce the identical matrix digest whether
        run serially or sharded across workers."""
        cells = fabric_grid_cells(["chain:2"], ["HM1"], ["base", "camps-mod"], TINY)
        serial = run_campaign(
            cells, CampaignOptions(jobs=1),
            manifest=Manifest(str(tmp_path / "serial.jsonl")),
        )
        sharded = run_campaign(
            cells, CampaignOptions(jobs=2),
            manifest=Manifest(str(tmp_path / "sharded.jsonl")),
        )
        serial.raise_on_failure()
        sharded.raise_on_failure()
        assert matrix_digest(serial.matrix()) == matrix_digest(sharded.matrix())

    def test_topology_sweep_keeps_every_point(self, tmp_path):
        """A sweep of one (mix, scheme) across topologies must not collapse:
        the matrix keys by (workload, scheme), so cells qualify the name."""
        cells = fabric_grid_cells(
            ["chain:1", "chain:2"], ["HM1"], ["camps-mod"], TINY
        )
        res = run_campaign(
            cells, manifest=Manifest(str(tmp_path / "m.jsonl"))
        )
        res.raise_on_failure()
        assert set(res.matrix().results) == {
            ("HM1@chain:1", "camps-mod"),
            ("HM1@chain:2", "camps-mod"),
        }


class TestFabricCLI:
    def test_run_parses_topology(self):
        args = build_parser().parse_args(["run", "HM1", "--topology", "chain:4"])
        assert args.topology == "chain:4"

    def test_run_topology_json(self, capsys):
        rc = main([
            "run", "MX1", "--topology", "chain:2", "--scheme", "camps-mod",
            "--refs", "100", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["topology"] == "chain:2"
        assert payload["fabric"]["cubes"] == 2
        assert payload["fabric"]["hop_flits"] > 0
        assert set(payload["fabric"]["hop_histogram"]) == {"1", "2"} or set(
            payload["fabric"]["hop_histogram"]
        ) == {1, 2}

    def test_run_bad_topology_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "HM1", "--topology", "mesh:4", "--refs", "50"])

    def test_campaign_topology_grid(self, tmp_path, capsys):
        rc = main([
            "campaign", "--topology", "chain:1,chain:2", "--mixes", "HM1",
            "--schemes", "camps-mod", "--refs", "100",
            "--manifest", str(tmp_path / "m.jsonl"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 topologies" in out
        assert "HM1@chain:1" in out and "HM1@chain:2" in out
        records = [
            json.loads(line)
            for line in (tmp_path / "m.jsonl").read_text().splitlines()
        ]
        done = [r for r in records if r.get("status") == "ok"]
        assert len(done) == 2
