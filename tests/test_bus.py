"""Unit tests for the shared per-vault TSV data bus."""

import pytest

from repro.dram.bus import TsvBus


class TestReservation:
    def test_immediate_reservation(self):
        bus = TsvBus()
        assert bus.reserve(10, 5) == 10
        assert bus.busy_until == 15

    def test_serialization(self):
        bus = TsvBus()
        bus.reserve(0, 10)
        assert bus.reserve(0, 10) == 10
        assert bus.reserve(0, 10) == 20

    def test_gap_respected(self):
        bus = TsvBus()
        bus.reserve(0, 5)
        assert bus.reserve(100, 5) == 100

    def test_zero_duration_allowed(self):
        bus = TsvBus()
        assert bus.reserve(7, 0) == 7
        assert bus.busy_until == 7

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TsvBus().reserve(0, -1)

    def test_counters(self):
        bus = TsvBus()
        bus.reserve(0, 5)
        bus.reserve(0, 3)
        assert bus.reservations == 2
        assert bus.busy_cycles == 8

    def test_utilization(self):
        bus = TsvBus()
        bus.reserve(0, 25)
        assert bus.utilization(100) == pytest.approx(0.25)
        assert bus.utilization(0) == 0.0
