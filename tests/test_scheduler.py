"""Unit tests for FR-FCFS scheduling."""

import pytest

from repro.dram.bank import AccessKind, Bank
from repro.dram.timing import DRAMTimings
from repro.request import MemoryRequest
from repro.vault.queues import VaultQueues
from repro.vault.scheduler import FRFCFSScheduler


def req(bank=0, row=0, write=False):
    r = MemoryRequest(0, write)
    r.bank, r.row = bank, row
    return r


@pytest.fixture
def setup():
    t = DRAMTimings()
    banks = [Bank(i, t) for i in range(4)]
    queues = VaultQueues(8, 8)
    sched = FRFCFSScheduler(banks, queues)
    return banks, queues, sched


class TestFirstReady:
    def test_oldest_when_no_row_hits(self, setup):
        banks, q, s = setup
        a, b = req(bank=0, row=1), req(bank=1, row=2)
        q.admit(a)
        q.admit(b)
        assert s.next_request(0) is a

    def test_row_hit_bypasses_older(self, setup):
        banks, q, s = setup
        banks[1].access(AccessKind.READ, 7, 0)  # open row 7 in bank 1
        now = banks[1].busy_until
        older = req(bank=0, row=1)
        hit = req(bank=1, row=7)
        q.admit(older)
        q.admit(hit)
        assert s.next_request(now) is hit
        assert s.row_hit_issues == 1

    def test_oldest_row_hit_wins_among_hits(self, setup):
        banks, q, s = setup
        banks[0].access(AccessKind.READ, 7, 0)
        now = banks[0].busy_until
        h1, h2 = req(bank=0, row=7), req(bank=0, row=7)
        q.admit(h1)
        q.admit(h2)
        assert s.next_request(now) is h1

    def test_busy_bank_skipped(self, setup):
        banks, q, s = setup
        banks[0].access(AccessKind.READ, 1, 0)  # bank 0 busy until finish
        blocked = req(bank=0, row=1)
        ready = req(bank=1, row=2)
        q.admit(blocked)
        q.admit(ready)
        assert s.next_request(0) is ready

    def test_nothing_ready_returns_none(self, setup):
        banks, q, s = setup
        banks[0].access(AccessKind.READ, 1, 0)
        q.admit(req(bank=0, row=1))
        assert s.next_request(0) is None

    def test_chosen_request_removed_from_queue(self, setup):
        banks, q, s = setup
        a = req(bank=0, row=1)
        q.admit(a)
        s.next_request(0)
        assert len(q.reads) == 0


class TestReadWritePriority:
    def test_reads_before_writes(self, setup):
        banks, q, s = setup
        w = req(bank=0, row=1, write=True)
        r = req(bank=1, row=2, write=False)
        q.admit(w)
        q.admit(r)
        assert s.next_request(0) is r

    def test_writes_issue_when_no_reads(self, setup):
        banks, q, s = setup
        w = req(bank=0, row=1, write=True)
        q.admit(w)
        assert s.next_request(0) is w

    def test_drain_mode_flips_priority(self):
        t = DRAMTimings()
        banks = [Bank(i, t) for i in range(4)]
        q = VaultQueues(8, 8)
        s = FRFCFSScheduler(banks, q, write_high_watermark=2, write_low_watermark=0)
        q.admit(req(bank=1, row=9))
        w1, w2 = req(bank=0, row=1, write=True), req(bank=0, row=2, write=True)
        q.admit(w1)
        q.admit(w2)
        assert s.next_request(0) is w1  # draining: writes first
        assert s.draining

    def test_drain_mode_exits_at_low_watermark(self):
        t = DRAMTimings()
        banks = [Bank(i, t) for i in range(4)]
        q = VaultQueues(8, 8)
        s = FRFCFSScheduler(banks, q, write_high_watermark=2, write_low_watermark=0)
        q.admit(req(bank=0, row=1, write=True))
        q.admit(req(bank=1, row=2, write=True))
        s.next_request(0)
        s.next_request(0)  # write queue now empty -> below low watermark
        r = req(bank=2, row=3)
        q.admit(r)
        assert s.next_request(0) is r  # back to read priority
        assert not s.draining

    def test_watermark_validation(self):
        t = DRAMTimings()
        banks = [Bank(0, t)]
        q = VaultQueues(8, 8)
        with pytest.raises(ValueError):
            FRFCFSScheduler(banks, q, write_high_watermark=1, write_low_watermark=5)


class TestWakeup:
    def test_earliest_wakeup_none_when_empty(self, setup):
        banks, q, s = setup
        assert s.earliest_wakeup(0) is None

    def test_earliest_wakeup_none_when_issueable(self, setup):
        banks, q, s = setup
        q.admit(req(bank=0, row=1))
        assert s.earliest_wakeup(0) is None

    def test_earliest_wakeup_min_busy_until(self, setup):
        banks, q, s = setup
        banks[0].access(AccessKind.READ, 1, 0)
        banks[1].access(AccessKind.READ, 1, 0)
        banks[1].access(AccessKind.READ, 1, 0)  # bank 1 busy longer
        q.admit(req(bank=0, row=1))
        q.admit(req(bank=1, row=1))
        assert s.earliest_wakeup(0) == banks[0].busy_until
