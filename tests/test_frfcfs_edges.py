"""FR-FCFS edge cases: exact watermark transitions, oldest-first tie-breaks,
and randomized equivalence of the indexed scheduler against a naive oracle.

The indexed scheduler scans per-bank buckets; its claim (module docstring of
``repro.vault.scheduler``) is order-identity with the naive whole-FIFO scan:
oldest ready row hit, else oldest ready request, with write-drain hysteresis
deciding direction priority.  The oracle here *is* that naive scan, driven
against the same queues and banks over randomized admission/issue streams.
"""

import random

import pytest

from repro.dram.bank import AccessKind, Bank
from repro.dram.timing import DRAMTimings
from repro.request import MemoryRequest
from repro.vault.queues import VaultQueues
from repro.vault.scheduler import FRFCFSScheduler


def req(bank=0, row=0, write=False):
    r = MemoryRequest(0, write)
    r.bank, r.row = bank, row
    return r


def make(high, low, nbanks=4, depth=8):
    t = DRAMTimings()
    banks = [Bank(i, t) for i in range(nbanks)]
    queues = VaultQueues(depth, depth)
    sched = FRFCFSScheduler(
        banks, queues, write_high_watermark=high, write_low_watermark=low
    )
    return banks, queues, sched


# ----------------------------------------------------------------------
# Exact watermark transitions
# ----------------------------------------------------------------------
class TestWatermarkEdges:
    def test_drain_enters_exactly_at_high(self):
        banks, q, s = make(high=3, low=1)
        q.admit(req(bank=0))
        q.admit(req(bank=1, write=True))
        q.admit(req(bank=2, write=True))
        # one write below the high watermark: reads keep priority
        got = s.next_request(0)
        assert not got.is_write
        assert not s.draining and s.drain_entries == 0
        q.admit(req(bank=3, write=True))
        q.admit(req(bank=0))
        # pending writes == high: drain begins on this very call
        got = s.next_request(0)
        assert got.is_write
        assert s.draining and s.drain_entries == 1

    def test_drain_exits_exactly_at_low(self):
        banks, q, s = make(high=3, low=1)
        for b in range(3):
            q.admit(req(bank=b, write=True))
        q.admit(req(bank=3))
        w1 = s.next_request(0)  # 3 == high: enter drain, oldest write first
        assert s.draining and w1.is_write
        w2 = s.next_request(0)  # 2 pending: one above low, still draining
        assert s.draining and w2.is_write
        r = s.next_request(0)  # 1 pending == low: exit, reads regain priority
        assert not s.draining and not r.is_write
        w3 = s.next_request(0)  # remaining write issues only after the read
        assert w3.is_write and not s.draining

    def test_drain_exits_on_empty_queues(self):
        banks, q, s = make(high=1, low=0)
        q.admit(req(bank=0, write=True))
        got = s.next_request(0)
        assert got.is_write and s.draining
        # queues now empty; the empty fast path must still run the exit
        assert s.next_request(0) is None
        assert not s.draining


# ----------------------------------------------------------------------
# Oldest-first tie-breaks among equally ready banks
# ----------------------------------------------------------------------
class TestOldestFirst:
    def test_admission_order_wins_across_banks(self):
        banks, q, s = make(high=8, low=2)
        order = [2, 0, 3, 1]
        reqs = [req(bank=b, row=b) for b in order]
        for r in reqs:
            q.admit(r)
        # all banks idle, no open rows: issue order is admission order,
        # regardless of bank numbering
        assert [s.next_request(0) for _ in range(4)] == reqs

    def test_oldest_row_hit_wins_among_equally_ready_hits(self):
        banks, q, s = make(high=8, low=2)
        banks[1].access(AccessKind.READ, 7, 0)
        banks[2].access(AccessKind.READ, 7, 0)
        now = max(banks[1].busy_until, banks[2].busy_until)
        older_miss = req(bank=0, row=0)
        older_hit = req(bank=2, row=7)
        younger_hit = req(bank=1, row=7)
        for r in (older_miss, older_hit, younger_hit):
            q.admit(r)
        # both hits are ready; the older hit wins, bypassing the oldest
        # (non-hit) request entirely
        assert s.next_request(now) is older_hit
        assert s.next_request(now) is younger_hit
        assert s.next_request(now) is older_miss


# ----------------------------------------------------------------------
# Randomized equivalence against the naive whole-FIFO oracle
# ----------------------------------------------------------------------
def naive_oracle(banks, q, sched, now):
    """The naive FR-FCFS scan the indexed scheduler claims identity with.

    Returns ``(request, draining_after)`` for the *pre-call* state, matching
    ``next_request``'s exact decision order: empty fast path (with eager
    drain exit), then hysteresis, then oldest-ready-hit-else-oldest-ready
    over the prioritized direction.
    """
    if not q.reads_by_bank and not q.writes_by_bank:
        return None, False  # drain (if any) exits: 0 <= low always holds
    draining = sched.draining
    pending_writes = len(q.writes)
    if draining:
        if pending_writes <= sched.write_low:
            draining = False
    elif pending_writes >= sched.write_high:
        draining = True

    def scan(fifo):
        first_hit = None
        first_ready = None
        for r in fifo:  # FIFO order == qseq order
            bank = banks[r.bank]
            if bank.busy_until > now:
                continue
            if bank.open_row is not None and bank.open_row == r.row:
                if first_hit is None:
                    first_hit = r
            elif first_ready is None:
                first_ready = r
        return first_hit if first_hit is not None else first_ready

    if draining:
        chosen = scan(q.writes) or scan(q.reads)
    else:
        chosen = scan(q.reads) or scan(q.writes)
    return chosen, draining


def run_equivalence(seed, steps=400, nbanks=8, depth=12, high=8, low=3):
    rng = random.Random(seed)
    timings = DRAMTimings()
    banks = [Bank(i, timings) for i in range(nbanks)]
    q = VaultQueues(depth, depth)
    sched = FRFCFSScheduler(
        banks, q, write_high_watermark=high, write_low_watermark=low
    )
    now = 0
    issued = 0
    drains = 0
    for _ in range(steps):
        for _ in range(rng.randrange(4)):
            write = rng.random() < 0.45
            fifo = q.writes if write else q.reads
            if len(fifo) >= depth:
                continue  # keep staging out of play: oracle scans the FIFOs
            r = MemoryRequest(0, write)
            r.bank = rng.randrange(nbanks)
            r.row = rng.randrange(4)
            q.admit(r)
        expected, expected_draining = naive_oracle(banks, q, sched, now)
        was_draining = sched.draining
        got = sched.next_request(now)
        assert got is expected, (
            f"seed={seed} t={now}: indexed picked {got!r}, oracle {expected!r}"
        )
        assert sched.draining == expected_draining
        if sched.draining and not was_draining:
            drains += 1
        if got is not None:
            kind = AccessKind.WRITE if got.is_write else AccessKind.READ
            banks[got.bank].access(kind, got.row, now)
            issued += 1
        # advance unevenly: sometimes stay in-cycle (banks busy), sometimes
        # jump past every busy horizon
        if rng.random() < 0.6:
            now += rng.randrange(0, 12)
        else:
            now += rng.randrange(0, 120)
    assert not q.staging
    assert issued > steps // 8, f"seed={seed}: degenerate stream ({issued} issues)"
    return drains


@pytest.mark.parametrize("seed", range(8))
def test_indexed_matches_naive_oracle(seed):
    run_equivalence(seed)


def test_randomized_streams_exercise_drain_mode():
    """The equivalence streams must actually cross the watermarks, or the
    drain-direction half of the oracle is dead code."""
    total = sum(run_equivalence(seed, steps=250) for seed in range(100, 104))
    assert total > 0
