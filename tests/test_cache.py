"""Unit + property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import Cache, CacheParams


def make(size=1024, assoc=2, line=64, lat=2, name="T"):
    return Cache(CacheParams(name, size, assoc, line, lat))


class TestParams:
    def test_num_sets(self):
        p = CacheParams("L1", 32 * 1024, 2, 64, 2)
        assert p.num_sets == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheParams("x", 1000, 2, 64, 2)  # not divisible
        with pytest.raises(ValueError):
            CacheParams("x", 1024, 2, 60, 2)  # line not pow2
        with pytest.raises(ValueError):
            CacheParams("x", 1024, 0, 64, 2)
        with pytest.raises(ValueError):
            CacheParams("x", 1024, 2, 64, -1)


class TestBasicOperation:
    def test_cold_miss_then_hit(self):
        c = make()
        assert not c.lookup(0x1000, False)
        c.allocate(0x1000, dirty=False)
        assert c.lookup(0x1000, False)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_different_offset_hits(self):
        c = make()
        c.allocate(0x1000, False)
        assert c.lookup(0x1000 + 63, False)

    def test_write_sets_dirty(self):
        c = make()
        c.allocate(0x1000, False)
        c.lookup(0x1000, is_write=True)
        assert c.is_dirty(0x1000)

    def test_allocate_dirty(self):
        c = make()
        c.allocate(0x1000, dirty=True)
        assert c.is_dirty(0x1000)

    def test_invalidate(self):
        c = make()
        c.allocate(0x1000, dirty=True)
        assert c.invalidate(0x1000) is True  # returns dirty flag
        assert not c.contains(0x1000)
        assert c.invalidate(0x1000) is None


class TestEviction:
    def test_lru_within_set(self):
        c = make(size=2 * 64, assoc=2)  # one set, 2 ways
        c.allocate(0 * 64, False)
        c.allocate(1 * 64, False)
        c.lookup(0, False)  # line 0 now MRU
        victim = c.allocate(2 * 64, False)
        assert victim is not None
        assert victim.addr == 64  # line 1 was LRU

    def test_victim_address_reconstruction(self):
        c = make(size=4 * 1024, assoc=2)
        addr = 0xABCDE00 & ~63
        c.allocate(addr, True)
        # fill the same set until the original line is displaced
        sets = c.params.num_sets
        victims = []
        for i in range(1, 4):
            v = c.allocate(addr + i * sets * 64, True)
            if v:
                victims.append(v)
        assert any(v.addr == addr and v.dirty for v in victims)

    def test_dirty_eviction_flagged(self):
        c = make(size=2 * 64, assoc=1)
        c.allocate(0, dirty=True)
        victim = c.allocate(2 * 64, False)  # same set (2 sets? assoc1)
        if victim is None:  # different set; force same set
            victim = c.allocate(4 * 64, False)
        assert c.dirty_evictions >= 0  # counter exists; exact case below

    def test_dirty_eviction_counter(self):
        c = make(size=64, assoc=1)  # single set, single way
        c.allocate(0, dirty=True)
        v = c.allocate(64, False)
        assert v.dirty and v.addr == 0
        assert c.dirty_evictions == 1

    def test_allocate_present_merges_dirty(self):
        c = make()
        c.allocate(0x1000, False)
        assert c.allocate(0x1000, True) is None
        assert c.is_dirty(0x1000)
        assert c.occupancy() == 1


class TestStats:
    def test_hit_rate(self):
        c = make()
        c.lookup(0, False)
        c.allocate(0, False)
        c.lookup(0, False)
        assert c.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert make().hit_rate() == 0.0

    def test_occupancy_bounded_by_capacity(self):
        c = make(size=512, assoc=2)
        for i in range(100):
            c.allocate(i * 64, False)
        assert c.occupancy() <= 512 // 64


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 20), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    def test_most_recent_line_always_resident(self, accesses):
        c = make(size=1024, assoc=2)
        for addr, wr in accesses:
            if not c.lookup(addr, wr):
                c.allocate(addr, wr)
        last_addr = accesses[-1][0]
        assert c.contains(last_addr)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    def test_occupancy_invariant(self, addrs):
        c = make(size=512, assoc=2)
        capacity = 512 // 64
        for a in addrs:
            if not c.lookup(a, False):
                c.allocate(a, False)
            assert c.occupancy() <= capacity

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
    def test_accesses_equals_hits_plus_misses(self, addrs):
        c = make()
        for a in addrs:
            if not c.lookup(a, False):
                c.allocate(a, False)
        assert c.accesses == c.hits + c.misses == len(addrs)
