"""Unit tests for the per-bank row-buffer state machine."""

import pytest

from repro.dram.bank import AccessKind, Bank, RowOutcome
from repro.dram.bus import TsvBus
from repro.dram.commands import CommandKind
from repro.dram.timing import DRAMTimings


@pytest.fixture
def t():
    return DRAMTimings()


@pytest.fixture
def bank(t):
    return Bank(0, t, record_commands=True)


class TestClassification:
    def test_empty_initially(self, bank):
        assert bank.classify(5) is RowOutcome.EMPTY
        assert bank.open_row is None

    def test_hit_after_access(self, bank):
        bank.access(AccessKind.READ, 5, 0)
        assert bank.classify(5) is RowOutcome.HIT
        assert bank.is_row_hit(5)

    def test_conflict_for_other_row(self, bank):
        bank.access(AccessKind.READ, 5, 0)
        assert bank.classify(6) is RowOutcome.CONFLICT


class TestAccessTiming:
    def test_empty_access_latency(self, bank, t):
        r = bank.access(AccessKind.READ, 1, 0)
        assert r.outcome is RowOutcome.EMPTY
        assert r.finish == t.trcd_cpu + t.tcl_cpu + t.tburst_cpu

    def test_hit_access_latency(self, bank, t):
        bank.access(AccessKind.READ, 1, 0)
        start = bank.busy_until
        r = bank.access(AccessKind.READ, 1, start)
        assert r.outcome is RowOutcome.HIT
        assert r.finish - r.start == t.tcl_cpu + t.tburst_cpu

    def test_conflict_pays_precharge_and_tras(self, bank, t):
        bank.access(AccessKind.READ, 1, 0)
        r = bank.access(AccessKind.READ, 2, bank.busy_until)
        assert r.outcome is RowOutcome.CONFLICT
        # PRE cannot issue before tRAS after the ACT of row 1 (at cycle 0)
        pre_at = max(r.start, 0 + t.tras_cpu)
        expected = pre_at + t.trp_cpu + t.trcd_cpu + t.tcl_cpu + t.tburst_cpu
        assert r.finish == expected

    def test_busy_bank_delays_start(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        horizon = bank.busy_until
        r = bank.access(AccessKind.READ, 1, 0)  # requested before idle
        assert r.start == horizon

    def test_back_to_back_hits_serialize(self, bank, t):
        bank.access(AccessKind.READ, 1, 0)
        r1 = bank.access(AccessKind.READ, 1, 0)
        r2 = bank.access(AccessKind.READ, 1, 0)
        assert r2.start >= r1.finish

    def test_write_same_timing_structure(self, bank, t):
        r = bank.access(AccessKind.WRITE, 3, 0)
        assert r.finish == t.trcd_cpu + t.tcl_cpu + t.tburst_cpu
        assert bank.writes == 1 and bank.reads == 0


class TestCounters:
    def test_outcome_counters(self, bank):
        bank.access(AccessKind.READ, 1, 0)  # empty
        bank.access(AccessKind.READ, 1, 0)  # hit
        bank.access(AccessKind.READ, 2, 0)  # conflict
        assert bank.empties == 1
        assert bank.hits == 1
        assert bank.conflicts == 1
        assert bank.demand_accesses == 3

    def test_conflict_rate(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.access(AccessKind.READ, 2, 0)
        assert bank.conflict_rate() == pytest.approx(0.5)

    def test_conflict_rate_empty_bank(self, bank):
        assert bank.conflict_rate() == 0.0

    def test_act_pre_counts(self, bank):
        bank.access(AccessKind.READ, 1, 0)  # ACT
        bank.access(AccessKind.READ, 2, 0)  # PRE + ACT
        assert bank.acts == 2
        assert bank.pres == 1


class TestCommandLog:
    def test_empty_access_commands(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        kinds = [c.kind for c in bank.command_log]
        assert kinds == [CommandKind.ACTIVATE, CommandKind.READ]

    def test_conflict_access_commands(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.access(AccessKind.WRITE, 2, 0)
        kinds = [c.kind for c in bank.command_log]
        assert kinds == [
            CommandKind.ACTIVATE,
            CommandKind.READ,
            CommandKind.PRECHARGE,
            CommandKind.ACTIVATE,
            CommandKind.WRITE,
        ]

    def test_log_disabled_by_default(self, t):
        b = Bank(0, t)
        b.access(AccessKind.READ, 1, 0)
        assert b.command_log == []

    def test_command_cycles_monotone(self, bank):
        for row in [1, 2, 1, 3, 3]:
            bank.access(AccessKind.READ, row, bank.busy_until)
        cycles = [c.cycle for c in bank.command_log]
        assert cycles == sorted(cycles)


class TestRowFetch:
    def test_fetch_precharges_bank(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.fetch_row(1, bank.busy_until)
        assert bank.open_row is None
        assert bank.row_fetches == 1

    def test_fetch_open_row_no_extra_activate(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        acts = bank.acts
        bank.fetch_row(1, bank.busy_until)
        assert bank.acts == acts

    def test_fetch_closed_row_activates(self, bank):
        acts = bank.acts
        bank.fetch_row(7, 0)
        assert bank.acts == acts + 1

    def test_fetch_conflicting_row_not_counted_as_demand_conflict(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        conflicts = bank.conflicts
        bank.fetch_row(2, bank.busy_until)
        assert bank.conflicts == conflicts

    def test_fetch_occupies_bank(self, bank, t):
        r = bank.fetch_row(1, 0)
        assert bank.busy_until == r.finish
        assert r.finish >= t.trcd_cpu + t.tcl_cpu + t.trow_tsv_cpu + t.trp_cpu

    def test_next_access_after_fetch_is_empty(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.fetch_row(1, bank.busy_until)
        r = bank.access(AccessKind.READ, 2, bank.busy_until)
        assert r.outcome is RowOutcome.EMPTY


class TestFetchLines:
    def test_partial_fetch_keeps_row_open(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.fetch_lines(1, 4, bank.busy_until, precharge_after=False)
        assert bank.open_row == 1
        assert bank.prefetch_line_reads == 4

    def test_partial_fetch_with_precharge(self, bank):
        bank.fetch_lines(1, 2, 0, precharge_after=True)
        assert bank.open_row is None

    def test_duration_scales_with_lines(self, bank, t):
        bank.access(AccessKind.READ, 1, 0)
        s = bank.busy_until
        r1 = bank.fetch_lines(1, 1, s)
        b2 = Bank(1, t)
        b2.access(AccessKind.READ, 1, 0)
        r2 = b2.fetch_lines(1, 8, b2.busy_until)
        assert (r2.finish - r2.start) > (r1.finish - r1.start)

    def test_zero_lines_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.fetch_lines(1, 0, 0)


class TestRestoreAndPrecharge:
    def test_restore_precharges(self, bank):
        bank.restore_row(9, 0)
        assert bank.open_row is None
        assert bank.row_restores == 1

    def test_restore_closes_other_open_row(self, bank):
        bank.access(AccessKind.READ, 1, 0)
        bank.restore_row(9, bank.busy_until)
        assert bank.open_row is None

    def test_explicit_precharge(self, bank, t):
        bank.access(AccessKind.READ, 1, 0)
        ready = bank.precharge(bank.busy_until)
        assert bank.open_row is None
        assert ready >= t.trp_cpu

    def test_precharge_idle_bank_is_noop(self, bank):
        pres = bank.pres
        ready = bank.precharge(100)
        assert ready == 100
        assert bank.pres == pres


class TestSharedBus:
    def test_two_banks_share_bus_serialize(self, t):
        bus = TsvBus()
        b0 = Bank(0, t, bus=bus)
        b1 = Bank(1, t, bus=bus)
        r0 = b0.access(AccessKind.READ, 1, 0)
        r1 = b1.access(AccessKind.READ, 1, 0)
        # Second bank's data transfer must wait for the shared bus.
        solo = Bank(2, t)  # private bus
        rs = solo.access(AccessKind.READ, 1, 0)
        assert r1.finish > rs.finish
        assert r0.finish == rs.finish

    def test_private_bus_no_interference(self, t):
        b0 = Bank(0, t)
        b1 = Bank(1, t)
        r0 = b0.access(AccessKind.READ, 1, 0)
        r1 = b1.access(AccessKind.READ, 1, 0)
        assert r0.finish == r1.finish

    def test_row_fetch_occupies_shared_bus(self, t):
        bus = TsvBus()
        b0 = Bank(0, t, bus=bus)
        b1 = Bank(1, t, bus=bus)
        b0.fetch_row(1, 0)
        r = b1.access(AccessKind.READ, 1, 0)
        solo = Bank(2, t).access(AccessKind.READ, 1, 0)
        assert r.finish > solo.finish
