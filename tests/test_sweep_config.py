"""Tests for the sweep framework and config serialization."""

import pytest

from repro.cli import main
from repro.experiments.sweep import Sweep
from repro.hmc.config import HMCConfig


class TestSweepSpec:
    def test_hmc_field_accepted(self):
        Sweep("pf_buffer_entries", [8, 16])

    def test_timings_field_accepted(self):
        Sweep("timings.trow_tsv", [16, 48])

    def test_scheme_field_accepted(self):
        Sweep("scheme:utilization_threshold", [2, 4])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            Sweep("bogus_field", [1])
        with pytest.raises(ValueError):
            Sweep("timings.bogus", [1])
        with pytest.raises(ValueError):
            Sweep("scheme:bogus", [1])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Sweep("pf_buffer_entries", [])


class TestSweepExecution:
    def test_hmc_sweep_runs(self):
        r = Sweep("pf_buffer_entries", [8, 16]).run(
            "LM4", "camps-mod", refs_per_core=300
        )
        assert len(r.points) == 2
        assert r.points[0].value == 8
        assert all(p.speedup_vs_base is not None for p in r.points)
        assert "best:" in r.text()

    def test_timings_sweep_changes_outcome(self):
        r = Sweep("timings.trow_tsv", [8, 128]).run(
            "LM4", "base", refs_per_core=300, baseline_scheme=None
        )
        # slower row transfers -> slower BASE (it fetches constantly)
        assert r.points[1].result.cycles > r.points[0].result.cycles
        assert all(p.speedup_vs_base is None for p in r.points)

    def test_scheme_sweep_changes_prefetch_volume(self):
        r = Sweep("scheme:utilization_threshold", [1, 12]).run(
            "LM4", "camps-mod", refs_per_core=300, baseline_scheme=None
        )
        assert (
            r.points[0].result.prefetches_issued
            > r.points[1].result.prefetches_issued
        )

    def test_best_picks_maximum(self):
        r = Sweep("pf_buffer_entries", [4, 16]).run(
            "LM4", "camps-mod", refs_per_core=300
        )
        best = r.best()
        assert best.speedup_vs_base == max(p.speedup_vs_base for p in r.points)

    def test_cli_sweep(self, capsys):
        rc = main(
            ["sweep", "pf_buffer_entries", "8,16", "--mix", "LM4", "--refs", "250"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep of pf_buffer_entries" in out and "best:" in out


class TestConfigSerialization:
    def test_roundtrip_default(self):
        cfg = HMCConfig()
        assert HMCConfig.from_json(cfg.to_json()) == cfg

    def test_roundtrip_modified(self):
        cfg = HMCConfig(
            pf_buffer_entries=8,
            refresh_enabled=True,
            page_policy="closed",
            address_mapping="RoVaBaCo",
        )
        assert HMCConfig.from_json(cfg.to_json()) == cfg

    def test_file_roundtrip(self, tmp_path):
        cfg = HMCConfig(vaults=8, banks_per_vault=8)
        path = tmp_path / "cfg.json"
        cfg.to_json(path)
        assert HMCConfig.from_json(path) == cfg

    def test_to_dict_nested(self):
        d = HMCConfig().to_dict()
        assert d["timings"]["trcd"] == 11
        assert d["energy"]["act_pj"] == 900.0

    def test_from_dict_validates(self):
        d = HMCConfig().to_dict()
        d["vaults"] = 3  # not a power of two
        with pytest.raises(ValueError):
            HMCConfig.from_dict(d)

    def test_from_dict_rebuilds_timings(self):
        d = HMCConfig().to_dict()
        d["timings"]["trcd"] = 15
        cfg = HMCConfig.from_dict(d)
        assert cfg.timings.trcd == 15
        assert cfg.timings.trcd_cpu > 0  # derived fields recomputed
