"""Tests for latency analysis and the row-buffer trace analyzer."""

import numpy as np
import pytest

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.metrics.latency import (
    LatencySlice,
    format_latency_table,
    latency_by_source,
    latency_segments,
)
from repro.request import MemoryRequest, ServiceSource
from repro.system import System, SystemConfig
from repro.workloads.analysis import analyze_mix, analyze_row_buffer
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace


def done_req(lat, source=ServiceSource.BANK, write=False, arrive=None):
    r = MemoryRequest(0, write, issue_cycle=100)
    r.complete_cycle = 100 + lat
    r.vault_arrive_cycle = arrive if arrive is not None else 120
    r.source = source
    return r


class TestLatencySlices:
    def test_slice_of_empty(self):
        s = LatencySlice.of([])
        assert s.n == 0 and s.mean == 0.0

    def test_slice_statistics(self):
        s = LatencySlice.of([10, 20, 30, 40])
        assert s.n == 4
        assert s.mean == pytest.approx(25.0)
        assert s.max == 40

    def test_by_source_buckets(self):
        reqs = [
            done_req(100),
            done_req(50, ServiceSource.PREFETCH_BUFFER),
            done_req(70, ServiceSource.ROW_IN_FLIGHT),
            done_req(999, write=True),  # excluded: write
        ]
        out = latency_by_source(reqs)
        assert set(out) == {"bank", "buffer", "in_flight"}
        assert out["bank"].n == 1

    def test_by_source_includes_writes_when_asked(self):
        reqs = [done_req(999, write=True)]
        out = latency_by_source(reqs, reads_only=False)
        assert out["bank"].n == 1

    def test_segments(self):
        reqs = [done_req(100, arrive=130)]
        out = latency_segments(reqs)
        assert out["transport_in"].mean == pytest.approx(30)
        assert out["vault_and_return"].mean == pytest.approx(70)

    def test_format_table(self):
        out = latency_by_source([done_req(100)])
        text = format_latency_table(out)
        assert "bank" in text and "p99" in text

    def test_end_to_end_recording(self):
        traces = [generate_trace("gcc", 300, seed=1)]
        sysm = System(
            traces, SystemConfig(scheme="base", record_requests=True)
        )
        r = sysm.run()
        reqs = sysm.host.completed_requests
        assert len(reqs) == sum(
            1 for _ in traces[0].gaps
        )  # every record completed
        slices = latency_by_source(reqs, reads_only=False)
        assert sum(s.n for s in slices.values()) == len(reqs)


class TestRowBufferAnalyzer:
    def _trace_from_coords(self, coords):
        m = AddressMapping(HMCConfig())
        addrs = [m.encode(v, b, r, c) for v, b, r, c in coords]
        n = len(addrs)
        return Trace(np.zeros(n), np.array(addrs), np.zeros(n, bool))

    def test_pure_hits(self):
        t = self._trace_from_coords([(0, 0, 5, c) for c in range(8)])
        p = analyze_row_buffer(t)
        assert p.empties == 1
        assert p.hits == 7
        assert p.conflicts == 0
        assert p.mean_visit_utilization == pytest.approx(8.0)

    def test_pingpong_conflicts(self):
        coords = [(0, 0, 1, 0), (0, 0, 2, 0), (0, 0, 1, 1), (0, 0, 2, 1)]
        p = analyze_row_buffer(self._trace_from_coords(coords))
        assert p.conflicts == 3
        assert p.conflict_revisit_rows == 2  # both rows revisited post-conflict

    def test_different_banks_no_conflict(self):
        coords = [(0, 0, 1, 0), (0, 1, 2, 0), (1, 0, 3, 0)]
        p = analyze_row_buffer(self._trace_from_coords(coords))
        assert p.conflicts == 0
        assert p.empties == 3

    def test_rut_trigger_fraction(self):
        # one visit of 8 lines, one visit of 2 lines
        coords = [(0, 0, 1, c) for c in range(8)] + [(0, 0, 2, c) for c in range(2)]
        p = analyze_row_buffer(self._trace_from_coords(coords))
        assert p.rut_trigger_fraction(threshold=4) == pytest.approx(0.5)

    def test_streaming_profile_mostly_hits(self):
        t = generate_trace("lbm", 5000, seed=3)
        p = analyze_row_buffer(t)
        assert p.hit_rate > 0.3
        assert p.summary()  # renders

    def test_mix_interleave_raises_conflicts(self):
        # two cores with aliasing streams conflict more when interleaved
        t0 = generate_trace("gems", 2000, seed=1, core_id=0)
        t1 = generate_trace("gems", 2000, seed=2, core_id=1)
        solo = analyze_row_buffer(t0)
        both = analyze_mix([t0, t1])
        assert both.conflict_rate >= solo.conflict_rate * 0.9

    def test_mix_requires_traces(self):
        with pytest.raises(ValueError):
            analyze_mix([])
