"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(10, order.append, "b")
        eng.schedule(5, order.append, "a")
        eng.schedule(20, order.append, "c")
        eng.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_by_seq(self):
        eng = Engine()
        order = []
        for tag in "abcde":
            eng.schedule(7, order.append, tag)
        eng.run()
        assert order == list("abcde")

    def test_priority_breaks_ties(self):
        eng = Engine()
        order = []
        eng.schedule(5, order.append, "low", priority=1)
        eng.schedule(5, order.append, "high", priority=-1)
        eng.run()
        assert order == ["high", "low"]

    def test_now_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(42, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42]
        assert eng.now == 42

    def test_schedule_at_absolute(self):
        eng = Engine()
        seen = []
        eng.schedule_at(100, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [100]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)

    def test_schedule_into_past_rejected(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(5, lambda: None)

    def test_zero_delay_runs_after_current(self):
        eng = Engine()
        order = []

        def first():
            order.append("first")
            eng.schedule(0, order.append, "nested")

        eng.schedule(1, first)
        eng.schedule(1, order.append, "second")
        eng.run()
        assert order == ["first", "second", "nested"]

    def test_events_scheduled_during_run_execute(self):
        eng = Engine()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                eng.schedule(3, chain, n + 1)

        eng.schedule(0, chain, 0)
        eng.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert eng.now == 15

    def test_args_passed_through(self):
        eng = Engine()
        seen = []
        eng.schedule(1, lambda a, b, c: seen.append((a, b, c)), 1, "x", None)
        eng.run()
        assert seen == [(1, "x", None)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        seen = []
        ev = eng.schedule(5, seen.append, "no")
        eng.schedule(6, seen.append, "yes")
        ev.cancel()
        eng.run()
        assert seen == ["yes"]

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.schedule(5, lambda: None)
        ev.cancel()
        ev.cancel()
        eng.run()
        assert eng.events_fired == 0

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        ev = eng.schedule(5, lambda: None)
        eng.schedule(6, lambda: None)
        assert eng.pending == 2
        ev.cancel()
        assert eng.pending == 1

    def test_peek_time_skips_cancelled(self):
        eng = Engine()
        ev = eng.schedule(5, lambda: None)
        eng.schedule(9, lambda: None)
        ev.cancel()
        assert eng.peek_time() == 9

    def test_cancel_after_fire_is_noop(self):
        # Cancelling a handle whose event already ran must not corrupt the
        # live/strong counters (it used to decrement _strong a second time).
        eng = Engine()
        ev = eng.schedule(1, lambda: None)
        eng.schedule(2, lambda: None)
        eng.run(until=1)
        ev.cancel()
        assert eng.pending == 1
        assert eng.run() == 1


class TestPendingCounter:
    """`Engine.pending` is a live counter, not a heap scan - these pin the
    bookkeeping through every path that mutates the heap."""

    def test_pending_tracks_fires(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(i + 1, lambda: None)
        assert eng.pending == 4
        eng.run(until=2)
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0

    def test_pending_counts_events_scheduled_during_run(self):
        eng = Engine()
        seen = []

        def chain(n):
            seen.append(eng.pending)  # observed mid-run, after this pop
            if n < 3:
                eng.schedule(1, chain, n + 1)

        eng.schedule(1, chain, 0)
        eng.run()
        # at each fire the chain's own event has been consumed already
        assert seen == [0, 0, 0, 0]
        assert eng.pending == 0

    def test_pending_with_max_events_pushback(self):
        eng = Engine()
        for i in range(5):
            eng.schedule(i + 1, lambda: None)
        eng.run(max_events=2)
        assert eng.pending == 3

    def test_pending_mixed_cancel_and_weak(self):
        eng = Engine()
        evs = [eng.schedule(i + 1, lambda: None) for i in range(3)]
        eng.schedule(10, lambda: None, weak=True)
        assert eng.pending == 4
        evs[1].cancel()
        assert eng.pending == 3
        eng.run()
        # the weak event alone does not keep the engine alive, so it is
        # still pending (unfired) after the strong events drain
        assert eng.pending == 1

    def test_pending_constant_time(self):
        # Guard against regressing to the O(n) heap scan: `pending` on a
        # 50k-event heap must cost the same as on an empty one.
        import timeit

        eng = Engine()
        for i in range(50_000):
            eng.schedule(i + 1, lambda: None)
        per_call = min(
            timeit.repeat(lambda: eng.pending, number=2000, repeat=5)
        ) / 2000
        assert per_call < 5e-6  # a heap scan is ~milliseconds here


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(5, seen.append, "early")
        eng.schedule(50, seen.append, "late")
        eng.run(until=10)
        assert seen == ["early"]
        assert eng.now == 10
        eng.run()
        assert seen == ["early", "late"]

    def test_run_until_advances_now_with_empty_heap(self):
        eng = Engine()
        eng.run(until=123)
        assert eng.now == 123

    def test_max_events_limits_execution(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(i + 1, seen.append, i)
        fired = eng.run(max_events=2)
        assert fired == 2
        assert seen == [0, 1]

    def test_step_fires_exactly_one(self):
        eng = Engine()
        seen = []
        eng.schedule(1, seen.append, "a")
        eng.schedule(2, seen.append, "b")
        assert eng.step() is True
        assert seen == ["a"]
        assert eng.step() is True
        assert eng.step() is False

    def test_run_returns_event_count(self):
        eng = Engine()
        for i in range(7):
            eng.schedule(i, lambda: None)
        assert eng.run() == 7
        assert eng.events_fired == 7

    def test_run_not_reentrant(self):
        eng = Engine()
        errors = []

        def inner():
            try:
                eng.run()
            except RuntimeError as e:
                errors.append(e)

        eng.schedule(1, inner)
        eng.run()
        assert len(errors) == 1


class TestDeterminism:
    def test_identical_schedules_identical_order(self):
        def build():
            eng = Engine()
            order = []
            eng.schedule(3, order.append, 1)
            eng.schedule(3, order.append, 2)
            eng.schedule(1, order.append, 3)
            eng.schedule(3, order.append, 4, priority=-1)
            eng.run()
            return order

        assert build() == build() == [3, 4, 1, 2]


class TestEdgePaths:
    """Edge cases of peek_time, step, and the run() re-entrancy guard."""

    def test_peek_time_all_cancelled_returns_none(self):
        eng = Engine()
        evs = [eng.schedule(i + 1, lambda: None) for i in range(3)]
        for ev in evs:
            ev.cancel()
        assert eng.peek_time() is None
        assert eng.pending == 0

    def test_peek_time_empty_heap_returns_none(self):
        assert Engine().peek_time() is None

    def test_peek_time_skips_cancelled_head_to_live_event(self):
        eng = Engine()
        head = eng.schedule(1, lambda: None)
        eng.schedule(5, lambda: None)
        head.cancel()
        assert eng.peek_time() == 5

    def test_step_with_only_weak_events_fires_nothing(self):
        eng = Engine()
        fired = []
        eng.schedule(1, fired.append, "w", weak=True)
        assert eng.step() is False
        assert fired == []

    def test_step_with_cancelled_head_fires_next_live(self):
        eng = Engine()
        fired = []
        head = eng.schedule(1, fired.append, "a")
        eng.schedule(2, fired.append, "b")
        head.cancel()
        assert eng.step() is True
        assert fired == ["b"]

    def test_step_inside_callback_hits_reentrancy_guard(self):
        eng = Engine()
        errors = []

        def inner():
            try:
                eng.step()
            except RuntimeError as e:
                errors.append(str(e))

        eng.schedule(1, inner)
        eng.run()
        assert len(errors) == 1
        assert "not reentrant" in errors[0]

    def test_engine_usable_after_callback_exception(self):
        eng = Engine()

        def boom():
            raise ValueError("callback failed")

        eng.schedule(1, boom)
        with pytest.raises(ValueError):
            eng.run()
        # the guard must be released and the lifetime counter accurate
        fired = []
        eng.schedule(1, fired.append, "after")
        eng.run()
        assert fired == ["after"]
        assert eng.events_fired == 2


class TestWatchdogHook:
    def test_watchdog_polled_every_interval(self):
        class Probe:
            interval = 2

            def __init__(self):
                self.polls = []

            def poll(self, now):
                self.polls.append(now)

        eng = Engine()
        eng.watchdog = probe = Probe()
        for i in range(7):
            eng.schedule(i, lambda: None)
        eng.run()
        # 7 events at interval 2 -> polls after the 2nd, 4th, 6th event
        assert len(probe.polls) == 3

    def test_no_watchdog_runs_clean(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        assert eng.run() == 1
