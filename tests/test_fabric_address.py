"""Unit tests for the cube-select fabric address mapping."""

import numpy as np
import pytest

from repro.fabric.address import FabricAddressMapping, FabricDecodedAddress
from repro.hmc.address import MAPPING_ORDERS, AddressMapping
from repro.hmc.config import HMCConfig

CUBE_COUNTS = (1, 2, 3, 4, 8)


@pytest.fixture
def config() -> HMCConfig:
    return HMCConfig()


class TestConstruction:
    def test_unknown_order_rejected_by_base(self, config):
        with pytest.raises(ValueError, match="unknown mapping order"):
            AddressMapping(config, order="nonsense")

    def test_unknown_order_rejected_through_fabric(self, config):
        """The inherited validation must fire through the subclass too."""
        with pytest.raises(ValueError, match="unknown mapping order"):
            FabricAddressMapping(config, cubes=4, order="nonsense")

    def test_unknown_order_error_lists_choices(self, config):
        with pytest.raises(ValueError) as err:
            FabricAddressMapping(config, cubes=2, order="rrv")
        for order in MAPPING_ORDERS:
            assert order in str(err.value)

    def test_bad_cube_count_rejected(self, config):
        with pytest.raises(ValueError, match="cubes"):
            FabricAddressMapping(config, cubes=0)

    def test_cube_bits(self, config):
        for cubes, bits in ((1, 0), (2, 1), (3, 2), (4, 2), (8, 3)):
            assert FabricAddressMapping(config, cubes).cube_bits == bits

    def test_one_cube_matches_base_mapping(self, config):
        """Zero cube bits: every shift equals the single-cube mapping's."""
        for order in MAPPING_ORDERS:
            base = AddressMapping(config, order=order)
            fab = FabricAddressMapping(config, cubes=1, order=order)
            assert fab.cube_bits == 0
            assert fab.vault_shift == base.vault_shift
            assert fab.bank_shift == base.bank_shift
            assert fab.column_shift == base.column_shift
            assert fab.row_shift == base.row_shift
            assert fab.rank_shift == base.rank_shift


class TestDecodeEquivalence:
    @pytest.mark.parametrize("order", sorted(MAPPING_ORDERS))
    @pytest.mark.parametrize("cubes", CUBE_COUNTS)
    def test_vectorized_matches_scalar(self, config, order, cubes):
        """decode_many must agree with the scalar decode on every field,
        for every mapping order and cube count, on randomized addresses."""
        m = FabricAddressMapping(config, cubes=cubes, order=order)
        rng = np.random.default_rng(1000 * cubes + len(order))
        addrs = rng.integers(0, 1 << 34, size=256, dtype=np.int64)
        qs, vs, bs, rs, cs = m.decode_many(addrs)
        for i, addr in enumerate(addrs.tolist()):
            d = m.decode(addr)
            assert (d.cube, d.vault, d.bank, d.row, d.column) == (
                int(qs[i]), int(vs[i]), int(bs[i]), int(rs[i]), int(cs[i])
            ), f"order={order} cubes={cubes} addr={addr:#x}"

    @pytest.mark.parametrize("cubes", CUBE_COUNTS)
    def test_cube_of_matches_decode(self, config, cubes):
        m = FabricAddressMapping(config, cubes=cubes)
        rng = np.random.default_rng(cubes)
        for addr in rng.integers(0, 1 << 34, size=64).tolist():
            assert m.cube_of(int(addr)) == m.decode(int(addr)).cube

    def test_non_power_of_two_folds_in_range(self, config):
        m = FabricAddressMapping(config, cubes=3)
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 34, size=512, dtype=np.int64)
        cube, *_ = m.decode_many(addrs)
        assert cube.min() >= 0 and cube.max() < 3

    def test_negative_address_rejected(self, config):
        with pytest.raises(ValueError):
            FabricAddressMapping(config, cubes=2).decode(-1)


class TestEncode:
    @pytest.mark.parametrize("cubes", (2, 4, 8))
    def test_round_trip(self, config, cubes):
        m = FabricAddressMapping(config, cubes=cubes)
        rng = np.random.default_rng(cubes)
        for _ in range(64):
            coords = FabricDecodedAddress(
                cube=int(rng.integers(cubes)),
                vault=int(rng.integers(config.vaults)),
                bank=int(rng.integers(config.banks_per_vault)),
                row=int(rng.integers(1 << 12)),
                column=int(rng.integers(config.lines_per_row)),
            )
            addr = m.encode(
                coords.vault, coords.bank, coords.row, coords.column,
                cube=coords.cube,
            )
            assert m.decode(addr) == coords

    def test_encode_many_matches_scalar(self, config):
        m = FabricAddressMapping(config, cubes=4)
        rng = np.random.default_rng(11)
        n = 128
        cube = rng.integers(0, 4, size=n)
        vault = rng.integers(0, config.vaults, size=n)
        bank = rng.integers(0, config.banks_per_vault, size=n)
        row = rng.integers(0, 1 << 12, size=n)
        col = rng.integers(0, config.lines_per_row, size=n)
        out = m.encode_many(vault, bank, row, col, cube=cube)
        for i in range(n):
            assert int(out[i]) == m.encode(
                int(vault[i]), int(bank[i]), int(row[i]), int(col[i]),
                cube=int(cube[i]),
            )

    def test_out_of_range_cube_rejected(self, config):
        m = FabricAddressMapping(config, cubes=2)
        with pytest.raises(ValueError, match="out of range"):
            m.encode(0, 0, 0, cube=2)


class TestRelocateHome:
    def test_identity_at_one_cube(self, config):
        m = FabricAddressMapping(config, cubes=1)
        addrs = np.arange(0, 1 << 20, 4096, dtype=np.int64)
        np.testing.assert_array_equal(m.relocate_home(addrs, 0), addrs)

    @pytest.mark.parametrize("cubes", (2, 3, 4))
    def test_preserves_intra_cube_footprint(self, config, cubes):
        """Relocation moves a stream into one cube without disturbing its
        (vault, bank, row, column) coordinates."""
        base = AddressMapping(config)
        m = FabricAddressMapping(config, cubes=cubes)
        rng = np.random.default_rng(cubes)
        addrs = rng.integers(0, 1 << 32, size=256, dtype=np.int64)
        for cube in range(cubes):
            moved = m.relocate_home(addrs, cube)
            qs, vs, bs, rs, cs = m.decode_many(moved)
            assert (qs == cube).all()
            np.testing.assert_array_equal(
                vs, (addrs >> base.vault_shift) & base.vault_mask
            )
            np.testing.assert_array_equal(
                bs, (addrs >> base.bank_shift) & base.bank_mask
            )
            np.testing.assert_array_equal(rs, addrs >> base.row_shift)
            np.testing.assert_array_equal(
                cs, (addrs >> base.column_shift) & base.column_mask
            )

    def test_distinct_cubes_get_disjoint_slices(self, config):
        m = FabricAddressMapping(config, cubes=4)
        addrs = np.arange(0, 1 << 22, 64, dtype=np.int64)
        seen = [set(m.relocate_home(addrs, c).tolist()) for c in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (seen[i] & seen[j])

    def test_out_of_range_cube_rejected(self, config):
        m = FabricAddressMapping(config, cubes=2)
        with pytest.raises(ValueError, match="out of range"):
            m.relocate_home(np.zeros(4, dtype=np.int64), 5)
