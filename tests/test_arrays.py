"""Tests for the shared NumPy state-array layer (repro.sim.arrays).

Every helper here is a vectorized *mirror* of a scalar implementation that
stays authoritative (core replay arithmetic, AddressMapping.decode, the
scheduler's first-ready scan) - so each test pins randomized equivalence
between the two, not just fixed examples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.sim.arrays import BankArrays, decode_arrays, replay_tables


class _FakeBank:
    def __init__(self, busy_until=0, open_row=None, hits=0, empties=0, conflicts=0):
        self.busy_until = busy_until
        self.open_row = open_row
        self.hits = hits
        self.empties = empties
        self.conflicts = conflicts


class _FakeVault:
    def __init__(self, banks):
        self.banks = banks


def _random_vaults(rng, nvaults=4, banks_per_vault=8):
    vaults = []
    for _ in range(nvaults):
        banks = [
            _FakeBank(
                busy_until=int(rng.integers(0, 500)),
                open_row=None if rng.random() < 0.3 else int(rng.integers(0, 64)),
                hits=int(rng.integers(0, 1000)),
                empties=int(rng.integers(0, 1000)),
                conflicts=int(rng.integers(0, 1000)),
            )
            for _ in range(banks_per_vault)
        ]
        vaults.append(_FakeVault(banks))
    return vaults


# ----------------------------------------------------------------------
# replay_tables
# ----------------------------------------------------------------------
@pytest.mark.parametrize("issue_width", [1, 2, 4, 7])
def test_replay_tables_matches_scalar(issue_width):
    rng = np.random.default_rng(7)
    gaps = rng.integers(0, 50, size=200)
    bumps, retire = replay_tables(gaps, issue_width)
    assert isinstance(bumps, list) and isinstance(retire, list)
    instr = 0
    for i, g in enumerate(gaps.tolist()):
        assert bumps[i] == -(-g // issue_width)  # ceil division
        instr += g + 1
        assert retire[i] == instr


def test_replay_tables_rejects_bad_width():
    with pytest.raises(ValueError):
        replay_tables([1, 2, 3], 0)


def test_replay_tables_empty_trace():
    bumps, retire = replay_tables([], 4)
    assert bumps == [] and retire == []


# ----------------------------------------------------------------------
# decode_arrays
# ----------------------------------------------------------------------
def test_decode_arrays_matches_scalar_decode():
    mapping = AddressMapping(HMCConfig())
    rng = np.random.default_rng(11)
    addrs = rng.integers(0, 1 << 32, size=500)
    decoded = decode_arrays(addrs, mapping)
    for addr, i in zip(addrs.tolist(), range(len(addrs))):
        d = mapping.decode(addr)
        assert decoded["vault"][i] == d.vault
        assert decoded["bank"][i] == d.bank
        assert decoded["row"][i] == d.row
        assert decoded["column"][i] == d.column


# ----------------------------------------------------------------------
# BankArrays
# ----------------------------------------------------------------------
def test_bank_arrays_requires_vaults():
    with pytest.raises(ValueError):
        BankArrays([])


def test_bank_arrays_gather_and_vault_sums():
    rng = np.random.default_rng(3)
    vaults = _random_vaults(rng)
    arrays = BankArrays(vaults)
    conf, acc = arrays.vault_outcome_sums()
    for v, vault in enumerate(vaults):
        expect_conf = sum(b.conflicts for b in vault.banks)
        expect_acc = sum(b.hits + b.empties + b.conflicts for b in vault.banks)
        assert conf[v] == expect_conf
        assert acc[v] == expect_acc


def test_bank_arrays_refresh_tracks_mutation():
    vaults = _random_vaults(np.random.default_rng(5))
    arrays = BankArrays(vaults)
    stale_conf, stale_acc = arrays.vault_outcome_sums()
    vaults[0].banks[0].conflicts += 17
    vaults[1].banks[2].hits += 5
    # snapshots are stale until refreshed
    conf, acc = arrays.vault_outcome_sums()
    assert conf[0] == stale_conf[0] and acc[1] == stale_acc[1]
    arrays.refresh()
    conf, acc = arrays.vault_outcome_sums()
    assert conf[0] == stale_conf[0] + 17
    assert acc[0] == stale_acc[0] + 17
    assert acc[1] == stale_acc[1] + 5


def test_refresh_outcomes_skips_fsm_fields():
    vaults = _random_vaults(np.random.default_rng(9))
    arrays = BankArrays(vaults)
    vaults[0].banks[0].busy_until += 1000
    vaults[0].banks[0].conflicts += 3
    arrays.refresh_outcomes()
    # outcome counters move, FSM snapshot does not
    assert arrays.conflicts[0] == vaults[0].banks[0].conflicts
    assert arrays.busy_until[0] == vaults[0].banks[0].busy_until - 1000


def test_ready_and_row_hit_masks_match_scalar_scan():
    rng = np.random.default_rng(13)
    vaults = _random_vaults(rng)
    arrays = BankArrays(vaults)
    banks = [b for vc in vaults for b in vc.banks]
    now = 250
    rows = rng.integers(-1, 64, size=len(banks))
    ready = arrays.ready_mask(now)
    hit = arrays.row_hit_mask(rows)
    cand = arrays.frfcfs_candidates(now, rows)
    for i, b in enumerate(banks):
        assert ready[i] == (b.busy_until <= now)
        expect_hit = (
            rows[i] >= 0 and b.open_row is not None and b.open_row == rows[i]
        )
        assert hit[i] == expect_hit
        assert cand[i] == (ready[i] and expect_hit)


def test_min_busy_until():
    vaults = _random_vaults(np.random.default_rng(17))
    arrays = BankArrays(vaults)
    banks = [b for vc in vaults for b in vc.banks]
    assert arrays.min_busy_until() == min(b.busy_until for b in banks)
    subset = [3, 7, 11]
    assert arrays.min_busy_until(subset) == min(banks[i].busy_until for i in subset)
    with pytest.raises(ValueError):
        arrays.min_busy_until([])


def test_per_vault_reshape():
    vaults = _random_vaults(np.random.default_rng(19), nvaults=2, banks_per_vault=4)
    arrays = BankArrays(vaults)
    shaped = arrays.per_vault(arrays.hits)
    assert shaped.shape == (2, 4)
    assert shaped[1][2] == vaults[1].banks[2].hits
