"""Unit tests for DRAM timing conversion and composite latencies."""

import math

import pytest

from repro.dram.timing import DRAMTimings


class TestConversion:
    def test_default_ratio(self):
        t = DRAMTimings()
        assert t.ratio == pytest.approx(3.0 / 0.8)

    def test_cpu_cycles_round_up(self):
        t = DRAMTimings()
        # 11 mem cycles * 3.75 = 41.25 -> 42
        assert t.trcd_cpu == math.ceil(11 * 3.75)
        assert t.trp_cpu == t.trcd_cpu
        assert t.tcl_cpu == t.trcd_cpu

    def test_one_to_one_ratio(self):
        t = DRAMTimings(cpu_freq_ghz=1.0, dram_freq_ghz=1.0)
        assert t.trcd_cpu == t.trcd
        assert t.tburst_cpu == t.tburst

    def test_all_derived_fields_positive(self):
        t = DRAMTimings()
        for name in ("trcd", "trp", "tcl", "tburst", "twr", "tras", "trow_tsv"):
            assert getattr(t, f"{name}_cpu") >= getattr(t, name)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            DRAMTimings(cpu_freq_ghz=0)
        with pytest.raises(ValueError):
            DRAMTimings(dram_freq_ghz=-1)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            DRAMTimings(trcd=0)
        with pytest.raises(ValueError):
            DRAMTimings(tburst=-4)

    def test_frozen(self):
        t = DRAMTimings()
        with pytest.raises(AttributeError):
            t.trcd = 5


class TestCompositeLatencies:
    def test_hit_cheaper_than_empty_cheaper_than_conflict(self):
        t = DRAMTimings()
        assert t.row_hit_read < t.row_empty_read < t.row_conflict_read
        assert t.row_hit_write < t.row_empty_write < t.row_conflict_write

    def test_row_hit_read_components(self):
        t = DRAMTimings()
        assert t.row_hit_read == t.tcl_cpu + t.tburst_cpu

    def test_row_empty_adds_activation(self):
        t = DRAMTimings()
        assert t.row_empty_read - t.row_hit_read == t.trcd_cpu

    def test_row_conflict_adds_precharge(self):
        t = DRAMTimings()
        assert t.row_conflict_read - t.row_empty_read == t.trp_cpu

    def test_row_fetch_open_skips_activation(self):
        t = DRAMTimings()
        assert t.row_fetch_to_buffer(row_open=False) - t.row_fetch_to_buffer(
            row_open=True
        ) == t.trcd_cpu

    def test_row_fetch_includes_precharge(self):
        t = DRAMTimings()
        assert t.row_fetch_to_buffer(True) == t.tcl_cpu + t.trow_tsv_cpu + t.trp_cpu

    def test_row_writeback_duration(self):
        t = DRAMTimings()
        assert (
            t.row_writeback_from_buffer()
            == t.trcd_cpu + t.trow_tsv_cpu + t.twr_cpu + t.trp_cpu
        )

    def test_faster_dram_shrinks_cpu_latency(self):
        slow = DRAMTimings(dram_freq_ghz=0.8)
        fast = DRAMTimings(dram_freq_ghz=1.6)
        assert fast.row_conflict_read < slow.row_conflict_read
