"""Warped idle spans vs the integrity watchdog and the timeseries tick.

The engine's time-warp fast path jumps the clock over idle spans (tallied
in ``Engine.idle_cycles_skipped``).  Two observers must stay correct
across those jumps:

* the forward-progress watchdog keys on *time not advancing* - a warp is
  the opposite of a wedge, so arbitrarily long warped spans must never
  false-positive, while a genuine same-cycle livelock must still raise;
* the timeseries epoch tick schedules itself ``epoch`` cycles ahead as a
  weak entry - epoch samples must land on the same cycles (and carry the
  same values) whether the run is driven by the batched fast loop or the
  serial step loop.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.integrity import ForwardProgressError, IntegrityConfig, Watchdog
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix


# ----------------------------------------------------------------------
# Watchdog across warps
# ----------------------------------------------------------------------
def test_watchdog_tolerates_long_warps():
    """A chain of events separated by huge idle spans advances time at
    every poll, so the watchdog must stay quiet no matter how many events
    fire or how wide the warps get."""
    eng = Engine()
    wd = Watchdog(eng, IntegrityConfig(check_interval=1, stall_polls=2))
    eng.watchdog = wd
    fired = []

    def hop(n):
        fired.append(eng.now)
        if n > 0:
            # 10k-cycle warp per hop; interval=1 polls after every event
            eng.call_at(eng.now + 10_000, hop, n - 1)

    eng.schedule(0, hop, 50)
    eng.run()
    assert len(fired) == 51
    assert eng.idle_cycles_skipped >= 50 * 9_999
    assert eng.now == 500_000


def test_watchdog_still_catches_genuine_wedge():
    """Regression guard: warp tolerance must not have loosened the wedge
    detection - a same-cycle livelock still raises."""
    eng = Engine()
    wd = Watchdog(eng, IntegrityConfig(check_interval=4, stall_polls=3))
    eng.watchdog = wd

    def livelock():
        eng.call_at(eng.now, livelock)

    eng.schedule(5, livelock)
    with pytest.raises(ForwardProgressError):
        eng.run()


def test_watchdog_resets_after_each_advance():
    """Alternating bursts (many same-cycle events) and warps: each warp
    resets the stuck count, so bursts shorter than the wedge threshold
    never accumulate into a false positive."""
    eng = Engine()
    wd = Watchdog(eng, IntegrityConfig(check_interval=2, stall_polls=4))
    eng.watchdog = wd

    def burst(k, then_warp):
        if k > 0:
            eng.call_at(eng.now, burst, k - 1, then_warp)
        elif then_warp > 0:
            # 6 same-cycle events (3 polls at interval=2) then a warp;
            # repeated well past stall_polls' worth of total polls
            eng.call_at(eng.now + 1_000, burst, 6, then_warp - 1)

    eng.schedule(0, burst, 6, 10)
    eng.run()  # must not raise
    assert eng.now == 10_000


# ----------------------------------------------------------------------
# Timeseries epoch ticks across warps
# ----------------------------------------------------------------------
def _sampled_system(epoch=512, refs=150):
    traces = mix("MX1", refs, seed=3)
    return System(
        traces, SystemConfig(scheme="camps", timeseries_epoch=epoch), workload="MX1"
    )


def _series_snapshot(system):
    return {
        name: (s.times.tolist(), s.values.tolist())
        for name, s in system.timeseries.series().items()
    }


def test_epoch_samples_identical_fast_vs_serial():
    """Epoch samples land on the same cycles with the same values whether
    the engine runs batched (fast loop) or serially (step loop)."""
    fast = _sampled_system()
    fast.run()

    serial = _sampled_system()
    serial._ran = True
    if serial.timeseries is not None:
        serial.timeseries.start()
    for core in serial.cores:
        core.start()
    while serial.engine.run(max_events=1):
        pass
    serial.device.finalize()

    assert fast.engine.now == serial.engine.now
    snap_fast = _series_snapshot(fast)
    snap_serial = _series_snapshot(serial)
    assert snap_fast.keys() == snap_serial.keys()
    assert snap_fast == snap_serial
    assert fast.timeseries.samples_taken == serial.timeseries.samples_taken
    assert fast.timeseries.samples_taken > 0


def test_epoch_samples_on_epoch_grid():
    """Tick cycles are exact epoch multiples of the arm cycle: warps jump
    *to* scheduled entries, never over them, so the weak tick still fires
    exactly where it was scheduled."""
    system = _sampled_system(epoch=512)
    system.run()
    for name, s in system.timeseries.series().items():
        times = s.times.tolist()
        assert times, f"series {name} took no samples"
        for t in times:
            assert t % 512 == 0, f"series {name} sampled off-grid at {t}"


def test_warped_run_same_events_fired_as_serial():
    """events_fired parity between the two loops on a full system run (the
    digest ingredient the benches pin)."""
    fast = _sampled_system()
    fast.run()

    serial = _sampled_system()
    serial._ran = True
    if serial.timeseries is not None:
        serial.timeseries.start()
    for core in serial.cores:
        core.start()
    while serial.engine.run(max_events=1):
        pass

    assert fast.engine.idle_cycles_skipped == serial.engine.idle_cycles_skipped
    assert fast.engine.events_fired == serial.engine.events_fired
