"""Chaos suite: the service's crash-tolerance contract, proven end to end.

A fleet of headless work-stealing nodes (``python -m repro.serve.chaos
node``) shares one manifest seeded with real simulation cells.  We SIGKILL
nodes mid-cell across several seeds, tear and duplicate manifest lines
under the survivors' feet, and SIGKILL pool workers mid-simulation — then
assert the one invariant everything reduces to: the merged manifest holds
every cell exactly once, all ok, with a matrix digest *byte-identical* to
an undisturbed serial run of the same cells.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.executor import (
    CampaignOptions,
    matrix_digest,
    run_campaign,
)
from repro.campaign.manifest import Manifest
from repro.metrics.collectors import ResultMatrix
from repro.serve import ServeConfig, ServeScheduler, cell_from_spec
from repro.serve.chaos import (
    duplicate_manifest_lines,
    kill_process,
    kill_random_worker,
    seed_manifest,
    tear_manifest,
)
from repro.system import SimulationResult

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the chaos grid: 4 real cells, big enough that SIGKILL lands mid-cell
GRID_SPECS = [
    {"workload": w, "scheme": s, "refs": 3000, "seed": 5}
    for w in ("HM1", "LM1")
    for s in ("base", "camps")
]
GRID_IDS = sorted(cell_from_spec(s).cell_id for s in GRID_SPECS)


def _merged_digest(manifest_path) -> str:
    """Digest of a manifest's merged ok records (order-independent)."""
    matrix = ResultMatrix()
    for cid in sorted(
        cid for cid, r in Manifest(manifest_path).records().items() if r.ok
    ):
        rec = Manifest(manifest_path).records()[cid]
        matrix.add(SimulationResult(extra={}, **rec.summary))
    return matrix_digest(matrix)


def _terminal_lines(manifest_path):
    """Parsed terminal records, one entry per *line* (duplicates visible)."""
    out = []
    for ln in open(manifest_path).read().splitlines():
        try:
            raw = json.loads(ln)
        except json.JSONDecodeError:
            continue
        if isinstance(raw, dict) and "kind" not in raw and "cell_id" in raw:
            out.append(raw)
    return out


def _spawn_node(manifest_path, name, lease_ticks=15):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if p
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.chaos",
            "node",
            str(manifest_path),
            "--jobs",
            "1",
            "--name",
            name,
            "--tick-interval",
            "0.1",
            "--lease-ticks",
            str(lease_ticks),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _reap(proc, timeout=180):
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        pytest.fail("chaos node did not converge in time")


@pytest.fixture(scope="module")
def serial_digest(tmp_path_factory):
    """The undisturbed serial ground truth for the chaos grid."""
    manifest = Manifest(
        tmp_path_factory.mktemp("serial") / "serial.jsonl"
    )
    result = run_campaign(
        [cell_from_spec(s) for s in GRID_SPECS],
        CampaignOptions(jobs=1),
        cache=None,
        manifest=manifest,
    )
    result.raise_on_failure()
    return matrix_digest(result.matrix())


class TestFleetChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sigkill_node_mid_cell_converges_exactly_once(
        self, tmp_path, serial_digest, seed
    ):
        """Kill one of two nodes at a random point; the survivor steals the
        orphaned leases and the merge ends byte-identical to serial."""
        manifest = tmp_path / "fleet.jsonl"
        assert seed_manifest(str(manifest), GRID_SPECS) == len(GRID_SPECS)
        rng = random.Random(seed)
        victim = _spawn_node(manifest, "victim")
        survivor = _spawn_node(manifest, "survivor")
        try:
            time.sleep(rng.uniform(0.3, 1.2))
            assert kill_process(victim.pid)
            victim.wait(timeout=30)
            assert victim.returncode == -signal.SIGKILL
            assert _reap(survivor) == 0
        finally:
            for proc in (victim, survivor):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
        records = Manifest(manifest).records()
        assert sorted(records) == GRID_IDS  # zero lost cells
        assert all(r.ok for r in records.values())
        # single survivor: the file itself holds each cell exactly once
        terminals = _terminal_lines(manifest)
        assert sorted(t["cell_id"] for t in terminals) == GRID_IDS
        assert _merged_digest(manifest) == serial_digest

    def test_torn_and_duplicated_lines_under_live_fleet(
        self, tmp_path, serial_digest
    ):
        """Corrupt the manifest while a node works it: a torn tail plus
        replayed duplicate lines must change nothing in the merge."""
        manifest = tmp_path / "torn.jsonl"
        seed_manifest(str(manifest), GRID_SPECS)
        rng = random.Random(7)
        node = _spawn_node(manifest, "solo")
        try:
            time.sleep(0.4)
            tear_manifest(str(manifest), rng)
            time.sleep(0.3)
            duplicate_manifest_lines(str(manifest), rng, count=3)
            tear_manifest(str(manifest), rng)
            assert _reap(node) == 0
        finally:
            if node.poll() is None:
                node.kill()
                node.wait()
        records = Manifest(manifest).records()
        assert sorted(records) == GRID_IDS
        assert _merged_digest(manifest) == serial_digest
        # duplicated terminal lines may exist in the file; the *merge* holds
        # each cell once and identically
        by_cell = {}
        for t in _terminal_lines(manifest):
            prev = by_cell.setdefault(t["cell_id"], t["summary"])
            assert prev == t["summary"]  # zero double-merged (divergent) cells

    def test_two_node_fleet_no_chaos_still_exact(self, tmp_path, serial_digest):
        """Control: plain work stealing with no faults is digest-clean too
        (catches stealing bugs that only chaos would otherwise mask)."""
        manifest = tmp_path / "calm.jsonl"
        seed_manifest(str(manifest), GRID_SPECS)
        a = _spawn_node(manifest, "a")
        b = _spawn_node(manifest, "b")
        try:
            assert _reap(a) == 0
            assert _reap(b) == 0
        finally:
            for proc in (a, b):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
        records = Manifest(manifest).records()
        assert sorted(records) == GRID_IDS
        assert all(r.ok for r in records.values())
        assert _merged_digest(manifest) == serial_digest


class TestWorkerChaos:
    def test_sigkill_pool_worker_mid_cell_requeues_to_ok(
        self, tmp_path, serial_digest
    ):
        """SIGKILL the worker *process* under a live scheduler: the cell
        surfaces as a crash, requeues with jitter, and still ends ok."""
        import asyncio

        cfg = ServeConfig(
            manifest=str(tmp_path / "worker.jsonl"),
            jobs=1,
            use_cache=False,
            telemetry=False,
            tick_interval=0.1,
        )

        async def main():
            node = ServeScheduler(cfg)
            await node.start()
            try:
                out = node.submit(list(GRID_SPECS))
                rng = random.Random(3)
                killed = None
                for _ in range(200):
                    await asyncio.sleep(0.05)
                    if node.pool.busy_count() > 0:
                        killed = kill_random_worker(
                            node.pool.worker_pids(), rng
                        )
                        if killed:
                            break
                assert killed, "never caught a busy worker to kill"
                await asyncio.wait_for(
                    node._job_events[out["job"]].wait(), 120.0
                )
                crashes = sum(s.crashes for s in node.cells.values())
                assert crashes >= 1
            finally:
                await node.aclose()

        asyncio.run(main())
        records = Manifest(cfg.manifest).records()
        assert sorted(records) == GRID_IDS
        assert all(r.ok for r in records.values())
        assert _merged_digest(cfg.manifest) == serial_digest


class TestTraceChaos:
    """The tentpole acceptance: one causal trace survives process death."""

    def test_stolen_cell_keeps_one_connected_trace(
        self, tmp_path, serial_digest
    ):
        """Kill a node mid-cell; the survivor's steal, re-execution, and
        merge stay on the trace minted at seeding — one connected timeline
        across two processes — and the digest still matches the (untraced)
        serial ground truth."""
        from repro.obs.spans import read_spans

        manifest = tmp_path / "traced.jsonl"
        seed_manifest(str(manifest), GRID_SPECS)
        seeded = {
            cid: claim.trace
            for cid, claim in Manifest(manifest).scan().claims.items()
        }
        assert sorted(seeded) == GRID_IDS
        assert all(seeded.values())  # every seed claim carries a trace

        victim = _spawn_node(manifest, "victim")
        survivor = None
        try:
            # wait for the victim to claim real work, then kill it
            # mid-cell; gate on the claim *span* being visible, not just
            # the claim record — the two appends are separate writes, and
            # killing in between would leave a claim with no span
            deadline = time.time() + 30.0
            claimed = set()
            while time.time() < deadline and not claimed:
                time.sleep(0.1)
                scan = Manifest(manifest).scan()
                span_claimed = {
                    s.cell_id
                    for s in read_spans(str(manifest))
                    if s.name == "claim" and s.worker == "victim"
                }
                claimed = {
                    cid
                    for cid, c in scan.claims.items()
                    if c.worker != "seed"
                    and cid not in scan.records
                    and cid in span_claimed
                }
            assert claimed, "victim never claimed a cell"
            assert kill_process(victim.pid)
            victim.wait(timeout=30)
            survivor = _spawn_node(manifest, "survivor")
            assert _reap(survivor) == 0
        finally:
            for proc in (victim, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait()

        records = Manifest(manifest).records()
        assert sorted(records) == GRID_IDS
        assert all(r.ok for r in records.values())
        # tracing on, chaos on — still byte-identical to the serial run
        # (which recorded no spans at all): tracing is digest-neutral
        assert _merged_digest(manifest) == serial_digest

        spans = read_spans(str(manifest))
        assert spans
        # every span sits on the trace its cell was seeded with: nothing
        # re-minted, nothing cross-linked, across both processes
        for span in spans:
            assert span.trace_id == seeded[span.cell_id]
        # at least one cell was stolen from the dead victim, and its
        # post-theft execute+merge happened in the survivor process on
        # the same trace as the victim's own claim span
        stolen = [
            s for s in spans
            if s.name == "steal" and s.attrs.get("from_worker") == "victim"
        ]
        assert stolen, "survivor never stole from the dead victim"
        stolen_ids = {s.cell_id for s in stolen}
        # the cells we observed as claimed before issuing the kill are
        # guaranteed stolen, and their claim spans are durable (the span
        # append preceded our poll); a claim whose span append raced the
        # SIGKILL may be stolen with no victim span at all — for those,
        # trace continuity (asserted above) is the guarantee, not span
        # durability at the instant of death
        assert claimed <= stolen_ids
        for cid in stolen_ids:
            cell_spans = [s for s in spans if s.cell_id == cid]
            by_stage = {}
            for s in cell_spans:
                by_stage.setdefault(s.name, []).append(s)
            assert any(
                s.worker == "survivor" for s in by_stage.get("execute", [])
            )
            assert any(
                s.worker == "survivor" for s in by_stage.get("merge", [])
            )
            if cid in claimed:
                # two processes, one connected timeline
                assert any(s.worker == "victim" for s in by_stage["claim"])
                workers = {s.worker for s in cell_spans}
                assert {"victim", "survivor"} <= workers

    def test_digest_identical_with_spans_on_and_off(self, tmp_path):
        """Same grid through two in-process schedulers, tracing toggled:
        the merged manifests agree record for record, byte for byte."""
        import asyncio

        from repro.obs.spans import read_spans

        specs = [
            {"workload": w, "scheme": s, "refs": 600, "seed": 9}
            for w in ("HM1", "LM1")
            for s in ("base", "camps")
        ]

        def run(name, spans_enabled):
            cfg = ServeConfig(
                manifest=str(tmp_path / f"{name}.jsonl"),
                jobs=1,
                use_cache=False,
                telemetry=False,
                tick_interval=0.1,
                spans=spans_enabled,
            )

            async def main():
                node = ServeScheduler(cfg)
                await node.start()
                try:
                    out = node.submit(list(specs))
                    await asyncio.wait_for(
                        node._job_events[out["job"]].wait(), 180.0
                    )
                finally:
                    await node.aclose()

            asyncio.run(main())
            return cfg.manifest

        traced = run("traced", True)
        plain = run("plain", False)
        assert read_spans(traced) and read_spans(plain) == []
        assert _merged_digest(traced) == _merged_digest(plain)
        t_records = Manifest(traced).records()
        p_records = Manifest(plain).records()
        assert sorted(t_records) == sorted(p_records)
        assert {c: r.summary for c, r in t_records.items()} == {
            c: r.summary for c, r in p_records.items()
        }
