"""Link fault injection: config, injector, retry buffer, link integration,
and the acceptance guarantees (zero-fault parity, seeded determinism)."""

import dataclasses

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.faults import (
    ERROR_CRC,
    ERROR_DROP,
    LinkFaultConfig,
    LinkFaultInjector,
    RetryBuffer,
    derive_seed,
)
from repro.hmc.config import HMCConfig
from repro.interconnect.link import LinkDirection, SerialLink
from repro.system import run_system
from repro.workloads.mixes import mix as make_mix


class ScriptedInjector:
    """Deterministic injector stand-in: plays back a fixed outcome list."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)

    def packet_error(self, nbytes):
        return self.outcomes.pop(0) if self.outcomes else None


class TestLinkFaultConfig:
    def test_defaults_disabled(self):
        cfg = LinkFaultConfig()
        assert not cfg.enabled

    def test_enabled_with_ber_or_drop(self):
        assert LinkFaultConfig(ber=1e-9).enabled
        assert LinkFaultConfig(drop_prob=0.1).enabled

    @pytest.mark.parametrize("kwargs", [
        {"ber": -0.1}, {"ber": 1.0}, {"drop_prob": -0.1}, {"drop_prob": 1.5},
        {"max_retries": 0}, {"retry_latency": -1}, {"retrain_latency": -1},
        {"retry_buffer_flits": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkFaultConfig(**kwargs)


class TestInjector:
    def test_derive_seed_deterministic_and_distinct(self):
        a = derive_seed(1, 0, "req")
        assert a == derive_seed(1, 0, "req")
        assert a != derive_seed(1, 0, "resp")
        assert a != derive_seed(1, 1, "req")
        assert a != derive_seed(2, 0, "req")

    def test_healthy_config_never_errors(self):
        inj = LinkFaultInjector(LinkFaultConfig(), 0, "req")
        assert all(inj.packet_error(64) is None for _ in range(1000))

    def test_high_drop_prob_drops(self):
        inj = LinkFaultInjector(LinkFaultConfig(drop_prob=0.99), 0, "req")
        outcomes = [inj.packet_error(64) for _ in range(100)]
        assert outcomes.count(ERROR_DROP) > 90

    def test_high_ber_corrupts(self):
        # 1 - (1 - 1e-3)^(8*64) ~ 0.40 per packet
        inj = LinkFaultInjector(LinkFaultConfig(ber=1e-3), 0, "req")
        outcomes = [inj.packet_error(64) for _ in range(500)]
        assert outcomes.count(ERROR_CRC) > 100

    def test_same_seed_same_stream(self):
        cfg = LinkFaultConfig(ber=1e-4, drop_prob=0.01, seed=42)
        a = LinkFaultInjector(cfg, 2, "resp")
        b = LinkFaultInjector(cfg, 2, "resp")
        assert [a.packet_error(96) for _ in range(200)] == [
            b.packet_error(96) for _ in range(200)
        ]


class TestRetryBuffer:
    def _buf(self, outcomes, **cfg_kwargs):
        cfg = LinkFaultConfig(ber=1e-6, **cfg_kwargs)
        return RetryBuffer(cfg, ScriptedInjector(outcomes))

    def test_clean_packet_no_replays(self):
        buf = self._buf([None])
        assert buf.transmit(64, 4) == (0, False)
        assert buf.counters()["replays"] == 0

    def test_single_crc_one_replay(self):
        buf = self._buf([ERROR_CRC, None])
        assert buf.transmit(64, 4) == (1, False)
        assert buf.crc_errors == 1
        assert buf.replays == 1
        assert buf.replayed_flits == 4

    def test_drop_counted_separately(self):
        buf = self._buf([ERROR_DROP, None])
        buf.transmit(64, 4)
        assert buf.drops == 1 and buf.crc_errors == 0

    def test_retrain_after_max_retries(self):
        buf = self._buf([ERROR_CRC] * 10, max_retries=3)
        replays, retrained = buf.transmit(64, 4)
        assert replays == 3 and retrained
        assert buf.retrains == 1
        assert buf.max_episode_replays == 3

    def test_reset_counters(self):
        buf = self._buf([ERROR_CRC, None])
        buf.transmit(64, 4)
        buf.reset_counters()
        assert all(v == 0 for v in buf.counters().values())


class TestLinkDirectionRetry:
    def _direction(self, outcomes, **cfg_kwargs):
        cfg = LinkFaultConfig(ber=1e-6, **cfg_kwargs)
        d = LinkDirection("link0.req", bytes_per_cycle=16.0, serdes_latency=10,
                         flit_bytes=16)
        d.retry = RetryBuffer(cfg, ScriptedInjector(outcomes))
        return d

    def test_clean_send_matches_fault_free(self):
        plain = LinkDirection("link0.req", 16.0, 10, 16)
        faulty = self._direction([None])
        assert plain.send(0, 80) == faulty.send(0, 80)
        assert plain.busy_until == faulty.busy_until

    def test_replay_extends_occupancy_and_flits(self):
        d = self._direction([ERROR_CRC, None], retry_latency=24)
        arrival, flits = d.send(0, 80)  # ser = 5 cycles, 5 flits
        # one replay: 5 + (5 + 24) = 34 busy cycles, then +10 serdes
        assert d.busy_until == 34
        assert arrival == 44
        assert flits == 10  # replayed flits cross the wire again
        assert d.flits_sent == 10
        assert d.packets == 1

    def test_retrain_adds_penalty(self):
        d = self._direction([ERROR_CRC] * 5, max_retries=2,
                            retry_latency=24, retrain_latency=2000)
        d.send(0, 80)
        # 5 + 2*(5+24) + 2000
        assert d.busy_until == 5 + 58 + 2000

    def test_reset_statistics_zeroes_retry_counters(self):
        d = self._direction([ERROR_CRC, None])
        d.send(0, 80)
        d.reset_statistics()
        assert d.flits_sent == 0
        assert d.retry.replays == 0


class TestUtilizationClamp:
    """Regression: busy_cycles can extend past the measurement window, so
    raw utilization could exceed 1.0."""

    def test_serialization_past_window_clamps_to_one(self):
        d = LinkDirection("link0.req", bytes_per_cycle=1.0, serdes_latency=0,
                          flit_bytes=16)
        d.send(0, 1000)  # occupies cycles 0..1000
        assert d.utilization(10) == 1.0

    def test_zero_window(self):
        d = LinkDirection("link0.req", 1.0, 0, 16)
        assert d.utilization(0) == 0.0

    def test_partial_utilization_unchanged(self):
        d = LinkDirection("link0.req", 1.0, 0, 16)
        d.send(0, 50)
        assert d.utilization(100) == 0.5

    def test_retry_occupancy_also_clamped(self):
        cfg = LinkFaultConfig(ber=1e-6, retrain_latency=5000, max_retries=1)
        d = LinkDirection("link0.req", 16.0, 0, 16)
        d.retry = RetryBuffer(cfg, ScriptedInjector(["crc"]))
        d.send(0, 64)
        assert d.utilization(10) == 1.0


class TestSerialLinkFaults:
    def test_attach_disabled_is_noop(self):
        link = SerialLink(0, 16.0, 10, 16)
        link.attach_faults(LinkFaultConfig())
        assert link.request.retry is None
        assert link.fault_counters() is None

    def test_ctor_enables_per_direction_streams(self):
        link = SerialLink(0, 16.0, 10, 16, LinkFaultConfig(ber=1e-6, seed=3))
        assert link.request.retry is not None
        assert link.response.retry is not None
        a = link.request.retry.injector
        b = link.response.retry.injector
        assert a.direction == "req" and b.direction == "resp"
        assert a._rng.getstate() != b._rng.getstate()

    def test_fault_counters_aggregate(self):
        link = SerialLink(0, 16.0, 10, 16)
        cfg = LinkFaultConfig(ber=1e-6)
        link.request.retry = RetryBuffer(cfg, ScriptedInjector(["crc", None]))
        link.response.retry = RetryBuffer(cfg, ScriptedInjector(["drop", None]))
        link.request.send(0, 64)
        link.response.send(0, 64)
        agg = link.fault_counters()
        assert agg["replays"] == 2
        assert agg["crc_errors"] == 1 and agg["drops"] == 1


class TestConfigPlumbing:
    def test_hmc_round_trip_with_faults(self):
        hmc = HMCConfig(faults=LinkFaultConfig(ber=1e-6, drop_prob=0.01, seed=9))
        rebuilt = HMCConfig.from_dict(hmc.to_dict())
        assert rebuilt.faults == hmc.faults
        assert isinstance(rebuilt.faults, LinkFaultConfig)

    def test_cache_key_unchanged_when_disabled(self):
        cfg = ExperimentConfig(refs_per_core=100, seed=1)
        key = cfg.cache_key("HM1", "base")
        assert "faults" not in key

    def test_cache_key_distinguishes_fault_configs(self):
        base = ExperimentConfig(refs_per_core=100, seed=1)
        faulty = dataclasses.replace(
            base, hmc=HMCConfig(faults=LinkFaultConfig(ber=1e-6))
        )
        faulty2 = dataclasses.replace(
            base, hmc=HMCConfig(faults=LinkFaultConfig(ber=1e-6, seed=5))
        )
        keys = {c.cache_key("HM1", "base") for c in (base, faulty, faulty2)}
        assert len(keys) == 3

    def test_integrity_flag_does_not_change_cache_key(self):
        a = ExperimentConfig(refs_per_core=100, seed=1)
        b = dataclasses.replace(a, integrity=True)
        assert a.cache_key("HM1", "base") == b.cache_key("HM1", "base")


class TestSystemLevel:
    def _traces(self):
        return make_mix("HM1", 300, seed=1)

    def test_zero_fault_config_byte_identical(self):
        r0 = run_system(self._traces(), scheme="base", workload="HM1")
        r1 = run_system(self._traces(), scheme="base", workload="HM1",
                        hmc=HMCConfig(faults=LinkFaultConfig()))
        assert r0.cycles == r1.cycles
        assert r0.core_ipc == r1.core_ipc
        assert r0.energy_pj == r1.energy_pj
        assert r0.link_utilization == r1.link_utilization
        assert "link_faults" not in r1.extra

    def test_fixed_seed_identical_retry_counts_and_results(self):
        hmc = HMCConfig(faults=LinkFaultConfig(ber=2e-5, seed=7))
        a = run_system(self._traces(), scheme="base", workload="HM1", hmc=hmc)
        b = run_system(self._traces(), scheme="base", workload="HM1", hmc=hmc)
        assert a.extra["link_faults"] == b.extra["link_faults"]
        assert a.extra["link_faults"]["replays"] > 0
        assert a.cycles == b.cycles
        assert a.core_ipc == b.core_ipc
        assert a.energy_pj == b.energy_pj

    def test_faults_cost_cycles_and_energy(self):
        clean = run_system(self._traces(), scheme="base", workload="HM1")
        hmc = HMCConfig(faults=LinkFaultConfig(ber=5e-5, seed=7))
        faulty = run_system(self._traces(), scheme="base", workload="HM1", hmc=hmc)
        assert faulty.extra["link_faults"]["replays"] > 0
        assert faulty.cycles >= clean.cycles
        # replayed flits are charged by the energy model
        assert faulty.energy_breakdown["link"] > clean.energy_breakdown["link"]

    def test_different_fault_seed_different_episodes(self):
        r = [
            run_system(self._traces(), scheme="base", workload="HM1",
                       hmc=HMCConfig(faults=LinkFaultConfig(ber=2e-5, seed=s)))
            for s in (1, 2)
        ]
        assert r[0].extra["link_faults"] != r[1].extra["link_faults"]

    def test_tracer_records_retry_events(self):
        from repro.obs import Tracer
        from repro.system import System, SystemConfig

        hmc = HMCConfig(faults=LinkFaultConfig(ber=5e-5, seed=7))
        tracer = Tracer()
        System(self._traces(), SystemConfig(hmc=hmc, scheme="base"),
               workload="HM1", tracer=tracer).run()
        counts = tracer.event_counts()
        assert counts.get("link.retry", 0) > 0
        snap = tracer.counters.snapshot()
        link0 = snap["host"]["link0"]
        assert "req_replays" in link0 and "req_retrains" in link0


class TestDigestParity:
    """Acceptance gate: with faults disabled and integrity off, the grid's
    ResultMatrix must stay byte-identical to the pre-fault-injection tree.
    The digest below was pinned before the faults/integrity plumbing landed;
    any drift means the disabled path is no longer free."""

    PINNED = "e041b6721f31e396091e03c0742377f93922b5fe2814c9550da5df1da0591691"

    def test_small_grid_matrix_digest_unchanged(self, tmp_path):
        from repro.campaign import matrix_digest
        from repro.experiments.runner import ResultCache, run_matrix

        cfg = ExperimentConfig(refs_per_core=500, seed=1)
        matrix = run_matrix(
            ["HM1", "LM1"],
            ["base", "camps-mod"],
            cfg,
            cache=ResultCache(tmp_path / "cache.json"),
        )
        assert matrix_digest(matrix) == self.PINNED
