"""Tests for warmup statistics reset and the periodic sampler."""

import pytest

from repro.sim.engine import Engine
from repro.sim.sampler import Sampler
from repro.system import System, SystemConfig, run_system
from repro.workloads.synthetic import generate_trace


@pytest.fixture
def traces():
    return [generate_trace("gcc", 500, seed=i, core_id=i) for i in range(2)]


class TestSampler:
    def test_samples_on_period(self):
        eng = Engine()
        state = {"v": 0}
        s = Sampler(eng, interval=10)
        hist = s.probe("v", lambda: state["v"])
        s.start()
        eng.schedule(35, lambda: None)  # strong work keeps the engine alive
        eng.run()
        assert s.samples_taken == 3  # t=10, 20, 30
        assert hist.n == 3

    def test_probe_values_recorded(self):
        eng = Engine()
        s = Sampler(eng, interval=5)
        counter = iter(range(100))
        hist = s.probe("c", lambda: next(counter))
        s.start()
        eng.schedule(20, lambda: None)
        eng.run()
        # ticks at t=5, 10, 15; the tick scheduled for t=20 does not fire
        # because the last strong event completes first
        assert hist.mean == pytest.approx((0 + 1 + 2) / 3)

    def test_weak_events_do_not_block_termination(self):
        eng = Engine()
        s = Sampler(eng, interval=1)
        s.probe("x", lambda: 1)
        s.start()
        eng.schedule(3, lambda: None)
        eng.run()  # must terminate despite the self-rearming sampler
        assert eng.now == 3

    def test_start_idempotent(self):
        eng = Engine()
        s = Sampler(eng, interval=10)
        s.probe("x", lambda: 1)
        s.start()
        s.start()
        eng.schedule(10, lambda: None)
        eng.run()
        assert s.samples_taken == 1

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Sampler(Engine(), interval=0)

    def test_histograms_accessor(self):
        s = Sampler(Engine())
        s.probe("a", lambda: 1)
        s.probe("b", lambda: 2)
        assert set(s.histograms()) == {"a", "b"}

    def test_duplicate_probe_rejected(self):
        # A duplicate name would silently shadow the first histogram in
        # histograms(); match Timeline.probe and refuse it up front.
        s = Sampler(Engine())
        s.probe("depth", lambda: 1)
        with pytest.raises(ValueError, match="duplicate probe"):
            s.probe("depth", lambda: 2)
        assert set(s.histograms()) == {"depth"}


class TestWarmup:
    def test_warmup_reset_shrinks_counted_accesses(self, traces):
        full = run_system(traces, scheme="camps-mod")
        warm = System(
            traces,
            SystemConfig(scheme="camps-mod", stats_warmup_cycles=full.cycles // 2),
        ).run()
        # same simulation, but only post-warmup activity is counted
        assert warm.cycles == full.cycles  # timing identical
        assert warm.demand_accesses + warm.buffer_hits < (
            full.demand_accesses + full.buffer_hits
        )
        assert warm.energy_pj < full.energy_pj

    def test_warmup_after_end_counts_nothing_dynamic(self, traces):
        full = run_system(traces, scheme="base")
        warm = System(
            traces,
            SystemConfig(scheme="base", stats_warmup_cycles=full.cycles + 10_000),
        ).run()
        # warmup boundary never fires (weak event beyond last strong work)
        # OR fires after all traffic - either way dynamic counts survive or
        # are zeroed consistently; the run itself must be unperturbed.
        assert warm.cycles == full.cycles
        assert warm.core_ipc == full.core_ipc

    def test_warmup_does_not_change_timing_or_ipc(self, traces):
        a = run_system(traces, scheme="camps")
        b = System(
            traces, SystemConfig(scheme="camps", stats_warmup_cycles=1000)
        ).run()
        assert a.cycles == b.cycles
        assert a.core_ipc == b.core_ipc

    def test_warmup_latency_histogram_post_boundary_only(self, traces):
        full = run_system(traces, scheme="none")
        warm = System(
            traces,
            SystemConfig(scheme="none", stats_warmup_cycles=full.cycles // 2),
        ).run()
        assert warm.extra["events_fired"] >= 0
        # fewer samples in the post-warmup latency histogram
        assert warm.mean_read_latency >= 0.0
