"""Tests for the observability subsystem (repro.obs) and its CLI surface."""

import json

import pytest

from repro.cli import main
from repro.hmc.config import HMCConfig
from repro.obs import (
    ALL_KINDS,
    PROV_CONFLICT,
    PROV_UTILIZATION,
    CounterRegistry,
    Tracer,
    chrome_trace,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.events import PF_ISSUE, TraceEvent
from repro.obs.export import CONTROLLER_TID, DEVICE_PID
from repro.system import System, SystemConfig
from repro.workloads.synthetic import generate_trace


@pytest.fixture(scope="module")
def traced_run():
    """One small camps-mod run with a tracer attached (shared: read-only)."""
    traces = [generate_trace("gems", 700, seed=i, core_id=i) for i in range(2)]
    tracer = Tracer()
    cfg = SystemConfig(
        hmc=HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=4),
        scheme="camps-mod",
    )
    result = System(traces, cfg, workload="obs-test", tracer=tracer).run()
    return tracer, result


class TestTracer:
    def test_capacity_drops_not_grows(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.prefetch_issue(0, 0, i, "utilization", time=i)
        assert len(t.events) == 3
        assert t.dropped == 2
        assert t.summary()["events_dropped"] == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_event_counts_and_provenance(self):
        t = Tracer()
        t.prefetch_issue(0, 1, 10, PROV_UTILIZATION, time=5)
        t.prefetch_issue(0, 2, 11, PROV_CONFLICT, time=6)
        t.prefetch_issue(1, 0, 12, PROV_CONFLICT, time=7)
        t.bank_conflict(0, 1, open_row=3, new_row=4, time=8)
        assert t.event_counts() == {"bank.conflict": 1, "pf.issue": 3}
        assert t.provenance_counts() == {"utilization": 1, "conflict": 2}

    def test_span_events_carry_duration(self):
        t = Tracer()
        t.prefetch_fill(2, 3, 40, "conflict", start=100, finish=160)
        t.link_tx(1, "req", 80, start=10, finish=14)
        assert [e.dur for e in t.events] == [60, 4]
        # link events are device-level: no vault/bank placement
        assert t.events[1].vault == -1 and t.events[1].bank == -1

    def test_all_kinds_are_distinct(self):
        assert len(ALL_KINDS) == len(set(ALL_KINDS))

    def test_trace_event_to_dict_flat(self):
        e = TraceEvent(PF_ISSUE, 42, vault=1, bank=2, args={"row": 7, "provenance": "mmd"})
        assert e.to_dict() == {
            "kind": "pf.issue", "time": 42, "vault": 1, "bank": 2,
            "row": 7, "provenance": "mmd",
        }


class TestCounterRegistry:
    def test_nested_scopes_flatten(self):
        reg = CounterRegistry()
        vs = reg.scope("vault0")
        vs.register("acts", lambda: 5)
        vs.scope("bank1").register("reads", lambda: 9)
        reg.scope("device").register("cycles", 123)
        flat = reg.flatten()
        assert flat == {
            "device.cycles": 123,
            "vault0.acts": 5,
            "vault0.bank1.reads": 9,
        }
        assert len(reg) == 3

    def test_snapshot_nested(self):
        reg = CounterRegistry()
        reg.scope("vault1", "bank0").register("acts", lambda: 2)
        assert reg.snapshot() == {"vault1": {"bank0": {"acts": 2}}}

    def test_counter_object_source(self):
        class C:
            value = 17

        reg = CounterRegistry()
        reg.scope("x").register("c", C())
        assert reg.flatten() == {"x.c": 17}

    def test_gauges_read_lazily(self):
        state = {"v": 0}
        reg = CounterRegistry()
        reg.scope("s").register("g", lambda: state["v"])
        state["v"] = 99
        assert reg.flatten()["s.g"] == 99

    def test_duplicate_rejected(self):
        reg = CounterRegistry()
        reg.scope("a").register("n", lambda: 1)
        with pytest.raises(ValueError, match="duplicate counter"):
            reg.scope("a").register("n", lambda: 2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CounterRegistry().scope("a").register("", lambda: 1)

    def test_scopes_prefix_filter(self):
        reg = CounterRegistry()
        reg.scope("vault0").register("a", 1)
        reg.scope("vault1").register("a", 1)
        reg.scope("host").register("a", 1)
        assert reg.scopes("vault") == ["vault0", "vault1"]

    def test_snapshot_name_as_both_counter_and_scope(self):
        # "links" is a counter at the root *and* a scope with children: the
        # counter value must survive under the scope dict's "" key whichever
        # order the two registrations land in.
        reg = CounterRegistry()
        reg.scope().register("links", 4)
        reg.scope("links").register("tx", 7)
        assert reg.snapshot() == {"links": {"": 4, "tx": 7}}

        reg2 = CounterRegistry()
        reg2.scope("a", "links").register("tx", 7)
        reg2.scope("a").register("links", 4)
        assert reg2.snapshot() == {"a": {"links": {"": 4, "tx": 7}}}

    def test_flatten_empty_path_root_counters(self):
        reg = CounterRegistry()
        reg.scope().register("cycles", 11)
        reg.scope("v").register("acts", 2)
        assert reg.flatten() == {"cycles": 11, "v.acts": 2}

    def test_raising_gauge_degrades_to_nan(self):
        def boom():
            raise RuntimeError("component torn down")

        reg = CounterRegistry()
        reg.scope("s").register("g", boom)
        reg.scope("s").register("ok", 3)
        flat = reg.flatten()
        assert flat["s.ok"] == 3
        assert flat["s.g"] != flat["s.g"]  # NaN


class TestWiredRun:
    def test_both_camps_provenances_observed(self, traced_run):
        tracer, _ = traced_run
        prov = tracer.provenance_counts()
        assert prov.get(PROV_UTILIZATION, 0) > 0
        assert prov.get(PROV_CONFLICT, 0) > 0

    def test_core_event_kinds_present(self, traced_run):
        tracer, _ = traced_run
        counts = tracer.event_counts()
        for kind in ("bank.act", "bank.conflict", "pf.issue", "pf.fill",
                     "pf.hit", "link.tx", "tsv.xfer"):
            assert counts.get(kind, 0) > 0, kind

    def test_counters_match_component_state(self, traced_run):
        tracer, result = traced_run
        flat = tracer.counters.flatten()
        issued = sum(
            v for k, v in flat.items()
            if k.startswith("vault") and k.endswith(".prefetches_issued")
        )
        assert issued == result.prefetches_issued
        assert flat["device.cycles"] == result.cycles

    def test_trace_summary_in_result_extra(self, traced_run):
        tracer, result = traced_run
        summary = result.extra["trace_summary"]
        assert summary["events_recorded"] == len(tracer.events)
        assert summary["scheme"] == "camps-mod"
        assert summary["workload"] == "obs-test"
        assert summary["engine_events_per_sec"] > 0

    def test_no_tracer_attribute_costs(self):
        # untraced components expose tracer=None (the no-op hook guard)
        traces = [generate_trace("gems", 100, seed=0)]
        sys_ = System(
            traces,
            SystemConfig(hmc=HMCConfig(vaults=4, banks_per_vault=4)),
        )
        assert sys_.engine.tracer is None
        assert sys_.host.tracer is None
        vc = sys_.device.vaults[0]
        assert vc.tracer is None and vc.scheduler.tracer is None
        assert vc.prefetcher.tracer is None and vc.banks[0].tracer is None


class TestExporters:
    def test_chrome_trace_structure(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        json.loads(json.dumps(doc))  # round-trips
        events = doc["traceEvents"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        body = [e for e in events if e.get("ph") != "M"]
        assert len(body) == len(tracer.events)
        for e in body:
            assert e["ph"] in ("X", "i")
            if e["ph"] == "X":
                assert e["dur"] > 0
        assert doc["otherData"]["clock"] == "cpu-cycles"

    def test_chrome_track_mapping(self):
        t = Tracer()
        t.prefetch_issue(3, 5, 9, "conflict", time=1)  # vault 3, bank 5
        t.sched_drain(2, True, 4, time=2)  # vault 2, controller
        t.link_tx(0, "req", 16, start=0, finish=2)  # device-level
        body = [e for e in chrome_trace(t)["traceEvents"] if e.get("ph") != "M"]
        assert (body[0]["pid"], body[0]["tid"]) == (3, 6)  # tid = bank + 1
        assert (body[1]["pid"], body[1]["tid"]) == (2, CONTROLLER_TID)
        assert body[2]["pid"] == DEVICE_PID

    def test_write_chrome_trace_loads(self, traced_run, tmp_path):
        tracer, _ = traced_run
        p = write_chrome_trace(tracer, tmp_path / "t.json")
        doc = json.loads(p.read_text())
        assert len(doc["traceEvents"]) > 0

    def test_write_jsonl_header_then_one_event_per_line(self, traced_run, tmp_path):
        tracer, _ = traced_run
        p = write_jsonl(tracer, tmp_path / "t.jsonl")
        lines = p.read_text().splitlines()
        assert len(lines) == 1 + len(tracer.events)
        header = json.loads(lines[0])
        assert header["meta"] == dict(tracer.meta)
        assert header["events_recorded"] == len(tracer.events)
        assert header["events_dropped"] == tracer.dropped
        first = json.loads(lines[1])
        assert "kind" in first and "time" in first

    def test_text_summary_contents(self, traced_run):
        tracer, _ = traced_run
        text = text_summary(tracer)
        assert "events recorded" in text
        assert "prefetch provenance" in text
        assert "conflict" in text and "utilization" in text
        assert "vault0" in text


class TestObsCLI:
    def test_run_with_trace_and_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        jsonl_path = tmp_path / "out.jsonl"
        rc = main([
            "run", "HM1", "--scheme", "camps-mod", "--refs", "300",
            "--trace", str(trace_path), "--log-json", str(jsonl_path),
        ])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        assert len(doc["traceEvents"]) > 0
        assert jsonl_path.exists()
        out = capsys.readouterr().out
        assert "trace summary" in out

    def test_run_json_flag_one_line(self, capsys):
        assert main(["run", "HM1", "--refs", "300", "--json"]) == 0
        out = capsys.readouterr().out.strip()
        payload = json.loads(out)  # exactly one JSON document
        assert "\n" not in out
        assert payload["mix"] == "HM1"
        assert payload["scheme"] == "camps-mod"
        assert payload["cycles"] > 0

    def test_run_json_with_trace_includes_summary(self, tmp_path, capsys):
        rc = main([
            "run", "HM1", "--refs", "300", "--json",
            "--trace", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["trace_summary"]["events_recorded"] > 0

    def test_profile_command(self, capsys):
        assert main(["profile", "HM1", "--refs", "300", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "events fired" in out
        assert "repro" in out  # hot-callback listing shows repro frames
