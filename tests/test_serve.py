"""Tests for the campaign service: admission, lifecycle, protocol, faults.

Fast fake runners stand in for the simulator (the digest-parity contract
against real simulations lives in tests/test_serve_chaos.py); these tests
pin the service semantics: 429 + retry_after under saturation, quick-lane
priority, dedupe across jobs, drain -> checkpoint -> resume, quarantine of
diagnosed failures, crash/flake requeue, ENOSPC retry of terminal records,
both wire protocols, and the degradation of health endpoints.
"""

import asyncio
import json
import os
import time

import pytest

from repro.obs.promtext import parse_exposition, render_metrics
from repro.obs.spans import read_spans
from repro.serve import (
    LANE_BULK,
    LANE_QUICK,
    AdmissionController,
    DrainingError,
    LatencyTracker,
    ServeClient,
    ServeConfig,
    ServeScheduler,
    ServeService,
    Shed,
    SpecError,
    cell_from_spec,
    cell_to_spec,
    checkpoint_path,
    infer_lane,
)
from repro.serve.chaos import drop_connection, enospc_manifest
from repro.serve.server import _expand_cells


def _summary(cell):
    return {"scheme": cell.scheme, "workload": cell.workload, "cycles": 1000}


def ok_runner(cell, attempt):  # module-level: picklable for worker processes
    return _summary(cell)


def slow_runner(cell, attempt):
    time.sleep(0.6)
    return _summary(cell)


def flaky_runner(cell, attempt):
    if attempt == 1:
        raise RuntimeError("transient flake (attempt 1)")
    return _summary(cell)


def crash_once_runner(cell, attempt):
    if attempt == 1:
        os._exit(17)  # kill the worker process abruptly, mid-cell
    return _summary(cell)


class _DiagnosedError(RuntimeError):
    report = {"reason": "deadlock", "component": "vault3", "violations": 2}


def diagnosed_runner(cell, attempt):
    raise _DiagnosedError("integrity check failed")


def _spec(workload="HM1", scheme="base", refs=100, seed=1, **extra):
    spec = {"workload": workload, "scheme": scheme, "refs": refs, "seed": seed}
    spec.update(extra)
    return spec


def _cfg(tmp_path, **kw):
    kw.setdefault("jobs", 1)
    kw.setdefault("use_cache", False)
    kw.setdefault("telemetry", False)
    kw.setdefault("tick_interval", 0.1)
    return ServeConfig(manifest=str(tmp_path / "serve.jsonl"), **kw)


async def _call(fn, *args, **kw):
    """Run a blocking client call off the event loop thread."""
    return await asyncio.get_running_loop().run_in_executor(
        None, lambda: fn(*args, **kw)
    )


def _with_service(cfg, runner, body):
    """Start a service, run the async body, always tear down."""

    async def _main():
        service = ServeService(cfg, runner=runner)
        await service.start()
        try:
            return await body(service)
        finally:
            await service.stop()

    return asyncio.run(_main())


def _with_node(cfg, runner, body):
    """Scheduler-only variant (no HTTP listener)."""

    async def _main():
        node = ServeScheduler(cfg, runner=runner)
        await node.start()
        try:
            return await body(node)
        finally:
            await node.aclose()

    return asyncio.run(_main())


async def _wait_job(node, job_id, timeout=30.0):
    await asyncio.wait_for(node._job_events[job_id].wait(), timeout)
    return node.registry.jobs[job_id]


# ----------------------------------------------------------------------
# Admission control (unit)
# ----------------------------------------------------------------------


class TestAdmission:
    def test_infer_lane_thresholds(self):
        assert infer_lane(_spec(refs=100)) == LANE_QUICK
        assert infer_lane(_spec(refs=50_000)) == LANE_BULK
        assert infer_lane(_spec(topology="chain:4")) == LANE_BULK
        assert infer_lane(_spec(ber=1e-6)) == LANE_BULK

    def test_caps_enforced_per_lane(self):
        adm = AdmissionController(quick_cap=2, bulk_cap=4, jobs=1)
        assert adm.try_admit(LANE_QUICK, 2) is None
        verdict = adm.try_admit(LANE_QUICK, 1)
        assert verdict is not None and verdict > 0
        assert adm.try_admit(LANE_BULK, 4) is None  # independent budget
        assert adm.shed_total == 1

    def test_release_reopens_lane(self):
        adm = AdmissionController(quick_cap=1, bulk_cap=1, jobs=1)
        assert adm.try_admit(LANE_QUICK, 1) is None
        assert adm.try_admit(LANE_QUICK, 1) is not None
        adm.release(LANE_QUICK)
        assert adm.try_admit(LANE_QUICK, 1) is None

    def test_zero_cell_submission_always_admitted(self):
        adm = AdmissionController(quick_cap=1, bulk_cap=1, jobs=1)
        adm.try_admit(LANE_QUICK, 1)
        assert adm.try_admit(LANE_QUICK, 0) is None  # fully-deduped job

    def test_retry_after_scales_with_backlog_and_bounded(self):
        adm = AdmissionController(quick_cap=10**6, bulk_cap=10**6, jobs=2)
        adm.observe_cell_seconds(2.0)
        small = adm.retry_after()
        adm.try_admit(LANE_BULK, 100)
        assert adm.retry_after() > small
        assert 0.5 <= adm.retry_after() <= 60.0
        adm.try_admit(LANE_BULK, 10**5)
        assert adm.retry_after() == 60.0  # clamped


# ----------------------------------------------------------------------
# Cell specs (wire round-trip)
# ----------------------------------------------------------------------


class TestSpecs:
    def test_roundtrip_preserves_cell_id(self):
        cell = cell_from_spec(_spec(scheme="camps", refs=321, seed=9))
        assert cell_from_spec(cell_to_spec(cell)).cell_id == cell.cell_id

    def test_unknown_names_rejected(self):
        with pytest.raises(SpecError):
            cell_from_spec(_spec(workload="NOPE"))
        with pytest.raises(SpecError):
            cell_from_spec(_spec(scheme="NOPE"))
        with pytest.raises(SpecError):
            cell_from_spec(_spec(topology="ring-of-doom"))
        with pytest.raises(SpecError):
            cell_from_spec(_spec(refs=-5))
        with pytest.raises(SpecError):
            cell_from_spec("not an object")

    def test_grid_shorthand_expands_workload_major(self):
        specs = _expand_cells(
            {"grid": {"mixes": ["HM1", "LM1"], "schemes": ["base", "camps"],
                      "refs": 128, "seed": 3}}
        )
        assert [(s["workload"], s["scheme"]) for s in specs] == [
            ("HM1", "base"), ("HM1", "camps"),
            ("LM1", "base"), ("LM1", "camps"),
        ]
        assert all(s["refs"] == 128 and s["seed"] == 3 for s in specs)

    def test_grid_topologies_axis(self):
        specs = _expand_cells(
            {"grid": {"mixes": ["HM1"], "schemes": ["base"],
                      "topologies": ["chain:2", "star:3"]}}
        )
        assert [s["topology"] for s in specs] == ["chain:2", "star:3"]

    def test_empty_submission_rejected(self):
        with pytest.raises(SpecError):
            _expand_cells({})


# ----------------------------------------------------------------------
# Service lifecycle over HTTP
# ----------------------------------------------------------------------


class TestServiceHTTP:
    def test_submit_completes_and_records(self, tmp_path):
        cfg = _cfg(tmp_path, jobs=2)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(
                client.submit, cells=[_spec(seed=1), _spec(seed=2)]
            )
            assert out["job"]
            info = await _call(client.wait, out["job"], 30.0, 0.05)
            assert info["status"] == "done"
            assert info["done"] == 2
            assert all(c["status"] == "ok" for c in info["cells"].values())
            status, _ = await _call(client.healthz)
            assert status == 200
            return service.node

        node = _with_service(cfg, ok_runner, body)
        records = __import__(
            "repro.campaign.manifest", fromlist=["Manifest"]
        ).Manifest(cfg.manifest).records()
        assert len(records) == 2
        assert all(r.ok for r in records.values())
        assert node.completed_cells == 2

    def test_shared_cell_deduped_across_jobs(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            a = await _call(client.submit, cells=[_spec(seed=5)])
            b = await _call(client.submit, cells=[_spec(seed=5)])
            for job in (a["job"], b["job"]):
                info = await _call(client.wait, job, 30.0, 0.05)
                assert info["status"] == "done"
            return service.node.completed_cells

        assert _with_service(cfg, ok_runner, body) == 1  # one execution

    def test_saturation_sheds_429_with_retry_after(self, tmp_path):
        cfg = _cfg(tmp_path, quick_cap=1, bulk_cap=1)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            # jobs=1 and slow cells: the first dispatches, the second fills
            # the one-slot quick lane, the third must be shed
            await _call(client.submit, cells=[_spec(seed=1)])
            await _call(client.submit, cells=[_spec(seed=2)])
            with pytest.raises(Shed) as exc:
                await _call(client.submit, cells=[_spec(seed=3)])
            assert exc.value.retry_after > 0
            snap = await _call(client.snapshot)
            assert snap["serve"]["admission"]["shed_total"] >= 1

        _with_service(cfg, slow_runner, body)

    def test_quick_lane_overtakes_bulk_backlog(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            node = service.node
            bulk = node.submit(
                [_spec(seed=s) for s in range(1, 5)], lane="bulk"
            )
            quick = node.submit([_spec(seed=99)], lane="quick")
            info = await _wait_job(node, quick["job"])
            assert info.status == "done"
            bulk_job = node.registry.jobs[bulk["job"]]
            # the quick probe finished while bulk cells still queued
            assert len(bulk_job.done) < 4

        _with_service(cfg, slow_runner, body)

    def test_drain_flips_health_and_refuses_submits(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            await _call(client.submit, cells=[_spec(seed=1)])
            status, _ = await _call(client.readyz)
            assert status == 200
            await _call(client.drain)
            status, data = await _call(client.healthz)
            assert status == 503 and data["status"] == "draining"
            status, data = await _call(client.readyz)
            assert status == 503 and data["ready"] is False
            with pytest.raises(DrainingError):
                await _call(client.submit, cells=[_spec(seed=2)])
            await asyncio.wait_for(service.node.stopped.wait(), 30.0)
            # the in-flight cell was allowed to finish and was recorded
            assert len(service.node.manifest.records()) == 1

        _with_service(cfg, slow_runner, body)

    def test_metrics_exposition_parses_with_serve_families(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(client.submit, cells=[_spec(seed=1)])
            await _call(client.wait, out["job"], 30.0, 0.05)
            return await _call(client.metrics_text)

        text = _with_service(cfg, ok_runner, body)
        families = parse_exposition(text)  # raises on malformed exposition
        assert "repro_serve_inflight_cells" in families
        assert "repro_serve_queued_cells" in families
        assert "repro_serve_jobs" in families
        done = [
            v
            for labels, v in families["repro_serve_jobs"]["samples"]
            if labels.get("state") == "done"
        ]
        assert done == [1.0]
        (sample,) = families["repro_serve_completed_cells_total"]["samples"]
        assert sample[1] == 1.0

    def test_http_error_paths(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            status, _ = await _call(
                client._request, "POST", "/submit", {"cells": "not-a-list"}
            )
            assert status == 400
            status, _ = await _call(client._request, "GET", "/jobs/j999")
            assert status == 404
            status, _ = await _call(client._request, "GET", "/no/such/route")
            assert status == 404

        _with_service(cfg, ok_runner, body)

    def test_dropped_connections_leave_service_healthy(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            for _ in range(5):
                await _call(drop_connection, "127.0.0.1", service.port)
            client = ServeClient("127.0.0.1", service.port)
            status, _ = await _call(client.healthz)
            assert status == 200
            out = await _call(client.submit, cells=[_spec(seed=1)])
            info = await _call(client.wait, out["job"], 30.0, 0.05)
            assert info["status"] == "done"

        _with_service(cfg, ok_runner, body)


# ----------------------------------------------------------------------
# JSONL protocol
# ----------------------------------------------------------------------


class TestJsonlProtocol:
    def test_ping_submit_wait_over_one_connection(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )

            async def op(req):
                writer.write(json.dumps(req).encode() + b"\n")
                await writer.drain()
                return json.loads(await asyncio.wait_for(reader.readline(), 30))

            pong = await op({"op": "ping"})
            assert pong["ok"] and pong["pong"] and not pong["draining"]
            sub = await op({"op": "submit", "cells": [_spec(seed=1)]})
            assert sub["ok"]
            done = await op({"op": "wait", "job": sub["job"], "timeout": 30})
            assert done["ok"] and done["status"] == "done"
            status = await op({"op": "status", "job": sub["job"]})
            assert status["ok"] and status["done"] == 1
            bad = await op({"op": "frobnicate"})
            assert not bad["ok"]
            garbage = await op({"op": "status", "job": "j999"})
            assert not garbage["ok"]
            writer.close()
            await writer.wait_closed()

        _with_service(cfg, ok_runner, body)


# ----------------------------------------------------------------------
# Failure handling (scheduler level)
# ----------------------------------------------------------------------


class TestFailureHandling:
    def test_transient_error_retried_to_success(self, tmp_path):
        cfg = _cfg(tmp_path, retries=1)

        async def body(node):
            out = node.submit([_spec(seed=1)])
            await _wait_job(node, out["job"])
            (rec,) = node.manifest.records().values()
            assert rec.ok and rec.attempts == 2

        _with_node(cfg, flaky_runner, body)

    def test_error_exhausts_retries_terminal(self, tmp_path):
        cfg = _cfg(tmp_path, retries=0)

        async def body(node):
            out = node.submit([_spec(seed=1)])
            await _wait_job(node, out["job"])
            (rec,) = node.manifest.records().values()
            assert rec.status == "error" and "flake" in rec.error

        _with_node(cfg, flaky_runner, body)

    def test_worker_crash_requeued_not_terminal(self, tmp_path):
        cfg = _cfg(tmp_path, retries=0)  # crashes do not consume retries

        async def body(node):
            out = node.submit([_spec(seed=1)])
            await _wait_job(node, out["job"], timeout=60.0)
            (rec,) = node.manifest.records().values()
            assert rec.ok
            (state,) = node.cells.values()
            assert state.crashes >= 1

        _with_node(cfg, crash_once_runner, body)

    def test_diagnosed_error_quarantined_no_retry(self, tmp_path):
        cfg = _cfg(tmp_path, retries=5)

        async def body(node):
            out = node.submit([_spec(seed=1)])
            job = await _wait_job(node, out["job"])
            (rec,) = node.manifest.records().values()
            assert rec.status == "error"
            assert rec.diagnosis["reason"] == "deadlock"
            assert rec.attempts == 1  # deterministic failure: never retried
            assert node.quarantined_total == 1
            info = job.to_dict(node.cells)
            (cell,) = info["cells"].values()
            assert cell["diagnosis"]["component"] == "vault3"

        _with_node(cfg, diagnosed_runner, body)

    def test_job_deadline_expires_queued_cells(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(node):
            node.submit([_spec(seed=1)])  # occupies the single worker
            out = node.submit([_spec(seed=2)], deadline_s=0.2)
            job = node.registry.jobs[out["job"]]
            await asyncio.wait_for(
                node._job_events[out["job"]].wait(), 30.0
            )
            assert job.status == "expired"

        _with_node(cfg, slow_runner, body)

    def test_enospc_terminal_record_retried_until_landed(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(node):
            with enospc_manifest(node.manifest, failures=10**6) as fired:
                out = node.submit([_spec(seed=1)])
                await _wait_job(node, out["job"])
                # the job completed for its client even with a full disk...
                assert len(node._unrecorded) == 1
                assert fired[0] > 0
                assert node.manifest.records() == {}
            # ...and the record lands once space returns (next tick flush)
            for _ in range(100):
                if node.manifest.records():
                    break
                await asyncio.sleep(0.1)
            (rec,) = node.manifest.records().values()
            assert rec.ok
            assert node._unrecorded == []

        _with_node(cfg, ok_runner, body)


# ----------------------------------------------------------------------
# Drain -> checkpoint -> resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_drain_checkpoints_pending_and_resume_finishes(self, tmp_path):
        cfg = _cfg(tmp_path)
        specs = [_spec(seed=s) for s in (1, 2, 3)]

        async def first(node):
            node.submit(specs)
            await asyncio.sleep(0.2)  # one cell in flight, two queued
            node.begin_drain()
            await asyncio.wait_for(node.stopped.wait(), 30.0)

        _with_node(cfg, slow_runner, first)
        ckpt = checkpoint_path(cfg.manifest)
        assert os.path.exists(ckpt)
        rows = [json.loads(ln) for ln in open(ckpt).read().splitlines()]
        assert rows[0]["kind"] == "checkpoint"
        pending = [r for r in rows if r["kind"] == "pending"]
        from repro.campaign.manifest import Manifest

        done_before = set(Manifest(cfg.manifest).records())
        assert {r["cell_id"] for r in pending} == {
            cell_from_spec(s).cell_id for s in specs
        } - done_before
        assert pending  # the drain really did leave work behind

        cfg2 = _cfg(tmp_path, resume=True, exit_when_complete=True)

        async def second(node):
            await asyncio.wait_for(node.stopped.wait(), 60.0)

        _with_node(cfg2, ok_runner, second)
        assert not os.path.exists(ckpt)  # consumed
        records = Manifest(cfg.manifest).records()
        assert set(records) == {cell_from_spec(s).cell_id for s in specs}
        assert all(r.ok for r in records.values())

    def test_resume_skips_already_terminal_cells(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def first(node):
            out = node.submit([_spec(seed=1)])
            await _wait_job(node, out["job"])

        _with_node(cfg, ok_runner, first)

        cfg2 = _cfg(tmp_path, resume=True)

        async def second(node):
            out = node.submit([_spec(seed=1)])
            job = node.registry.jobs[out["job"]]
            assert job.status == "done"  # satisfied from the manifest
            assert node.completed_cells == 0  # nothing re-executed
            (state,) = node.cells.values()
            assert state.record is not None and state.record.ok

        _with_node(cfg2, ok_runner, second)


# ----------------------------------------------------------------------
# Admission latency window (LatencyTracker)
# ----------------------------------------------------------------------


class TestLatencyTracker:
    def test_window_slides_instead_of_silently_dropping(self):
        # regression: observe() used to drop every sample past the first
        # 10k, freezing the p99 on warm-up traffic forever
        tracker = LatencyTracker(max_samples=100)
        for _ in range(100):
            tracker.observe(0.001)
        for _ in range(100):
            tracker.observe(1.0)
        assert len(tracker.samples) == 100  # bounded, but still absorbing
        assert tracker.quantile(0.5) == 1.0  # reflects *recent* traffic
        assert tracker.quantile(0.99) == 1.0

    def test_quantiles_use_nearest_rank(self):
        tracker = LatencyTracker()
        tracker.observe(2.0)
        tracker.observe(1.0)
        assert tracker.quantile(0.0) == 1.0
        assert tracker.quantile(0.5) == 1.0  # rank 1 of 2, not the max
        assert tracker.quantile(1.0) == 2.0
        assert LatencyTracker().quantile(0.99) is None


# ----------------------------------------------------------------------
# Causal tracing through the service path
# ----------------------------------------------------------------------


class TestTracing:
    def test_submit_mints_trace_and_attributes_critical_path(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(client.submit, cells=[_spec(seed=1)])
            assert len(out["trace"]) == 32
            info = await _call(client.wait, out["job"], 30.0, 0.05)
            assert info["trace"] == out["trace"]
            (cell,) = info["cells"].values()
            assert {"queue", "execute", "merge"} <= set(cell["stages"])
            assert sum(info["critical_path"].values()) == pytest.approx(
                1.0, abs=0.01
            )
            assert "%" in info["critical_path_text"]
            return out["trace"]

        trace = _with_service(cfg, ok_runner, body)
        spans = read_spans(cfg.manifest, trace_id=trace)
        assert {"admit", "queue", "claim", "execute", "merge"} <= {
            s.name for s in spans
        }
        # one submission, one trace: nothing leaked onto another id
        assert {s.trace_id for s in read_spans(cfg.manifest)} == {trace}

    def test_client_traceparent_header_honored(self, tmp_path):
        cfg = _cfg(tmp_path)
        trace = "4bf92f3577b34da6a3ce929d0e0e4736"

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(
                client.submit,
                [_spec(seed=1)],
                None,
                None,
                None,
                f"00-{trace}-00f067aa0ba902b7-01",
            )
            assert out["trace"] == trace
            await _call(client.wait, out["job"], 30.0, 0.05)

        _with_service(cfg, ok_runner, body)
        assert {s.trace_id for s in read_spans(cfg.manifest)} == {trace}

    def test_spans_disabled_degrades_cleanly(self, tmp_path):
        cfg = _cfg(tmp_path, spans=False)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(client.submit, cells=[_spec(seed=1)])
            assert "trace" not in out
            info = await _call(client.wait, out["job"], 30.0, 0.05)
            assert info["status"] == "done"
            assert "critical_path" not in info
            (cell,) = info["cells"].values()
            assert "stages" not in cell
            snap = await _call(client.snapshot)
            assert snap["serve"]["spans"] == {
                "enabled": False, "recorded": 0, "dropped": 0, "cells": 0,
            }

        _with_service(cfg, ok_runner, body)
        assert read_spans(cfg.manifest) == []

    def test_trace_survives_drain_checkpoint_resume(self, tmp_path):
        cfg = _cfg(tmp_path)
        trace = "feed" * 8

        async def first(node):
            node.submit([_spec(seed=s) for s in (1, 2, 3)], trace_id=trace)
            await asyncio.sleep(0.2)
            node.begin_drain()
            await asyncio.wait_for(node.stopped.wait(), 30.0)

        _with_node(cfg, slow_runner, first)
        ckpt = checkpoint_path(cfg.manifest)
        rows = [json.loads(ln) for ln in open(ckpt).read().splitlines()]
        pending = [r for r in rows if r["kind"] == "pending"]
        assert pending and all(r.get("trace") == trace for r in pending)

        cfg2 = _cfg(tmp_path, resume=True, exit_when_complete=True)

        async def second(node):
            await asyncio.wait_for(node.stopped.wait(), 60.0)

        _with_node(cfg2, ok_runner, second)
        # the resumed node's execute/merge spans carry the original trace
        resumed = [
            s for s in read_spans(cfg.manifest, trace_id=trace)
            if s.name in ("execute", "merge")
        ]
        assert len(resumed) >= 2


# ----------------------------------------------------------------------
# Report + dashboard streaming (real simulations)
# ----------------------------------------------------------------------


class TestReportEndpoints:
    def test_job_report_and_dash_streamed(self, tmp_path):
        from repro.campaign.executor import execute_cell

        cfg = _cfg(
            tmp_path, use_cache=False, report_dir=str(tmp_path / "reports")
        )

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(client.submit, cells=[_spec(refs=60, seed=1)])
            info = await _call(client.wait, out["job"], 60.0, 0.05)
            assert info["status"] == "done"
            payload = await _call(client.job_report, out["job"])
            assert payload["job"] == out["job"]
            (report,) = payload["reports"].values()
            assert report["workload"] == "HM1"
            html = await _call(client.job_dash, out["job"])
            assert "<html" in html.lower() and out["job"] in html
            # unknown job ids still 404 on the suffixed routes
            status, _ = await _call(
                client._request, "GET", "/jobs/j999/report"
            )
            assert status == 404

        _with_service(cfg, execute_cell, body)
        reports = list((tmp_path / "reports").glob("*.json"))
        assert len(reports) == 1

    def test_report_endpoint_without_report_dir(self, tmp_path):
        cfg = _cfg(tmp_path)

        async def body(service):
            client = ServeClient("127.0.0.1", service.port)
            out = await _call(client.submit, cells=[_spec(seed=1)])
            await _call(client.wait, out["job"], 30.0, 0.05)
            payload = await _call(client.job_report, out["job"])
            assert payload["reports"] == {}  # degrades, not 500s

        _with_service(cfg, ok_runner, body)


# ----------------------------------------------------------------------
# Prometheus histogram exposition
# ----------------------------------------------------------------------


class TestPromHistograms:
    def _snapshot(self):
        adm = AdmissionController(jobs=2)
        for age in (0.002, 0.04, 0.04, 1.7):
            adm.observe_queue_age(LANE_QUICK, age)
        adm.observe_cell_seconds(0.3, lane=LANE_QUICK)
        return {
            "campaign": {},
            "manifest": {},
            "workers": [],
            "serve": {"admission": adm.snapshot(), "pending": {}, "jobs": {}},
        }

    def test_render_and_parse_round_trip(self):
        text = render_metrics(self._snapshot())
        families = parse_exposition(text)
        fam = families["repro_serve_queue_age_seconds"]
        assert fam["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for labels, value in fam["series"]["_bucket"]
            if labels.get("lane") == "quick"
        ]
        assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 4.0
        values = [v for _, v in buckets]
        assert values == sorted(values)  # cumulative
        (sum_sample,) = [
            v for labels, v in fam["series"]["_sum"]
            if labels.get("lane") == "quick"
        ]
        assert sum_sample == pytest.approx(1.782)
        assert "repro_serve_service_time_seconds" in families
        retry = families["repro_serve_retry_after_seconds"]
        assert {labels["lane"] for labels, _ in retry["samples"]} == {
            "quick", "bulk",
        }

    def _base(self):
        return (
            "# TYPE x_seconds histogram\n"
        )

    def test_parser_rejects_non_cumulative_buckets(self):
        text = (
            self._base()
            + 'x_seconds_bucket{le="0.1"} 5\n'
            + 'x_seconds_bucket{le="+Inf"} 3\n'
            + "x_seconds_sum 1\nx_seconds_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_parser_requires_inf_bucket(self):
        text = (
            self._base()
            + 'x_seconds_bucket{le="0.1"} 5\n'
            + "x_seconds_sum 1\nx_seconds_count 5\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(text)

    def test_parser_requires_count_matching_inf(self):
        text = (
            self._base()
            + 'x_seconds_bucket{le="+Inf"} 5\n'
            + "x_seconds_sum 1\nx_seconds_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_exposition(text)

    def test_parser_requires_sum(self):
        text = (
            self._base()
            + 'x_seconds_bucket{le="+Inf"} 5\n'
            + "x_seconds_count 5\n"
        )
        with pytest.raises(ValueError, match="_sum"):
            parse_exposition(text)

    def test_parser_requires_le_label(self):
        text = self._base() + "x_seconds_bucket 5\n"
        with pytest.raises(ValueError, match="le"):
            parse_exposition(text)

    def test_suffixes_only_bind_to_declared_histograms(self):
        # a _bucket sample with no histogram TYPE is an undeclared sample
        with pytest.raises(ValueError, match="before TYPE"):
            parse_exposition('y_seconds_bucket{le="+Inf"} 1\n')
