"""Unit tests for metric collectors and reporting."""

import pytest

from repro.metrics.collectors import (
    ResultMatrix,
    accuracies,
    amat_reduction,
    conflict_rates,
    energy_normalized,
    group_geomean,
    group_mean,
    normalized_speedups,
)
from repro.metrics.report import format_comparison, format_table, write_csv
from repro.system import SimulationResult


def fake(workload, scheme, ipc=1.0, conflict=0.1, acc=0.5, lat=100.0, energy=1000.0):
    return SimulationResult(
        scheme=scheme,
        workload=workload,
        cycles=1000,
        core_ipc=[ipc, ipc],
        core_instructions=[100, 100],
        conflict_rate=conflict,
        row_conflicts=int(conflict * 100),
        demand_accesses=100,
        buffer_hits=10,
        prefetches_issued=20,
        row_accuracy=acc,
        line_accuracy=acc / 2,
        mean_memory_latency=lat,
        mean_read_latency=lat,
        energy_pj=energy,
        energy_breakdown={},
        link_utilization=0.1,
    )


@pytest.fixture
def matrix():
    m = ResultMatrix()
    m.add(fake("HM1", "base", ipc=1.0, lat=200, energy=1000))
    m.add(fake("HM1", "camps", ipc=1.2, conflict=0.05, lat=150, energy=850))
    m.add(fake("LM1", "base", ipc=2.0, lat=100, energy=500))
    m.add(fake("LM1", "camps", ipc=2.1, conflict=0.02, lat=95, energy=480))
    return m


class TestMatrix:
    def test_get_and_contains(self, matrix):
        assert matrix.get("HM1", "base").scheme == "base"
        assert ("HM1", "camps") in matrix
        with pytest.raises(KeyError):
            matrix.get("HM9", "base")

    def test_workloads_and_schemes_preserve_order(self, matrix):
        assert matrix.workloads() == ["HM1", "LM1"]
        assert matrix.schemes() == ["base", "camps"]


class TestCollectors:
    def test_normalized_speedups(self, matrix):
        s = normalized_speedups(matrix, ["base", "camps"])
        assert s["HM1"]["base"] == pytest.approx(1.0)
        assert s["HM1"]["camps"] == pytest.approx(1.2)
        assert s["LM1"]["camps"] == pytest.approx(1.05)

    def test_conflict_rates(self, matrix):
        c = conflict_rates(matrix, ["camps"])
        assert c["HM1"]["camps"] == pytest.approx(0.05)

    def test_accuracies_row_and_line(self, matrix):
        row = accuracies(matrix, ["camps"])
        line = accuracies(matrix, ["camps"], line_level=True)
        assert row["HM1"]["camps"] == pytest.approx(0.5)
        assert line["HM1"]["camps"] == pytest.approx(0.25)

    def test_amat_reduction(self, matrix):
        a = amat_reduction(matrix, ["camps"])
        assert a["HM1"]["camps"] == pytest.approx(0.25)  # 200 -> 150

    def test_energy_normalized(self, matrix):
        e = energy_normalized(matrix, ["camps"])
        assert e["HM1"]["camps"] == pytest.approx(0.85)

    def test_group_geomean(self):
        per = {"HM1": {"s": 2.0}, "HM2": {"s": 8.0}, "LM1": {"s": 1.0}}
        g = group_geomean(per, ["s"])
        assert g["HM"]["s"] == pytest.approx(4.0)
        assert g["LM"]["s"] == pytest.approx(1.0)
        assert g["AVG"]["s"] == pytest.approx((2 * 8 * 1) ** (1 / 3))

    def test_group_mean(self):
        per = {"HM1": {"s": 0.2}, "HM2": {"s": 0.4}, "MX1": {"s": 0.6}}
        g = group_mean(per, ["s"])
        assert g["HM"]["s"] == pytest.approx(0.3)
        assert g["MX"]["s"] == pytest.approx(0.6)
        assert g["AVG"]["s"] == pytest.approx(0.4)

    def test_group_skips_absent_categories(self):
        per = {"HM1": {"s": 1.0}}
        g = group_geomean(per, ["s"])
        assert "LM" not in g and "AVG" in g


class TestReport:
    def test_format_table_contains_all_cells(self, matrix):
        per = normalized_speedups(matrix, ["base", "camps"])
        text = format_table(per, ["base", "camps"], "Fig")
        assert "HM1" in text and "camps" in text and "1.200" in text

    def test_format_table_with_summary(self, matrix):
        per = normalized_speedups(matrix, ["camps"])
        summary = group_geomean(per, ["camps"])
        text = format_table(per, ["camps"], "Fig", summary=summary)
        assert "AVG" in text

    def test_write_csv(self, matrix, tmp_path):
        per = normalized_speedups(matrix, ["base", "camps"])
        path = write_csv(per, ["base", "camps"], tmp_path / "out.csv")
        content = path.read_text()
        assert content.splitlines()[0] == "workload,base,camps"
        assert "HM1" in content

    def test_format_comparison(self):
        line = format_comparison("speedup", 1.18, 1.179)
        assert "1.18" in line and "paper" in line
