"""Tests for the CAMPS-FDP extension scheme (feedback-throttled CT)."""

import pytest

from repro.core.buffer import LRUPolicy, PrefetchBuffer
from repro.core.extensions import ThrottleParams, ThrottledCampsPrefetcher
from repro.core.schemes import make_prefetcher
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


class StubController:
    def __init__(self, config):
        self.buffer = PrefetchBuffer(
            config.pf_buffer_entries, config.lines_per_row, LRUPolicy()
        )

    def pending_row_requests(self, bank, row):
        return 0


@pytest.fixture
def cfg():
    return HMCConfig()


def make_fdp(cfg, **kw):
    pf = ThrottledCampsPrefetcher(0, cfg, **kw)
    pf.bind(StubController(cfg))
    return pf


def retire_rows(buf, used, unused, start_row=1000):
    """Simulate `used` useful and `unused` useless row retirements."""
    row = start_row
    for i in range(used + unused):
        buf.insert(0, row, 0xFFFF, 0, 0)
        if i < used:
            buf.lookup(0, row, 0, False)
        buf.invalidate(0, row)
        row += 1


class TestRegistration:
    def test_in_registry(self, cfg):
        pf = make_prefetcher("camps-fdp", 0, cfg)
        assert isinstance(pf, ThrottledCampsPrefetcher)
        assert pf.name == "camps-fdp"
        assert pf.modified  # builds on CAMPS-MOD

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ThrottleParams(epoch_rows=0)
        with pytest.raises(ValueError):
            ThrottleParams(low_watermark=0.8, high_watermark=0.2)


class TestThrottling:
    def test_suspends_on_low_accuracy(self, cfg):
        pf = make_fdp(cfg, throttle=ThrottleParams(epoch_rows=8))
        retire_rows(pf.controller.buffer, used=1, unused=9)
        pf.on_demand_access(0, 1, 0, False, RowOutcome.EMPTY, 0)
        assert pf.ct_suspended
        assert pf.suspensions == 1

    def test_stays_active_on_high_accuracy(self, cfg):
        pf = make_fdp(cfg, throttle=ThrottleParams(epoch_rows=8))
        retire_rows(pf.controller.buffer, used=9, unused=1)
        pf.on_demand_access(0, 1, 0, False, RowOutcome.EMPTY, 0)
        assert not pf.ct_suspended

    def test_resumes_on_recovery(self, cfg):
        pf = make_fdp(cfg, throttle=ThrottleParams(epoch_rows=8))
        retire_rows(pf.controller.buffer, used=0, unused=10)
        pf.on_demand_access(0, 1, 0, False, RowOutcome.EMPTY, 0)
        assert pf.ct_suspended
        retire_rows(pf.controller.buffer, used=10, unused=0, start_row=2000)
        pf.on_demand_access(0, 2, 0, False, RowOutcome.EMPTY, 0)
        assert not pf.ct_suspended
        assert pf.resumes == 1

    def test_suspended_drops_ct_fetches(self, cfg):
        pf = make_fdp(cfg, throttle=ThrottleParams(epoch_rows=4))
        # prime the CT: row 5 conflicted out once
        pf.on_demand_access(0, 5, 0, False, RowOutcome.EMPTY, 0)
        pf.on_demand_access(0, 6, 0, False, RowOutcome.CONFLICT, 0)
        # force suspension
        retire_rows(pf.controller.buffer, used=0, unused=6)
        actions = pf.on_demand_access(0, 5, 0, False, RowOutcome.CONFLICT, 1)
        assert pf.ct_suspended
        assert actions == []  # CT fetch dropped
        assert pf.conflict_prefetches == 0  # counter rolled back

    def test_suspended_keeps_rut_fetches(self, cfg):
        pf = make_fdp(cfg, throttle=ThrottleParams(epoch_rows=4))
        retire_rows(pf.controller.buffer, used=0, unused=6)
        pf.on_demand_access(0, 9, 0, False, RowOutcome.EMPTY, 0)
        assert pf.ct_suspended
        # drive the RUT to threshold: utilization fetches still fire
        actions = []
        for col in range(1, 4):
            actions = pf.on_demand_access(0, 9, col, False, RowOutcome.HIT, col)
        assert len(actions) == 1
        assert pf.utilization_prefetches == 1

    def test_describe_reports_state(self, cfg):
        pf = make_fdp(cfg)
        assert "CT active" in pf.describe()
        pf.ct_suspended = True
        assert "CT suspended" in pf.describe()


class TestEndToEnd:
    def test_fdp_at_least_matches_mod_on_pointer_traffic(self):
        from repro.system import run_system
        from repro.workloads.synthetic import generate_trace

        traces = [
            generate_trace("mcf", 1500, seed=i, core_id=i) for i in range(4)
        ]
        mod = run_system(traces, scheme="camps-mod", workload="mcf")
        fdp = run_system(traces, scheme="camps-fdp", workload="mcf")
        # throttling must not hurt; usually saves a few useless fetches
        assert fdp.geomean_ipc >= mod.geomean_ipc * 0.98
        assert fdp.prefetches_issued <= mod.prefetches_issued
