"""Tests for the beyond-the-paper extensions: weak engine events, per-bank
refresh, and the closed-page policy."""

import pytest

from repro.dram.bank import AccessKind, Bank, RowOutcome
from repro.dram.timing import DRAMTimings
from repro.hmc.config import HMCConfig
from repro.sim.engine import Engine
from repro.system import run_system
from repro.workloads.synthetic import generate_trace


@pytest.fixture
def traces():
    return [generate_trace("gcc", 400, seed=i, core_id=i) for i in range(2)]


class TestWeakEvents:
    def test_run_stops_when_only_weak_remain(self):
        eng = Engine()
        fired = []

        def rearm():
            fired.append(eng.now)
            eng.schedule(10, rearm, weak=True)

        eng.schedule(0, rearm, weak=True)
        eng.schedule(25, lambda: None)  # strong work until cycle 25
        eng.run()
        assert eng.now == 25
        assert fired == [0, 10, 20]

    def test_weak_only_heap_does_not_run(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, 1, weak=True)
        eng.run()
        assert fired == []
        assert eng.pending == 1

    def test_until_runs_weak_events(self):
        eng = Engine()
        fired = []
        eng.schedule(5, fired.append, 1, weak=True)
        eng.run(until=10)
        assert fired == [1]

    def test_cancel_strong_releases_run(self):
        eng = Engine()
        ev = eng.schedule(100, lambda: None)
        eng.schedule(5, lambda: None, weak=True)
        ev.cancel()
        assert eng.run() == 0  # nothing strong left

    def test_weak_event_scheduling_strong_keeps_alive(self):
        eng = Engine()
        fired = []

        def weak_then_strong():
            eng.schedule(3, fired.append, "strong")

        eng.schedule(0, weak_then_strong, weak=True)
        eng.schedule(1, lambda: None)  # strong kick so the weak event runs
        eng.run()
        assert fired == ["strong"]


class TestRefresh:
    def test_bank_refresh_closes_row_and_occupies(self):
        t = DRAMTimings()
        b = Bank(0, t)
        b.access(AccessKind.READ, 5, 0)
        ready = b.refresh(b.busy_until)
        assert b.open_row is None
        assert b.refreshes == 1
        assert ready >= t.trfc_cpu

    def test_refresh_idle_bank(self):
        t = DRAMTimings()
        b = Bank(0, t)
        ready = b.refresh(100)
        assert ready == 100 + t.trfc_cpu
        assert b.pres == 0  # nothing to precharge

    def test_system_with_refresh_completes_and_slower(self, traces):
        off = run_system(traces, scheme="camps-mod")
        on = run_system(
            traces, scheme="camps-mod", hmc=HMCConfig(refresh_enabled=True)
        )
        assert on.cycles >= off.cycles  # refresh steals bank time
        assert on.energy_breakdown["refresh"] > 0
        assert off.energy_breakdown["refresh"] == 0

    def test_refresh_count_scales_with_runtime(self, traces):
        r = run_system(traces, scheme="none", hmc=HMCConfig(refresh_enabled=True))
        cfg = HMCConfig()
        # each bank refreshes roughly cycles / tREFI times
        expected = r.cycles / cfg.timings.trefi_cpu * cfg.total_banks
        measured = r.energy_breakdown["refresh"] / cfg.energy.refresh_pj
        assert measured == pytest.approx(expected, rel=0.5)


class TestClosedPage:
    def test_closed_page_never_hits_row_buffer(self):
        t = DRAMTimings()
        b = Bank(0, t, closed_page=True)
        b.access(AccessKind.READ, 5, 0)
        assert b.open_row is None
        r = b.access(AccessKind.READ, 5, b.busy_until)
        assert r.outcome is RowOutcome.EMPTY
        assert b.hits == 0

    def test_closed_page_no_conflicts(self):
        t = DRAMTimings()
        b = Bank(0, t, closed_page=True)
        for row in (1, 2, 1, 3):
            b.access(AccessKind.READ, row, b.busy_until)
        assert b.conflicts == 0

    def test_config_validates_policy(self):
        with pytest.raises(ValueError):
            HMCConfig(page_policy="half-open")

    def test_system_closed_page_completes(self, traces):
        r = run_system(traces, scheme="none", hmc=HMCConfig(page_policy="closed"))
        assert r.cycles > 0
        assert r.row_conflicts == 0

    def test_open_page_beats_closed_on_row_local_traffic(self, traces):
        open_r = run_system(traces, scheme="none")
        closed_r = run_system(
            traces, scheme="none", hmc=HMCConfig(page_policy="closed")
        )
        # gcc-like traffic has row locality: open page should win.
        assert open_r.cycles < closed_r.cycles
