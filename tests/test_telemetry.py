"""Tests for live campaign telemetry (repro.obs.telemetry and friends).

Covers the spool writer (headers, rotation, generations), the tail-following
reader (torn trailing lines, mid-read appends, rotation — no duplicated or
lost records), the aggregator that merges worker spools plus the manifest
into a CampaignView, the Prometheus text exposition, the /snapshot + /metrics
HTTP endpoint, the terminal board renderers, and an end-to-end run_campaign
with telemetry armed (exactly-once cell accounting, out-of-process monitor
convergence).
"""

import io
import json
import os
import urllib.request

import pytest

from repro.campaign import CampaignOptions, Manifest, grid_cells, run_campaign
from repro.campaign.manifest import MANIFEST_VERSION
from repro.experiments.runner import ExperimentConfig
from repro.obs import telemetry
from repro.obs.promtext import parse_exposition, render_metrics
from repro.obs.telemetry import (
    FROZEN_SAMPLES,
    TELEMETRY_VERSION,
    CampaignView,
    JsonlTailer,
    SpoolTailer,
    TelemetryAggregator,
    TelemetryServer,
    TelemetrySpool,
    WorkerTelemetry,
    WorkerView,
    publish_system,
    spool_dir_for,
    spool_path,
)
from repro.obs.watch import (
    monitor_done,
    render_board,
    render_status_line,
    resolve_monitor_paths,
    run_monitor,
)

TINY = ExperimentConfig(refs_per_core=150, seed=1)


def _summary(cell):
    return {"scheme": cell.scheme, "workload": cell.workload, "cycles": 1000,
            "core_ipc": [1.0], "core_instructions": [100],
            "conflict_rate": 0.1, "row_conflicts": 5, "demand_accesses": 50,
            "buffer_hits": 10, "prefetches_issued": 20, "row_accuracy": 0.5,
            "line_accuracy": 0.25, "mean_memory_latency": 100.0,
            "mean_read_latency": 90.0, "energy_pj": 1e6,
            "energy_breakdown": {"activate": 1.0}, "link_utilization": 0.2}


def ok_runner(cell, attempt):  # module-level: picklable for worker processes
    return _summary(cell)


class _FakeCell:
    cell_id = "cell-TEST-base"
    workload = "TEST"
    scheme = "base"


def _lines(path):
    return [json.loads(ln) for ln in path.read_text().splitlines() if ln.strip()]


# ----------------------------------------------------------------------
# Spool writer
# ----------------------------------------------------------------------


class TestTelemetrySpool:
    def test_header_written_first(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "telemetry-w0.jsonl", "w0")
        spool.append({"phase": "idle"})
        spool.close()
        lines = _lines(tmp_path / "telemetry-w0.jsonl")
        assert lines[0]["kind"] == "header"
        assert lines[0]["version"] == TELEMETRY_VERSION
        assert lines[0]["worker"] == "w0"
        assert lines[0]["pid"] == os.getpid()
        assert lines[0]["gen"]

    def test_seq_monotonic_per_generation(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "telemetry-w0.jsonl", "w0")
        for _ in range(5):
            spool.append({"phase": "idle"})
        spool.close()
        seqs = [ln["seq"] for ln in _lines(spool.path) if "seq" in ln]
        assert seqs == [1, 2, 3, 4, 5]

    def test_rotation_bounds_file_and_bumps_generation(self, tmp_path):
        path = tmp_path / "telemetry-w0.jsonl"
        spool = TelemetrySpool(path, "w0", max_bytes=512)
        gen0 = spool.gen
        payload = {"phase": "running", "pad": "x" * 128}
        for _ in range(50):
            spool.append(payload)
        spool.close()
        assert path.stat().st_size < 2048  # bounded, not 50 * 140 bytes
        lines = _lines(path)
        assert lines[0]["kind"] == "header"
        assert lines[0]["gen"] != gen0
        # seq restarted with the new generation
        assert lines[1]["seq"] == 1

    def test_respawn_appends_header_midfile(self, tmp_path):
        path = tmp_path / "telemetry-w0.jsonl"
        first = TelemetrySpool(path, "w0")
        first.append({"phase": "idle"})
        first.close()
        second = TelemetrySpool(path, "w0")  # same slot, new writer session
        second.append({"phase": "idle"})
        second.close()
        headers = [ln for ln in _lines(path) if ln.get("kind") == "header"]
        assert len(headers) == 2
        assert headers[0]["gen"] != headers[1]["gen"]
        # readers see both sessions' records exactly once
        records = SpoolTailer(path).poll()
        assert [r["phase"] for r in records] == ["idle", "idle"]


# ----------------------------------------------------------------------
# Tail-following (satellite: torn line / mid-read append / rotation)
# ----------------------------------------------------------------------


class TestJsonlTailer:
    def test_torn_trailing_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b":')  # second record torn mid-write
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}]
        assert tailer.poll() == []  # torn tail stays buffered, not parsed
        with open(path, "a") as fh:
            fh.write(' 2}\n')  # writer completes the line
        assert tailer.poll() == [{"b": 2}]
        assert tailer.poll() == []  # and it is emitted exactly once

    def test_record_appended_mid_read(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n')
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}]
        with open(path, "a") as fh:
            fh.write('{"b": 2}\n{"c": 3}\n')
        assert tailer.poll() == [{"b": 2}, {"c": 3}]
        assert tailer.poll() == []

    def test_rotation_resets_to_new_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 2
        # atomic rotation: new inode replaces the old file
        tmp = tmp_path / "t.jsonl.tmp"
        tmp.write_text('{"b": 1}\n')
        os.replace(tmp, path)
        assert tailer.poll() == [{"b": 1}]  # reader restarted at offset 0

    def test_truncation_detected_as_reset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n{"a": 3}\n')
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 3
        path.write_text('{"b": 1}\n')  # same inode, shrunk below offset
        assert tailer.poll() == [{"b": 1}]

    def test_truncate_then_regrow_past_offset_resets(self, tmp_path):
        """Regression: truncation masked by regrowth (satellite fix).

        A writer truncates the file and then writes *more* bytes than the
        old read offset before the tailer polls again.  A size-only check
        (`size < offset`) cannot see that; the tailer must notice the
        replaced head via its anchor prefix and reread from zero instead of
        emitting a garbage mid-record suffix of the new content.
        """
        path = tmp_path / "t.jsonl"
        path.write_text('{"old": 1}\n{"old": 2}\n')
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 2
        # same inode: truncate + rewrite, ending *larger* than the old offset
        new = "".join(f'{{"new": {i}}}\n' for i in range(10))
        assert len(new) > path.stat().st_size
        path.write_text(new)
        assert tailer.poll() == [{"new": i} for i in range(10)]
        assert tailer.poll() == []  # exactly once

    def test_regrow_same_prefix_not_misreset(self, tmp_path):
        """An append-only writer never trips the anchor check."""
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n')
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}]
        with open(path, "a") as fh:
            for i in range(5):
                fh.write(f'{{"b": {i}}}\n')
        assert tailer.poll() == [{"b": i} for i in range(5)]

    def test_garbage_complete_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\nnot json at all\n{"b": 2}\n[1, 2]\n')
        assert JsonlTailer(path).poll() == [{"a": 1}, {"b": 2}]

    def test_missing_file_polls_empty(self, tmp_path):
        tailer = JsonlTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []


class TestSpoolTailer:
    def test_rotation_no_duplicate_no_lost_records(self, tmp_path):
        """Exactly-once consumption across writer rotations.

        The writer rotates every ~512 bytes while a tailer polls after each
        append; every record's unique id must be seen exactly once.
        """
        path = tmp_path / "telemetry-w0.jsonl"
        spool = TelemetrySpool(path, "w0", max_bytes=512)
        tailer = SpoolTailer(path)
        seen = []
        for i in range(60):
            spool.append({"phase": "running", "i": i, "pad": "x" * 64})
            seen.extend(r["i"] for r in tailer.poll())
        spool.close()
        seen.extend(r["i"] for r in tailer.poll() if "i" in r)
        assert seen == list(range(60))

    def test_records_before_header_ignored(self, tmp_path):
        path = tmp_path / "telemetry-w0.jsonl"
        path.write_text('{"seq": 1, "phase": "running"}\n')
        assert SpoolTailer(path).poll() == []

    def test_unknown_version_generation_ignored(self, tmp_path):
        path = tmp_path / "telemetry-w0.jsonl"
        header = {"kind": "header", "version": TELEMETRY_VERSION + 1,
                  "worker": "w0", "pid": 1, "gen": "aaa"}
        path.write_text(json.dumps(header) + "\n" +
                        '{"seq": 1, "phase": "running"}\n')
        assert SpoolTailer(path).poll() == []

    def test_attaches_worker_identity(self, tmp_path):
        path = tmp_path / "telemetry-w3.jsonl"
        spool = TelemetrySpool(path, "w3")
        spool.append({"phase": "idle"})
        spool.close()
        (rec,) = [r for r in SpoolTailer(path).poll() if r["phase"] == "idle"]
        assert rec["worker"] == "w3"
        assert rec["pid"] == os.getpid()
        assert rec["gen"]


# ----------------------------------------------------------------------
# Worker-side sampler
# ----------------------------------------------------------------------


class TestWorkerTelemetry:
    def test_cell_lifecycle_records(self, tmp_path):
        spool = TelemetrySpool(spool_path(tmp_path, "w0"), "w0")
        wt = WorkerTelemetry(spool, interval=60.0)  # no timer heartbeats
        wt.start()
        wt.cell_start(_FakeCell(), 1)
        wt.cell_end("ok", 1.25)
        wt.cell_start(_FakeCell(), 2)
        wt.cell_end("error", 0.5)
        wt.stop()
        records = SpoolTailer(spool.path).poll()
        phases = [r["phase"] for r in records]
        assert phases == ["idle", "start", "end", "start", "end", "exit"]
        ends = [r for r in records if r["phase"] == "end"]
        assert ends[0]["status"] == "ok" and ends[0]["elapsed"] == 1.25
        assert ends[1]["status"] == "error"
        # cumulative, not delta: the last record carries full totals
        assert ends[-1]["cells"] == {"done": 2, "ok": 1, "failed": 1}
        starts = [r for r in records if r["phase"] == "start"]
        assert starts[1]["cell"]["attempt"] == 2
        assert all("rss" in r for r in records)

    def test_publish_system_is_noop_when_disarmed(self):
        assert telemetry.current_worker() is None
        publish_system(object())  # must not raise, must not retain
        publish_system(None)
        assert telemetry.current_worker() is None

    def test_sample_reads_live_engine_state(self, tmp_path):
        from repro.system import System, SystemConfig
        from repro.workloads.mixes import mix as make_mix

        spool = TelemetrySpool(spool_path(tmp_path, "w0"), "w0")
        wt = WorkerTelemetry(spool, interval=60.0)
        system = System(make_mix("MX1", 150, seed=1),
                        SystemConfig(scheme="camps"), workload="MX1")
        system.run()
        wt.cell_start(_FakeCell(), 1)
        wt.system = system
        rec = wt._record("running")
        assert rec["cycle"] == int(system.engine.now)
        assert rec["events"] > 0
        spool.close()

    def test_activate_deactivate_roundtrip(self, tmp_path):
        wt = telemetry.activate_worker(tmp_path, "w9", interval=60.0)
        try:
            assert telemetry.current_worker() is wt
            publish_system(self)  # arbitrary object lands on the sampler
            assert wt.system is self
        finally:
            telemetry.deactivate_worker()
        assert telemetry.current_worker() is None
        assert spool_path(tmp_path, "w9").exists()


# ----------------------------------------------------------------------
# Durable exit records (satellite: "terminated" vs "hung")
# ----------------------------------------------------------------------


class TestExitRecords:
    def _exits(self, path):
        return [r for r in _lines(path) if r.get("phase") == "exit"]

    def test_clean_stop_writes_exit_reason(self, tmp_path):
        wt = telemetry.activate_worker(tmp_path, "w0", interval=60.0)
        telemetry.deactivate_worker()
        (rec,) = self._exits(wt.spool.path)
        assert rec["reason"] == "clean"

    def test_write_exit_idempotent(self, tmp_path):
        spool = TelemetrySpool(spool_path(tmp_path, "w0"), "w0")
        wt = WorkerTelemetry(spool, interval=60.0)
        wt.write_exit("sigterm")
        wt.write_exit("clean")  # late double-stop must not add a record
        wt.stop()
        exits = self._exits(spool.path)
        assert len(exits) == 1
        assert exits[0]["reason"] == "sigterm"

    def test_sigterm_writes_exit_record_and_dies_by_signal(self, tmp_path):
        """A SIGTERMed worker leaves reason="sigterm" *and* still dies with
        the signal (exit status preserved for supervisors)."""
        import signal
        import subprocess
        import sys

        script = (
            "import os, signal, sys\n"
            "from repro.obs import telemetry\n"
            f"telemetry.activate_worker({str(tmp_path)!r}, 'w0', interval=60.0)\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n"
            "sys.exit(99)  # unreachable: the re-raised signal kills us\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGTERM
        exits = self._exits(spool_path(tmp_path, "w0"))
        assert len(exits) == 1
        assert exits[0]["reason"] == "sigterm"

    def test_sigkill_leaves_no_exit_record(self, tmp_path):
        """The contrast case: a SIGKILLed worker goes silent — no exit
        record — which is exactly what lets monitors tell the two apart."""
        import signal
        import subprocess
        import sys

        script = (
            "import os, signal\n"
            "from repro.obs import telemetry\n"
            f"telemetry.activate_worker({str(tmp_path)!r}, 'w0', interval=60.0)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        assert self._exits(spool_path(tmp_path, "w0")) == []


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def _write_manifest(path, cells, records):
    with open(path, "w") as fh:
        fh.write(json.dumps({"kind": "header", "version": MANIFEST_VERSION,
                             "cells": cells, "jobs": 2}) + "\n")
        for rec in records:
            fh.write(json.dumps(rec) + "\n")


class TestAggregator:
    def test_merges_workers_driver_and_manifest(self, tmp_path):
        for name in ("w0", "w1"):
            spool = TelemetrySpool(spool_path(tmp_path, name), name)
            spool.append({"phase": "running", "ts": 0.0,
                          "cells": {"done": 1, "ok": 1, "failed": 0},
                          "cell": {"id": "c", "workload": "HM1",
                                   "scheme": "base", "attempt": 1},
                          "cycle": 100, "rss": 1 << 20})
            spool.close()
        driver = TelemetrySpool(spool_path(tmp_path, "driver"), "driver")
        driver.append({"phase": "driving", "ts": 0.0,
                       "campaign": {"total": 4, "done": 2}})
        driver.close()
        manifest = tmp_path / "m.jsonl"
        _write_manifest(manifest, 4, [
            {"cell_id": "a", "workload": "HM1", "scheme": "base",
             "status": "ok", "cached": False},
            {"cell_id": "b", "workload": "LM1", "scheme": "base",
             "status": "timeout",
             "diagnosis": {"reason": "livelock", "stuck_component": "vault3"}},
        ])
        agg = TelemetryAggregator(tmp_path, manifest_path=manifest)
        snap = agg.refresh().to_snapshot()
        assert [w["worker"] for w in snap["workers"]] == ["w0", "w1"]
        assert snap["campaign"] == {"total": 4, "done": 2}
        assert snap["manifest"] == {"done": 2, "ok": 1, "failed": 1,
                                    "cached": 0, "total": 4}
        (failure,) = snap["failures"]
        assert failure["status"] == "timeout"
        assert failure["diagnosis"]["reason"] == "livelock"

    def test_duplicate_manifest_record_counts_once(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        rec = {"cell_id": "a", "workload": "HM1", "scheme": "base",
               "status": "ok"}
        _write_manifest(manifest, 2, [rec, rec])  # resume rewrote the cell
        agg = TelemetryAggregator(tmp_path, manifest_path=manifest)
        assert agg.refresh().manifest_counts()["done"] == 1

    def test_fresh_manifest_header_voids_prior_cells(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        _write_manifest(manifest, 2, [
            {"cell_id": "a", "status": "ok", "workload": "x", "scheme": "y"},
        ])
        agg = TelemetryAggregator(tmp_path, manifest_path=manifest)
        assert agg.refresh().manifest_counts()["done"] == 1
        _write_manifest(manifest, 3, [])  # campaign restarted from scratch
        counts = agg.refresh().manifest_counts()
        assert counts["done"] == 0 and counts["total"] == 3

    def test_incremental_refresh_picks_up_appends(self, tmp_path):
        spool = TelemetrySpool(spool_path(tmp_path, "w0"), "w0")
        spool.append({"phase": "idle", "ts": 0.0, "cells": {"done": 0}})
        agg = TelemetryAggregator(tmp_path)
        assert agg.refresh().workers["w0"].record["phase"] == "idle"
        spool.append({"phase": "running", "ts": 1.0, "cells": {"done": 0}})
        spool.close()
        assert agg.refresh().workers["w0"].record["phase"] == "running"


class TestWorkerViewStalls:
    def _running(self, cycle, cell="c1"):
        return {"phase": "running", "cycle": cycle,
                "cell": {"id": cell, "workload": "HM1", "scheme": "base"}}

    def test_frozen_cycle_flagged_after_threshold(self):
        wv = WorkerView("w0")
        wv.update(self._running(100), now=0.0)
        for i in range(FROZEN_SAMPLES):
            assert wv.stall_reason(float(i), stale_after=60.0) is None
            wv.update(self._running(100), now=float(i))
        reason = wv.stall_reason(float(FROZEN_SAMPLES), stale_after=60.0)
        assert reason is not None and "frozen" in reason

    def test_advancing_cycle_resets_frozen_count(self):
        wv = WorkerView("w0")
        for i in range(FROZEN_SAMPLES * 2):
            wv.update(self._running(100 + i), now=float(i))
        assert wv.stall_reason(10.0, stale_after=60.0) is None

    def test_stale_heartbeat_flagged(self):
        wv = WorkerView("w0")
        wv.update(self._running(100), now=0.0)
        assert wv.stall_reason(1.0, stale_after=5.0) is None
        reason = wv.stall_reason(10.0, stale_after=5.0)
        assert reason is not None and "no heartbeat" in reason

    def test_watchdog_stall_polls_flagged(self):
        wv = WorkerView("w0")
        rec = self._running(100)
        rec["counters"] = {"integrity.stall_polls": 2}
        wv.update(rec, now=0.0)
        reason = wv.stall_reason(0.1, stale_after=60.0)
        assert reason is not None and "watchdog" in reason

    def test_exited_worker_never_stalled(self):
        wv = WorkerView("w0")
        wv.update({"phase": "exit"}, now=0.0)
        assert wv.stall_reason(100.0, stale_after=5.0) is None


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _snapshot():
    return {
        "version": TELEMETRY_VERSION,
        "ts": 0.0,
        "campaign": {"total": 4, "done": 2, "ok": 2, "failed": 0,
                     "cached": 1, "resumed": 0, "retried": 0,
                     "eta_seconds": 12.5, "wall_seconds": 30.0, "jobs": 2},
        "manifest": {"done": 2, "ok": 2, "failed": 0, "cached": 1, "total": 4},
        "workers": [
            {"worker": "w0", "phase": "running", "age_seconds": 0.2,
             "cells": {"done": 1, "ok": 1, "failed": 0}, "rss": 1 << 20,
             "cycle": 51200, "events": 90000, "eps": 1234.5,
             "cell": {"id": "x", "workload": 'HM"1\\', "scheme": "base"},
             "counters": {"integrity.stall_polls": 0, "faults.replays": 3},
             "gauges": {"buffer.hit_rate": 0.5}, "stalled": False},
            {"worker": "w1", "phase": "idle", "age_seconds": 0.1,
             "cells": {"done": 1, "ok": 1, "failed": 0}, "rss": 2 << 20,
             "stalled": True, "stall_reason": "no heartbeat for 9s"},
        ],
        "failures": [],
    }


class TestPromtext:
    def test_render_parse_round_trip(self):
        text = render_metrics(_snapshot())
        families = parse_exposition(text)
        assert families["repro_campaign_cells_total"]["type"] == "gauge"
        ((labels, value),) = families["repro_campaign_cells_done"]["samples"]
        assert value == 2.0
        workers = dict()
        for labels, value in families["repro_worker_stalled"]["samples"]:
            workers[labels["worker"]] = value
        assert workers == {"w0": 0.0, "w1": 1.0}

    def test_label_escaping_survives_round_trip(self):
        text = render_metrics(_snapshot())
        families = parse_exposition(text)
        cells = families["repro_worker_info"]["samples"]
        (labels, _) = [s for s in cells if s[0]["worker"] == "w0"][0]
        assert labels["workload"] == 'HM"1\\'
        assert labels["phase"] == "running"

    def test_counter_and_gauge_families_present(self):
        families = parse_exposition(render_metrics(_snapshot()))
        counter_samples = families["repro_worker_counter"]["samples"]
        assert any(lbl["counter"] == "faults_replays" and v == 3.0
                   for lbl, v in counter_samples)
        gauge_samples = families["repro_worker_gauge"]["samples"]
        assert any(lbl["gauge"] == "buffer_hit_rate" and v == 0.5
                   for lbl, v in gauge_samples)

    def test_parse_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not { exposition\n")

    def test_parse_rejects_sample_before_type(self):
        with pytest.raises(ValueError):
            parse_exposition('mystery_metric 1.0\n')


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------


class TestTelemetryServer:
    def test_snapshot_and_metrics_endpoints(self):
        server = TelemetryServer(_snapshot, port=0).start()
        try:
            assert server.port > 0
            with urllib.request.urlopen(f"{server.url}/snapshot") as resp:
                assert resp.headers["Content-Type"] == "application/json"
                snap = json.loads(resp.read())
            assert snap["campaign"]["total"] == 4
            with urllib.request.urlopen(f"{server.url}/metrics") as resp:
                assert "version=0.0.4" in resp.headers["Content-Type"]
                families = parse_exposition(resp.read().decode())
            assert "repro_campaign_cells_done" in families
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope")
            assert err.value.code == 404
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Terminal renderers and monitor plumbing
# ----------------------------------------------------------------------


class TestRenderers:
    def test_board_header_workers_and_stall(self):
        lines = render_board(_snapshot())
        assert lines[0].startswith("campaign: 2/4 cells")
        assert "eta 0m12s" in lines[0]
        joined = "\n".join(lines)
        assert 'HM"1\\/base' in joined
        assert "STALLED: no heartbeat for 9s" in joined

    def test_board_shows_failures_with_diagnosis(self):
        snap = _snapshot()
        snap["failures"] = [{"workload": "HM1", "scheme": "base",
                             "status": "timeout",
                             "diagnosis": {"reason": "livelock",
                                           "stuck_component": "vault3"}}]
        joined = "\n".join(render_board(snap))
        assert "failed: HM1/base (timeout)" in joined
        assert "livelock" in joined and "vault3" in joined

    def test_board_empty_snapshot_renders(self):
        lines = render_board({"campaign": {}, "manifest": {}, "workers": []})
        assert "no worker heartbeats yet" in "\n".join(lines)

    def test_status_line_compact(self):
        line = render_status_line(_snapshot())
        assert line.startswith("watch: 2/4 done")
        assert "1 STALLED" in line

    def test_resolve_manifest_file(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text("{}\n")
        spool_dir, mpath = resolve_monitor_paths(manifest)
        assert spool_dir == spool_dir_for(manifest) and mpath == manifest

    def test_resolve_spool_dir(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text("{}\n")
        sdir = spool_dir_for(manifest)
        sdir.mkdir()
        assert resolve_monitor_paths(sdir) == (sdir, manifest)

    def test_resolve_containing_dir(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text("{}\n")
        spool_dir_for(manifest).mkdir()
        spool_dir, mpath = resolve_monitor_paths(tmp_path)
        assert spool_dir == spool_dir_for(manifest) and mpath == manifest

    def test_resolve_rejects_unidentifiable(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_monitor_paths(tmp_path / "missing.jsonl")
        with pytest.raises(FileNotFoundError):
            resolve_monitor_paths(tmp_path)  # empty dir: nothing to monitor

    def test_monitor_done_requires_known_total(self):
        assert not monitor_done({"manifest": {"done": 3}})
        assert not monitor_done({"manifest": {"done": 3, "total": 4}})
        assert monitor_done({"manifest": {"done": 4, "total": 4}})


# ----------------------------------------------------------------------
# End to end: run_campaign with telemetry armed
# ----------------------------------------------------------------------


class TestCampaignTelemetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_spools_written_and_counts_converge(self, tmp_path, jobs):
        cells = grid_cells(["HM1", "LM1"], ["base", "camps"], TINY)
        manifest = tmp_path / "m.jsonl"
        res = run_campaign(
            cells,
            CampaignOptions(jobs=jobs, telemetry=True,
                            telemetry_interval=0.05),
            runner=ok_runner,
            manifest=Manifest(manifest),
        )
        assert res.stats["ok"] == 4
        sdir = spool_dir_for(manifest)
        names = sorted(p.name for p in sdir.glob("telemetry-*.jsonl"))
        assert "telemetry-driver.jsonl" in names
        assert "telemetry-w0.jsonl" in names
        # the merged view converges to the manifest's exactly-once record
        agg = TelemetryAggregator(sdir, manifest_path=manifest)
        view = agg.refresh()
        assert view.manifest_counts() == {"done": 4, "ok": 4, "failed": 0,
                                          "cached": 0, "total": 4}
        assert view.campaign.get("total") == 4
        # worker end-records sum to the cells each worker executed
        done = sum((wv.record.get("cells") or {}).get("done", 0)
                   for wv in view.workers.values())
        assert done == 4

    def test_manifest_header_carries_campaign_meta(self, tmp_path):
        cells = grid_cells(["HM1"], ["base"], TINY)
        manifest = tmp_path / "m.jsonl"
        run_campaign(cells, CampaignOptions(jobs=1), runner=ok_runner,
                     manifest=Manifest(manifest))
        header = Manifest(manifest).header()
        assert header["cells"] == 1 and header["jobs"] == 1

    def test_telemetry_port_binds_and_reports(self, tmp_path):
        cells = grid_cells(["HM1"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=1, telemetry_port=0,
                            telemetry_interval=0.05),
            runner=ok_runner,
            manifest=Manifest(tmp_path / "m.jsonl"),
        )
        assert res.stats["telemetry_port"] > 0

    def test_watch_campaign_completes(self, tmp_path, capsys):
        # --watch arms telemetry implicitly and must not disturb results
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        res = run_campaign(
            cells,
            CampaignOptions(jobs=1, watch=True, telemetry_interval=0.05),
            runner=ok_runner,
            manifest=Manifest(tmp_path / "m.jsonl"),
        )
        assert res.stats["ok"] == 2
        assert telemetry.current_worker() is None  # serial path cleaned up

    def test_disabled_telemetry_leaves_no_spools(self, tmp_path):
        cells = grid_cells(["HM1"], ["base"], TINY)
        manifest = tmp_path / "m.jsonl"
        run_campaign(cells, CampaignOptions(jobs=1), runner=ok_runner,
                     manifest=Manifest(manifest))
        assert not spool_dir_for(manifest).exists()
        assert telemetry.current_worker() is None

    def test_run_monitor_once_converges_to_manifest(self, tmp_path):
        cells = grid_cells(["HM1", "LM1"], ["base"], TINY)
        manifest = tmp_path / "m.jsonl"
        run_campaign(
            cells,
            CampaignOptions(jobs=2, telemetry=True, telemetry_interval=0.05),
            runner=ok_runner,
            manifest=Manifest(manifest),
        )
        stream = io.StringIO()
        snap = run_monitor(manifest, once=True, as_json=True, stream=stream)
        assert snap["manifest"]["done"] == 2 and snap["manifest"]["total"] == 2
        assert monitor_done(snap)
        assert json.loads(stream.getvalue())["manifest"]["done"] == 2

    def test_run_monitor_exits_on_finished_campaign(self, tmp_path):
        cells = grid_cells(["HM1"], ["base"], TINY)
        manifest = tmp_path / "m.jsonl"
        run_campaign(cells,
                     CampaignOptions(jobs=1, telemetry=True,
                                     telemetry_interval=0.05),
                     runner=ok_runner, manifest=Manifest(manifest))
        stream = io.StringIO()
        snap = run_monitor(manifest, interval=0.05, stream=stream,
                           max_seconds=10.0)
        assert monitor_done(snap)
        assert "campaign: 1/1 cells" in stream.getvalue()

    def test_bad_telemetry_interval_rejected(self):
        with pytest.raises(ValueError):
            CampaignOptions(telemetry_interval=0.0)


class TestMonitorCLI:
    def test_missing_target_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["monitor", str(tmp_path / "nope.jsonl"), "--once"])
        assert rc == 1
        assert "monitor:" in capsys.readouterr().err

    def test_once_json_over_finished_campaign(self, tmp_path, capsys):
        from repro.cli import main

        cells = grid_cells(["HM1"], ["base"], TINY)
        manifest = tmp_path / "m.jsonl"
        run_campaign(cells,
                     CampaignOptions(jobs=1, telemetry=True,
                                     telemetry_interval=0.05),
                     runner=ok_runner, manifest=Manifest(manifest))
        rc = main(["monitor", str(manifest), "--once", "--json"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["manifest"]["done"] == 1

    def test_campaign_parser_telemetry_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "--watch", "--telemetry-port", "0",
             "--telemetry-interval", "0.25"]
        )
        assert args.watch and args.telemetry_port == 0
        assert args.telemetry_interval == 0.25
        args = build_parser().parse_args(["campaign"])
        assert not args.watch and args.telemetry_port is None
        assert not args.telemetry
