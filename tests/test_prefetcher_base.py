"""Unit tests for the Prefetcher base class and NullPrefetcher."""

import pytest

from repro.core.prefetcher import NullPrefetcher, PrefetchAction, Prefetcher
from repro.core.buffer import LRUPolicy
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


class TestPrefetchAction:
    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            PrefetchAction(0, 1, 0)

    def test_defaults(self):
        a = PrefetchAction(2, 9, 0xFFFF)
        assert a.precharge_after is True
        assert a.seed_ref_mask == 0

    def test_frozen(self):
        a = PrefetchAction(0, 1, 1)
        with pytest.raises(Exception):
            a.row = 5


class TestBaseClass:
    def test_full_mask_matches_config(self):
        pf = NullPrefetcher(0, HMCConfig())
        assert pf.full_mask == 0xFFFF
        pf2 = NullPrefetcher(0, HMCConfig(row_bytes=512))
        assert pf2.full_mask == 0xFF

    def test_default_policy_is_lru(self):
        assert isinstance(NullPrefetcher(0, HMCConfig()).make_policy(), LRUPolicy)

    def test_count_issue_accumulates(self):
        pf = NullPrefetcher(0, HMCConfig())
        actions = [PrefetchAction(0, 1, 1), PrefetchAction(0, 2, 1)]
        out = pf._count_issue(actions)
        assert out is actions
        assert pf.prefetches_issued == 2

    def test_bind_attaches_controller(self):
        pf = NullPrefetcher(0, HMCConfig())
        sentinel = object()
        pf.bind(sentinel)
        assert pf.controller is sentinel

    def test_describe_defaults_to_name(self):
        assert NullPrefetcher(0, HMCConfig()).describe() == "none"

    def test_on_buffer_hit_default_noop(self):
        pf = NullPrefetcher(0, HMCConfig())
        pf.on_buffer_hit(0, 1, 2, False, 10)  # must not raise


class TestNullPrefetcher:
    def test_never_prefetches(self):
        pf = NullPrefetcher(0, HMCConfig())
        for outcome in RowOutcome:
            assert pf.on_demand_access(0, 1, 2, False, outcome, 0) == []
        assert pf.prefetches_issued == 0

    def test_declares_no_buffer(self):
        assert NullPrefetcher.uses_buffer is False
        assert Prefetcher.uses_buffer is True
