"""Unit + statistical tests for traces, profiles, generators and mixes."""

import numpy as np
import pytest

from repro.hmc.config import HMCConfig
from repro.workloads.mixes import MIXES, mix, mix_category, mix_names
from repro.workloads.spec import PROFILES, BenchmarkProfile, profile
from repro.workloads.synthetic import TraceGenerator, generate_trace
from repro.workloads.trace import Trace, trace_stats


class TestTrace:
    def test_construction_and_len(self):
        t = Trace([1, 2], [0, 64], [False, True], name="t")
        assert len(t) == 2

    def test_instruction_count(self):
        t = Trace([9, 9], [0, 64], [False, False])
        assert t.instructions == 20

    def test_mpki(self):
        t = Trace([999] * 10, list(range(0, 640, 64)), [False] * 10)
        assert t.mpki == pytest.approx(1.0)

    def test_write_fraction(self):
        t = Trace([0] * 4, [0, 64, 128, 192], [True, True, False, False])
        assert t.write_fraction == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace([1], [0, 64], [False, False])
        with pytest.raises(ValueError):
            Trace([-1], [0], [False])
        with pytest.raises(ValueError):
            Trace([1], [-5], [False])

    def test_head(self):
        t = Trace([1] * 10, list(range(0, 640, 64)), [False] * 10)
        h = t.head(3)
        assert len(h) == 3

    def test_save_load_roundtrip(self, tmp_path):
        t = generate_trace("gcc", 500, seed=7)
        path = tmp_path / "t.npz"
        t.save(path)
        t2 = Trace.load(path)
        assert np.array_equal(t.addrs, t2.addrs)
        assert np.array_equal(t.gaps, t2.gaps)
        assert np.array_equal(t.writes, t2.writes)

    def test_stats_keys(self):
        t = generate_trace("bwaves", 1000, seed=1)
        s = trace_stats(t)
        for key in ("mpki", "write_fraction", "lines_per_row", "row_switch_rate"):
            assert key in s

    def test_stats_empty_trace_rejected(self):
        t = Trace([], [], [])
        with pytest.raises(ValueError):
            trace_stats(t)


class TestProfiles:
    def test_all_table2_benchmarks_present(self):
        needed = {b for benches in MIXES.values() for b in benches}
        assert needed <= set(PROFILES)

    def test_hm_lm_classification_matches_paper_split(self):
        hm = {"bwaves", "gems", "gcc", "lbm", "milc", "sphinx", "omnetpp", "mcf"}
        table2 = {b for benches in MIXES.values() for b in benches}
        for name in table2:
            expected = "HM" if name in hm else "LM"
            assert PROFILES[name].memory_intensity == expected, name

    def test_mean_gap_from_mpki(self):
        p = profile("mcf")
        assert p.mean_gap == pytest.approx(1000 / p.mpki - 1)

    def test_weights_normalized(self):
        for p in PROFILES.values():
            assert sum(p.weights) == pytest.approx(1.0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            profile("doom")

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile("x", 0, 0.1, 1, 0, 0, 2, 1, 4, 4096)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", 10, 1.5, 1, 0, 0, 2, 1, 4, 4096)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", 10, 0.1, 0, 0, 0, 2, 1, 4, 4096)
        with pytest.raises(ValueError):
            BenchmarkProfile("x", 10, 0.1, 1, 0, 0, 0, 1, 4, 4096)


class TestGenerator:
    def test_exact_length(self):
        assert len(generate_trace("gcc", 777, seed=1)) == 777

    def test_deterministic_per_seed(self):
        a = generate_trace("lbm", 1000, seed=42)
        b = generate_trace("lbm", 1000, seed=42)
        assert np.array_equal(a.addrs, b.addrs)
        assert np.array_equal(a.gaps, b.gaps)

    def test_different_seeds_differ(self):
        a = generate_trace("lbm", 1000, seed=1)
        b = generate_trace("lbm", 1000, seed=2)
        assert not np.array_equal(a.addrs, b.addrs)

    def test_mpki_close_to_target(self):
        for bench in ("lbm", "astar"):
            t = generate_trace(bench, 20_000, seed=3)
            target = PROFILES[bench].mpki
            assert t.mpki == pytest.approx(target, rel=0.15), bench

    def test_write_fraction_close_to_target(self):
        t = generate_trace("lbm", 20_000, seed=3)
        assert t.write_fraction == pytest.approx(
            PROFILES["lbm"].write_frac, abs=0.03
        )

    def test_streaming_profile_has_higher_row_utilization(self):
        cfg = HMCConfig()
        s_stream = trace_stats(generate_trace("lbm", 15_000, seed=5), cfg)
        s_random = trace_stats(generate_trace("mcf", 15_000, seed=5), cfg)
        assert s_stream["lines_per_row"] > 2 * s_random["lines_per_row"]

    def test_cores_use_disjoint_rows(self):
        cfg = HMCConfig()
        t0 = generate_trace("gcc", 2000, seed=1, core_id=0)
        t1 = generate_trace("gcc", 2000, seed=1, core_id=1)
        from repro.hmc.address import AddressMapping

        m = AddressMapping(cfg)
        rows0 = set(m.decode_many(t0.addrs)[2].tolist())
        rows1 = set(m.decode_many(t1.addrs)[2].tolist())
        assert not rows0 & rows1

    def test_addresses_within_cube_geometry(self):
        cfg = HMCConfig()
        from repro.hmc.address import AddressMapping

        m = AddressMapping(cfg)
        t = generate_trace("gems", 5000, seed=9)
        v, b, r, c = m.decode_many(t.addrs)
        assert v.max() < cfg.vaults and v.min() >= 0
        assert b.max() < cfg.banks_per_vault

    def test_accepts_profile_object(self):
        t = generate_trace(PROFILES["wrf"], 100, seed=1)
        assert len(t) == 100

    def test_invalid_n_refs(self):
        with pytest.raises(ValueError):
            generate_trace("gcc", 0)


class TestMixes:
    def test_twelve_mixes(self):
        assert len(MIXES) == 12
        assert mix_names() == [
            "HM1", "HM2", "HM3", "HM4",
            "LM1", "LM2", "LM3", "LM4",
            "MX1", "MX2", "MX3", "MX4",
        ]

    def test_each_mix_eight_slots(self):
        for benches in MIXES.values():
            assert len(benches) == 8

    def test_table2_hm1_contents(self):
        assert MIXES["HM1"] == [
            "bwaves", "gems", "gcc", "lbm", "bwaves", "gcc", "lbm", "gems"
        ]

    def test_hm_mixes_all_high_intensity(self):
        for name in ("HM1", "HM2", "HM3", "HM4"):
            for b in MIXES[name]:
                assert PROFILES[b].memory_intensity == "HM"

    def test_lm_mixes_all_low_intensity(self):
        for name in ("LM1", "LM2", "LM3", "LM4"):
            for b in MIXES[name]:
                assert PROFILES[b].memory_intensity == "LM"

    def test_mx_mixes_are_mixed(self):
        for name in ("MX1", "MX2", "MX3", "MX4"):
            classes = {PROFILES[b].memory_intensity for b in MIXES[name]}
            assert classes == {"HM", "LM"}

    def test_mix_generates_eight_traces(self):
        traces = mix("HM1", refs_per_core=200, seed=1)
        assert len(traces) == 8
        assert all(len(t) == 200 for t in traces)

    def test_mix_deterministic(self):
        a = mix("MX2", 300, seed=5)
        b = mix("MX2", 300, seed=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.addrs, tb.addrs)

    def test_mix_category(self):
        assert mix_category("HM3") == "HM"
        assert mix_category("MX1") == "MX"
        with pytest.raises(ValueError):
            mix_category("XX1")

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            mix("HM9", 100)

    def test_trace_names_follow_slots(self):
        traces = mix("LM1", 100, seed=1)
        assert traces[0].name.startswith("cactus")
        assert traces[3].name.startswith("wrf")
