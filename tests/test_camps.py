"""Unit tests for the CAMPS decision logic (paper Section 3.1 / Figure 3)."""

import pytest

from repro.core.buffer import LRUPolicy, UtilizationRecencyPolicy
from repro.core.camps import CampsParams, CampsPrefetcher
from repro.dram.bank import RowOutcome
from repro.hmc.config import HMCConfig


@pytest.fixture
def cfg():
    return HMCConfig()


@pytest.fixture
def pf(cfg):
    return CampsPrefetcher(0, cfg)


def hit(pf, bank, row, col, now=0):
    return pf.on_demand_access(bank, row, col, False, RowOutcome.HIT, now)


def empty(pf, bank, row, col, now=0):
    return pf.on_demand_access(bank, row, col, False, RowOutcome.EMPTY, now)


def conflict(pf, bank, row, col, now=0):
    return pf.on_demand_access(bank, row, col, False, RowOutcome.CONFLICT, now)


class TestUtilizationPath:
    def test_threshold_triggers_whole_row_prefetch(self, pf):
        empty(pf, 0, 5, 0)  # distinct line 1
        assert hit(pf, 0, 5, 1) == []  # 2
        assert hit(pf, 0, 5, 2) == []  # 3
        actions = hit(pf, 0, 5, 3)  # 4 -> threshold
        assert len(actions) == 1
        a = actions[0]
        assert (a.bank, a.row) == (0, 5)
        assert a.line_mask == pf.full_mask
        assert a.precharge_after
        assert pf.utilization_prefetches == 1

    def test_duplicate_lines_do_not_count(self, pf):
        empty(pf, 0, 5, 0)
        for _ in range(10):
            assert hit(pf, 0, 5, 0) == []  # same line repeatedly
        assert pf.utilization_prefetches == 0

    def test_rut_cleared_after_prefetch(self, pf):
        empty(pf, 0, 5, 0)
        hit(pf, 0, 5, 1)
        hit(pf, 0, 5, 2)
        hit(pf, 0, 5, 3)
        assert pf.rut.get(0) is None

    def test_seed_carries_served_lines(self, pf):
        empty(pf, 0, 5, 0)
        hit(pf, 0, 5, 1)
        hit(pf, 0, 5, 2)
        actions = hit(pf, 0, 5, 3)
        assert actions[0].seed_ref_mask == 0b1111

    def test_custom_threshold(self, cfg):
        pf = CampsPrefetcher(0, cfg, params=CampsParams(utilization_threshold=2))
        empty(pf, 0, 5, 0)
        actions = hit(pf, 0, 5, 1)
        assert len(actions) == 1

    def test_access_count_mode(self, cfg):
        pf = CampsPrefetcher(
            0, cfg, params=CampsParams(utilization_threshold=3, count_distinct=False)
        )
        empty(pf, 0, 5, 0)
        hit(pf, 0, 5, 0)
        actions = hit(pf, 0, 5, 0)  # 3 raw accesses to one line
        assert len(actions) == 1


class TestConflictPath:
    def test_first_conflict_records_displaced_row_in_ct(self, pf):
        empty(pf, 0, 5, 0)  # row 5 open, tracked
        actions = conflict(pf, 0, 6, 0)  # row 6 displaces row 5
        assert actions == []
        assert (0, 5) in pf.ct
        assert pf.rut.get(0).row == 6

    def test_second_conflict_triggers_prefetch(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 0)  # 5 -> CT
        actions = conflict(pf, 0, 5, 2)  # 5 re-activated, found in CT
        assert len(actions) == 1
        assert actions[0].row == 5
        assert actions[0].precharge_after
        assert pf.conflict_prefetches == 1
        assert (0, 5) not in pf.ct  # entry removed per the paper

    def test_ct_hit_on_empty_activation(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 0)  # 5 -> CT
        # bank was precharged meanwhile; row 5 activates into an empty bank
        actions = empty(pf, 0, 5, 3)
        assert len(actions) == 1
        assert actions[0].row == 5

    def test_conflict_prefetch_seeds_current_line(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 0)
        actions = conflict(pf, 0, 5, 7)
        assert actions[0].seed_ref_mask == 1 << 7

    def test_rut_cleared_after_conflict_prefetch(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 0)
        conflict(pf, 0, 5, 0)
        assert pf.rut.get(0) is None

    def test_non_ct_conflict_keeps_row_tracked(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 2)
        e = pf.rut.get(0)
        assert e.row == 6 and e.distinct_lines == 1

    def test_three_way_pingpong(self, pf):
        """A, B, C alternating in one bank: every row prefetched by round 2."""
        empty(pf, 0, 1, 0)
        assert conflict(pf, 0, 2, 0) == []
        assert conflict(pf, 0, 3, 0) == []
        # round 2: every activation finds its row in the CT
        assert len(conflict(pf, 0, 1, 1)) == 1
        assert len(conflict(pf, 0, 2, 1)) == 1
        assert len(conflict(pf, 0, 3, 1)) == 1
        assert pf.conflict_prefetches == 3

    def test_ct_capacity_lru(self, cfg):
        pf = CampsPrefetcher(0, cfg, params=CampsParams(conflict_table_entries=2))
        empty(pf, 0, 1, 0)
        conflict(pf, 0, 2, 0)  # 1 -> CT
        conflict(pf, 0, 3, 0)  # 2 -> CT
        conflict(pf, 0, 4, 0)  # 3 -> CT, evicts 1
        assert (0, 1) not in pf.ct
        assert conflict(pf, 0, 1, 0) == []  # no longer conflict-prone


class TestVariants:
    def test_plain_camps_uses_lru(self, cfg):
        assert isinstance(CampsPrefetcher(0, cfg).make_policy(), LRUPolicy)

    def test_mod_uses_util_recency(self, cfg):
        pf = CampsPrefetcher(0, cfg, modified=True)
        assert isinstance(pf.make_policy(), UtilizationRecencyPolicy)
        assert pf.name == "camps-mod"

    def test_describe_mentions_params(self, cfg):
        d = CampsPrefetcher(0, cfg).describe()
        assert "threshold=4" in d and "CT=32" in d

    def test_param_validation(self):
        with pytest.raises(ValueError):
            CampsParams(utilization_threshold=0)
        with pytest.raises(ValueError):
            CampsParams(conflict_table_entries=0)

    def test_prefetches_issued_counter(self, pf):
        empty(pf, 0, 5, 0)
        hit(pf, 0, 5, 1)
        hit(pf, 0, 5, 2)
        hit(pf, 0, 5, 3)
        assert pf.prefetches_issued == 1


class TestBankIsolation:
    def test_banks_tracked_independently(self, pf):
        empty(pf, 0, 5, 0)
        empty(pf, 1, 5, 0)  # same row id, other bank
        hit(pf, 0, 5, 1)
        hit(pf, 0, 5, 2)
        actions = hit(pf, 0, 5, 3)
        assert len(actions) == 1
        assert pf.rut.get(1) is not None  # bank 1 unaffected

    def test_ct_keys_include_bank(self, pf):
        empty(pf, 0, 5, 0)
        conflict(pf, 0, 6, 0)  # (0,5) -> CT
        # same row id conflicting in another bank is NOT in the CT
        assert conflict(pf, 1, 5, 0) == []
