"""Unit tests for the terminal bar charts."""

import pytest

from repro.metrics.plot import bar_chart, summary_bars


@pytest.fixture
def data():
    return {
        "HM1": {"base": 1.0, "camps": 1.25},
        "LM1": {"base": 1.0, "camps": 1.10},
    }


class TestBarChart:
    def test_contains_workloads_schemes_values(self, data):
        text = bar_chart(data, ["base", "camps"], "Fig")
        assert "HM1" in text and "LM1" in text
        assert "camps" in text
        assert "1.250" in text

    def test_bar_lengths_proportional(self, data):
        text = bar_chart(data, ["base", "camps"], "Fig", width=40)
        lines = [l for l in text.splitlines() if "base" in l or "camps" in l]
        base_len = lines[0].count("#")
        camps_len = lines[1].count("=")
        assert camps_len > base_len

    def test_baseline_marker(self, data):
        text = bar_chart(data, ["base", "camps"], "Fig", baseline=1.0)
        assert "|" in text

    def test_legend(self, data):
        text = bar_chart(data, ["base", "camps"], "Fig")
        assert "legend:" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({}, [], "Fig")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": {"s": 0.0}}, ["s"], "Fig")

    def test_summary_bars_wrapper(self, data):
        assert "HM1" in summary_bars(data, ["base", "camps"], "S")

    def test_many_schemes_cycle_fills(self):
        row = {f"s{i}": 1.0 + i * 0.1 for i in range(9)}
        text = bar_chart({"W": row}, list(row), "Fig")
        assert "legend:" in text
