"""End-to-end shape checks against the paper's qualitative claims.

These run one HM-style and one LM-style workload at reduced scale and assert
the *relationships* the paper reports, with generous tolerances - absolute
numbers are covered by the benchmark harness (EXPERIMENTS.md), not here.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, ResultCache, run_matrix
from repro.sim.stats import geomean

SCHEMES = ["base", "base-hit", "mmd", "camps", "camps-mod"]


@pytest.fixture(scope="module")
def matrix(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache") / "c.json")
    cfg = ExperimentConfig(refs_per_core=2500, seed=1)
    return run_matrix(["HM1", "LM1"], SCHEMES, cfg, cache=cache)


def speedup(matrix, workload, scheme):
    return matrix.get(workload, scheme).speedup_vs(matrix.get(workload, "base"))


class TestFigure5Shape:
    def test_camps_mod_beats_base(self, matrix):
        for w in ("HM1", "LM1"):
            assert speedup(matrix, w, "camps-mod") > 1.0

    def test_camps_mod_beats_mmd_and_base_hit_on_hm(self, matrix):
        assert speedup(matrix, "HM1", "camps-mod") > speedup(matrix, "HM1", "mmd")
        assert speedup(matrix, "HM1", "camps-mod") > speedup(matrix, "HM1", "base-hit")

    def test_hm_gains_exceed_lm_gains(self, matrix):
        assert speedup(matrix, "HM1", "camps-mod") > speedup(matrix, "LM1", "camps-mod")

    def test_camps_family_leads_overall(self, matrix):
        avg = {
            s: geomean([speedup(matrix, w, s) for w in ("HM1", "LM1")])
            for s in SCHEMES
        }
        assert max(avg, key=avg.get) in ("camps", "camps-mod")


class TestFigure6Shape:
    def test_base_zero_conflicts(self, matrix):
        assert matrix.get("HM1", "base").conflict_rate == 0.0

    def test_camps_reduces_conflicts_vs_mmd(self, matrix):
        for w in ("HM1", "LM1"):
            assert (
                matrix.get(w, "camps").conflict_rate
                < matrix.get(w, "mmd").conflict_rate
            )

    def test_camps_reduces_conflicts_vs_base_hit(self, matrix):
        for w in ("HM1", "LM1"):
            assert (
                matrix.get(w, "camps").conflict_rate
                < matrix.get(w, "base-hit").conflict_rate
            )


class TestFigure7Shape:
    def test_base_least_accurate(self, matrix):
        for w in ("HM1", "LM1"):
            base_acc = matrix.get(w, "base").row_accuracy
            for s in ("camps", "camps-mod"):
                assert matrix.get(w, s).row_accuracy > base_acc

    def test_camps_mod_accuracy_not_below_camps_much(self, matrix):
        # CAMPS-MOD's replacement keeps useful rows; accuracy within a few
        # points of plain CAMPS at minimum.
        for w in ("HM1", "LM1"):
            assert (
                matrix.get(w, "camps-mod").row_accuracy
                >= matrix.get(w, "camps").row_accuracy - 0.10
            )


class TestFigure8Shape:
    def test_camps_mod_cuts_amat_vs_base_on_hm(self, matrix):
        base = matrix.get("HM1", "base").mean_read_latency
        mod = matrix.get("HM1", "camps-mod").mean_read_latency
        assert mod < base


class TestFigure9Shape:
    def test_base_most_energy(self, matrix):
        for w in ("HM1", "LM1"):
            base_e = matrix.get(w, "base").energy_pj
            for s in ("mmd", "camps-mod"):
                assert matrix.get(w, s).energy_pj < base_e

    def test_camps_mod_saves_more_than_mmd(self, matrix):
        for w in ("HM1",):
            assert (
                matrix.get(w, "camps-mod").energy_pj
                < matrix.get(w, "mmd").energy_pj
            )
