"""Unit tests for the trace-driven core timing model."""

import numpy as np
import pytest

from repro.cpu.core import Core, CoreParams, MemoryPort
from repro.request import MemoryRequest
from repro.sim.engine import Engine


class FixedLatencyPort(MemoryPort):
    """Memory that answers every load after a fixed delay."""

    def __init__(self, engine, latency=100, known=False):
        self.engine = engine
        self.latency = latency
        self.known = known
        self.loads = 0
        self.stores = 0

    def load(self, core_id, addr, on_fill):
        self.loads += 1
        if self.known:
            return self.engine.now + self.latency
        req = MemoryRequest(addr, False, core_id, self.engine.now)
        self.engine.schedule(self.latency, on_fill, req)
        return None

    def store(self, core_id, addr):
        self.stores += 1


def run_core(engine, port, gaps, addrs=None, writes=None, params=None):
    n = len(gaps)
    core = Core(
        0,
        engine,
        port,
        np.array(gaps),
        np.array(addrs if addrs is not None else [64 * i for i in range(n)]),
        np.array(writes if writes is not None else [False] * n),
        params=params,
    )
    core.start()
    engine.run()
    assert core.done
    return core


class TestBasicTiming:
    def test_compute_only_ipc_near_issue_width(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=1, known=True)
        core = run_core(eng, port, gaps=[399] * 10, params=CoreParams(issue_width=4))
        # 4000 instructions at width 4 ~ 1000 cycles (plus tiny load effects)
        assert core.ipc == pytest.approx(4.0, rel=0.15)

    def test_instruction_count(self):
        eng = Engine()
        port = FixedLatencyPort(eng, known=True)
        core = run_core(eng, port, gaps=[9, 9, 9])
        assert core.instr == 30  # 3 x (9 + the memory op)

    def test_memory_latency_reduces_ipc(self):
        def ipc_with(lat):
            eng = Engine()
            port = FixedLatencyPort(eng, latency=lat)
            return run_core(
                eng, port, gaps=[10] * 50, params=CoreParams(mlp=2, rob_size=16)
            ).ipc

        assert ipc_with(400) < ipc_with(10)

    def test_stores_do_not_stall(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=10_000)
        core = run_core(
            eng,
            port,
            gaps=[10] * 20,
            writes=[True] * 20,
            params=CoreParams(mlp=1, rob_size=8),
        )
        assert port.stores == 20
        assert core.finish_cycle < 1000  # never waited for memory

    def test_ipc_zero_before_done(self):
        eng = Engine()
        port = FixedLatencyPort(eng, known=True)
        core = Core(0, eng, port, np.array([1]), np.array([0]), np.array([False]))
        assert core.ipc == 0.0


class TestMLPConstraint:
    def test_outstanding_bounded_by_mlp(self):
        eng = Engine()

        class CountingPort(FixedLatencyPort):
            def __init__(self, engine):
                super().__init__(engine, latency=500)
                self.inflight = 0
                self.max_inflight = 0

            def load(self, core_id, addr, on_fill):
                self.inflight += 1
                self.max_inflight = max(self.max_inflight, self.inflight)

                def wrapped(req):
                    self.inflight -= 1
                    on_fill(req)

                req = MemoryRequest(addr, False, core_id, self.engine.now)
                self.engine.schedule(self.latency, wrapped, req)
                return None

        port = CountingPort(eng)
        run_core(eng, port, gaps=[0] * 30, params=CoreParams(mlp=4, rob_size=1000))
        assert port.max_inflight <= 4
        assert port.max_inflight >= 3  # overlap actually happened

    def test_higher_mlp_faster_on_independent_misses(self):
        def cycles_with(mlp):
            eng = Engine()
            port = FixedLatencyPort(eng, latency=300)
            return run_core(
                eng, port, gaps=[0] * 16, params=CoreParams(mlp=mlp, rob_size=1000)
            ).finish_cycle

        assert cycles_with(8) < cycles_with(1)


class TestROBConstraint:
    def test_small_rob_serializes_spread_misses(self):
        def cycles_with(rob):
            eng = Engine()
            port = FixedLatencyPort(eng, latency=300)
            return run_core(
                eng, port, gaps=[100] * 10, params=CoreParams(mlp=8, rob_size=rob)
            ).finish_cycle

        assert cycles_with(8) > cycles_with(4000)

    def test_rob_stall_counted(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=1000)
        core = run_core(
            eng, port, gaps=[0] * 5, params=CoreParams(mlp=8, rob_size=2)
        )
        assert core.rob_stalls > 0


class TestCompletion:
    def test_finish_waits_for_outstanding_loads(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=5000)
        core = run_core(eng, port, gaps=[1], params=CoreParams())
        assert core.finish_cycle >= 5000

    def test_on_done_callback(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=10)
        done = []
        core = Core(
            0,
            eng,
            port,
            np.array([1, 1]),
            np.array([0, 64]),
            np.array([False, False]),
            on_done=done.append,
        )
        core.start()
        eng.run()
        assert done == [core]

    def test_empty_arrays_rejected_mismatch(self):
        eng = Engine()
        port = FixedLatencyPort(eng)
        with pytest.raises(ValueError):
            Core(0, eng, port, np.array([1, 2]), np.array([0]), np.array([False]))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            CoreParams(issue_width=0)
        with pytest.raises(ValueError):
            CoreParams(rob_size=0)
        with pytest.raises(ValueError):
            CoreParams(mlp=0)

    def test_deterministic_replay(self):
        def run_once():
            eng = Engine()
            port = FixedLatencyPort(eng, latency=137)
            core = run_core(
                eng, port, gaps=[7, 0, 23, 3] * 20, params=CoreParams(mlp=3, rob_size=32)
            )
            return core.finish_cycle, core.instr

        assert run_once() == run_once()
