"""Unit tests for packets, serial links and the crossbar."""

import pytest

from repro.hmc.config import HMCConfig
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.link import LinkDirection, SerialLink
from repro.interconnect.packet import Packet, PacketKind, packet_bytes


class TestPacket:
    def test_sizes(self):
        assert packet_bytes(PacketKind.READ_REQUEST, 64, 16) == 16
        assert packet_bytes(PacketKind.WRITE_REQUEST, 64, 16) == 80
        assert packet_bytes(PacketKind.READ_RESPONSE, 64, 16) == 80
        assert packet_bytes(PacketKind.WRITE_RESPONSE, 64, 16) == 16

    def test_flit_count(self):
        p = Packet(PacketKind.READ_RESPONSE, 1, 0, 80)
        assert p.flits(16) == 5
        assert Packet(PacketKind.READ_REQUEST, 1, 0, 16).flits(16) == 1
        assert Packet(PacketKind.READ_REQUEST, 1, 0, 17).flits(16) == 2

    def test_str(self):
        assert "rd_req" in str(Packet(PacketKind.READ_REQUEST, 9, 3, 16))


class TestLinkDirection:
    def test_serialization_time(self):
        d = LinkDirection("d", bytes_per_cycle=8.0, serdes_latency=10, flit_bytes=16)
        arrival, flits = d.send(0, 80)
        assert arrival == 10 + 10  # 80/8 cycles + serdes
        assert flits == 5

    def test_back_to_back_serializes(self):
        d = LinkDirection("d", 8.0, 0, 16)
        a1, _ = d.send(0, 80)
        a2, _ = d.send(0, 80)
        assert a2 == a1 + 10

    def test_idle_gap_no_penalty(self):
        d = LinkDirection("d", 8.0, 0, 16)
        d.send(0, 80)
        a, _ = d.send(100, 80)
        assert a == 110

    def test_minimum_one_cycle(self):
        d = LinkDirection("d", 100.0, 0, 16)
        a, _ = d.send(0, 1)
        assert a == 1

    def test_counters_and_utilization(self):
        d = LinkDirection("d", 8.0, 0, 16)
        d.send(0, 80)
        d.send(0, 16)
        assert d.packets == 2
        assert d.bytes_sent == 96
        assert d.flits_sent == 6
        assert d.busy_cycles == 10 + 2
        assert d.utilization(24) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkDirection("d", 0, 0, 16)
        with pytest.raises(ValueError):
            LinkDirection("d", 8, -1, 16)
        d = LinkDirection("d", 8, 0, 16)
        with pytest.raises(ValueError):
            d.send(0, 0)


class TestSerialLink:
    def test_directions_independent(self):
        l = SerialLink(0, 8.0, 0, 16)
        l.request.send(0, 80)
        a, _ = l.response.send(0, 80)
        assert a == 10  # no interference from the request direction

    def test_total_flits(self):
        l = SerialLink(0, 8.0, 0, 16)
        l.request.send(0, 16)
        l.response.send(0, 80)
        assert l.total_flits == 6

    def test_config_derived_bandwidth(self):
        cfg = HMCConfig()
        # Table I: 16 lanes x 12.5 Gbps at 3 GHz -> ~8.33 B/cycle
        assert cfg.link_bytes_per_cycle == pytest.approx(8.333, rel=1e-3)

    def test_reset_statistics_zeroes_traffic(self):
        l = SerialLink(0, 8.0, 0, 16)
        l.request.send(0, 80)
        l.response.send(0, 80)
        l.reset_statistics()
        assert l.total_flits == 0
        assert l.total_busy_cycles == 0
        assert l.request.packets == 0 and l.request.bytes_sent == 0

    def test_reset_statistics_zeroes_retry_counters(self):
        """Warmup-boundary regression: a reset must also clear the attached
        fault/retry counters, or replays folded into pre-warmup summaries
        get double-counted in the post-warmup ones."""
        from repro.faults import LinkFaultConfig

        l = SerialLink(0, 8.0, 0, 16, LinkFaultConfig(drop_prob=0.9, seed=7))
        for _ in range(50):
            l.request.send(0, 80)
        before = l.fault_counters()
        assert before["replays"] > 0
        l.reset_statistics()
        after = l.fault_counters()
        assert after["replays"] == 0
        assert after["crc_errors"] == 0
        assert after["drops"] == 0
        assert after["retrains"] == 0
        assert after["replayed_flits"] == 0
        # the injector RNG stream is simulation state, not a statistic:
        # traffic after the reset still draws the continuing error sequence
        for _ in range(50):
            l.request.send(0, 80)
        assert l.fault_counters()["replays"] > 0


class TestCrossbar:
    def test_fixed_latency(self):
        xb = Crossbar(vaults=4, latency=4)
        assert xb.route(10, 2) == 14
        assert xb.traversals == 1

    def test_port_occupancy(self):
        xb = Crossbar(vaults=4, latency=4, port_cycle=2)
        a = xb.route(0, 1)
        b = xb.route(0, 1)  # same port, same cycle -> pushed back
        assert b == a + 2
        assert xb.port_conflicts == 1

    def test_different_ports_no_conflict(self):
        xb = Crossbar(vaults=4, latency=4)
        assert xb.route(0, 0) == xb.route(0, 1)
        assert xb.port_conflicts == 0

    def test_vault_range_checked(self):
        xb = Crossbar(vaults=4, latency=4)
        with pytest.raises(ValueError):
            xb.route(0, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)
        with pytest.raises(ValueError):
            Crossbar(4, -1)
        with pytest.raises(ValueError):
            Crossbar(4, 4, port_cycle=0)
