"""Tests for the timeline module, new SPEC profiles and the selftest CLI."""

import pytest

from repro.cli import main
from repro.metrics.timeline import Timeline, sparkline
from repro.sim.engine import Engine
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace


class TestSparkline:
    def test_levels_span_range(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_pooling_to_width(self):
        s = sparkline(list(range(1000)), width=40)
        assert len(s) == 40
        # still monotone after pooling
        assert s[0] == "▁" and s[-1] == "█"

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=64)) == 2


class TestTimeline:
    def test_records_series(self):
        eng = Engine()
        state = {"v": 0}

        def bump():
            state["v"] += 1

        tl = Timeline(eng, interval=10)
        tl.probe("v", lambda: state["v"])
        tl.start()
        for t in range(5, 100, 7):
            eng.schedule(t, bump)
        eng.run()
        assert len(tl.times) == len(tl.series["v"]) > 3
        assert tl.series["v"] == sorted(tl.series["v"])  # monotone counter

    def test_text_rendering(self):
        eng = Engine()
        tl = Timeline(eng, interval=5)
        tl.probe("x", lambda: eng.now)
        tl.start()
        eng.schedule(30, lambda: None)
        eng.run()
        text = tl.text()
        assert "timeline:" in text and "mean=" in text

    def test_no_samples(self):
        tl = Timeline(Engine())
        assert tl.text() == "(no samples)"

    def test_duplicate_probe_rejected(self):
        tl = Timeline(Engine())
        tl.probe("x", lambda: 1)
        with pytest.raises(ValueError):
            tl.probe("x", lambda: 2)

    def test_weak_events_do_not_block(self):
        eng = Engine()
        tl = Timeline(eng, interval=1)
        tl.probe("x", lambda: 1)
        tl.start()
        eng.schedule(5, lambda: None)
        eng.run()
        assert eng.now == 5

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Timeline(Engine(), interval=0)


class TestExtendedProfiles:
    FULL_SUITE_EXTRAS = [
        "libquantum", "soplex", "leslie3d", "xalancbmk", "perlbench",
        "gobmk", "hmmer", "sjeng", "namd", "dealII", "gromacs",
        "calculix", "povray", "gamess",
    ]

    def test_suite_has_29_profiles(self):
        assert len(PROFILES) == 29

    @pytest.mark.parametrize("name", FULL_SUITE_EXTRAS)
    def test_extra_profiles_hit_their_mpki(self, name):
        t = generate_trace(name, 4000, seed=2)
        target = PROFILES[name].mpki
        assert t.mpki == pytest.approx(target, rel=0.25), name

    def test_libquantum_is_pure_stream(self):
        from repro.workloads.analysis import analyze_row_buffer

        p = analyze_row_buffer(generate_trace("libquantum", 4000, seed=1))
        assert p.hit_rate > 0.6  # single stream, full rows

    def test_extra_profiles_simulate(self):
        from repro.system import run_system

        t = generate_trace("soplex", 400, seed=1)
        r = run_system([t], scheme="camps-mod")
        assert r.cycles > 0


class TestSelftestCLI:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "camps-mod" in out
