"""Tests for the timeline module, new SPEC profiles and the selftest CLI."""

import pytest

from repro.cli import main
from repro.metrics.timeline import Timeline, sparkline
from repro.sim.engine import Engine
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace


class TestSparkline:
    def test_levels_span_range(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_pooling_to_width(self):
        s = sparkline(list(range(1000)), width=40)
        assert len(s) == 40
        # still monotone after pooling
        assert s[0] == "▁" and s[-1] == "█"

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=64)) == 2

    def test_width_boundary_no_pooling(self):
        # exactly `width` samples must pass through unpooled
        vals = list(range(8))
        assert sparkline(vals, width=8) == "▁▂▃▄▅▆▇█"

    def test_width_plus_one_pools(self):
        # one sample over the width triggers mean-pooling down to `width`
        s = sparkline(list(range(9)), width=8)
        assert len(s) == 8
        assert s[0] == "▁" and s[-1] == "█"

    def test_pooling_buckets_cover_all_samples(self):
        # a single spike must survive pooling regardless of which bucket
        # boundary it lands on (a lost sample would render flat)
        for spike_at in range(10):
            vals = [0.0] * 10
            vals[spike_at] = 100.0
            s = sparkline(vals, width=4)
            assert len(s) == 4
            assert "█" in s, f"spike at {spike_at} lost in pooling"

    def test_zero_span_after_pooling(self):
        # constant long series: pooled values are all equal -> min glyph
        assert sparkline([3.0] * 100, width=10) == "▁" * 10

    def test_single_value(self):
        assert sparkline([42]) == "▁"


class TestTimeline:
    def test_records_series(self):
        eng = Engine()
        state = {"v": 0}

        def bump():
            state["v"] += 1

        tl = Timeline(eng, interval=10)
        tl.probe("v", lambda: state["v"])
        tl.start()
        for t in range(5, 100, 7):
            eng.schedule(t, bump)
        eng.run()
        assert len(tl.times) == len(tl.series["v"]) > 3
        assert tl.series["v"] == sorted(tl.series["v"])  # monotone counter

    def test_text_rendering(self):
        eng = Engine()
        tl = Timeline(eng, interval=5)
        tl.probe("x", lambda: eng.now)
        tl.start()
        eng.schedule(30, lambda: None)
        eng.run()
        text = tl.text()
        assert "timeline:" in text and "mean=" in text

    def test_no_samples(self):
        tl = Timeline(Engine())
        assert tl.text() == "(no samples)"

    def test_duplicate_probe_rejected(self):
        tl = Timeline(Engine())
        tl.probe("x", lambda: 1)
        with pytest.raises(ValueError):
            tl.probe("x", lambda: 2)

    def test_weak_events_do_not_block(self):
        eng = Engine()
        tl = Timeline(eng, interval=1)
        tl.probe("x", lambda: 1)
        tl.start()
        eng.schedule(5, lambda: None)
        eng.run()
        assert eng.now == 5

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            Timeline(Engine(), interval=0)

    def test_text_reports_min_mean_max(self):
        eng = Engine()
        tl = Timeline(eng, interval=10)
        vals = iter([2.0, 4.0, 6.0, 8.0])
        tl.probe("depth", lambda: next(vals))
        tl.start()
        # strong event past the last wanted tick keeps the weak ticks alive
        eng.schedule(35, lambda: None)
        eng.run()
        text = tl.text()
        assert "3 samples every 10 cycles (10..30)" in text
        assert "min=2 mean=4.0 max=6" in text

    def test_text_aligns_probe_names(self):
        eng = Engine()
        tl = Timeline(eng, interval=10)
        tl.probe("a", lambda: 1.0)
        tl.probe("longer_name", lambda: 2.0)
        tl.start()
        eng.schedule(10, lambda: None)
        eng.run()
        lines = tl.text().splitlines()
        # sparklines of both rows start at the same column
        col = len("longer_name") + 2
        assert lines[1][:col].strip() == "a"
        assert lines[2][:col].strip() == "longer_name"


class TestExtendedProfiles:
    FULL_SUITE_EXTRAS = [
        "libquantum", "soplex", "leslie3d", "xalancbmk", "perlbench",
        "gobmk", "hmmer", "sjeng", "namd", "dealII", "gromacs",
        "calculix", "povray", "gamess",
    ]

    def test_suite_has_29_profiles(self):
        assert len(PROFILES) == 29

    @pytest.mark.parametrize("name", FULL_SUITE_EXTRAS)
    def test_extra_profiles_hit_their_mpki(self, name):
        t = generate_trace(name, 4000, seed=2)
        target = PROFILES[name].mpki
        assert t.mpki == pytest.approx(target, rel=0.25), name

    def test_libquantum_is_pure_stream(self):
        from repro.workloads.analysis import analyze_row_buffer

        p = analyze_row_buffer(generate_trace("libquantum", 4000, seed=1))
        assert p.hit_rate > 0.6  # single stream, full rows

    def test_extra_profiles_simulate(self):
        from repro.system import run_system

        t = generate_trace("soplex", 400, seed=1)
        r = run_system([t], scheme="camps-mod")
        assert r.cycles > 0


class TestSelftestCLI:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "camps-mod" in out
