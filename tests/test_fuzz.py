"""Property-based fuzzing of the vault controller and full device.

Random request storms across every scheme must always drain (no deadlock,
no lost requests) while preserving the structural invariants: buffer recency
permutation, non-negative stats, and accounting identities.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.schemes import make_prefetcher, scheme_names
from repro.hmc.config import HMCConfig
from repro.request import MemoryRequest
from repro.sim.engine import Engine
from repro.vault.controller import VaultController

CFG = HMCConfig(banks_per_vault=4, pf_buffer_entries=4)

request_strategy = st.tuples(
    st.integers(0, 3),  # bank
    st.integers(0, 5),  # row
    st.integers(0, 15),  # column
    st.booleans(),  # write
    st.integers(0, 50),  # inter-arrival gap
)


def drive(scheme, storm):
    eng = Engine()
    responses = []
    vc = VaultController(
        vault_id=0,
        config=CFG,
        engine=eng,
        prefetcher=make_prefetcher(scheme, 0, CFG),
        respond_fn=lambda req, ready: responses.append((req, ready)),
    )
    t = 0
    reqs = []
    for bank, row, col, write, gap in storm:
        t += gap
        r = MemoryRequest(0, write)
        r.vault, r.bank, r.row, r.column = 0, bank, row, col
        reqs.append(r)
        eng.schedule_at(t, vc.receive, r)
    eng.run()
    return vc, eng, reqs, responses


@pytest.mark.parametrize("scheme", scheme_names())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(storm=st.lists(request_strategy, min_size=1, max_size=80))
def test_storm_always_drains(scheme, storm):
    vc, eng, reqs, responses = drive(scheme, storm)
    # every request answered exactly once
    assert len(responses) == len(reqs)
    assert {id(r) for r, _ in responses} == {id(r) for r in reqs}
    # response ready times never precede arrival
    for r, ready in responses:
        assert ready >= r.vault_arrive_cycle
    # queues fully drained
    assert len(vc.queues) == 0
    # structural invariants
    if vc.buffer is not None:
        assert vc.buffer.check_recency_invariant()
        assert len(vc.buffer) <= CFG.pf_buffer_entries
    # accounting identity: every request was served by a bank or the buffer
    served = vc.demand_accesses + vc.stats.counter("buffer_hits").value
    assert served == len(reqs)


@settings(max_examples=15, deadline=None)
@given(
    storm=st.lists(request_strategy, min_size=5, max_size=60),
    seed_scheme=st.sampled_from(["camps", "camps-mod", "mmd", "base"]),
)
def test_storm_bank_counters_consistent(storm, seed_scheme):
    vc, eng, reqs, responses = drive(seed_scheme, storm)
    for b in vc.banks:
        assert b.hits + b.empties + b.conflicts == b.demand_accesses
        assert b.acts >= b.conflicts  # every conflict implied an activate
        assert b.busy_until <= eng.now + 10**7


@settings(max_examples=10, deadline=None)
@given(storm=st.lists(request_strategy, min_size=5, max_size=60))
def test_storm_deterministic(storm):
    _, eng1, _, resp1 = drive("camps-mod", storm)
    _, eng2, _, resp2 = drive("camps-mod", storm)
    assert [t for _, t in resp1] == [t for _, t in resp2]
    assert eng1.now == eng2.now
