"""Unit + property tests for the RoRaBaVaCo address mapping."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig


@pytest.fixture
def m():
    return AddressMapping(HMCConfig())


class TestFieldLayout:
    def test_bit_widths(self, m):
        assert m.offset_bits == 6  # 64 B lines
        assert m.column_bits == 4  # 16 lines / 1 KB row
        assert m.vault_bits == 5  # 32 vaults
        assert m.bank_bits == 4  # 16 banks

    def test_shift_order_ro_ba_va_co(self, m):
        # RoRaBaVaCo: row above bank above vault above column
        assert m.row_shift > m.bank_shift > m.vault_shift > m.column_shift

    def test_address_zero(self, m):
        d = m.decode(0)
        assert (d.vault, d.bank, d.row, d.column) == (0, 0, 0, 0)

    def test_consecutive_lines_walk_columns_first(self, m):
        cfg = HMCConfig()
        base = m.encode(3, 2, 10, 0)
        for col in range(cfg.lines_per_row):
            d = m.decode(base + col * cfg.line_bytes)
            assert (d.vault, d.bank, d.row, d.column) == (3, 2, 10, col)

    def test_after_row_of_lines_vault_increments(self, m):
        cfg = HMCConfig()
        addr = m.encode(0, 0, 0, cfg.lines_per_row - 1) + cfg.line_bytes
        d = m.decode(addr)
        assert (d.vault, d.bank, d.row, d.column) == (1, 0, 0, 0)


class TestEncodeDecode:
    def test_roundtrip_simple(self, m):
        addr = m.encode(7, 3, 99, 5)
        d = m.decode(addr)
        assert (d.vault, d.bank, d.row, d.column) == (7, 3, 99, 5)

    def test_encode_validates_ranges(self, m):
        with pytest.raises(ValueError):
            m.encode(32, 0, 0, 0)
        with pytest.raises(ValueError):
            m.encode(0, 16, 0, 0)
        with pytest.raises(ValueError):
            m.encode(0, 0, 0, 16)
        with pytest.raises(ValueError):
            m.encode(0, 0, -1, 0)

    def test_decode_rejects_negative(self, m):
        with pytest.raises(ValueError):
            m.decode(-1)

    def test_line_address_rounds_down(self, m):
        assert m.line_address(0x12345) == 0x12345 & ~0x3F

    def test_row_key(self, m):
        addr = m.encode(4, 9, 123, 7)
        assert m.row_key(addr) == (4, 9, 123)

    @given(
        vault=st.integers(0, 31),
        bank=st.integers(0, 15),
        row=st.integers(0, 1 << 20),
        column=st.integers(0, 15),
    )
    def test_roundtrip_property(self, vault, bank, row, column):
        m = AddressMapping(HMCConfig())
        d = m.decode(m.encode(vault, bank, row, column))
        assert (d.vault, d.bank, d.row, d.column) == (vault, bank, row, column)

    @given(addr=st.integers(0, (1 << 40) - 1))
    def test_decode_encode_preserves_line(self, addr):
        m = AddressMapping(HMCConfig())
        d = m.decode(addr)
        rebuilt = m.encode(d.vault, d.bank, d.row, d.column)
        assert rebuilt == m.line_address(addr)


class TestVectorized:
    def test_decode_many_matches_scalar(self, m, rng):
        addrs = rng.integers(0, 1 << 36, size=500)
        v, b, r, c = m.decode_many(addrs)
        for i in range(0, 500, 37):
            d = m.decode(int(addrs[i]))
            assert (v[i], b[i], r[i], c[i]) == (d.vault, d.bank, d.row, d.column)

    def test_encode_many_matches_scalar(self, m, rng):
        n = 200
        vault = rng.integers(0, 32, n)
        bank = rng.integers(0, 16, n)
        row = rng.integers(0, 1 << 18, n)
        col = rng.integers(0, 16, n)
        addrs = m.encode_many(vault, bank, row, col)
        for i in range(0, n, 23):
            assert int(addrs[i]) == m.encode(
                int(vault[i]), int(bank[i]), int(row[i]), int(col[i])
            )

    def test_roundtrip_vectorized(self, m, rng):
        addrs = (rng.integers(0, 1 << 36, size=300) >> 6) << 6  # line-aligned
        v, b, r, c = m.decode_many(addrs)
        rebuilt = m.encode_many(v, b, r, c)
        assert np.array_equal(rebuilt, addrs)


class TestAlternateGeometry:
    def test_small_cube(self):
        cfg = HMCConfig(vaults=4, banks_per_vault=4)
        m = AddressMapping(cfg)
        d = m.decode(m.encode(3, 3, 77, 2))
        assert (d.vault, d.bank, d.row, d.column) == (3, 3, 77, 2)

    def test_bigger_rows(self):
        cfg = HMCConfig(row_bytes=2048)
        m = AddressMapping(cfg)
        assert m.column_bits == 5
        d = m.decode(m.encode(1, 1, 1, 31))
        assert d.column == 31
