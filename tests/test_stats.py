"""Unit tests for statistics primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Histogram, StatGroup, geomean


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_default_and_amount(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_reset(self):
        c = Counter("c", 10)
        c.reset()
        assert c.value == 0

    def test_int_conversion(self):
        assert int(Counter("c", 3)) == 3


class TestHistogram:
    def test_mean_is_exact(self):
        h = Histogram("h", nbins=4, bin_width=10)
        for v in [1, 2, 3, 4]:
            h.add(v)
        assert h.mean == pytest.approx(2.5)

    def test_variance_matches_numpy(self):
        h = Histogram("h")
        data = [3, 7, 7, 19, 24, 4]
        for v in data:
            h.add(v)
        assert h.variance == pytest.approx(np.var(data))
        assert h.std == pytest.approx(np.std(data))

    def test_min_max(self):
        h = Histogram("h")
        for v in [5, 1, 9]:
            h.add(v)
        assert h.min == 1 and h.max == 9

    def test_binning(self):
        h = Histogram("h", nbins=4, bin_width=10)
        h.add(5)  # bin 0
        h.add(15)  # bin 1
        h.add(1000)  # overflow -> last bin
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[3] == 1

    def test_negative_clamped_to_first_bin(self):
        h = Histogram("h", nbins=4, bin_width=10)
        h.add(-5)
        assert h.counts[0] == 1

    def test_percentile_monotone(self):
        h = Histogram("h", nbins=32, bin_width=4)
        for v in range(100):
            h.add(v)
        assert h.percentile(10) <= h.percentile(50) <= h.percentile(90)

    def test_percentile_bounds_checked(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram_safe(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.n == 0

    def test_reset(self):
        h = Histogram("h")
        h.add(5)
        h.reset()
        assert h.n == 0 and h.mean == 0.0 and h.counts.sum() == 0

    def test_percentile_overflow_returns_tracked_max(self):
        # Regression: a quantile landing among overflow samples used to
        # report the last bin's midpoint (35 here), silently under-reporting
        # tail latency for any long-tailed distribution.
        h = Histogram("h", nbins=4, bin_width=10)
        for v in (1, 2, 3, 500, 900, 1000):
            h.add(v)
        assert h.overflow == 3
        assert h.percentile(99) == 1000
        # quantiles below the overflow mass still use bin midpoints
        assert h.percentile(10) == 5.0

    def test_percentile_last_bin_in_range_vs_overflow(self):
        # Samples genuinely inside the last bin keep the midpoint answer;
        # only quantiles past them fall through to the tracked max.
        h = Histogram("h", nbins=4, bin_width=10)
        for v in (31, 32, 33, 34, 5000):
            h.add(v)
        assert h.percentile(50) == 35.0  # in-range last-bin sample
        assert h.percentile(100) == 5000  # the overflow sample

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Histogram("h", nbins=0)
        with pytest.raises(ValueError):
            Histogram("h", bin_width=0)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
    def test_mean_always_exact_regardless_of_binning(self, samples):
        h = Histogram("h", nbins=8, bin_width=16)
        for s in samples:
            h.add(s)
        assert h.mean == pytest.approx(np.mean(samples))
        assert h.n == len(samples)


class TestStatGroup:
    def test_counter_get_or_create(self):
        g = StatGroup("g")
        a = g.counter("x")
        b = g.counter("x")
        assert a is b

    def test_histogram_get_or_create(self):
        g = StatGroup("g")
        assert g.histogram("h") is g.histogram("h")

    def test_as_dict(self):
        g = StatGroup("g")
        g.counter("reads").inc(3)
        g.histogram("lat").add(10)
        d = g.as_dict()
        assert d["reads"] == 3
        assert d["lat.n"] == 1
        assert d["lat.mean"] == 10

    def test_reset_all(self):
        g = StatGroup("g")
        g.counter("c").inc(3)
        g.histogram("h").add(5)
        g.reset()
        assert g.counter("c").value == 0
        assert g.histogram("h").n == 0

    def test_merge_counters(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.counter("x").inc(2)
        b.counter("x").inc(3)
        b.counter("y").inc(1)
        a.merge(b)
        assert a.counter("x").value == 5
        assert a.counter("y").value == 1

    def test_merge_histograms_pools_moments(self):
        a, b = StatGroup("a"), StatGroup("b")
        for v in [1, 2, 3]:
            a.histogram("h").add(v)
        for v in [10, 20]:
            b.histogram("h").add(v)
        a.merge(b)
        h = a.histogram("h")
        assert h.n == 5
        assert h.mean == pytest.approx(np.mean([1, 2, 3, 10, 20]))
        assert h.variance == pytest.approx(np.var([1, 2, 3, 10, 20]))

    def test_merge_histograms_pools_overflow(self):
        a, b = StatGroup("a"), StatGroup("b")
        ha = a.histogram("h", nbins=4, bin_width=10)
        hb = b.histogram("h", nbins=4, bin_width=10)
        ha.add(500)
        hb.add(900)
        hb.add(5)
        a.merge(b)
        merged = a.histogram("h")
        assert merged.overflow == 2
        assert merged.percentile(100) == 900  # overflow-aware after merge too


class TestGeomean:
    def test_simple(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, vals):
        g = geomean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    def test_scale_invariance(self, vals):
        g1 = geomean(vals)
        g2 = geomean([v * 2 for v in vals])
        assert g2 == pytest.approx(2 * g1, rel=1e-9)
