"""Tests for the markdown report generator and the text trace format."""

import numpy as np
import pytest

from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentConfig, ResultCache, run_matrix
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import Trace


@pytest.fixture(scope="module")
def matrix(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("c") / "cache.json")
    cfg = ExperimentConfig(refs_per_core=200, seed=1)
    return run_matrix(
        ["HM1", "LM4"],
        ["base", "base-hit", "mmd", "camps", "camps-mod"],
        cfg,
        cache=cache,
    )


class TestReport:
    def test_contains_all_sections(self, matrix):
        md = generate_report(matrix)
        for frag in (
            "# CAMPS reproduction report",
            "## Headline comparison",
            "## Scheme ordering",
            "### Figure 5",
            "### Figure 6",
            "### Figure 7",
            "### Figure 8",
            "### Figure 9",
        ):
            assert frag in md

    def test_paper_values_in_comparison(self, matrix):
        md = generate_report(matrix)
        assert "1.179" in md  # paper's Fig 5 AVG speedup
        assert "0.705" in md  # paper's CAMPS-MOD accuracy

    def test_scale_note_included(self, matrix):
        md = generate_report(matrix, scale_note="Scale: tiny test run.")
        assert "Scale: tiny test run." in md

    def test_markdown_tables_well_formed(self, matrix):
        md = generate_report(matrix)
        for line in md.splitlines():
            if line.startswith("|") and "---" not in line:
                # same column count as a pipe-delimited row
                assert line.endswith("|")

    def test_every_mix_row_present(self, matrix):
        md = generate_report(matrix)
        assert "| HM1 |" in md and "| LM4 |" in md


class TestTextTraceFormat:
    def test_roundtrip(self, tmp_path):
        t = generate_trace("gcc", 300, seed=5)
        path = tmp_path / "trace.txt"
        t.save_text(path)
        t2 = Trace.load_text(path)
        assert np.array_equal(t.gaps, t2.gaps)
        assert np.array_equal(t.addrs, t2.addrs)
        assert np.array_equal(t.writes, t2.writes)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(
            "# header comment\n"
            "\n"
            "10 0x1000 R\n"
            "5 0x2040 W  # trailing comment\n"
        )
        t = Trace.load_text(path)
        assert len(t) == 2
        assert t.addrs[1] == 0x2040
        assert bool(t.writes[1]) is True

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0 4096 R\n")
        t = Trace.load_text(path)
        assert t.addrs[0] == 4096

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("10 0x1000\n")
        with pytest.raises(ValueError, match="expected"):
            Trace.load_text(path)

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("10 0x1000 X\n")
        with pytest.raises(ValueError):
            Trace.load_text(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# only comments\n")
        with pytest.raises(ValueError, match="empty"):
            Trace.load_text(path)

    def test_loaded_trace_runs(self, tmp_path):
        from repro.system import run_system

        t = generate_trace("h264ref", 200, seed=2)
        path = tmp_path / "t.txt"
        t.save_text(path)
        loaded = Trace.load_text(path)
        r = run_system([loaded], scheme="camps-mod")
        assert r.cycles > 0
