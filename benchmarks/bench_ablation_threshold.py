"""Ablation: the RUT utilization threshold (paper default: 4 distinct lines).

A lower threshold prefetches earlier (more aggressive, more waste); a higher
threshold waits for more confirmation (less coverage).  The paper picks 4;
this bench shows the sensitivity around that choice.
"""

import pytest

from repro.core.camps import CampsParams
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

THRESHOLDS = [2, 4, 8, 12]


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM1", refs, seed=experiment_config.seed)


def run_with_threshold(traces, threshold):
    return System(
        traces,
        SystemConfig(scheme="camps-mod"),
        workload="HM1",
        scheme_kwargs={"params": CampsParams(utilization_threshold=threshold)},
    ).run()


def test_ablation_rut_threshold(benchmark, traces):
    base = System(traces, SystemConfig(scheme="base"), workload="HM1").run()

    def sweep():
        return {t: run_with_threshold(traces, t) for t in THRESHOLDS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: RUT utilization threshold (HM1, speedup vs BASE)")
    print(f"{'threshold':>10} {'speedup':>9} {'accuracy':>9} {'prefetches':>11}")
    for t, r in results.items():
        print(
            f"{t:>10} {r.speedup_vs(base):>9.3f} {r.row_accuracy:>9.2f} "
            f"{r.prefetches_issued:>11}"
        )

    # Aggressiveness must decrease monotonically with the threshold.
    pf = [results[t].prefetches_issued for t in THRESHOLDS]
    assert pf == sorted(pf, reverse=True)
    # Every threshold beats BASE; the paper's 4 stays within 20% of the
    # best (lower thresholds trade accuracy for coverage).
    speedups = {t: results[t].speedup_vs(base) for t in THRESHOLDS}
    assert all(v > 1.0 for v in speedups.values())
    assert speedups[4] >= max(speedups.values()) * 0.80
