"""Ablation: page policy and refresh (extensions beyond the paper's setup).

The paper fixes an open-page policy and does not model refresh.  This bench
quantifies both choices: closed-page removes row-buffer locality (and with
it most of what CAMPS's RUT exploits), and per-bank refresh steals a small,
uniform slice of bank time from every scheme.
"""

import pytest

from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

VARIANTS = {
    "open (paper)": HMCConfig(),
    "closed page": HMCConfig(page_policy="closed"),
    "open + refresh": HMCConfig(refresh_enabled=True),
}


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM1", refs, seed=experiment_config.seed)


def test_ablation_page_policy_and_refresh(benchmark, traces):
    def sweep():
        out = {}
        for label, cfg in VARIANTS.items():
            out[label] = {
                scheme: System(
                    traces, SystemConfig(hmc=cfg, scheme=scheme), workload="HM1"
                ).run()
                for scheme in ("base", "camps-mod")
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: page policy / refresh (HM1)")
    print(f"{'variant':<16} {'cycles(mod)':>12} {'speedup':>9} {'conflicts':>10}")
    for label, r in results.items():
        spd = r["camps-mod"].speedup_vs(r["base"])
        print(
            f"{label:<16} {r['camps-mod'].cycles:>12} {spd:>9.3f} "
            f"{r['camps-mod'].conflict_rate:>10.3f}"
        )

    open_r = results["open (paper)"]["camps-mod"]
    closed_r = results["closed page"]["camps-mod"]
    refresh_r = results["open + refresh"]["camps-mod"]
    # Closed page eliminates row-buffer conflicts by construction.
    assert closed_r.conflict_rate == 0.0
    # Refresh costs a bounded amount of time (< 15% at these intensities).
    assert open_r.cycles <= refresh_r.cycles <= open_r.cycles * 1.15
    # CAMPS-MOD beats BASE under both open-page variants...
    for label in ("open (paper)", "open + refresh"):
        r = results[label]
        assert r["camps-mod"].speedup_vs(r["base"]) > 1.0, label
    # ...but NOT under closed page: with no row buffer to keep open, the
    # RUT/CT signals lose their meaning and BASE's fetch-everything approach
    # is at least as good.  The paper's open-page assumption is load-bearing.
    closed = results["closed page"]
    assert closed["camps-mod"].speedup_vs(closed["base"]) <= 1.05
