"""Campaign scaling: sharded execution must match — and beat — the serial loop.

Pins the PR's acceptance criterion: a 4-worker campaign over the fig5
(workloads x schemes) grid with a *cold* cache produces a ``ResultMatrix``
byte-identical to the serial run (same ``matrix_digest``), and on a machine
with >= 4 cores completes in <= 0.5x the serial wall-clock.  The identity
assertion holds everywhere; the wall-clock assertion is only meaningful
with real parallel hardware, so it is gated on ``os.cpu_count() >= 4``.

Scale: defaults to three representative mixes at <= 1000 refs/core so the
serial leg stays a few seconds; REPRO_MIXES/REPRO_REFS raise it.
"""

import os
import time

from repro.campaign import matrix_digest
from repro.experiments.figures import FIG5_SCHEMES
from repro.experiments.runner import ExperimentConfig, ResultCache, run_matrix

from conftest import selected_mixes

JOBS = 4


def _representative_mixes():
    if os.environ.get("REPRO_MIXES"):
        return selected_mixes()
    return ["HM1", "LM1", "MX1"]


def test_campaign_parallel_identical_and_faster(benchmark, tmp_path):
    mixes = _representative_mixes()
    refs = min(ExperimentConfig().refs_per_core, 1000)
    cfg = ExperimentConfig(refs_per_core=refs, seed=1)

    def both():
        t0 = time.perf_counter()
        serial = run_matrix(
            mixes, FIG5_SCHEMES, cfg, cache=ResultCache(tmp_path / "serial.json")
        )
        serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_matrix(
            mixes,
            FIG5_SCHEMES,
            cfg,
            cache=ResultCache(tmp_path / "parallel.json"),
            jobs=JOBS,
        )
        parallel_wall = time.perf_counter() - t0
        return serial, serial_wall, parallel, parallel_wall

    serial, serial_wall, parallel, parallel_wall = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    cells = len(mixes) * len(FIG5_SCHEMES)
    print(f"\nCampaign scaling ({cells} cells, {refs} refs/core, cold caches)")
    print(f"  serial (jobs=1)   {serial_wall:>8.2f} s")
    print(f"  campaign (jobs={JOBS}) {parallel_wall:>8.2f} s "
          f"({serial_wall / parallel_wall:.2f}x, {os.cpu_count()} cores)")

    # Determinism holds on any machine: both paths must agree byte-for-byte
    # on every persisted summary field, in the same matrix order.
    assert matrix_digest(serial) == matrix_digest(parallel)
    assert serial.workloads() == parallel.workloads()
    assert serial.schemes() == parallel.schemes()

    # The acceptance bound needs real cores to shard across.
    if (os.cpu_count() or 1) >= 4:
        assert parallel_wall <= 0.5 * serial_wall, (
            f"4-worker campaign took {parallel_wall:.2f}s vs "
            f"{serial_wall:.2f}s serial"
        )
