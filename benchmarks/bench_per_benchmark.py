"""Extension: per-benchmark speedups (homogeneous 8-core runs).

The paper reports only the 12 mixed workloads; this bench runs each SPEC
profile as a homogeneous 8-core workload (all cores the same benchmark,
different trace seeds) and reports CAMPS-MOD's speedup over BASE per
benchmark - showing which *individual* memory behaviours the scheme serves
best.
"""

import pytest

from repro.sim.stats import geomean
from repro.system import System, SystemConfig
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace

BENCHMARKS = sorted(PROFILES)


@pytest.fixture(scope="module")
def refs(experiment_config):
    return min(experiment_config.refs_per_core, 2000)


def test_per_benchmark_speedups(benchmark, refs, experiment_config):
    seed = experiment_config.seed

    def sweep():
        out = {}
        for bench in BENCHMARKS:
            traces = [
                generate_trace(bench, refs, seed=seed * 100 + i, core_id=i)
                for i in range(8)
            ]
            base = System(
                traces, SystemConfig(scheme="base"), workload=bench
            ).run()
            mod = System(
                traces, SystemConfig(scheme="camps-mod"), workload=bench
            ).run()
            out[bench] = (base, mod)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nPer-benchmark speedup, CAMPS-MOD over BASE (homogeneous 8-core)")
    print(f"{'bench':<10}{'class':>6}{'speedup':>9}{'conflicts':>10}{'accuracy':>9}")
    speedups = {}
    for bench, (base, mod) in sorted(results.items()):
        s = mod.speedup_vs(base)
        speedups[bench] = s
        print(
            f"{bench:<10}{PROFILES[bench].memory_intensity:>6}{s:>9.3f}"
            f"{mod.conflict_rate:>10.3f}{mod.row_accuracy:>9.2f}"
        )
    hm = geomean([s for b, s in speedups.items() if PROFILES[b].memory_intensity == "HM"])
    lm = geomean([s for b, s in speedups.items() if PROFILES[b].memory_intensity == "LM"])
    print(f"{'HM geomean':<16}{hm:>9.3f}")
    print(f"{'LM geomean':<16}{lm:>9.3f}")

    # the paper's intensity story must hold per-benchmark too
    assert hm > lm
    assert hm > 1.0
