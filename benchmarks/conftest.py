"""Shared fixtures for the benchmark harness.

Scale knobs (environment):

* ``REPRO_REFS``  - memory references per core per mix (default 4000).
* ``REPRO_SEED``  - trace seed (default 1).
* ``REPRO_MIXES`` - comma-separated subset of Table II mixes (default: all 12).
* ``REPRO_CACHE`` - simulation summary cache path ("off" to disable).
* ``REPRO_JOBS``  - worker processes for the shared grid (default 1 =
  serial; >1 shards the grid through ``repro.campaign``).

The five paper schemes over the selected mixes are simulated once per session
(and cached on disk across sessions); every figure bench reads from that
shared matrix, so the full `pytest benchmarks/ --benchmark-only` run costs
one grid simulation plus the ablations.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import FIG5_SCHEMES
from repro.experiments.runner import ExperimentConfig, run_matrix
from repro.workloads.mixes import mix_names

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent


def history_path() -> Path:
    """Where benchmark results accumulate (``REPRO_BENCH_HISTORY`` overrides,
    e.g. to keep CI runs out of the committed history)."""
    raw = os.environ.get("REPRO_BENCH_HISTORY")
    return Path(raw) if raw else REPO_ROOT / "BENCH_history.jsonl"


def record_bench_history(
    bench: str,
    wall_seconds: float,
    calib_ops_per_s: float | None = None,
    normalized: float | None = None,
    digest: str | None = None,
    meta: dict | None = None,
) -> dict:
    """Shared perf-trend writer: append one result to BENCH_history.jsonl.

    Every bench records (digest, normalized wall time, git SHA, timestamp);
    ``repro bench-trend`` flags regressions against the rolling median.
    With ``calib_ops_per_s`` the wall time is scaled by the machine's
    calibration score (``wall * calib / 1e6``) so histories from different
    machines share one scale; an explicitly ``normalized`` value (e.g. a
    paired overhead ratio) wins outright.
    """
    from repro.obs.trend import append_entry

    if normalized is None and calib_ops_per_s:
        normalized = wall_seconds * calib_ops_per_s / 1e6
    return append_entry(
        history_path(),
        bench,
        wall_seconds,
        normalized=normalized,
        digest=digest,
        meta=meta,
    )


def selected_mixes():
    raw = os.environ.get("REPRO_MIXES")
    if not raw:
        return mix_names()
    names = [m.strip() for m in raw.split(",") if m.strip()]
    unknown = [m for m in names if m not in mix_names()]
    if unknown:
        raise ValueError(f"unknown mixes in REPRO_MIXES: {unknown}")
    return names


@pytest.fixture(scope="session")
def experiment_config():
    return ExperimentConfig()


@pytest.fixture(scope="session")
def mixes():
    return selected_mixes()


def selected_jobs():
    raw = os.environ.get("REPRO_JOBS")
    jobs = int(raw) if raw else 1
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {raw!r}")
    return jobs


@pytest.fixture(scope="session")
def paper_matrix(experiment_config, mixes):
    """The (mixes x 5 paper schemes) result grid every figure reads.

    ``REPRO_JOBS>1`` shards the grid across a repro.campaign worker pool;
    the merged matrix is deterministic, so every downstream figure bench
    sees identical data either way.
    """
    return run_matrix(
        mixes, FIG5_SCHEMES, experiment_config, progress=True, jobs=selected_jobs()
    )


@pytest.fixture(scope="session")
def full_scale(experiment_config):
    """True when running at or above the calibrated reference scale.

    The paper-shape assertions (who beats whom) are only guaranteed at
    REPRO_REFS >= 3000; quick runs below that still print every table but
    skip the strict cross-scheme ordering checks.
    """
    return experiment_config.refs_per_core >= 3000


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(figure_data, results_dir, name):
    """Print a figure table and persist it as CSV."""
    from repro.metrics.report import write_csv

    print()
    print(figure_data.text())
    write_csv(
        figure_data.per_workload,
        figure_data.schemes,
        results_dir / f"{name}.csv",
        summary=figure_data.summary,
    )
