"""Ablation: prefetch buffer capacity (paper default: 16 x 1 KB per vault).

The buffer is the scarce resource every scheme contends for; this bench
shows how CAMPS-MOD's advantage scales with capacity.
"""

import pytest

from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

SIZES = [4, 8, 16, 32]


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM1", refs, seed=experiment_config.seed)


def test_ablation_buffer_size(benchmark, traces):
    def sweep():
        out = {}
        for n in SIZES:
            cfg = HMCConfig(pf_buffer_entries=n)
            out[n] = {
                scheme: System(
                    traces, SystemConfig(hmc=cfg, scheme=scheme), workload="HM1"
                ).run()
                for scheme in ("base", "camps-mod")
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: prefetch buffer entries per vault (HM1)")
    print(f"{'entries':>8} {'KB/vault':>9} {'speedup':>9} {'acc(mod)':>9} {'acc(base)':>10}")
    for n, r in results.items():
        spd = r["camps-mod"].speedup_vs(r["base"])
        print(
            f"{n:>8} {n:>9} {spd:>9.3f} {r['camps-mod'].row_accuracy:>9.2f} "
            f"{r['base'].row_accuracy:>10.2f}"
        )

    # CAMPS-MOD's selectivity pays off once the buffer is not degenerate
    # (at 4 entries every scheme thrashes equally).
    for n in SIZES:
        if n >= 16:
            assert (
                results[n]["camps-mod"].row_accuracy
                > results[n]["base"].row_accuracy
            )
    # More capacity never hurts BASE's accuracy (more rows survive to reuse).
    accs = [results[n]["base"].row_accuracy for n in SIZES]
    assert accs[-1] >= accs[0]
