"""Overhead and identity check for campaign heartbeat telemetry.

Telemetry (repro.obs.telemetry) has the same two-part contract as the rest
of the observability stack:

* **Disabled = free.**  With no sampler armed, the only residue on the hot
  path is :func:`repro.obs.telemetry.publish_system`'s single ``is None``
  check per cell — the pinned hot-path digests must be byte-identical.
* **Enabled = invisible to results.**  The sampler is a daemon *thread*
  that reads live engine state (``engine.now``, ``engine._seq``) under the
  GIL every interval and appends heartbeats to a spool file.  It schedules
  no engine events and mutates nothing the simulation observes, so an
  instrumented run must reproduce the uninstrumented digest bit-for-bit —
  including ``events_fired`` — while paying < 2 % wall clock.

This bench asserts both halves on the pinned quick configuration (CAMPS,
MX1, seed 1, 800 refs/core), sampling at 20 Hz — 10x the production
heartbeat rate, so the bound holds with an order-of-magnitude margin over
the default ``--telemetry-interval``.  The overhead measurement interleaves
off/on pairs (min-of-pair-ratios) so machine drift hits both modes equally.

Run standalone (``python benchmarks/bench_telemetry_overhead.py``) or under
pytest with an explicit path.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import (  # noqa: E402
    MIX,
    PINS,
    SCHEME,
    SEED,
    calibration_score,
    result_digest,
)
from conftest import record_bench_history  # noqa: E402

from repro.obs import telemetry  # noqa: E402
from repro.system import System, SystemConfig  # noqa: E402
from repro.workloads.mixes import mix as make_mix  # noqa: E402

#: allowed instrumented/uninstrumented wall-time ratio — the issue's
#: acceptance threshold.  Measured at 10x the production heartbeat rate.
OVERHEAD_LIMIT = 1.02

#: heartbeat period while measuring: 10x faster than the 0.5 s default, so
#: the production configuration sits far inside the bound
BENCH_INTERVAL = 0.05

REFS = PINS["quick"]["refs"]
ROUNDS = 6


def _build() -> System:
    traces = make_mix(MIX, REFS, seed=SEED)
    return System(traces, SystemConfig(scheme=SCHEME), workload=MIX)


def _run_plain():
    """Telemetry disabled: publish_system hits the is-None fast path."""
    system = _build()
    telemetry.publish_system(system)  # no-op: nothing armed
    try:
        return system.run()
    finally:
        telemetry.publish_system(None)


def _run_instrumented(spool_dir: str):
    """Telemetry enabled: sampler thread heartbeating at BENCH_INTERVAL."""
    telemetry.activate_worker(spool_dir, "bench", interval=BENCH_INTERVAL)
    try:
        wt = telemetry.current_worker()
        system = _build()
        wt.cell_start(_FakeCell(), 1)
        telemetry.publish_system(system)
        try:
            result = system.run()
        finally:
            telemetry.publish_system(None)
        wt.cell_end("ok", 0.0)
        return result
    finally:
        telemetry.deactivate_worker()


class _FakeCell:
    cell_id = f"bench-{MIX}-{SCHEME}"
    workload = MIX
    scheme = SCHEME


def measure() -> Dict[str, object]:
    """Paired timing: one off/on pair per round, overhead = best pair ratio.

    Same methodology as bench_timeseries_overhead: alternating order within
    each round, gc.collect() before every timed run, minimum per-pair ratio
    as the least-noisy estimate on jittery shared machines.
    """
    import gc

    tmp = tempfile.mkdtemp(prefix="repro-bench-telemetry-")

    def timed(instrumented: bool) -> float:
        gc.collect()
        if instrumented:
            telemetry.activate_worker(tmp, "bench", interval=BENCH_INTERVAL)
            wt = telemetry.current_worker()
            system = _build()
            wt.cell_start(_FakeCell(), 1)
            telemetry.publish_system(system)
            t0 = perf_counter()
            system.run()
            dt = perf_counter() - t0
            telemetry.publish_system(None)
            wt.cell_end("ok", dt)
            telemetry.deactivate_worker()
            return dt
        system = _build()
        telemetry.publish_system(system)
        t0 = perf_counter()
        system.run()
        dt = perf_counter() - t0
        telemetry.publish_system(None)
        return dt

    for instrumented in (False, True):
        timed(instrumented)  # warmup per mode
    off: List[float] = []
    on: List[float] = []
    ratios: List[float] = []
    for i in range(ROUNDS):
        if i % 2:
            t_on = timed(True)
            t_off = timed(False)
        else:
            t_off = timed(False)
            t_on = timed(True)
        off.append(t_off)
        on.append(t_on)
        ratios.append(t_on / t_off)
    return {
        "refs": REFS,
        "rounds": ROUNDS,
        "interval_s": BENCH_INTERVAL,
        "off_s": min(off),
        "on_s": min(on),
        "ratio": min(ratios),
    }


def report(sample: Dict[str, object]) -> str:
    return (
        f"telemetry heartbeat overhead (best of {sample['rounds']} "
        f"alternating off/on pairs, interval={sample['interval_s']}s):\n"
        f"  off {float(sample['off_s']) * 1e3:8.2f} ms (best)\n"
        f"  on  {float(sample['on_s']) * 1e3:8.2f} ms (best)\n"
        f"  best paired ratio {float(sample['ratio']):.3f}x"
    )


def _record(sample: Dict[str, object]) -> None:
    """Append the paired overhead ratio to BENCH_history.jsonl.

    The "normalized" value for this bench is the ratio itself (already
    machine-independent), so bench-trend flags overhead creep directly.
    """
    record_bench_history(
        "telemetry_overhead",
        wall_seconds=float(sample["on_s"]),
        normalized=float(sample["ratio"]),
        digest=PINS["quick"]["digest"],
        meta={"interval_s": sample["interval_s"], "refs": sample["refs"]},
    )


# ----------------------------------------------------------------------
# Pytest entry points (explicit path only, like the other benches)
# ----------------------------------------------------------------------
def test_disabled_digest_matches_pin():
    """publish_system with nothing armed must not perturb the pinned run."""
    pin = PINS["quick"]
    result = _run_plain()
    assert result_digest(result) == pin["digest"]
    assert result.cycles == pin["cycles"]
    assert result.extra["events_fired"] == pin["events_fired"]


def test_instrumented_digest_matches_pin(tmp_path):
    """A heartbeat-sampled run must be byte-identical to the pinned run,
    and must actually have produced heartbeats."""
    pin = PINS["quick"]
    spool_dir = str(tmp_path)
    result = _run_instrumented(spool_dir)
    assert result_digest(result) == pin["digest"], (
        "telemetry sampling perturbed the result digest"
    )
    assert result.cycles == pin["cycles"]
    assert result.extra["events_fired"] == pin["events_fired"]
    spools = list(Path(spool_dir).glob("telemetry-*.jsonl"))
    assert spools, "no spool file written"
    from repro.obs.telemetry import SpoolTailer

    records = SpoolTailer(spools[0]).poll()
    phases = {r.get("phase") for r in records}
    assert "start" in phases and "end" in phases


def test_heartbeat_overhead_within_bound():
    """10x-rate heartbeats must cost < OVERHEAD_LIMIT wall clock."""
    sample = measure()
    print()
    print(report(sample))
    _record(sample)
    assert float(sample["ratio"]) <= OVERHEAD_LIMIT, (
        f"telemetry overhead {float(sample['ratio']):.3f}x exceeds "
        f"{OVERHEAD_LIMIT:.2f}x bound"
    )


def main(argv: Optional[List[str]] = None) -> int:
    pin = PINS["quick"]
    plain = _run_plain()
    assert result_digest(plain) == pin["digest"], "disabled-path digest drift"
    with tempfile.TemporaryDirectory() as tmp:
        instrumented = _run_instrumented(tmp)
    assert result_digest(instrumented) == pin["digest"], (
        "instrumented digest drift"
    )
    print("digest parity ok (disabled == instrumented == pinned quick digest)")
    sample = measure()
    print(report(sample))
    _record(sample)
    calib = calibration_score()
    print(f"calibration {calib:,.0f} ops/s")
    if float(sample["ratio"]) > OVERHEAD_LIMIT:
        print(
            f"OVERHEAD {float(sample['ratio']):.3f}x exceeds "
            f"{OVERHEAD_LIMIT:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
