"""Overhead and identity check for the epoch timeseries sampler.

The sampler (repro.obs.timeseries) has a two-part contract:

* **Absent = free.**  Sampling is pull-based: the sampler reads counters on
  its own weak epoch tick, so an unsampled run contains no emit sites at
  all.  There is nothing to guard and nothing to pay for.
* **Present = invisible to results.**  The epoch tick is a *weak* engine
  event: it never extends the run (the loop exits when the last strong
  event fires) and compensates the ``events_fired`` count, so a sampled run
  must reproduce the unsampled result digest bit-for-bit - including
  ``events_fired`` and the hot-path pins in ``bench_hotpath.PINS``.

This bench asserts both halves on the pinned quick configuration (CAMPS,
MX1, seed 1, 800 refs/core): digest parity sampled vs unsampled vs the
committed pin, and wall-clock overhead of sampling at the default epoch.
The overhead measurement interleaves off/on rounds (paired, min-of-rounds)
so slow machine drift hits both modes equally.

Run standalone (``python benchmarks/bench_timeseries_overhead.py``) or
under pytest with an explicit path.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import MIX, PINS, SCHEME, SEED, result_digest  # noqa: E402

from repro.obs.timeseries import DEFAULT_EPOCH  # noqa: E402
from repro.system import System, SystemConfig  # noqa: E402
from repro.workloads.mixes import mix as make_mix  # noqa: E402

#: allowed sampled/unsampled wall-time ratio at the default epoch.  The true
#: cost is one weak event plus ~40 counter reads per 1024 cycles; the bound
#: is the issue's acceptance threshold.
OVERHEAD_LIMIT = 1.03

REFS = PINS["quick"]["refs"]
ROUNDS = 6


def _build(epoch: Optional[int]) -> System:
    traces = make_mix(MIX, REFS, seed=SEED)
    cfg = SystemConfig(scheme=SCHEME, timeseries_epoch=epoch)
    return System(traces, cfg, workload=MIX)


def _run(epoch: Optional[int]):
    return _build(epoch).run()


def measure() -> Dict[str, object]:
    """Paired timing: one off/on pair per round, overhead = best pair ratio.

    Both runs of a pair execute back-to-back and their order alternates
    every round, so machine drift and ordering effects hit the two modes
    symmetrically; the *minimum per-pair ratio* is then the least-noisy
    overhead estimate (shared CI boxes jitter by more than the ~1 % effect
    being measured, so unpaired mins routinely lie in either direction).
    One untimed warmup per mode primes allocator and caches; garbage is
    collected before every timed run so a prior round's churn cannot bill a
    GC pause to the wrong mode.
    """
    import gc

    def timed(epoch: Optional[int]) -> float:
        system = _build(epoch)
        gc.collect()
        t0 = perf_counter()
        system.run()
        return perf_counter() - t0

    for epoch in (None, DEFAULT_EPOCH):
        _build(epoch).run()  # warmup
    off: List[float] = []
    on: List[float] = []
    ratios: List[float] = []
    for i in range(ROUNDS):
        if i % 2:
            t_on = timed(DEFAULT_EPOCH)
            t_off = timed(None)
        else:
            t_off = timed(None)
            t_on = timed(DEFAULT_EPOCH)
        off.append(t_off)
        on.append(t_on)
        ratios.append(t_on / t_off)
    return {
        "refs": REFS,
        "rounds": ROUNDS,
        "epoch": DEFAULT_EPOCH,
        "off_s": min(off),
        "on_s": min(on),
        "ratio": min(ratios),
    }


def report(sample: Dict[str, object]) -> str:
    return (
        f"timeseries sampling overhead (best of {sample['rounds']} "
        f"alternating off/on pairs, epoch={sample['epoch']}):\n"
        f"  off {float(sample['off_s']) * 1e3:8.2f} ms (best)\n"
        f"  on  {float(sample['on_s']) * 1e3:8.2f} ms (best)\n"
        f"  best paired ratio {float(sample['ratio']):.3f}x"
    )


def test_sampled_digest_matches_unsampled_and_pin():
    """Sampling at the default epoch must not perturb results at all.

    Both the unsampled and the sampled run must reproduce the committed
    quick pin - same digest, same cycle count, same events_fired - proving
    the weak tick neither extends the run nor leaks into the event count.
    """
    pin = PINS["quick"]
    plain = _run(None)
    sampled = _run(DEFAULT_EPOCH)
    assert result_digest(plain) == pin["digest"]
    assert result_digest(sampled) == pin["digest"], (
        "sampling perturbed the result digest"
    )
    assert sampled.cycles == pin["cycles"]
    assert sampled.extra["events_fired"] == pin["events_fired"]
    # and the sampler actually ran: series were populated
    ts = sampled.extra["timeseries"]
    assert ts["samples_taken"] > 0
    assert ts["series"]["buffer.hit_rate"]["values"]


def test_sampling_overhead_within_bound():
    """Default-epoch sampling must cost less than OVERHEAD_LIMIT."""
    sample = measure()
    print()
    print(report(sample))
    assert float(sample["ratio"]) <= OVERHEAD_LIMIT, (
        f"sampling overhead {float(sample['ratio']):.3f}x exceeds "
        f"{OVERHEAD_LIMIT:.2f}x bound"
    )


if __name__ == "__main__":
    test_sampled_digest_matches_unsampled_and_pin()
    print("digest parity ok (sampled == unsampled == pinned quick digest)")
    print(report(measure()))
