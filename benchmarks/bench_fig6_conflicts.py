"""Figure 6: row-buffer conflict rate per scheme (BASE excluded: it
precharges after every access and has zero conflicts by construction).

Paper headline: CAMPS reduces row-buffer conflicts by 16.3% vs BASE-HIT and
13.6% vs MMD on average.
"""

from conftest import emit

from repro.experiments.figures import figure6


def test_fig6_row_buffer_conflicts(benchmark, paper_matrix, results_dir):
    data = benchmark.pedantic(
        lambda: figure6(paper_matrix), rounds=1, iterations=1
    )
    emit(data, results_dir, "fig6_conflicts")

    avg = data.summary["AVG"]
    # conflict ordering: CAMPS family below MMD below BASE-HIT
    assert avg["camps"] < avg["mmd"]
    assert avg["camps"] < avg["base-hit"]
    assert avg["camps-mod"] < avg["base-hit"]
    # relative reduction vs MMD in the paper's neighbourhood (13.6%)
    reduction_vs_mmd = 1 - avg["camps"] / avg["mmd"]
    assert 0.02 < reduction_vs_mmd < 0.5
