"""Ablation: physical address mapping order.

The paper fixes RoRaBaVaCo (row : rank : bank : vault : column), which keeps
all 16 lines of a DRAM row in one vault - the property whole-row prefetching
depends on - while interleaving consecutive blocks across vaults for
parallelism.  This bench compares alternative orders under CAMPS-MOD.
"""

import pytest

from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

ORDERS = ["RoBaVaCo", "RoVaBaCo", "RoVaCoBa"]


@pytest.fixture(scope="module")
def refs(experiment_config):
    return min(experiment_config.refs_per_core, 3000)


def test_ablation_address_mapping(benchmark, refs, experiment_config):
    # The program's byte addresses are fixed (generated under the paper
    # mapping, i.e. "what the software does"); each variant changes only how
    # the cube decodes those same addresses into (vault, bank, row, column).
    traces = mix("HM1", refs, seed=experiment_config.seed)

    def sweep():
        out = {}
        for order in ORDERS:
            cfg = HMCConfig(address_mapping=order)
            out[order] = {
                s: System(
                    traces, SystemConfig(hmc=cfg, scheme=s), workload="HM1"
                ).run()
                for s in ("base", "camps-mod")
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: address mapping order (HM1, CAMPS-MOD)")
    print(f"{'order':<10} {'speedup':>9} {'conflicts':>10} {'accuracy':>9}")
    for order, r in results.items():
        spd = r["camps-mod"].speedup_vs(r["base"])
        print(
            f"{order:<10} {spd:>9.3f} {r['camps-mod'].conflict_rate:>10.3f} "
            f"{r['camps-mod'].row_accuracy:>9.2f}"
        )

    # CAMPS-MOD must beat BASE under every row-local mapping.
    for order, r in results.items():
        assert r["camps-mod"].speedup_vs(r["base"]) > 1.0, order
