"""Ablation: buffer replacement policy (the CAMPS vs CAMPS-MOD design choice).

Compares plain LRU (CAMPS), the paper's literal utilization+recency sum
(``recency_weight=1``), and this repo's calibrated default
(``recency_weight=2``; see the policy docstring for why).
"""

import pytest

import repro.core.buffer as buffer_mod
from repro.core.buffer import UtilizationRecencyPolicy
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM1", refs, seed=experiment_config.seed)


def run_policy(traces, scheme, weight=None):
    if weight is None:
        return System(traces, SystemConfig(scheme=scheme), workload="HM1").run()
    original = UtilizationRecencyPolicy.__init__

    def patched(self, recency_weight=weight):
        original(self, recency_weight=recency_weight)

    UtilizationRecencyPolicy.__init__ = patched
    try:
        return System(traces, SystemConfig(scheme="camps-mod"), workload="HM1").run()
    finally:
        UtilizationRecencyPolicy.__init__ = original


def test_ablation_replacement_policy(benchmark, traces):
    base = System(traces, SystemConfig(scheme="base"), workload="HM1").run()

    def sweep():
        return {
            "lru (camps)": run_policy(traces, "camps"),
            "util+rec w=1 (paper literal)": run_policy(traces, "camps-mod", weight=1),
            "util+rec w=2 (default)": run_policy(traces, "camps-mod", weight=2),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: prefetch buffer replacement policy (HM1)")
    print(f"{'policy':<30} {'speedup':>9} {'accuracy':>9}")
    for name, r in results.items():
        print(f"{name:<30} {r.speedup_vs(base):>9.3f} {r.row_accuracy:>9.2f}")

    # The calibrated policy must not lose to LRU.
    s_lru = results["lru (camps)"].speedup_vs(base)
    s_w2 = results["util+rec w=2 (default)"].speedup_vs(base)
    assert s_w2 >= s_lru * 0.98
