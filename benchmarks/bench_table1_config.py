"""Table I: the experimental configuration, printed from the live defaults
so any drift between the paper's parameters and the code is visible."""

from repro.experiments.tables import table1_text
from repro.hmc.config import HMCConfig


def test_table1_configuration(benchmark):
    text = benchmark.pedantic(table1_text, rounds=1, iterations=1)
    print()
    print(text)

    cfg = HMCConfig()
    assert cfg.vaults == 32
    assert cfg.banks_per_vault == 16
    assert cfg.pf_buffer_bytes == 16 * 1024
    assert cfg.pf_hit_latency == 22
    assert (cfg.timings.trcd, cfg.timings.trp, cfg.timings.tcl) == (11, 11, 11)
    assert cfg.links == 4 and cfg.link_lanes == 16
