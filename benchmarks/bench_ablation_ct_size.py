"""Ablation: Conflict Table capacity (paper default: 32 entries per vault).

Too small a CT forgets conflict-prone rows before their second activation;
larger CTs catch longer conflict reuse distances at hardware cost (20 bits
per entry, Section 3.3).
"""

import pytest

from repro.core.camps import CampsParams
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

CT_SIZES = [4, 16, 32, 128]


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM3", refs, seed=experiment_config.seed)  # conflict-heavy mix


def test_ablation_ct_size(benchmark, traces):
    base = System(traces, SystemConfig(scheme="base"), workload="HM3").run()

    def sweep():
        out = {}
        for n in CT_SIZES:
            out[n] = System(
                traces,
                SystemConfig(scheme="camps-mod"),
                workload="HM3",
                scheme_kwargs={"params": CampsParams(conflict_table_entries=n)},
            ).run()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: Conflict Table entries (HM3, speedup vs BASE)")
    print(f"{'CT size':>8} {'speedup':>9} {'conflict':>9} {'prefetches':>11}")
    for n, r in results.items():
        print(
            f"{n:>8} {r.speedup_vs(base):>9.3f} {r.conflict_rate:>9.3f} "
            f"{r.prefetches_issued:>11}"
        )

    # A reasonable CT must beat a nearly-absent one on conflict-heavy traffic.
    assert results[32].conflict_rate <= results[4].conflict_rate + 0.02
    # The paper's 32 entries capture most of the benefit of 128.
    s32 = results[32].speedup_vs(base)
    s128 = results[128].speedup_vs(base)
    assert s32 >= s128 * 0.95
