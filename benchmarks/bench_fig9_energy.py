"""Figure 9: HMC energy normalized to BASE.

Paper headline: MMD and CAMPS-MOD consume 6.0% and 8.5% less energy than
BASE respectively, mainly through fewer activate/precharge operations.
"""

from conftest import emit

from repro.experiments.figures import figure9


def test_fig9_energy(benchmark, paper_matrix, results_dir):
    data = benchmark.pedantic(
        lambda: figure9(paper_matrix), rounds=1, iterations=1
    )
    emit(data, results_dir, "fig9_energy")

    avg = data.summary["AVG"]
    assert avg["base"] == 1.0
    assert avg["camps-mod"] < 1.0  # saves energy vs BASE
    assert avg["camps-mod"] < avg["mmd"]  # and more than MMD
    assert avg["camps-mod"] > 0.6  # not implausibly large savings
