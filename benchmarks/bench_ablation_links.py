"""Ablation: serial link count (Table I: 4 full-duplex links).

Memory-side prefetching's premise is that row transfers use internal TSVs
and never the external links; this bench confirms the external links are not
the bottleneck at Table I provisioning (so the schemes differentiate on
internal behaviour), and shows what happens when links are scarce.
"""

import pytest

from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix

LINKS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def traces(experiment_config):
    refs = min(experiment_config.refs_per_core, 3000)
    return mix("HM1", refs, seed=experiment_config.seed)


def test_ablation_link_count(benchmark, traces):
    def sweep():
        out = {}
        for n in LINKS:
            cfg = HMCConfig(links=n)
            out[n] = System(
                traces, SystemConfig(hmc=cfg, scheme="camps-mod"), workload="HM1"
            ).run()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: serial link count (HM1, CAMPS-MOD)")
    print(f"{'links':>6} {'cycles':>10} {'latency':>9} {'link util':>10}")
    for n, r in results.items():
        print(
            f"{n:>6} {r.cycles:>10} {r.mean_read_latency:>9.0f} "
            f"{r.link_utilization:>10.2%}"
        )

    # fewer links -> higher per-link utilization and no faster execution
    assert results[1].link_utilization > results[4].link_utilization
    assert results[1].cycles >= results[4].cycles
    # Table I's 4 links leave headroom: doubling them buys <5%
    assert results[8].cycles >= results[4].cycles * 0.95
