"""Service saturation: load shedding, admission latency, and digest parity.

Drives a live ``repro.serve`` service (real simulation workers) with an
offered load of ~2x its drain capacity from concurrent client threads, then
asserts the degradation contract:

* **Shedding, not queueing** — once the quick lane's budget fills, further
  submissions get 429 + ``retry_after`` (``shed > 0``); nothing queues
  unboundedly and nothing errors.
* **Bounded admission latency** — the p99 submit round trip stays under
  ``P99_LIMIT_S`` even while saturated (admission is O(1); shedding keeps
  the event loop responsive).
* **Digest parity under load** — every cell the service executed merges to
  the same bytes a serial ``run_campaign`` of the same specs produces, and
  a fixed post-saturation probe grid pins a stable digest into
  ``BENCH_history.jsonl`` for ``repro bench-trend --check``.

Results land in ``BENCH_serve.json`` (machine-calibrated throughput) plus
``BENCH_history.jsonl``.  CI runs ``--quick --check``: a smaller burst,
same assertions, and a >30% normalized cells/sec regression fails.

Run standalone (``python benchmarks/bench_serve_saturation.py [--quick]
[--check]``) or under pytest with an explicit path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import calibration_score  # noqa: E402
from conftest import record_bench_history  # noqa: E402

from repro.campaign.executor import (  # noqa: E402
    CampaignOptions,
    matrix_digest,
    run_campaign,
)
from repro.campaign.manifest import Manifest  # noqa: E402
from repro.metrics.collectors import ResultMatrix  # noqa: E402
from repro.serve import (  # noqa: E402
    LoadGenerator,
    ServeClient,
    ServeConfig,
    ServeService,
    cell_from_spec,
    nearest_rank,
)
from repro.system import SimulationResult  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

REFS = 600
SEED_BASE = 1000
JOBS = 2  # pool width: small on purpose, so load >> capacity
QUICK_CAP = 8  # queued-cell budget: the thing the burst overflows
P99_LIMIT_S = 2.0  # admission latency bound while saturated
REGRESSION_LIMIT = 0.30

#: fixed post-saturation probe: its digest is machine-independent and goes
#: into the history so bench-trend sees drift in the serve execution path
PROBE_SPECS = [
    {"workload": w, "scheme": s, "refs": REFS, "seed": 1}
    for w in ("HM1", "LM1")
    for s in ("base", "camps")
]


# ----------------------------------------------------------------------
# In-process service harness
# ----------------------------------------------------------------------
class ServiceThread:
    """A live ServeService on a background event-loop thread."""

    def __init__(self, manifest: Path) -> None:
        self.cfg = ServeConfig(
            manifest=str(manifest),
            jobs=JOBS,
            quick_cap=QUICK_CAP,
            bulk_cap=QUICK_CAP * 4,
            use_cache=False,
            telemetry=False,
            tick_interval=0.1,
        )
        self.service: Optional[ServeService] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.service = ServeService(self.cfg)
        await self.service.start()
        self._ready.set()
        await self.service.node.stopped.wait()
        server = self.service._server
        if server is not None:
            server.close()
            await server.wait_closed()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service failed to start")
        return self

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    def stop(self) -> None:
        ServeClient("127.0.0.1", self.port).drain()
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("service failed to drain")


def _merged_digest(manifest_path, cell_ids) -> str:
    records = Manifest(manifest_path).records()
    matrix = ResultMatrix()
    for cid in sorted(cell_ids):
        matrix.add(SimulationResult(extra={}, **records[cid].summary))
    return matrix_digest(matrix)


def _hist_quantile(snap: Optional[Dict[str, object]], q: float) -> Optional[float]:
    """Reconstruct a quantile from a LogHistogram snapshot (cumulative buckets)."""
    if not snap:
        return None
    count = int(snap.get("count", 0) or 0)
    if count <= 0:
        return None
    rank = nearest_rank(q, count)
    observed_max = float(snap.get("max", 0.0) or 0.0)
    for bucket in snap.get("buckets", []):
        if int(bucket["count"]) > rank:
            le = float(bucket["le"])
            return min(le, observed_max) if observed_max else le
    return observed_max


def _client_queue_p99(infos: List[Dict[str, object]]) -> Optional[float]:
    """p99 of per-cell queue-stage dwell as reported in job info spans."""
    ages = [
        float(stages["queue"])
        for info in infos
        for entry in info.get("cells", {}).values()
        if isinstance(entry, dict)
        for stages in [entry.get("stages") or {}]
        if stages.get("queue") is not None
    ]
    if not ages:
        return None
    ages.sort()
    return ages[nearest_rank(0.99, len(ages))]


def _serial_digest(specs, tmp_path: Path) -> str:
    result = run_campaign(
        [cell_from_spec(s) for s in specs],
        CampaignOptions(jobs=1),
        cache=None,
        manifest=Manifest(tmp_path),
    )
    result.raise_on_failure()
    return matrix_digest(result.matrix())


# ----------------------------------------------------------------------
# The measurement
# ----------------------------------------------------------------------
def measure(threads: int, jobs_per_thread: int, workdir: Path) -> Dict[str, object]:
    workdir.mkdir(parents=True, exist_ok=True)
    manifest = workdir / "serve_saturation.jsonl"
    specs = [
        {"workload": "HM1", "scheme": "base", "refs": REFS,
         "seed": SEED_BASE + i}
        for i in range(threads * jobs_per_thread)
    ]
    svc = ServiceThread(manifest).start()
    try:
        gen = LoadGenerator(
            client_fn=lambda: ServeClient("127.0.0.1", svc.port),
            spec_fn=lambda i: {"cells": [specs[i]], "lane": "quick"},
            threads=threads,
            jobs_per_thread=jobs_per_thread,
        )
        t0 = perf_counter()
        stats = gen.run()
        submit_wall = perf_counter() - t0
        client = ServeClient("127.0.0.1", svc.port)
        infos = [
            client.wait(job_id, timeout=600.0, poll=0.1)
            for job_id in gen.accepted_ids
        ]
        drain_wall = perf_counter() - t0
        # every accepted job must have finished clean
        bad = [i for i in infos if i["status"] != "done"]
        executed_ids = sorted({cid for i in infos for cid in i["cells"]})
        # post-saturation probe: fixed grid, stable digest
        probe = client.submit(cells=list(PROBE_SPECS))
        probe_info = client.wait(probe["job"], timeout=600.0, poll=0.1)
        probe_ids = sorted(probe_info["cells"])
        # server-side view, fetched while the service is still alive
        admission = client.snapshot()["serve"]["admission"]
    finally:
        svc.stop()

    queue_age_p99 = _hist_quantile(
        (admission.get("queue_age") or {}).get("quick"), 0.99
    )
    client_queue_p99 = _client_queue_p99(infos + [probe_info])

    spec_by_id = {cell_from_spec(s).cell_id: s for s in specs}
    serve_digest = _merged_digest(manifest, executed_ids)
    serial = _serial_digest(
        [spec_by_id[cid] for cid in executed_ids], workdir / "serial.jsonl"
    )
    probe_digest = _merged_digest(manifest, probe_ids)
    probe_serial = _serial_digest(PROBE_SPECS, workdir / "probe.jsonl")
    accepted_cells = len(executed_ids)
    return {
        "threads": threads,
        "jobs_per_thread": jobs_per_thread,
        "offered_jobs": stats.submitted_jobs,
        "accepted_jobs": stats.accepted_jobs,
        "shed": stats.shed,
        "errors": stats.errors,
        "failed_jobs": len(bad),
        "overload_factor": round(
            stats.submitted_jobs / max(1, stats.accepted_jobs), 2
        ),
        "p50_submit_s": stats.latency_quantile(0.50),
        "p99_submit_s": stats.latency_quantile(0.99),
        "mean_retry_after_s": (
            sum(stats.retry_afters) / len(stats.retry_afters)
            if stats.retry_afters
            else None
        ),
        "queue_age_p99_s": (
            round(queue_age_p99, 4) if queue_age_p99 is not None else None
        ),
        "client_queue_p99_s": (
            round(client_queue_p99, 4) if client_queue_p99 is not None else None
        ),
        "submit_wall_s": round(submit_wall, 4),
        "drain_wall_s": round(drain_wall, 4),
        "cells_per_sec": round(accepted_cells / drain_wall, 4),
        "digest_parity": serve_digest == serial,
        "probe_parity": probe_digest == probe_serial,
        "probe_digest": probe_digest,
    }


def _record_history(quick: bool, calib: float, sample: Dict[str, object],
                    mode: Optional[str] = None) -> None:
    """Append to BENCH_history.jsonl — full bursts only.

    Quick bursts drain in ~1.5 s, where scheduler-tick granularity alone
    moves the wall past the trend gate's 25% tolerance; only the full burst
    is a stable enough series to gate on.
    """
    if quick:
        return
    meta = {
        "accepted_jobs": sample["accepted_jobs"],
        "shed": sample["shed"],
        "p99_submit_s": sample["p99_submit_s"],
        "queue_age_p99_s": sample["queue_age_p99_s"],
        "cells_per_sec": sample["cells_per_sec"],
    }
    if mode:
        meta["mode"] = mode
    record_bench_history(
        "serve_saturation",
        wall_seconds=float(sample["drain_wall_s"]),
        calib_ops_per_s=calib,
        digest=str(sample["probe_digest"]),
        meta=meta,
    )


def _assert_contract(sample: Dict[str, object]) -> List[str]:
    problems = []
    if not sample["shed"]:
        problems.append("overloaded service shed nothing (no 429s)")
    if sample["errors"]:
        problems.append(f"{sample['errors']} submit errors (only 429s allowed)")
    if sample["failed_jobs"]:
        problems.append(f"{sample['failed_jobs']} accepted jobs did not finish ok")
    p99 = sample["p99_submit_s"]
    if p99 is not None and p99 > P99_LIMIT_S:
        problems.append(f"p99 admission latency {p99:.3f}s > {P99_LIMIT_S}s")
    if not sample["digest_parity"]:
        problems.append("merged manifest != serial digest for executed cells")
    if not sample["probe_parity"]:
        problems.append("probe grid digest != serial digest")
    server_p99 = sample.get("queue_age_p99_s")
    client_p99 = sample.get("client_queue_p99_s")
    if server_p99 is None:
        problems.append("server reported no queue-age histogram for the quick lane")
    elif client_p99 is not None:
        # the histogram p99 is a bucket upper bound clamped to the observed
        # max, so it sits at or above the exact sample quantile; generous
        # both-direction tolerance absorbs bucket width and lane skew
        low = float(client_p99) / 4.0 - 0.25
        high = float(client_p99) * 4.0 + 0.25
        if not (low <= float(server_p99) <= high):
            problems.append(
                f"server queue-age p99 {server_p99}s disagrees with "
                f"client-observed {client_p99}s (tolerance [{low:.3f}, {high:.3f}])"
            )
    return problems


def _fmt(value, spec: str) -> str:
    return format(value, spec) if value is not None else "n/a"


def _print_sample(sample: Dict[str, object]) -> None:
    print(
        f"offered {sample['offered_jobs']} jobs from {sample['threads']} "
        f"threads: accepted {sample['accepted_jobs']}, shed {sample['shed']} "
        f"(overload {sample['overload_factor']}x)"
    )
    print(
        f"submit p50 {_fmt(sample['p50_submit_s'], '.4f')}s  "
        f"p99 {_fmt(sample['p99_submit_s'], '.4f')}s  "
        f"mean retry_after {_fmt(sample['mean_retry_after_s'], '.2f')}s"
    )
    print(
        f"queue-age p99 {_fmt(sample['queue_age_p99_s'], '.4f')}s server-side "
        f"vs {_fmt(sample['client_queue_p99_s'], '.4f')}s client-observed"
    )
    print(
        f"drained in {sample['drain_wall_s']:.2f}s "
        f"({sample['cells_per_sec']:.2f} cells/s, {JOBS} workers); "
        f"digest parity {'ok' if sample['digest_parity'] else 'MISMATCH'}, "
        f"probe {'ok' if sample['probe_parity'] else 'MISMATCH'}"
    )


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------
def generate(quick: bool, workdir: Path) -> int:
    calib = calibration_score()
    threads, per_thread = (2, 6) if quick else (4, 12)
    sample = measure(threads, per_thread, workdir)
    _print_sample(sample)
    problems = _assert_contract(sample)
    for p in problems:
        print(f"CONTRACT VIOLATION: {p}", file=sys.stderr)
    if problems:
        return 1
    payload = {
        "bench": "serve_saturation",
        "config": {
            "refs": REFS,
            "jobs": JOBS,
            "quick_cap": QUICK_CAP,
            "p99_limit_s": P99_LIMIT_S,
            "probe_specs": PROBE_SPECS,
        },
        "machine": {"calib_ops_per_s": calib},
        "sample": sample,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    _record_history(quick, calib, sample)
    return 0


def check(quick: bool, workdir: Path) -> int:
    if not RESULT_PATH.exists():
        print(
            f"missing {RESULT_PATH}; run bench_serve_saturation.py first",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(RESULT_PATH.read_text())
    calib = calibration_score()
    threads, per_thread = (2, 6) if quick else (4, 12)
    sample = measure(threads, per_thread, workdir)
    _print_sample(sample)
    problems = _assert_contract(sample)
    if str(sample["probe_digest"]) != str(
        committed["sample"]["probe_digest"]
    ):
        problems.append(
            "probe digest drifted from committed BENCH_serve.json: "
            f"{sample['probe_digest']} != {committed['sample']['probe_digest']}"
        )
    _record_history(quick, calib, sample, mode="check")
    ref_norm = float(committed["sample"]["cells_per_sec"]) / float(
        committed["machine"]["calib_ops_per_s"]
    )
    cur_norm = float(sample["cells_per_sec"]) / calib
    ratio = cur_norm / ref_norm if ref_norm else 1.0
    print(
        f"normalized cells/sec {cur_norm:.3e} vs committed {ref_norm:.3e} "
        f"({ratio:.2f}x)"
    )
    if ratio < 1.0 - REGRESSION_LIMIT:
        problems.append(
            f"PERF REGRESSION: serve throughput at {ratio:.2f}x of the "
            f"committed sample (limit {1.0 - REGRESSION_LIMIT:.2f}x)"
        )
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    return 1 if problems else 0


# ----------------------------------------------------------------------
# Pytest entry point (explicit path only, like the other benches)
# ----------------------------------------------------------------------
def test_serve_saturation_contract(tmp_path):
    """Quick burst: shedding fires, admission stays bounded, digests match."""
    sample = measure(2, 6, tmp_path)
    _print_sample(sample)
    assert _assert_contract(sample) == []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller burst (2 threads x 6 jobs; CI uses this)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed BENCH_serve.json instead of "
        "rewriting it; fail on contract violation, probe-digest drift, or "
        ">30%% normalized throughput regression",
    )
    parser.add_argument("--workdir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    import tempfile

    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="bench_serve_")
    )
    if args.check:
        return check(quick=args.quick, workdir=workdir)
    return generate(quick=args.quick, workdir=workdir)


if __name__ == "__main__":
    sys.exit(main())
