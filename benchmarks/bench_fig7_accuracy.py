"""Figure 7: prefetching accuracy per scheme.

Paper headline: CAMPS-MOD reaches 70.5% average accuracy, beating BASE by
33.3 points, BASE-HIT by 28.4 and MMD by 4.1; CAMPS alone sits ~1.5 points
below MMD, which is what motivates the utilization+recency buffer policy.

Known deviation (see EXPERIMENTS.md): with synthetic traffic, BASE-HIT's few
queue-confirmed prefetches are almost always revisited, so its accuracy is
higher here than the paper's 42%.
"""

from conftest import emit

from repro.experiments.figures import figure7


def test_fig7_prefetch_accuracy(benchmark, paper_matrix, results_dir):
    data = benchmark.pedantic(
        lambda: figure7(paper_matrix), rounds=1, iterations=1
    )
    emit(data, results_dir, "fig7_accuracy")
    # the line-level variant (fairer to the line-granular MMD scheme)
    line = figure7(paper_matrix, line_level=True)
    emit(line, results_dir, "fig7_accuracy_lines")

    avg = data.summary["AVG"]
    # Indiscriminate (BASE) and line-degree (MMD, judged at row granularity)
    # schemes sit at the bottom; the CAMPS family is far more accurate.
    bottom_two = sorted(avg, key=avg.get)[:2]
    assert set(bottom_two) <= {"base", "mmd"}
    assert avg["camps"] > avg["base"] + 0.2
    assert avg["camps-mod"] > avg["base"] + 0.2
    # CAMPS-MOD's replacement policy does not cost accuracy vs plain CAMPS.
    assert avg["camps-mod"] >= avg["camps"] - 0.05
