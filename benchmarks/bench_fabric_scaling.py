"""Multi-cube fabric scaling pin: digests and throughput per topology.

The fabric subsystem (``repro.fabric``) must satisfy two contracts:

* **Degenerate parity** - a one-cube fabric is the single-cube ``System``
  in different clothes: same result fields, same event count, same energy
  to the last bit.  This bench asserts the 1-cube FabricSystem reproduces
  ``bench_hotpath``'s pinned *pre-overhaul* digest exactly - the fabric
  path is pinned to the same reference the hot-path overhaul is.
* **Multi-cube determinism** - chain:2 and chain:4 results (including the
  hop-flit count and hop histogram, which exercise the routing and
  inter-cube serialization paths) are pinned; any drift in routing,
  per-hop costs or stream placement fails loudly.

Throughput per topology is measured (min over rounds, fresh FabricSystem
per round), written to ``BENCH_fabric.json``, and appended to
``BENCH_history.jsonl`` so ``repro bench-trend --check`` gates scaling
regressions the same way it gates the single-cube hot path.

CI runs ``--quick --check``: digest parity (all three pins) plus a
calibration-normalized cycles/sec comparison against the committed
``BENCH_fabric.json``, failing on a >25% regression (the fabric path is
shorter-running than the hot-path bench, so it gets a little more noise
headroom).

Run standalone (``python benchmarks/bench_fabric_scaling.py [--quick]
[--check]``) or under pytest with an explicit path.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import PINS as HOTPATH_PINS  # noqa: E402
from bench_hotpath import calibration_score  # noqa: E402
from conftest import record_bench_history  # noqa: E402

from repro.fabric import (  # noqa: E402
    FabricConfig,
    FabricSystem,
    FabricSystemConfig,
)
from repro.workloads.multistream import (  # noqa: E402
    MultiStreamSpec,
    build_stream_traces,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_fabric.json"

SCHEME = "camps"
MIX = "MX1"
SEED = 1

#: pinned result digests per (topology, refs/core).  The chain:1 entry IS
#: bench_hotpath's quick pin - the pre-overhaul single-cube reference - so
#: the degenerate fabric is pinned to the same bytes the System hot path is.
#: chain:2/chain:4 pin the routed multi-cube path (their digests fold in
#: hop_flits and the hop histogram).
PINS = {
    "chain:1": {
        "refs": 800,
        "digest": HOTPATH_PINS["quick"]["digest"],
        "hotpath_parity": True,
    },
    "chain:2": {
        "refs": 500,
        "digest": "7d00ad398f0ed2a72190a5fa2ec615047cc65dad2f85dd841d7f7f9faa10f1ab",
    },
    "chain:4": {
        "refs": 500,
        "digest": "168270c880a2dc7309aa3f416f06fb31e844bc21c7251d3e44f2f47abc073004",
    },
}

#: allowed calibration-normalized cycles/sec regression in --check mode
REGRESSION_LIMIT = 0.25

ROUNDS = 3


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def _build(topology: str, refs: int) -> FabricSystem:
    fabric = FabricConfig.from_spec(topology)
    spec = MultiStreamSpec.per_cube(MIX, fabric.cubes, refs, seed=SEED)
    return FabricSystem(
        build_stream_traces(spec, fabric),
        FabricSystemConfig(fabric=fabric, scheme=SCHEME),
        workload=MIX,
    )


def result_digest(result, cubes: int) -> str:
    """SHA-256 over every cached result field plus events_fired; multi-cube
    results also fold in the hop accounting (routing-path coverage).

    For ``cubes == 1`` the payload is byte-identical to
    ``bench_hotpath.result_digest`` - that is what makes the chain:1 pin
    interchangeable with the hot-path quick pin.
    """
    payload = {
        "cycles": result.cycles,
        "core_ipc": result.core_ipc,
        "core_instructions": result.core_instructions,
        "row_conflicts": result.row_conflicts,
        "demand_accesses": result.demand_accesses,
        "buffer_hits": result.buffer_hits,
        "prefetches_issued": result.prefetches_issued,
        "row_accuracy": result.row_accuracy,
        "line_accuracy": result.line_accuracy,
        "mean_memory_latency": result.mean_memory_latency,
        "mean_read_latency": result.mean_read_latency,
        "energy_pj": result.energy_pj,
        "link_utilization": result.link_utilization,
        "events_fired": result.extra["events_fired"],
    }
    if cubes > 1:
        fx = result.extra["fabric"]
        payload["hop_flits"] = fx["hop_flits"]
        payload["hop_histogram"] = {
            str(k): v for k, v in sorted(fx["hop_histogram"].items())
        }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def measure(topology: str, rounds: int = ROUNDS) -> Dict[str, object]:
    """Time ``FabricSystem.run()`` (min over rounds, fresh fabric per round)
    and verify the digest against this topology's pin."""
    pin = PINS[topology]
    refs = int(pin["refs"])
    cubes = FabricConfig.from_spec(topology).cubes
    walls: List[float] = []
    result = None
    for _ in range(rounds):
        fsys = _build(topology, refs)
        t0 = perf_counter()
        result = fsys.run()
        walls.append(perf_counter() - t0)
    digest = result_digest(result, cubes)
    wall = min(walls)
    fx = result.extra["fabric"]
    return {
        "topology": topology,
        "refs": refs,
        "cubes": cubes,
        "rounds": rounds,
        "wall_s": wall,
        "cycles": result.cycles,
        "events_fired": result.extra["events_fired"],
        "cycles_per_sec": result.cycles / wall,
        "hop_flits": fx["hop_flits"],
        "mean_hops": fx["mean_hops"],
        "digest": digest,
        "digest_ok": digest == pin["digest"],
    }


def _history_name(topology: str) -> str:
    return "fabric_" + topology.replace(":", "")


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------
def generate(quick_only: bool = False) -> int:
    """Measure every pinned topology and (re)write BENCH_fabric.json."""
    calib = calibration_score()
    topologies = ["chain:1", "chain:2"] if quick_only else list(PINS)
    samples = {t: measure(t) for t in topologies}
    ok = True
    for topology, sample in samples.items():
        mark = "ok" if sample["digest_ok"] else "MISMATCH"
        ok = ok and bool(sample["digest_ok"])
        print(
            f"{topology:<8} refs={sample['refs']:<4} cubes={sample['cubes']} "
            f"wall={sample['wall_s']:.4f}s "
            f"cycles/s={sample['cycles_per_sec']:,.0f} "
            f"hops={sample['mean_hops']:.2f} digest {mark}"
        )
    print(f"calibration {calib:,.0f} ops/s")
    if not ok:
        print("DIGEST MISMATCH - not writing BENCH_fabric.json", file=sys.stderr)
        return 1
    payload = {
        "bench": "fabric_scaling",
        "config": {"mix": MIX, "scheme": SCHEME, "seed": SEED},
        "pinned": PINS,
        "machine": {"calib_ops_per_s": calib},
        "samples": samples,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    for topology, sample in samples.items():
        record_bench_history(
            _history_name(topology),
            wall_seconds=float(sample["wall_s"]),
            calib_ops_per_s=calib,
            digest=str(sample["digest"]),
            meta={"refs": sample["refs"], "cubes": sample["cubes"]},
        )
    return 0


def check(quick: bool = True) -> int:
    """CI gate: digest parity on every pin + normalized cycles/sec within
    REGRESSION_LIMIT of the committed BENCH_fabric.json."""
    if not RESULT_PATH.exists():
        print(
            f"missing {RESULT_PATH}; run bench_fabric_scaling.py first",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(RESULT_PATH.read_text())
    calib = calibration_score()
    topologies = ["chain:1", "chain:2"] if quick else list(PINS)
    failed = False
    for topology in topologies:
        sample = measure(topology, rounds=2)
        if not sample["digest_ok"]:
            print(
                f"{topology}: digest MISMATCH {str(sample['digest'])[:16]} != "
                f"{str(PINS[topology]['digest'])[:16]} - fabric results drifted",
                file=sys.stderr,
            )
            failed = True
            continue
        record_bench_history(
            _history_name(topology),
            wall_seconds=float(sample["wall_s"]),
            calib_ops_per_s=calib,
            digest=str(sample["digest"]),
            meta={
                "refs": sample["refs"],
                "cubes": sample["cubes"],
                "mode": "check",
            },
        )
        reference = committed.get("samples", {}).get(topology)
        if not reference:
            print(f"{topology}: digest ok (no committed throughput sample)")
            continue
        ref_norm = float(reference["cycles_per_sec"]) / float(
            committed["machine"]["calib_ops_per_s"]
        )
        cur_norm = float(sample["cycles_per_sec"]) / calib
        ratio = cur_norm / ref_norm
        print(
            f"{topology}: digest ok; normalized cycles/sec {cur_norm:.4f} vs "
            f"committed {ref_norm:.4f} ({ratio:.2f}x)"
        )
        if ratio < 1.0 - REGRESSION_LIMIT:
            print(
                f"PERF REGRESSION: {topology} at {ratio:.2f}x of the "
                f"committed pin (limit {1.0 - REGRESSION_LIMIT:.2f}x)",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Pytest entry points (explicit path only, like the other benches)
# ----------------------------------------------------------------------
def test_one_cube_fabric_matches_hotpath_pin():
    """The degenerate fabric must reproduce bench_hotpath's pinned
    pre-overhaul digest bit-for-bit (fields, events_fired, energy)."""
    sample = measure("chain:1", rounds=1)
    assert sample["digest"] == HOTPATH_PINS["quick"]["digest"], (
        f"1-cube fabric drifted from the hot-path pin: {sample['digest']}"
    )


def test_chain2_digest_parity():
    """The 2-cube routed path must reproduce its pinned digest exactly."""
    sample = measure("chain:2", rounds=1)
    assert sample["digest"] == PINS["chain:2"]["digest"], (
        f"chain:2 fabric result drifted: {sample['digest']}"
    )


def test_committed_pin_digests_present():
    """BENCH_fabric.json, when committed, must carry the same pins this
    bench asserts (guards against editing one without the other)."""
    if not RESULT_PATH.exists():
        return  # not generated yet in this tree
    committed = json.loads(RESULT_PATH.read_text())
    assert committed["pinned"] == PINS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="chain:1 + chain:2 only (CI uses this)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed BENCH_fabric.json instead of "
        "rewriting it; fail on digest drift or >25%% normalized regression",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check(quick=args.quick)
    return generate(quick_only=args.quick)


if __name__ == "__main__":
    sys.exit(main())
