"""Overhead check for the observability hooks (repro.obs).

The tracer's design contract is "cost nothing when absent": every hook site
is a single ``if self.tracer is not None`` test.  This bench times the same
work three ways -

* ``off``    - no tracer attached (the default for every experiment),
* ``on``     - tracer attached, engine spans off (the ``--trace`` CLI path),
* ``spans``  - tracer attached with per-callback engine spans,

first on a pure engine event chain (the tightest loop in the simulator,
worst case for per-event overhead) and then on a small end-to-end system
run.  The disabled-tracer ratio is asserted; the enabled ratios are printed
for information (recording events legitimately costs time).

Run standalone (``python benchmarks/bench_obs_overhead.py``) or under
pytest.  Timings use min-of-repeats to suppress scheduler noise; the
assertion bound is deliberately loose (shared CI boxes jitter by more than
the effect being measured).
"""

from __future__ import annotations

import timeit

from repro.hmc.config import HMCConfig
from repro.obs import Tracer
from repro.sim.engine import Engine
from repro.system import System, SystemConfig
from repro.workloads.synthetic import generate_trace

#: generous bound for "no tracer attached" overhead; the true cost is one
#: attribute load + identity test per run() call, i.e. well under 1%
DISABLED_OVERHEAD_LIMIT = 1.05

CHAIN_EVENTS = 20_000
ENGINE_REPEATS = 7
SYSTEM_REFS = 400


def _engine_chain(tracer) -> None:
    eng = Engine()
    if tracer is not None:
        eng.tracer = tracer

    def chain(n):
        if n:
            eng.schedule(1, chain, n - 1)

    eng.schedule(0, chain, CHAIN_EVENTS)
    eng.run()


def _system_run(tracer) -> None:
    traces = [generate_trace("gems", SYSTEM_REFS, seed=i, core_id=i) for i in range(2)]
    cfg = SystemConfig(
        hmc=HMCConfig(vaults=4, banks_per_vault=4, pf_buffer_entries=4),
        scheme="camps-mod",
    )
    System(traces, cfg, tracer=tracer).run()


def _best(fn, repeats: int) -> float:
    return min(timeit.repeat(fn, number=1, repeat=repeats))


def measure():
    """Return {workload: {mode: seconds}} for the three tracer modes."""
    return {
        "engine-chain": {
            "off": _best(lambda: _engine_chain(None), ENGINE_REPEATS),
            "on": _best(lambda: _engine_chain(Tracer()), ENGINE_REPEATS),
            "spans": _best(
                lambda: _engine_chain(Tracer(engine_spans=True)), ENGINE_REPEATS
            ),
        },
        "system-run": {
            "off": _best(lambda: _system_run(None), 3),
            "on": _best(lambda: _system_run(Tracer()), 3),
            "spans": _best(lambda: _system_run(Tracer(engine_spans=True)), 3),
        },
    }


def report(results) -> str:
    lines = ["tracer overhead (min-of-repeats, ratio vs no tracer):"]
    for workload, times in results.items():
        base = times["off"]
        lines.append(f"  {workload}")
        for mode in ("off", "on", "spans"):
            ratio = times[mode] / base if base else float("nan")
            lines.append(f"    {mode:<6} {times[mode] * 1e3:8.2f} ms  {ratio:5.2f}x")
    return "\n".join(lines)


def test_hook_guard_is_free_in_engine_loop():
    """The engine hot loop's hook cost must stay within the contract bound.

    A pure event chain has no instrumented components, so with spans off an
    attached tracer and ``tracer=None`` execute the exact same per-event
    work - the only difference is the hoisted guard.  Their ratio therefore
    bounds the cost of the no-op hook pattern itself.
    """
    results = measure()
    print()
    print(report(results))
    times = results["engine-chain"]
    ratio = times["on"] / times["off"]
    assert ratio <= DISABLED_OVERHEAD_LIMIT, (
        f"engine hook overhead {ratio:.3f}x exceeds "
        f"{DISABLED_OVERHEAD_LIMIT:.2f}x bound"
    )


def test_enabled_tracer_records_without_blowup():
    """With a tracer attached (spans off) a system run still completes,
    records events, and slows down by less than an order of magnitude."""
    t = Tracer()
    _system_run(t)
    assert len(t.events) > 0
    off = _best(lambda: _system_run(None), 3)
    on = _best(lambda: _system_run(Tracer()), 3)
    ratio = on / off
    assert ratio < 10.0, f"tracing cost exploded: {ratio:.1f}x"


def test_spans_mode_records_engine_callbacks():
    t = Tracer(engine_spans=True)
    _engine_chain(t)
    kinds = {e.kind for e in t.events}
    assert kinds == {"engine.fire"}
    assert len(t.events) == CHAIN_EVENTS + 1


if __name__ == "__main__":
    print(report(measure()))
