"""Hot-path throughput pin for the single-run simulation loop.

The hot-path overhaul (zero-cost instrumentation, event/request pooling,
handle-free ``call_at`` scheduling, indexed FR-FCFS, inlined serialization /
histogram updates) is a pure performance change: results must stay
byte-identical.  This bench pins both halves of that contract:

* **Identity** - the Table I configuration (CAMPS scheme, MX1 mix, seed 1)
  must reproduce the result digest recorded on the tree *before* the
  overhaul, at both the full and quick scales.  Any drift fails loudly.
* **Throughput** - cycles/sec and events/sec are measured (min over rounds,
  each round timing a fresh ``System.run()``) and written to
  ``BENCH_hotpath.json`` at the repo root, together with a per-subsystem
  cProfile breakdown (``repro.sim.profiling``) and a pure-Python
  calibration score that makes the numbers comparable across machines.

Baseline methodology: the pre-change wall time was measured with
interleaved ``git stash`` pairing on one machine - alternating old/new
processes, best of 4 runs per process, min over 6 rounds - so slow machine
drift hits both trees equally.  The measured speedup at pin time was
**1.66x** (old 1.0327 s -> new 0.6211 s on the full config).  The issue
targeted 1.8x; the honest paired measurement landed at 1.66x with results
byte-identical, and that is the number recorded here.

The batched-engine pass (cohort dispatch, time-warp idle skip, fused NumPy
bank scans, the ``REPRO_BACKEND`` seam) continued from that baseline:
measured against the *pre-overhaul* tree it lands at **~1.8x** cumulative
(calibration-normalized, ~0.50 s vs the 1.0327 s baseline at 3000
refs/core; the exact figure is printed per run and recorded in
``BENCH_hotpath.json``).  The issue targeted 2.5x; per the same
honest-measurement policy as the 1.8x->1.66x pin above, the achieved
number is recorded, not the target.  The ``batching`` block in ``BENCH_hotpath.json`` records the
evidence: cohort-size histogram (how much same-cycle work each heap pop
amortizes) and the warped idle-span distribution (cycles the clock jumps
instead of stepping), both gathered by replaying the pinned workload one
event at a time and matching ``Engine.idle_cycles_skipped`` exactly.

CI runs ``--quick --check``: digest parity plus a calibration-normalized
cycles/sec comparison against the committed ``BENCH_hotpath.json``, failing
on a >20% regression.

Run standalone (``python benchmarks/bench_hotpath.py [--quick] [--check]``)
or under pytest with an explicit path (``pytest benchmarks/bench_hotpath.py``).
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import record_bench_history  # noqa: E402

from repro.system import System, SystemConfig  # noqa: E402
from repro.workloads.mixes import mix as make_mix  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hotpath.json"

SCHEME = "camps"
MIX = "MX1"
SEED = 1

#: result digests recorded on the pre-overhaul tree (commit 2c60462) for the
#: default HMCConfig; the overhaul must reproduce them bit-for-bit.  The
#: payload hashes every cached SimulationResult field *plus* events_fired,
#: which is stricter than the campaign matrix digest (that one ignores
#: ``extra``): even the number of engine events must not drift.
PINS = {
    "full": {
        "refs": 3000,
        "digest": "75cba4872fb081eb88e413f04f8cbf58f0aa7d3068967a7d8557c302a54a8811",
        "cycles": 220926,
        "events_fired": 125262,
    },
    "quick": {
        "refs": 800,
        "digest": "856e367d2cdb96293482ee7f3d7b5fbf4f5bcf951cf38e69d128475a7fec65d0",
        "cycles": 59152,
        "events_fired": 33495,
    },
}

#: pre-change baseline, measured with the paired interleaved methodology
#: described in the module docstring (full config, same machine that
#: produced the committed BENCH_hotpath.json).
BASELINE_PRE_CHANGE = {
    "wall_s": 1.0327,
    "calib_ops_per_s": 1_472_445,
    "method": (
        "interleaved git-stash pairing: alternate old/new processes, "
        "best of 4 runs per process, min over 6 rounds"
    ),
}

#: allowed calibration-normalized cycles/sec regression in --check mode
REGRESSION_LIMIT = 0.20

ROUNDS_FULL = 5
ROUNDS_QUICK = 3


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def _build(refs: int) -> System:
    traces = make_mix(MIX, refs, seed=SEED)
    return System(traces, SystemConfig(scheme=SCHEME), workload=MIX)


def result_digest(result) -> str:
    """SHA-256 over every cached result field plus events_fired."""
    payload = {
        "cycles": result.cycles,
        "core_ipc": result.core_ipc,
        "core_instructions": result.core_instructions,
        "row_conflicts": result.row_conflicts,
        "demand_accesses": result.demand_accesses,
        "buffer_hits": result.buffer_hits,
        "prefetches_issued": result.prefetches_issued,
        "row_accuracy": result.row_accuracy,
        "line_accuracy": result.line_accuracy,
        "mean_memory_latency": result.mean_memory_latency,
        "mean_read_latency": result.mean_read_latency,
        "energy_pj": result.energy_pj,
        "link_utilization": result.link_utilization,
        "events_fired": result.extra["events_fired"],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def calibration_score(rounds: int = 3) -> float:
    """Pure-Python ops/sec score (heap churn + tuple + int arithmetic, the
    simulation's op mix) used to normalize throughput across machines."""
    n = 200_000
    best: Optional[float] = None
    for _ in range(rounds):
        h: List = []
        push = heapq.heappush
        pop = heapq.heappop
        seq = 0
        acc = 0
        t0 = perf_counter()
        for i in range(n):
            seq += 1
            push(h, ((i * 37) & 1023, 0, seq))
            if i & 1:
                acc += pop(h)[0]
        dt = perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return n / best


def measure(refs: int, rounds: int) -> Dict[str, object]:
    """Time ``System.run()`` (min over rounds, fresh system per round) and
    verify the result digest against the pin for this scale."""
    pin = PINS["full"] if refs == PINS["full"]["refs"] else PINS["quick"]
    walls: List[float] = []
    digest = ""
    result = None
    for _ in range(rounds):
        system = _build(refs)
        t0 = perf_counter()
        result = system.run()
        walls.append(perf_counter() - t0)
    digest = result_digest(result)
    wall = min(walls)
    return {
        "refs": refs,
        "rounds": rounds,
        "wall_s": wall,
        "cycles": result.cycles,
        "events_fired": result.extra["events_fired"],
        "cycles_per_sec": result.cycles / wall,
        "events_per_sec": result.extra["events_fired"] / wall,
        "digest": digest,
        "digest_ok": digest == pin["digest"],
    }


def profile_slices(refs: int) -> Dict[str, object]:
    """Per-subsystem cProfile breakdown of one run (repro.sim.profiling)."""
    import cProfile

    from repro.sim.profiling import profile_payload, subsystem_breakdown

    system = _build(refs)
    profiler = cProfile.Profile()
    profiler.enable()
    result = system.run()
    profiler.disable()
    return profile_payload(
        subsystem_breakdown(profiler),
        cycles=result.cycles,
        events_fired=system.engine.events_fired,
        wall_seconds=system.engine.wall_seconds,
    )


def normalized(sample: Dict[str, object], calib: float) -> float:
    """Machine-independent throughput: simulated cycles per calibration op."""
    return float(sample["cycles_per_sec"]) / calib


# ----------------------------------------------------------------------
# Batching census (cohort sizes + idle spans)
# ----------------------------------------------------------------------
def _live_head(engine):
    """The heap head that will fire next, dropping cancelled entries the
    same way the run loop would (mirrors Engine.peek_time, key included)."""
    heap = engine._heap
    pool = engine._pool
    while heap:
        head = heap[0]
        if len(head) != 4 or not head[3].cancelled:
            return head
        ev = heapq.heappop(heap)[3]
        ev.fn = None
        ev.args = ()
        pool.append(ev)
    return None


def _bucket(n: int) -> str:
    """Power-of-two bucket label for a positive count."""
    lo = 1
    while lo * 2 <= n:
        lo *= 2
    return f"{lo}-{lo * 2 - 1}"


def cohort_census(refs: int) -> Dict[str, object]:
    """One instrumented replay (separate from the timing rounds): drive the
    engine one event at a time, recording each fired event's ``(time,
    priority)`` cohort key.  Cohorts are maximal runs of consecutive fired
    events sharing that key - exactly the batches the fast loop drains in
    one pass - and idle spans are the warped gaps between consecutive event
    cycles.  Single-stepping uses the engine's general loop, whose fire
    order is identical to the batched loop (tests/test_engine_properties.py
    pins the equivalence), so the census sees the true cohort structure.
    """
    system = _build(refs)
    engine = system.engine
    system._ran = True  # the census drives the engine manually
    for core in system.cores:
        core.start()
    cohort_sizes: Dict[int, int] = {}
    idle_spans: Dict[str, int] = {}
    events = 0
    cohorts = 0
    idle_cycles = 0
    max_cohort = 0
    max_span = 0
    cur_key = None
    cur_n = 0
    last_time: Optional[int] = None
    while engine._strong:
        head = _live_head(engine)
        if head is None:
            break
        key = (head[0], head[1])
        if key != cur_key:
            if cur_n:
                cohort_sizes[cur_n] = cohort_sizes.get(cur_n, 0) + 1
                cohorts += 1
                if cur_n > max_cohort:
                    max_cohort = cur_n
            t = head[0]
            if last_time is not None and t - last_time > 1:
                span = t - last_time - 1
                idle_cycles += span
                idle_spans[_bucket(span)] = idle_spans.get(_bucket(span), 0) + 1
                if span > max_span:
                    max_span = span
            last_time = t
            cur_key = key
            cur_n = 0
        if engine.run(max_events=1) != 1:
            break
        cur_n += 1
        events += 1
    if cur_n:
        cohort_sizes[cur_n] = cohort_sizes.get(cur_n, 0) + 1
        cohorts += 1
        if cur_n > max_cohort:
            max_cohort = cur_n
    return {
        "refs": refs,
        "events": events,
        "cohorts": {
            "count": cohorts,
            "mean_size": events / cohorts if cohorts else 0.0,
            "max_size": max_cohort,
            "histogram": {
                str(k): v for k, v in sorted(cohort_sizes.items())
            },
        },
        "idle": {
            "cycles_skipped": idle_cycles,
            "engine_cycles_skipped": engine.idle_cycles_skipped,
            "max_span": max_span,
            "span_histogram": dict(
                sorted(idle_spans.items(), key=lambda kv: int(kv[0].split("-")[0]))
            ),
        },
    }


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------
def generate(quick_only: bool = False) -> int:
    """Measure, verify digests, and (re)write BENCH_hotpath.json."""
    calib = calibration_score()
    quick = measure(PINS["quick"]["refs"], ROUNDS_QUICK)
    full = None if quick_only else measure(PINS["full"]["refs"], ROUNDS_FULL)
    baseline_wall = BASELINE_PRE_CHANGE["wall_s"] * (
        BASELINE_PRE_CHANGE["calib_ops_per_s"] / calib
    )
    speedup = baseline_wall / float(full["wall_s"]) if full else None
    census = cohort_census(
        PINS["full"]["refs"] if not quick_only else PINS["quick"]["refs"]
    )
    payload = {
        "bench": "hotpath",
        "config": {"mix": MIX, "scheme": SCHEME, "seed": SEED},
        "pinned": PINS,
        "baseline_pre_change": BASELINE_PRE_CHANGE,
        "machine": {"calib_ops_per_s": calib},
        "quick": quick,
        "full": full,
        "speedup_vs_baseline": speedup,
        "batching": census,
        "profile": profile_slices(PINS["quick"]["refs"]),
    }
    ok = bool(quick["digest_ok"]) and (full is None or bool(full["digest_ok"]))
    for label, sample in (("quick", quick), ("full", full)):
        if sample is None:
            continue
        mark = "ok" if sample["digest_ok"] else "MISMATCH"
        print(
            f"{label:<6} refs={sample['refs']:<5} wall={sample['wall_s']:.4f}s "
            f"cycles/s={sample['cycles_per_sec']:,.0f} "
            f"events/s={sample['events_per_sec']:,.0f} digest {mark}"
        )
    print(f"calibration {calib:,.0f} ops/s")
    if speedup is not None:
        print(
            f"speedup vs pre-change baseline (calibration-normalized): "
            f"{speedup:.2f}x"
        )
    co = census["cohorts"]
    idle = census["idle"]
    print(
        f"batching: {co['count']} cohorts over {census['events']} events "
        f"(mean {co['mean_size']:.2f}, max {co['max_size']}); "
        f"{idle['cycles_skipped']} idle cycles warped "
        f"(longest span {idle['max_span']})"
    )
    if not ok:
        print("DIGEST MISMATCH - not writing BENCH_hotpath.json", file=sys.stderr)
        return 1
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    for label, sample in (("quick", quick), ("full", full)):
        if sample is not None:
            record_bench_history(
                f"hotpath_{label}",
                wall_seconds=float(sample["wall_s"]),
                calib_ops_per_s=calib,
                digest=str(sample["digest"]),
                meta={
                    "refs": sample["refs"],
                    "cohort_mean": round(float(co["mean_size"]), 3),
                    "idle_cycles_skipped": int(idle["cycles_skipped"]),
                },
            )
    return 0


def check(quick: bool = True) -> int:
    """CI gate: digest parity + calibration-normalized cycles/sec within
    REGRESSION_LIMIT of the committed BENCH_hotpath.json."""
    if not RESULT_PATH.exists():
        print(f"missing {RESULT_PATH}; run bench_hotpath.py first", file=sys.stderr)
        return 1
    committed = json.loads(RESULT_PATH.read_text())
    label = "quick" if quick else "full"
    reference = committed.get(label)
    if not reference:
        print(f"committed BENCH_hotpath.json has no '{label}' sample", file=sys.stderr)
        return 1
    calib = calibration_score()
    sample = measure(PINS[label]["refs"], ROUNDS_QUICK)
    if not sample["digest_ok"]:
        print(
            f"digest MISMATCH: {sample['digest'][:16]} != "
            f"{PINS[label]['digest'][:16]} - results drifted",
            file=sys.stderr,
        )
        return 1
    ref_norm = float(reference["cycles_per_sec"]) / float(
        committed["machine"]["calib_ops_per_s"]
    )
    cur_norm = normalized(sample, calib)
    ratio = cur_norm / ref_norm
    record_bench_history(
        f"hotpath_{label}",
        wall_seconds=float(sample["wall_s"]),
        calib_ops_per_s=calib,
        digest=str(sample["digest"]),
        meta={"refs": sample["refs"], "mode": "check"},
    )
    print(
        f"{label}: digest ok; normalized cycles/sec {cur_norm:.4f} vs "
        f"committed {ref_norm:.4f} ({ratio:.2f}x; calib {calib:,.0f} ops/s)"
    )
    if ratio < 1.0 - REGRESSION_LIMIT:
        print(
            f"PERF REGRESSION: normalized throughput at {ratio:.2f}x of the "
            f"committed pin (limit {1.0 - REGRESSION_LIMIT:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# Pytest entry points (explicit path only, like the other benches)
# ----------------------------------------------------------------------
def test_quick_digest_parity():
    """The quick config must reproduce the pre-overhaul digest exactly."""
    sample = measure(PINS["quick"]["refs"], rounds=1)
    assert sample["digest"] == PINS["quick"]["digest"], (
        f"hot-path result drifted: {sample['digest']} != {PINS['quick']['digest']}"
    )


def test_committed_pin_digests_present():
    """BENCH_hotpath.json, when committed, must carry the same pins this
    bench asserts (guards against editing one without the other)."""
    if not RESULT_PATH.exists():
        return  # not generated yet in this tree
    committed = json.loads(RESULT_PATH.read_text())
    assert committed["pinned"] == PINS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="quick scale only (800 refs/core; CI uses this)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed BENCH_hotpath.json instead of "
        "rewriting it; fail on digest drift or >20%% normalized regression",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check(quick=True)
    return generate(quick_only=args.quick)


if __name__ == "__main__":
    sys.exit(main())
