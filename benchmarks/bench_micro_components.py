"""Microbenchmarks of the simulator's hot components.

These time the substrate pieces in isolation (pytest-benchmark's normal
multi-round statistics apply here, unlike the single-shot figure benches),
which is how regressions in the event loop or buffer operations show up
before they blur into whole-simulation numbers.
"""

import numpy as np

from repro.core.buffer import LRUPolicy, PrefetchBuffer, UtilizationRecencyPolicy
from repro.cpu.cache import Cache, CacheParams
from repro.dram.bank import AccessKind, Bank
from repro.dram.timing import DRAMTimings
from repro.hmc.address import AddressMapping
from repro.hmc.config import HMCConfig
from repro.sim.engine import Engine
from repro.workloads.synthetic import generate_trace

FULL = 0xFFFF


def test_engine_event_throughput(benchmark):
    def run_events():
        eng = Engine()

        def chain(n):
            if n:
                eng.schedule(1, chain, n - 1)

        eng.schedule(0, chain, 10_000)
        eng.run()
        return eng.events_fired

    fired = benchmark(run_events)
    assert fired == 10_001


def test_bank_access_throughput(benchmark):
    t = DRAMTimings()

    def run_accesses():
        bank = Bank(0, t)
        for i in range(5_000):
            bank.access(AccessKind.READ, i % 7, bank.busy_until)
        return bank.demand_accesses

    assert benchmark(run_accesses) == 5_000


def test_buffer_lookup_insert_throughput(benchmark):
    def churn():
        buf = PrefetchBuffer(16, 16, UtilizationRecencyPolicy())
        for i in range(5_000):
            buf.lookup(i % 4, i % 24, i % 16, i % 3 == 0)
            if i % 3 == 0:
                buf.insert(i % 4, i % 24, FULL, i, i)
        return buf.hits + buf.misses

    assert benchmark(churn) == 5_000


def test_cache_access_throughput(benchmark):
    rng = np.random.default_rng(3)
    addrs = rng.integers(0, 1 << 22, size=20_000).tolist()

    def churn():
        c = Cache(CacheParams("L2", 256 * 1024, 4, 64, 6))
        for a in addrs:
            if not c.lookup(a, False):
                c.allocate(a, False)
        return c.accesses

    assert benchmark(churn) == 20_000


def test_address_decode_vectorized(benchmark):
    m = AddressMapping(HMCConfig())
    rng = np.random.default_rng(5)
    addrs = rng.integers(0, 1 << 36, size=200_000)

    def decode():
        v, b, r, c = m.decode_many(addrs)
        return int(v.sum())

    benchmark(decode)


def test_trace_generation_throughput(benchmark):
    def gen():
        return len(generate_trace("gems", 20_000, seed=11))

    assert benchmark(gen) == 20_000
