"""Simulator scaling characteristics (engineering regression guard).

Measures how simulation wall time and event counts scale with trace length
and core count under the default scheme.  Not a paper experiment - this is
the harness that catches accidental O(n^2) regressions in the event loop,
queues, or buffer bookkeeping.
"""

import time

import pytest

from repro.system import System, SystemConfig
from repro.workloads.synthetic import generate_trace


def _run(n_cores, refs, seed=1):
    traces = [
        generate_trace("gems", refs, seed=seed + i, core_id=i)
        for i in range(n_cores)
    ]
    sysm = System(traces, SystemConfig(scheme="camps-mod"), workload="scale")
    t0 = time.perf_counter()
    result = sysm.run()
    wall = time.perf_counter() - t0
    return result, wall


def test_scaling_with_trace_length(benchmark):
    def sweep():
        out = {}
        for refs in (500, 1000, 2000):
            result, wall = _run(2, refs)
            out[refs] = (result.extra["events_fired"], wall)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nScaling with trace length (2 cores)")
    print(f"{'refs':>6}{'events':>10}{'events/ref':>12}{'wall (s)':>10}")
    for refs, (events, wall) in results.items():
        print(f"{refs:>6}{events:>10}{events / (2 * refs):>12.1f}{wall:>10.3f}")

    # events per reference must stay bounded (no superlinear blowup);
    # the event-driven design targets a handful of events per request.
    ratios = [ev / (2 * refs) for refs, (ev, _) in results.items()]
    assert max(ratios) < 12
    assert max(ratios) / min(ratios) < 1.5  # near-linear scaling


def test_scaling_with_core_count(benchmark):
    def sweep():
        out = {}
        for cores in (1, 2, 4, 8):
            result, wall = _run(cores, 800)
            out[cores] = (result.extra["events_fired"], wall)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nScaling with core count (800 refs/core)")
    print(f"{'cores':>6}{'events':>10}{'events/ref':>12}{'wall (s)':>10}")
    for cores, (events, wall) in results.items():
        print(f"{cores:>6}{events:>10}{events / (cores * 800):>12.1f}{wall:>10.3f}")

    per_ref = [ev / (c * 800) for c, (ev, _) in results.items()]
    assert max(per_ref) < 12
