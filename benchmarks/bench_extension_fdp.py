"""Extension: feedback-throttled CAMPS (camps-fdp) vs plain CAMPS-MOD.

CAMPS-MOD's conflict-table trigger can be fooled by pointer-chasing phases
(rows conflicted once and never revisited); camps-fdp suspends the CT
trigger while measured accuracy is low.  On the paper's mixes the two should
be near-identical (accuracy is high, throttling never engages); on
pointer-heavy homogeneous workloads the throttled variant should issue fewer
useless fetches at equal or better performance.
"""

import pytest

from repro.system import System, SystemConfig
from repro.workloads.mixes import mix
from repro.workloads.synthetic import generate_trace


@pytest.fixture(scope="module")
def refs(experiment_config):
    return min(experiment_config.refs_per_core, 2500)


def test_extension_fdp(benchmark, refs, experiment_config):
    seed = experiment_config.seed

    def sweep():
        out = {}
        # the paper's mixed workload: throttling should stay out of the way
        traces = mix("HM1", refs, seed=seed)
        out["HM1 (paper mix)"] = {
            s: System(traces, SystemConfig(scheme=s), workload="HM1").run()
            for s in ("camps-mod", "camps-fdp")
        }
        # adversarial pointer chasing: 8 x mcf
        traces = [
            generate_trace("mcf", refs, seed=seed * 10 + i, core_id=i)
            for i in range(8)
        ]
        out["mcf x8 (pointer)"] = {
            s: System(traces, SystemConfig(scheme=s), workload="mcf8").run()
            for s in ("camps-mod", "camps-fdp")
        }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nExtension: CAMPS-FDP (throttled CT) vs CAMPS-MOD")
    print(f"{'workload':<18}{'scheme':<11}{'ipc':>8}{'prefetches':>11}{'accuracy':>9}")
    for wl, r in results.items():
        for s, res in r.items():
            print(
                f"{wl:<18}{s:<11}{res.geomean_ipc:>8.3f}"
                f"{res.prefetches_issued:>11}{res.row_accuracy:>9.2f}"
            )

    for wl, r in results.items():
        mod, fdp = r["camps-mod"], r["camps-fdp"]
        # throttling never hurts meaningfully...
        assert fdp.geomean_ipc >= mod.geomean_ipc * 0.97, wl
        # ...and never issues more prefetches
        assert fdp.prefetches_issued <= mod.prefetches_issued, wl
