"""Figure 5: normalized speedup of each scheme over BASE.

Paper headline: CAMPS-MOD outperforms BASE by 17.9% on average (HM 24.9%,
LM 9.4%, MX 19.6%), BASE-HIT by 16.8%, and MMD by 8.7%.

The grid behind this figure comes from the session-scoped ``paper_matrix``
fixture; set ``REPRO_JOBS=4`` to shard it across a ``repro.campaign``
worker pool (the merged matrix is deterministic, so the assertions below
are scale- and parallelism-independent).
"""

from conftest import emit

from repro.experiments.figures import figure5


def test_fig5_normalized_speedup(benchmark, paper_matrix, results_dir, full_scale):
    data = benchmark.pedantic(
        lambda: figure5(paper_matrix), rounds=1, iterations=1
    )
    emit(data, results_dir, "fig5_speedup")

    # Shape assertions that hold at any scale.
    avg = data.summary["AVG"]
    assert avg["camps-mod"] > avg["base-hit"]
    assert avg["camps-mod"] > 1.0
    # CAMPS-MOD's gain over BASE lands in the paper's neighbourhood.
    assert 1.03 < avg["camps-mod"] < 1.45
    if not full_scale:
        return
    # Strict cross-scheme ordering only at calibrated scale.
    assert avg["camps-mod"] > avg["mmd"] > 1.0
    assert avg["camps-mod"] == max(avg.values())
    # HM gains exceed LM gains (paper Section 5.1).
    if "HM" in data.summary and "LM" in data.summary:
        assert data.summary["HM"]["camps-mod"] > data.summary["LM"]["camps-mod"]
