"""Overhead check for the robustness layer (repro.faults + repro.sim.integrity).

The layer's design contract is "cost nothing when off": with no fault config
the link send path pays one ``retry is None`` test, and with integrity off
the engine hot loop pays one falsy ``wd_interval`` check per event.  Those
guards are too cheap to time directly, so this bench bounds them from above:
it times the default (seed-equivalent) configuration against an *armed but
inert* one - zero-probability retry buffers attached to every link direction
(enabled path, zero RNG draws) plus the full integrity monitor (watchdog +
invariant polls).  If even the armed machinery stays inside the 2% budget,
the disabled guards are far below it.

A second check pins the disabled path's *results*: the standard grid digest
must match the value recorded before the fault/integrity plumbing landed,
proving the off configuration is byte-identical to the seed tree, not just
about as fast.

Run standalone (``python benchmarks/bench_fault_overhead.py``) or under
pytest (only with an explicit path - ``pytest benchmarks/...``).  Timings
use min-of-repeats to suppress scheduler noise.
"""

from __future__ import annotations

import timeit

from repro.faults import LinkFaultConfig, LinkFaultInjector, RetryBuffer
from repro.hmc.config import HMCConfig
from repro.system import System, SystemConfig
from repro.workloads.mixes import mix as make_mix

#: wall-clock budget for the armed-but-inert configuration vs the default
#: (the issue's acceptance bound for the disabled path, applied to the
#: strictly-more-expensive armed one)
OVERHEAD_LIMIT = 1.02

#: `matrix_digest` of the (HM1, LM1, MX1) x FIG5_SCHEMES grid at
#: refs_per_core=1000, seed=1, recorded on the tree *before* the fault
#: injection / integrity layer existed
PRE_FAULT_DIGEST = "9ff7a03c1d21e9743a435576dfec26e6d2c7efb8d5fe31a23604bc3bb1a18755"

SYSTEM_REFS = 800
REPEATS = 7


def _build(integrity: bool, inert_faults: bool) -> System:
    traces = make_mix("HM1", SYSTEM_REFS, seed=1)
    sys_ = System(
        traces,
        SystemConfig(scheme="camps-mod", integrity=integrity),
        workload="HM1",
    )
    if inert_faults:
        # attach_faults() refuses a disabled config, which is exactly what
        # makes the off path free; arm the retry machinery by hand so every
        # send pays the attached-buffer guard (load + None test + active
        # test) - a strict superset of the off path's load + None test.
        cfg = LinkFaultConfig()
        for link in sys_.host.links:
            for tag, d in (("req", link.request), ("resp", link.response)):
                d.retry = RetryBuffer(cfg, LinkFaultInjector(cfg, link.link_id, tag))
    return sys_


def _run(integrity: bool = False, inert_faults: bool = False) -> None:
    _build(integrity, inert_faults).run()


MODES = {
    "off": lambda: _run(),
    "inert-faults": lambda: _run(inert_faults=True),
    "armed": lambda: _run(integrity=True, inert_faults=True),
}


def measure(rounds: int = REPEATS):
    """Return {mode: [seconds per round]}, sampled in interleaved rounds.

    Interleaving (off, inert, armed, off, inert, armed, ...) means slow
    drift - thermal throttling, a noisy neighbour on a shared CI box -
    hits every mode equally instead of biasing whichever was timed last."""
    samples = {mode: [] for mode in MODES}
    for _ in range(rounds):
        for mode, fn in MODES.items():
            samples[mode].append(timeit.timeit(fn, number=1))
    return samples


def best_paired_ratio(samples, mode: str) -> float:
    """Min over rounds of the per-round ratio vs the off configuration.

    Pairing within a round cancels drift that min-of-mins cannot: a burst
    of machine noise inflates both modes of the round it lands on, so the
    quietest round's ratio estimates the true overhead, while a real
    regression inflates the ratio of *every* round and still fails the
    bound."""
    return min(m / o for m, o in zip(samples[mode], samples["off"]))


def report(samples) -> str:
    base = min(samples["off"])
    lines = ["fault/integrity overhead (min of rounds, paired ratio vs off):"]
    for mode, times in samples.items():
        ratio = best_paired_ratio(samples, mode)
        lines.append(f"  {mode:<14} {min(times) * 1e3:8.2f} ms  {ratio:5.3f}x")
    return "\n".join(lines)


def test_armed_inert_overhead_within_budget():
    """Armed-but-inert faults + integrity must stay within the 2% budget.

    The armed configuration strictly dominates the disabled one (it runs
    every guard the disabled path runs, plus the machinery behind it), so
    this bound also covers the seed-vs-disabled delta the issue caps."""
    samples = measure()
    print()
    print(report(samples))
    ratio = best_paired_ratio(samples, "armed")
    assert ratio <= OVERHEAD_LIMIT, (
        f"armed-inert overhead {ratio:.3f}x exceeds {OVERHEAD_LIMIT:.2f}x budget"
    )


def test_inert_fault_run_byte_identical():
    """Zero-probability retry buffers must not perturb results at all."""
    plain = _build(integrity=False, inert_faults=False).run()
    inert = _build(integrity=False, inert_faults=True).run()
    assert inert.cycles == plain.cycles
    assert inert.core_ipc == plain.core_ipc
    assert inert.energy_pj == plain.energy_pj


def test_disabled_grid_digest_matches_pre_fault_tree(tmp_path):
    """The standard grid, faults disabled, reproduces the digest pinned
    before this subsystem existed - the off path is byte-identical."""
    from repro.campaign import matrix_digest
    from repro.experiments.figures import FIG5_SCHEMES
    from repro.experiments.runner import ExperimentConfig, ResultCache, run_matrix

    cfg = ExperimentConfig(refs_per_core=1000, seed=1)
    matrix = run_matrix(
        ["HM1", "LM1", "MX1"],
        FIG5_SCHEMES,
        cfg,
        cache=ResultCache(tmp_path / "cache.json"),
    )
    assert matrix_digest(matrix) == PRE_FAULT_DIGEST


def test_faulty_run_deterministic():
    """A fixed fault seed reproduces identical retry counts and results."""
    hmc = HMCConfig(faults=LinkFaultConfig(ber=2e-5, seed=7))

    def run():
        traces = make_mix("HM1", SYSTEM_REFS, seed=1)
        return System(
            traces, SystemConfig(hmc=hmc, scheme="camps-mod"), workload="HM1"
        ).run()

    a, b = run(), run()
    assert a.extra["link_faults"] == b.extra["link_faults"]
    assert a.extra["link_faults"]["replays"] > 0
    assert a.cycles == b.cycles and a.energy_pj == b.energy_pj


if __name__ == "__main__":
    print(report(measure()))
