"""Seed sensitivity: is the paper's headline result an artifact of one seed?

Runs the HM1/LM1/MX1 representatives under three trace seeds and checks that
CAMPS-MOD's advantage over BASE is stable (mean clearly above 1, dispersion
small relative to the gain).
"""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.seeds import run_seeded


def test_seed_sensitivity(benchmark, experiment_config):
    refs = min(experiment_config.refs_per_core, 2500)
    cfg = ExperimentConfig(refs_per_core=refs, seed=1, hmc=experiment_config.hmc)

    def sweep():
        return run_seeded(
            ["HM1", "LM1", "MX1"],
            ["base", "base-hit", "mmd", "camps", "camps-mod"],
            cfg,
            seeds=(1, 2, 3),
        )

    seeded = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(seeded.text())

    avg = seeded.avg("camps-mod")
    # the gain survives every seed
    assert min(avg.values) > 1.0
    # and dispersion is small relative to the mean gain
    assert avg.std < (avg.mean - 1.0)
