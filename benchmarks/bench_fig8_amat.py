"""Figure 8: reduction in average memory access time vs BASE.

Paper headline: CAMPS-MOD reduces AMAT by 26% vs BASE and by 16.3% vs MMD on
average.
"""

from conftest import emit

from repro.experiments.figures import figure8


def test_fig8_amat_reduction(benchmark, paper_matrix, results_dir, full_scale):
    data = benchmark.pedantic(
        lambda: figure8(paper_matrix, schemes=["base", "mmd", "camps-mod"]),
        rounds=1,
        iterations=1,
    )
    emit(data, results_dir, "fig8_amat")

    avg = data.summary["AVG"]
    assert avg["base"] == 0.0  # by definition of the baseline
    assert avg["camps-mod"] > 0.0  # CAMPS-MOD reduces AMAT
    if full_scale:
        assert avg["camps-mod"] > avg["mmd"]  # and by more than MMD
