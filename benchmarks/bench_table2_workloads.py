"""Table II: the twelve eight-core mixes, with the measured MPKI of every
synthetic constituent confirming the paper's HM / LM classification."""

from repro.experiments.tables import table2_text
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace


def test_table2_workloads(benchmark):
    text = benchmark.pedantic(
        lambda: table2_text(measure_mpki=True, refs=4000), rounds=1, iterations=1
    )
    print()
    print(text)

    # The realized MPKI of every benchmark must land in its paper class.
    for name, prof in PROFILES.items():
        measured = generate_trace(name, 4000, seed=1).mpki
        if prof.memory_intensity == "HM":
            assert measured >= 15, f"{name}: measured {measured:.1f}, expected HM"
        else:
            assert 0.5 <= measured < 20, f"{name}: measured {measured:.1f}, expected LM"
