"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CAMPS: Conflict-Aware Memory-Side Prefetching for the Hybrid "
        "Memory Cube (ICPP 2018) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
