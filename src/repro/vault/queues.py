"""Bounded read/write request queues for a vault controller.

Table I specifies 32-entry read and write queues per vault.  Arrivals beyond
capacity wait in an input staging FIFO (modeling link-side backpressure) and
are promoted as the scheduler drains the bounded queues.  Occupancy highs and
admission stalls are tracked for reporting.

Beyond the FIFO deques (the public, test-visible representation), the queues
maintain per-bank and per-(bank, row) buckets updated on every place/remove.
The FR-FCFS scheduler's first-ready scan then touches only banks that have
pending work - O(occupied banks) instead of O(queue x banks) - and the
row-hit fast path is a single dict probe per open row.  Admission order is
stamped into ``req.qseq`` so bucket heads can be compared oldest-first
without consulting the FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, Optional, Tuple

from repro.request import MemoryRequest


class VaultQueues:
    """Read queue + write queue + overflow staging for one vault."""

    def __init__(self, read_depth: int = 32, write_depth: int = 32) -> None:
        if read_depth < 1 or write_depth < 1:
            raise ValueError("queue depths must be >= 1")
        self.read_depth = read_depth
        self.write_depth = write_depth
        self.reads: Deque[MemoryRequest] = deque()
        self.writes: Deque[MemoryRequest] = deque()
        self.staging: Deque[MemoryRequest] = deque()
        # scheduler-facing indexes, maintained alongside the FIFOs; keys are
        # deleted when a bucket empties so iteration touches only live banks
        self.reads_by_bank: Dict[int, Deque[MemoryRequest]] = {}
        self.writes_by_bank: Dict[int, Deque[MemoryRequest]] = {}
        self.reads_by_row: Dict[Tuple[int, int], Deque[MemoryRequest]] = {}
        self.writes_by_row: Dict[Tuple[int, int], Deque[MemoryRequest]] = {}
        self._qseq = 0
        # statistics
        self.admitted = 0
        self.staged = 0
        self.max_read_occupancy = 0
        self.max_write_occupancy = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, req: MemoryRequest) -> bool:
        """Try to place a request into its bounded queue.  Returns False (and
        stages the request) when the queue is full."""
        if self._try_place(req):
            return True
        self.staging.append(req)
        self.staged += 1
        return False

    def _try_place(self, req: MemoryRequest) -> bool:
        if req.is_write:
            if len(self.writes) >= self.write_depth:
                return False
            self.writes.append(req)
            if len(self.writes) > self.max_write_occupancy:
                self.max_write_occupancy = len(self.writes)
            by_bank, by_row = self.writes_by_bank, self.writes_by_row
        else:
            if len(self.reads) >= self.read_depth:
                return False
            self.reads.append(req)
            if len(self.reads) > self.max_read_occupancy:
                self.max_read_occupancy = len(self.reads)
            by_bank, by_row = self.reads_by_bank, self.reads_by_row
        self._qseq += 1
        req.qseq = self._qseq
        bank = req.bank
        bucket = by_bank.get(bank)
        if bucket is None:
            by_bank[bank] = bucket = deque()
        bucket.append(req)
        key = (bank, req.row)
        rbucket = by_row.get(key)
        if rbucket is None:
            by_row[key] = rbucket = deque()
        rbucket.append(req)
        self.admitted += 1
        return True

    def promote(self) -> int:
        """Move staged requests into the bounded queues, in order, while
        space allows.  Returns how many were promoted."""
        if not self.staging:
            return 0
        moved = 0
        # Requests must not leapfrog same-direction requests in staging, so
        # stop promoting a direction at its first blocked request.
        blocked_read = False
        blocked_write = False
        remaining: Deque[MemoryRequest] = deque()
        while self.staging:
            req = self.staging.popleft()
            if req.is_write:
                if not blocked_write and self._try_place(req):
                    moved += 1
                    continue
                blocked_write = True
            else:
                if not blocked_read and self._try_place(req):
                    moved += 1
                    continue
                blocked_read = True
            remaining.append(req)
        self.staging = remaining
        return moved

    # ------------------------------------------------------------------
    # Removal (the scheduler pops by identity after choosing)
    # ------------------------------------------------------------------
    def remove(self, req: MemoryRequest) -> None:
        q = self.writes if req.is_write else self.reads
        # FCFS picks remove the FIFO head; only row-hit bypasses pay the
        # positional scan.
        if q and q[0] is req:
            q.popleft()
        else:
            try:
                q.remove(req)
            except ValueError:
                raise ValueError(f"request {req!r} not queued") from None
        if req.is_write:
            by_bank, by_row = self.writes_by_bank, self.writes_by_row
        else:
            by_bank, by_row = self.reads_by_bank, self.reads_by_row
        bank = req.bank
        bucket = by_bank[bank]
        # The scheduler nearly always removes a bucket head (oldest wins);
        # fall back to positional removal for mid-bucket picks (row hits
        # bypassing older same-bank requests).
        if bucket[0] is req:
            bucket.popleft()
        else:
            bucket.remove(req)
        if not bucket:
            del by_bank[bank]
        key = (bank, req.row)
        rbucket = by_row[key]
        if rbucket[0] is req:
            rbucket.popleft()
        else:
            rbucket.remove(req)
        if not rbucket:
            del by_row[key]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.reads) + len(self.writes) + len(self.staging)

    @property
    def total_pending(self) -> int:
        return len(self)

    def iter_reads(self) -> Iterator[MemoryRequest]:
        return iter(self.reads)

    def iter_writes(self) -> Iterator[MemoryRequest]:
        return iter(self.writes)

    def count_row_reads(self, bank: int, row: int) -> int:
        """Read-queue requests targeting (bank, row) - BASE-HIT's signal."""
        bucket = self.reads_by_row.get((bank, row))
        return len(bucket) if bucket is not None else 0

    def oldest_read(self) -> Optional[MemoryRequest]:
        return self.reads[0] if self.reads else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VaultQueues R={len(self.reads)}/{self.read_depth} "
            f"W={len(self.writes)}/{self.write_depth} "
            f"staged={len(self.staging)}>"
        )
