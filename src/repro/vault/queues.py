"""Bounded read/write request queues for a vault controller.

Table I specifies 32-entry read and write queues per vault.  Arrivals beyond
capacity wait in an input staging FIFO (modeling link-side backpressure) and
are promoted as the scheduler drains the bounded queues.  Occupancy highs and
admission stalls are tracked for reporting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.request import MemoryRequest


class VaultQueues:
    """Read queue + write queue + overflow staging for one vault."""

    def __init__(self, read_depth: int = 32, write_depth: int = 32) -> None:
        if read_depth < 1 or write_depth < 1:
            raise ValueError("queue depths must be >= 1")
        self.read_depth = read_depth
        self.write_depth = write_depth
        self.reads: Deque[MemoryRequest] = deque()
        self.writes: Deque[MemoryRequest] = deque()
        self.staging: Deque[MemoryRequest] = deque()
        # statistics
        self.admitted = 0
        self.staged = 0
        self.max_read_occupancy = 0
        self.max_write_occupancy = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, req: MemoryRequest) -> bool:
        """Try to place a request into its bounded queue.  Returns False (and
        stages the request) when the queue is full."""
        if self._try_place(req):
            return True
        self.staging.append(req)
        self.staged += 1
        return False

    def _try_place(self, req: MemoryRequest) -> bool:
        if req.is_write:
            if len(self.writes) >= self.write_depth:
                return False
            self.writes.append(req)
            if len(self.writes) > self.max_write_occupancy:
                self.max_write_occupancy = len(self.writes)
        else:
            if len(self.reads) >= self.read_depth:
                return False
            self.reads.append(req)
            if len(self.reads) > self.max_read_occupancy:
                self.max_read_occupancy = len(self.reads)
        self.admitted += 1
        return True

    def promote(self) -> int:
        """Move staged requests into the bounded queues, in order, while
        space allows.  Returns how many were promoted."""
        moved = 0
        # Requests must not leapfrog same-direction requests in staging, so
        # stop promoting a direction at its first blocked request.
        blocked_read = False
        blocked_write = False
        remaining: Deque[MemoryRequest] = deque()
        while self.staging:
            req = self.staging.popleft()
            if req.is_write:
                if not blocked_write and self._try_place(req):
                    moved += 1
                    continue
                blocked_write = True
            else:
                if not blocked_read and self._try_place(req):
                    moved += 1
                    continue
                blocked_read = True
            remaining.append(req)
        self.staging = remaining
        return moved

    # ------------------------------------------------------------------
    # Removal (the scheduler pops by identity after choosing)
    # ------------------------------------------------------------------
    def remove(self, req: MemoryRequest) -> None:
        q = self.writes if req.is_write else self.reads
        try:
            q.remove(req)
        except ValueError:
            raise ValueError(f"request {req!r} not queued") from None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.reads) + len(self.writes) + len(self.staging)

    @property
    def total_pending(self) -> int:
        return len(self)

    def iter_reads(self) -> Iterator[MemoryRequest]:
        return iter(self.reads)

    def iter_writes(self) -> Iterator[MemoryRequest]:
        return iter(self.writes)

    def count_row_reads(self, bank: int, row: int) -> int:
        """Read-queue requests targeting (bank, row) - BASE-HIT's signal."""
        return sum(1 for r in self.reads if r.bank == bank and r.row == row)

    def oldest_read(self) -> Optional[MemoryRequest]:
        return self.reads[0] if self.reads else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VaultQueues R={len(self.reads)}/{self.read_depth} "
            f"W={len(self.writes)}/{self.write_depth} "
            f"staged={len(self.staging)}>"
        )
