"""FR-FCFS memory access scheduling (Rixner et al., ISCA 2000 - Table I).

First-Ready means a request whose bank can accept a command *now* and whose
row is already open bypasses older requests; among equally ready requests the
oldest wins.  Reads have priority over writes except when the write queue
passes its high watermark, after which writes drain until the low watermark
(standard write-drain hysteresis; the paper's Table I gives 32-entry queues).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dram.bank import Bank
from repro.request import MemoryRequest
from repro.vault.queues import VaultQueues


class FRFCFSScheduler:
    """Chooses the next request a vault controller should issue."""

    def __init__(
        self,
        banks: Sequence[Bank],
        queues: VaultQueues,
        write_high_watermark: Optional[int] = None,
        write_low_watermark: Optional[int] = None,
    ) -> None:
        self.banks = banks
        self.queues = queues
        depth = queues.write_depth
        self.write_high = (
            write_high_watermark if write_high_watermark is not None else (3 * depth) // 4
        )
        self.write_low = (
            write_low_watermark if write_low_watermark is not None else depth // 4
        )
        if not 0 <= self.write_low <= self.write_high <= depth:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= depth")
        self.draining = False
        # statistics
        self.row_hit_issues = 0
        self.fcfs_issues = 0
        self.drain_entries = 0
        #: observability hook (repro.obs.Tracer); drain-mode transitions are
        #: the scheduler's only traced events - issue decisions are visible
        #: through the bank command stream already
        self.tracer = None
        self._vault_id = getattr(banks[0].bus, "vault_id", 0) if banks else 0

    # ------------------------------------------------------------------
    def _update_drain_state(self, now: int = 0) -> None:
        pending_writes = len(self.queues.writes)
        if not self.draining and pending_writes >= self.write_high:
            self.draining = True
            self.drain_entries += 1
            if self.tracer is not None:
                self.tracer.sched_drain(self._vault_id, True, pending_writes, now)
        elif self.draining and pending_writes <= self.write_low:
            self.draining = False
            if self.tracer is not None:
                self.tracer.sched_drain(self._vault_id, False, pending_writes, now)

    def _pick(self, queue: Sequence[MemoryRequest], now: int) -> Optional[MemoryRequest]:
        """FR-FCFS over one queue: oldest ready row-hit, else oldest ready."""
        oldest_ready: Optional[MemoryRequest] = None
        for req in queue:
            bank = self.banks[req.bank]
            if bank.busy_until > now:
                continue
            if bank.open_row == req.row:
                return req  # first (= oldest) ready row hit
            if oldest_ready is None:
                oldest_ready = req
        return oldest_ready

    def next_request(self, now: int) -> Optional[MemoryRequest]:
        """The request to issue at ``now``, already removed from its queue;
        None when nothing can issue."""
        self._update_drain_state(now)
        q = self.queues

        order = (
            (q.writes, q.reads) if self.draining else (q.reads, q.writes)
        )
        for queue in order:
            req = self._pick(queue, now)
            if req is not None:
                bank = self.banks[req.bank]
                if bank.open_row == req.row:
                    self.row_hit_issues += 1
                else:
                    self.fcfs_issues += 1
                q.remove(req)
                return req
        return None

    def earliest_wakeup(self, now: int) -> Optional[int]:
        """The soonest future cycle at which a queued request's bank frees
        up.  None when queues are empty or some bank is already idle (in
        which case issuing should happen now, not later)."""
        best: Optional[int] = None
        for queue in (self.queues.reads, self.queues.writes):
            for req in queue:
                t = self.banks[req.bank].busy_until
                if t <= now:
                    return None  # something is issueable right now
                if best is None or t < best:
                    best = t
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FRFCFS hits={self.row_hit_issues} fcfs={self.fcfs_issues} "
            f"draining={self.draining}>"
        )
