"""FR-FCFS memory access scheduling (Rixner et al., ISCA 2000 - Table I).

First-Ready means a request whose bank can accept a command *now* and whose
row is already open bypasses older requests; among equally ready requests the
oldest wins.  Reads have priority over writes except when the write queue
passes its high watermark, after which writes drain until the low watermark
(standard write-drain hysteresis; the paper's Table I gives 32-entry queues).

The issue scan runs over :class:`~repro.vault.queues.VaultQueues`' per-bank
buckets instead of the whole FIFO: only banks with pending work are visited,
a row hit is one ``(bank, open_row)`` dict probe, and oldest-first ties are
broken by the admission stamp ``req.qseq``.  This is litedram's per-bank
``BankMachine`` idea in Python form - ready state maintained incrementally,
not re-derived per issue slot - and is provably order-identical to the naive
FIFO scan: the naive scan returns the minimum-``qseq`` ready row hit, else
the minimum-``qseq`` ready request, and both minima distribute over the
per-bank partition (each bucket is ``qseq``-sorted, so bucket heads are the
only candidates the global minimum can come from).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.dram.bank import Bank
from repro.obs.hooks import noop
from repro.request import MemoryRequest
from repro.vault.queues import VaultQueues


class FRFCFSScheduler:
    """Chooses the next request a vault controller should issue."""

    def __init__(
        self,
        banks: Sequence[Bank],
        queues: VaultQueues,
        write_high_watermark: Optional[int] = None,
        write_low_watermark: Optional[int] = None,
    ) -> None:
        self.banks = banks
        self.queues = queues
        depth = queues.write_depth
        self.write_high = (
            write_high_watermark if write_high_watermark is not None else (3 * depth) // 4
        )
        self.write_low = (
            write_low_watermark if write_low_watermark is not None else depth // 4
        )
        if not 0 <= self.write_low <= self.write_high <= depth:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= depth")
        self.draining = False
        # statistics
        self.row_hit_issues = 0
        self.fcfs_issues = 0
        self.drain_entries = 0
        #: cumulative cycles spent in drain mode over closed episodes; the
        #: telemetry layer adds the open episode via :meth:`drain_cycles_at`
        self.drain_cycles = 0
        self._drain_since = 0
        self._vault_id = getattr(banks[0].bus, "vault_id", 0) if banks else 0
        #: drain-mode transitions are the scheduler's only traced events -
        #: issue decisions are visible through the bank command stream already
        self._tracer = None
        self._emit_drain = noop

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._emit_drain = tracer.sched_drain if tracer is not None else noop

    # ------------------------------------------------------------------
    def _update_drain_state(self, now: int = 0) -> None:
        pending_writes = len(self.queues.writes)
        if not self.draining and pending_writes >= self.write_high:
            self.draining = True
            self.drain_entries += 1
            self._drain_since = now
            self._emit_drain(self._vault_id, True, pending_writes, now)
        elif self.draining and pending_writes <= self.write_low:
            self.draining = False
            self.drain_cycles += now - self._drain_since
            self._emit_drain(self._vault_id, False, pending_writes, now)

    def drain_cycles_at(self, now: int) -> int:
        """Total drain-mode residency up to ``now``, open episode included."""
        total = self.drain_cycles
        if self.draining:
            total += now - self._drain_since
        return total

    def _pick(
        self,
        by_bank: Dict[int, Sequence[MemoryRequest]],
        by_row: Dict[Tuple[int, int], Sequence[MemoryRequest]],
        now: int,
    ) -> Optional[MemoryRequest]:
        """FR-FCFS over one direction: oldest ready row-hit, else oldest
        ready, scanning only banks with pending work."""
        banks = self.banks
        best_hit: Optional[MemoryRequest] = None
        best_ready: Optional[MemoryRequest] = None
        for bank_id, bucket in by_bank.items():
            bank = banks[bank_id]
            if bank.busy_until > now:
                continue
            open_row = bank.open_row
            if open_row is not None:
                hits = by_row.get((bank_id, open_row))
                if hits is not None:
                    cand = hits[0]
                    if best_hit is None or cand.qseq < best_hit.qseq:
                        best_hit = cand
                    # Any global row hit makes the ready fallback moot, so
                    # this bank's head need not compete for it.
                    continue
            cand = bucket[0]
            if best_ready is None or cand.qseq < best_ready.qseq:
                best_ready = cand
        return best_hit if best_hit is not None else best_ready

    def next_request(self, now: int) -> Optional[MemoryRequest]:
        """The request to issue at ``now``, already removed from its queue;
        None when nothing can issue."""
        q = self.queues
        if not q.reads_by_bank and not q.writes_by_bank:
            # Empty queues: the only drain-state work possibly pending is the
            # exit transition (entry needs a non-empty write queue), which
            # _update_drain_state resolves identically now or at the next
            # non-empty call - run it eagerly only when it can fire.
            if self.draining:
                self._update_drain_state(now)
            return None
        # Drain hysteresis, transition checks inlined (_update_drain_state
        # holds the reference semantics and still performs the transitions):
        # most calls cross neither watermark and pay two comparisons.
        pending_writes = len(q.writes)
        if self.draining:
            if pending_writes <= self.write_low:
                self._update_drain_state(now)
        elif pending_writes >= self.write_high:
            self._update_drain_state(now)

        # A direction with no buckets can be skipped without calling _pick
        # (it would scan an empty dict and return None anyway); the guard at
        # the top ensures at least one direction is non-empty.
        rb = q.reads_by_bank
        wb = q.writes_by_bank
        if self.draining:
            req = self._pick(wb, q.writes_by_row, now) if wb else None
            if req is None and rb:
                req = self._pick(rb, q.reads_by_row, now)
        else:
            req = self._pick(rb, q.reads_by_row, now) if rb else None
            if req is None and wb:
                req = self._pick(wb, q.writes_by_row, now)
        if req is None:
            return None
        if self.banks[req.bank].open_row == req.row:
            self.row_hit_issues += 1
        else:
            self.fcfs_issues += 1
        q.remove(req)
        return req

    def earliest_wakeup(self, now: int) -> Optional[int]:
        """The soonest future cycle at which a queued request's bank frees
        up.  None when queues are empty or some bank is already idle (in
        which case issuing should happen now, not later)."""
        best: Optional[int] = None
        banks = self.banks
        q = self.queues
        for by_bank in (q.reads_by_bank, q.writes_by_bank):
            for bank_id in by_bank:
                t = banks[bank_id].busy_until
                if t <= now:
                    return None  # something is issueable right now
                if best is None or t < best:
                    best = t
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FRFCFS hits={self.row_hit_issues} fcfs={self.fcfs_issues} "
            f"draining={self.draining}>"
        )
