"""Vault controllers: queues, FR-FCFS scheduling and the prefetch engine.

Each of the 32 vaults is functionally independent (paper Section 2.1): it
owns 16 banks, a read queue and a write queue of 32 entries each, an
FR-FCFS scheduler with an open-page policy, and - the subject of the paper -
a prefetch engine with a 16 KB prefetch buffer in the vault's logic base.
"""

from repro.vault.queues import VaultQueues
from repro.vault.scheduler import FRFCFSScheduler
from repro.vault.controller import VaultController

__all__ = ["VaultQueues", "FRFCFSScheduler", "VaultController"]
