"""The vault controller: where the paper's scheme actually lives.

A vault controller owns 16 banks, bounded read/write queues, an FR-FCFS
scheduler and - per the paper - the prefetch engine: a 16-entry row-granular
prefetch buffer plus whatever scheme-specific tables the bound
:class:`~repro.core.prefetcher.Prefetcher` carries (RUT/CT for CAMPS).

Event flow per demand request:

1. ``receive(req)`` at the request's vault-arrival cycle.  The prefetch
   buffer is probed first (22-cycle hit latency, Table I); hits never touch
   a bank.
2. Misses enter the bounded queues; ``_try_issue`` lets every idle bank
   accept its best FR-FCFS candidate.
3. ``_access_done`` fires when a bank access completes: the prefetcher hook
   runs, returned row fetches execute on the banks (internal TSV transfers,
   never the external links), the response is handed back to the device, and
   issuing continues.

The controller schedules at most one "wake" event at a time (the earliest
cycle a queued request's bank frees), so the event count stays ~2-3 per
request regardless of queue depth.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.buffer import PrefetchBuffer
from repro.core.prefetcher import PrefetchAction, Prefetcher
from repro.dram.bank import AccessKind, AccessResult, Bank
from repro.dram.bus import TsvBus
from repro.hmc.config import HMCConfig
from repro.request import MemoryRequest, ServiceSource
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatGroup
from repro.vault.queues import VaultQueues
from repro.vault.scheduler import FRFCFSScheduler

RespondFn = Callable[[MemoryRequest, int], None]


def _popcount(x: int) -> int:
    return bin(x).count("1")


class VaultController:
    """One vault's controller, scheduler and prefetch engine."""

    def __init__(
        self,
        vault_id: int,
        config: HMCConfig,
        engine: Engine,
        prefetcher: Prefetcher,
        respond_fn: RespondFn,
        record_commands: bool = False,
    ) -> None:
        self.vault_id = vault_id
        self.config = config
        self.engine = engine
        self.respond_fn = respond_fn
        # All banks in a vault share one TSV data bundle to the logic base;
        # whole-row prefetch transfers and demand bursts contend for it.
        self.tsv_bus = TsvBus(vault_id)
        self.banks: List[Bank] = [
            Bank(
                i,
                config.timings,
                record_commands=record_commands,
                bus=self.tsv_bus,
                closed_page=config.page_policy == "closed",
            )
            for i in range(config.banks_per_vault)
        ]
        self.queues = VaultQueues(
            read_depth=config.read_queue_depth,
            write_depth=config.write_queue_depth,
        )
        self.scheduler = FRFCFSScheduler(self.banks, self.queues)
        self.prefetcher = prefetcher
        prefetcher.bind(self)
        self.buffer: Optional[PrefetchBuffer] = None
        if prefetcher.uses_buffer:
            self.buffer = PrefetchBuffer(
                entries=config.pf_buffer_entries,
                lines_per_row=config.lines_per_row,
                policy=prefetcher.make_policy(),
            )
        #: observability hook (repro.obs.Tracer); every use is guarded by a
        #: single None check so an untraced run pays one attribute load
        self.tracer = None
        self.stats = StatGroup(f"vault{vault_id}")
        self._c_reads = self.stats.counter("demand_reads")
        self._c_writes = self.stats.counter("demand_writes")
        self._c_buf_hits = self.stats.counter("buffer_hits")
        self._c_buf_inflight = self.stats.counter("buffer_inflight_hits")
        self._c_prefetch_rows = self.stats.counter("prefetch_row_fetches")
        self._c_prefetch_lines = self.stats.counter("prefetch_lines")
        self._c_writebacks = self.stats.counter("dirty_row_writebacks")
        self._wake: Optional[Event] = None
        self._inflight = 0  # bank accesses with a pending completion event
        if config.refresh_enabled:
            # Stagger per-bank refreshes across the tREFI window so the
            # vault never refreshes every bank at once.
            step = max(1, config.timings.trefi_cpu // config.banks_per_vault)
            for i in range(config.banks_per_vault):
                engine.schedule(
                    (i + 1) * step, self._refresh_bank, i, priority=2, weak=True
                )

    # ------------------------------------------------------------------
    # External interface (called by the HMC device)
    # ------------------------------------------------------------------
    def receive(self, req: MemoryRequest) -> None:
        """A request packet arrived from the crossbar at ``engine.now``."""
        now = self.engine.now
        req.vault_arrive_cycle = now
        if self.buffer is not None:
            entry = self.buffer.lookup(req.bank, req.row, req.column, req.is_write)
            if entry is not None:
                in_flight = entry.ready_time > now
                if in_flight:
                    req.source = ServiceSource.ROW_IN_FLIGHT
                    self._c_buf_inflight.inc()
                else:
                    req.source = ServiceSource.PREFETCH_BUFFER
                self._c_buf_hits.inc()
                if self.tracer is not None:
                    self.tracer.prefetch_hit(
                        self.vault_id,
                        req.bank,
                        req.row,
                        entry.provenance,
                        now,
                        in_flight=in_flight,
                    )
                self.prefetcher.on_buffer_hit(
                    req.bank, req.row, req.column, req.is_write, now
                )
                serve = max(now, entry.ready_time) + self.config.pf_hit_latency
                self.respond_fn(req, serve)
                return
        self.queues.admit(req)
        self._try_issue()

    def pending_row_requests(self, bank: int, row: int) -> int:
        """Read-queue occupancy for one row (the BASE-HIT trigger input)."""
        return self.queues.count_row_reads(bank, row)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _refresh_bank(self, bank_id: int) -> None:
        """Per-bank REFRESH, re-armed every tREFI (paper Section 2.1: the
        vault controller manages refreshing)."""
        self.banks[bank_id].refresh(self.engine.now)
        self.engine.schedule(
            self.config.timings.trefi_cpu,
            self._refresh_bank,
            bank_id,
            priority=2,
            weak=True,
        )
        self._arm_wake()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _try_issue(self) -> None:
        now = self.engine.now
        while True:
            req = self.scheduler.next_request(now)
            if req is None:
                break
            # NOTE: the buffer is probed at request *arrival* only (receive).
            # A request that missed and entered the queue is committed to the
            # bank path even if its row is prefetched meanwhile - this
            # mirrors the paper's design and is why BASE-HIT's queue-triggered
            # prefetches are largely wasted there (Fig. 7).
            bank = self.banks[req.bank]
            kind = AccessKind.WRITE if req.is_write else AccessKind.READ
            result = bank.access(kind, req.row, now)
            self._inflight += 1
            self.engine.schedule_at(
                result.finish, self._access_done, req, result, priority=-1
            )
            self.queues.promote()
        self.queues.promote()
        self._arm_wake()

    def _arm_wake(self) -> None:
        """Keep exactly one wake event at the earliest useful cycle."""
        if self._inflight:
            # A completion event will re-run _try_issue anyway; an extra
            # wake is only needed when banks are busy solely due to
            # prefetch transfers (which have no completion events).
            pass
        t = self.scheduler.earliest_wakeup(self.engine.now)
        if t is None:
            return
        if self._wake is not None and not self._wake.cancelled:
            if self._wake.time <= t:
                return
            self._wake.cancel()
        self._wake = self.engine.schedule_at(t, self._wake_fired, priority=1)

    def _wake_fired(self) -> None:
        self._wake = None
        self._try_issue()

    # ------------------------------------------------------------------
    # Completion + prefetch execution
    # ------------------------------------------------------------------
    def _access_done(self, req: MemoryRequest, result: AccessResult) -> None:
        now = self.engine.now
        self._inflight -= 1
        if req.is_write:
            self._c_writes.inc()
        else:
            self._c_reads.inc()
        req.source = ServiceSource.BANK

        actions = self.prefetcher.on_demand_access(
            req.bank, req.row, req.column, req.is_write, result.outcome, now
        )
        for action in actions:
            self._execute_prefetch(action, now)

        self.respond_fn(req, now)
        self._try_issue()

    def _execute_prefetch(self, action: PrefetchAction, now: int) -> None:
        if self.buffer is None:
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.prefetch_issue(
                self.vault_id, action.bank, action.row, action.provenance, now
            )
        bank = self.banks[action.bank]
        full = (1 << self.config.lines_per_row) - 1
        if action.line_mask == full:
            result = bank.fetch_row(action.row, now)
        else:
            result = bank.fetch_lines(
                action.row,
                _popcount(action.line_mask),
                now,
                precharge_after=action.precharge_after,
            )
        self._c_prefetch_rows.inc()
        self._c_prefetch_lines.inc(_popcount(action.line_mask))
        victim = self.buffer.insert(
            action.bank,
            action.row,
            action.line_mask,
            result.finish,
            now,
            provenance=action.provenance,
        )
        if action.seed_ref_mask:
            entry = self.buffer.get(action.bank, action.row)
            if entry is not None:
                entry.seed_ref(action.seed_ref_mask)
        if tracer is not None:
            tracer.prefetch_fill(
                self.vault_id,
                action.bank,
                action.row,
                action.provenance,
                now,
                result.finish,
            )
            if victim is not None:
                tracer.buffer_replace(
                    self.vault_id,
                    action.bank,
                    action.row,
                    victim.bank,
                    victim.row,
                    self.buffer.policy.name,
                    now,
                )
                tracer.prefetch_evict(
                    self.vault_id,
                    victim.bank,
                    victim.row,
                    victim.provenance,
                    victim.was_used,
                    victim.utilization,
                    now,
                )
        if victim is not None and victim.is_dirty:
            # Dirty prefetched rows are restored to their bank on eviction.
            self.banks[victim.bank].restore_row(victim.row, now)
            self._c_writebacks.inc()

    # ------------------------------------------------------------------
    # End-of-run reporting
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero all measurement counters (banks, buffer, scheduler, bus)
        while preserving simulation state - the warmup boundary."""
        self.stats.reset()
        for b in self.banks:
            b.reset_counters()
        if self.buffer is not None:
            self.buffer.reset_accounting()
        self.prefetcher.prefetches_issued = 0
        self.scheduler.row_hit_issues = 0
        self.scheduler.fcfs_issues = 0
        self.scheduler.drain_entries = 0
        self.tsv_bus.reservations = 0
        self.tsv_bus.busy_cycles = 0

    def finalize(self) -> None:
        """Flush accuracy accounting for rows still resident in the buffer."""
        if self.buffer is not None:
            self.buffer.finalize()

    @property
    def demand_accesses(self) -> int:
        """Bank-level demand accesses (buffer hits excluded)."""
        return sum(b.demand_accesses for b in self.banks)

    @property
    def row_conflicts(self) -> int:
        return sum(b.conflicts for b in self.banks)

    def conflict_rate(self) -> float:
        """Row-buffer conflicts per *demand request to the vault*, buffer
        hits included in the denominator: serving a request from the
        prefetch buffer is precisely how a scheme avoids a conflict, so the
        rate is measured against all traffic the vault absorbed."""
        total = self.demand_accesses + self._c_buf_hits.value
        return self.row_conflicts / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VaultController {self.vault_id} scheme={self.prefetcher.name} "
            f"pending={len(self.queues)}>"
        )
