"""The vault controller: where the paper's scheme actually lives.

A vault controller owns 16 banks, bounded read/write queues, an FR-FCFS
scheduler and - per the paper - the prefetch engine: a 16-entry row-granular
prefetch buffer plus whatever scheme-specific tables the bound
:class:`~repro.core.prefetcher.Prefetcher` carries (RUT/CT for CAMPS).

Event flow per demand request:

1. ``receive(req)`` at the request's vault-arrival cycle.  The prefetch
   buffer is probed first (22-cycle hit latency, Table I); hits never touch
   a bank.
2. Misses enter the bounded queues; ``_try_issue`` lets every idle bank
   accept its best FR-FCFS candidate.
3. ``_access_done`` fires when a bank access completes: the prefetcher hook
   runs, returned row fetches execute on the banks (internal TSV transfers,
   never the external links), the response is handed back to the device, and
   issuing continues.

The controller schedules at most one "wake" event at a time (the earliest
cycle a queued request's bank frees), so the event count stays ~2-3 per
request regardless of queue depth.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, List, Optional

from repro.core.buffer import PrefetchBuffer
from repro.core.prefetcher import PrefetchAction, Prefetcher
from repro.dram.bank import AccessKind, AccessResult, Bank
from repro.dram.bus import TsvBus
from repro.hmc.config import HMCConfig
from repro.obs.hooks import noop
from repro.request import MemoryRequest, ServiceSource
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatGroup
from repro.vault.queues import VaultQueues
from repro.vault.scheduler import FRFCFSScheduler

RespondFn = Callable[[MemoryRequest, int], None]


def _popcount(x: int) -> int:
    return x.bit_count()


class VaultController:
    """One vault's controller, scheduler and prefetch engine."""

    def __init__(
        self,
        vault_id: int,
        config: HMCConfig,
        engine: Engine,
        prefetcher: Prefetcher,
        respond_fn: RespondFn,
        record_commands: bool = False,
    ) -> None:
        self.vault_id = vault_id
        self.config = config
        self.engine = engine
        self._respond_fn = respond_fn
        # All banks in a vault share one TSV data bundle to the logic base;
        # whole-row prefetch transfers and demand bursts contend for it.
        self.tsv_bus = TsvBus(vault_id)
        self.banks: List[Bank] = [
            Bank(
                i,
                config.timings,
                record_commands=record_commands,
                bus=self.tsv_bus,
                closed_page=config.page_policy == "closed",
            )
            for i in range(config.banks_per_vault)
        ]
        self.queues = VaultQueues(
            read_depth=config.read_queue_depth,
            write_depth=config.write_queue_depth,
        )
        self.scheduler = FRFCFSScheduler(self.banks, self.queues)
        self.prefetcher = prefetcher
        prefetcher.bind(self)
        # The base Prefetcher.on_buffer_hit is a documented no-op; resolve
        # that once so the buffer-hit path never pays the empty call.  Any
        # subclass override is bound here and called normally.
        obh = prefetcher.on_buffer_hit
        self._on_buffer_hit = (
            None if getattr(obh, "__func__", None) is Prefetcher.on_buffer_hit else obh
        )
        self.buffer: Optional[PrefetchBuffer] = None
        if prefetcher.uses_buffer:
            self.buffer = PrefetchBuffer(
                entries=config.pf_buffer_entries,
                lines_per_row=config.lines_per_row,
                policy=prefetcher.make_policy(),
            )
        #: instrumentation sites (repro.obs.hooks): rebound once per tracer
        #: assignment so hot paths never branch on tracer presence
        self._tracer = None
        self._rebind_hooks()
        self._pf_hit_latency = config.pf_hit_latency
        self.stats = StatGroup(f"vault{vault_id}")
        self._c_reads = self.stats.counter("demand_reads")
        self._c_writes = self.stats.counter("demand_writes")
        self._c_buf_hits = self.stats.counter("buffer_hits")
        self._c_buf_inflight = self.stats.counter("buffer_inflight_hits")
        self._c_prefetch_rows = self.stats.counter("prefetch_row_fetches")
        self._c_prefetch_lines = self.stats.counter("prefetch_lines")
        self._c_writebacks = self.stats.counter("dirty_row_writebacks")
        self._wake: Optional[Event] = None
        self._inflight = 0  # bank accesses with a pending completion event
        # _try_issue context pack: every object here is bound once (at
        # construction) and only ever mutated in place, so the tuple stays
        # current; one attribute read + a C-level unpack replaces a dozen
        # attribute chains in the issue-loop prologue.
        q = self.queues
        sched = self.scheduler
        self._issue_ctx = (
            sched,
            sched._pick,
            q.reads_by_bank,
            q.writes_by_bank,
            q.reads_by_row,
            q.writes_by_row,
            q.writes,
            sched.write_low,
            sched.write_high,
            self.banks,
            engine._heap,
            q.promote,
            self._access_done,
            q.remove,
        )
        self._wake_ctx = (
            engine,
            q.reads_by_bank,
            q.writes_by_bank,
            self.banks,
            engine._heap,
            self._wake_fired,
        )
        self._rebuild_hot_ctx()
        if config.refresh_enabled:
            # Stagger per-bank refreshes across the tREFI window so the
            # vault never refreshes every bank at once.
            step = max(1, config.timings.trefi_cpu // config.banks_per_vault)
            for i in range(config.banks_per_vault):
                engine.schedule(
                    (i + 1) * step, self._refresh_bank, i, priority=2, weak=True
                )

    # ------------------------------------------------------------------
    # Instrumentation (see repro.obs.hooks)
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        if tracer is not None:
            self._emit_pf_hit = tracer.prefetch_hit
            self._emit_pf_issue = tracer.prefetch_issue
            self._emit_pf_fill = tracer.prefetch_fill
            self._emit_pf_evict = tracer.prefetch_evict
            self._emit_buf_replace = tracer.buffer_replace
        else:
            self._rebind_hooks()

    def _rebind_hooks(self) -> None:
        self._emit_pf_hit = noop
        self._emit_pf_issue = noop
        self._emit_pf_fill = noop
        self._emit_pf_evict = noop
        self._emit_buf_replace = noop

    # ------------------------------------------------------------------
    # External interface (called by the HMC device)
    # ------------------------------------------------------------------
    @property
    def respond_fn(self) -> RespondFn:
        return self._respond_fn

    @respond_fn.setter
    def respond_fn(self, fn: RespondFn) -> None:
        # The host rewires the completion path after construction
        # (HMCDevice.set_deliver_fn); the hot-path context packs embed the
        # fn, so they are rebuilt on every rebind.
        self._respond_fn = fn
        self._rebuild_hot_ctx()

    def _rebuild_hot_ctx(self) -> None:
        """(Re)build the receive/_access_done context packs.

        Everything else in the packs is bound once at construction and only
        mutated in place; ``respond_fn`` is the one late-bound member.
        """
        buf = self.buffer
        self._recv_ctx = (
            self.engine,
            buf,
            buf._entries if buf is not None else None,
            self._pf_hit_latency,
            self._respond_fn,
            self.queues.admit,
            self._c_buf_hits,
            self._c_buf_inflight,
            self._on_buffer_hit,
        )
        self._done_ctx = (
            self.engine,
            self.prefetcher.on_demand_access,
            self._respond_fn,
            self._c_reads,
            self._c_writes,
        )

    def receive(self, req: MemoryRequest) -> None:
        """A request packet arrived from the crossbar at ``engine.now``."""
        (
            engine,
            buf,
            buf_entries,
            pf_hit_latency,
            respond_fn,
            admit,
            c_buf_hits,
            c_buf_inflight,
            obh,
        ) = self._recv_ctx
        now = engine.now
        req.vault_arrive_cycle = now
        if buf is not None:
            # PrefetchBuffer.lookup inlined (buffer.py keeps the reference
            # implementation): the probe runs once per demand packet, and
            # the miss half is one dict get plus a bit test.  ``_entries``
            # is bound once in PrefetchBuffer.__init__ and only mutated in
            # place, so probing it directly is safe.
            entry = buf_entries.get((req.bank, req.row))
            bit = 1 << req.column
            if entry is None or not (entry.valid_mask & bit):
                buf.misses += 1
                entry = None
            else:
                buf.hits += 1
                if not (entry.served_mask & bit):
                    entry.served_mask |= bit
                    buf.lines_used += 1
                entry.ref_mask |= bit
                entry.accesses += 1
                if req.is_write:
                    entry.dirty_mask |= bit
                buf._make_mru(entry, entry.recency)
            if entry is not None:
                ready = entry.ready_time
                in_flight = ready > now
                if in_flight:
                    req.source = ServiceSource.ROW_IN_FLIGHT
                    c_buf_inflight.value += 1
                else:
                    req.source = ServiceSource.PREFETCH_BUFFER
                c_buf_hits.value += 1
                emit = self._emit_pf_hit
                if emit is not noop:
                    emit(
                        self.vault_id,
                        req.bank,
                        req.row,
                        entry.provenance,
                        now,
                        in_flight=in_flight,
                    )
                if obh is not None:
                    obh(req.bank, req.row, req.column, req.is_write, now)
                serve = (ready if ready > now else now) + pf_hit_latency
                respond_fn(req, serve)
                return
        admit(req)
        self._try_issue()

    def pending_row_requests(self, bank: int, row: int) -> int:
        """Read-queue occupancy for one row (the BASE-HIT trigger input)."""
        return self.queues.count_row_reads(bank, row)

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def _refresh_bank(self, bank_id: int) -> None:
        """Per-bank REFRESH, re-armed every tREFI (paper Section 2.1: the
        vault controller manages refreshing)."""
        self.banks[bank_id].refresh(self.engine.now)
        self.engine.schedule(
            self.config.timings.trefi_cpu,
            self._refresh_bank,
            bank_id,
            priority=2,
            weak=True,
        )
        self._arm_wake()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _try_issue(self) -> None:
        engine = self.engine
        now = engine.now
        # FRFCFSScheduler.next_request inlined below (the scheduler keeps the
        # reference implementation and the public API): at one frame per
        # issue slot plus one per exhausted scan, the method call itself was
        # the last per-issue overhead left in this loop.  See _issue_ctx for
        # why the packed aliases stay current.
        (
            sched,
            pick,
            rbb,
            wbb,
            rbr,
            wbr,
            writes_q,
            wlow,
            whigh,
            banks,
            heap,
            promote,
            access_done,
            remove,
        ) = self._issue_ctx
        if not rbb and not wbb:
            # Nothing queued: no pick, no promote (staging implies a full
            # queue), no wake to arm.  Only a pending write-drain *exit* can
            # matter here, and running it eagerly mirrors what the scheduler
            # does on its own empty fast path.
            if sched.draining:
                sched._update_drain_state(now)
            return
        q = self.queues
        read, write = AccessKind.READ, AccessKind.WRITE
        issued = 0
        while True:
            # Write-drain hysteresis: most iterations cross neither
            # watermark and pay two comparisons (_update_drain_state keeps
            # the transition semantics).
            pending_writes = len(writes_q)
            if sched.draining:
                if pending_writes <= wlow:
                    sched._update_drain_state(now)
            elif pending_writes >= whigh:
                sched._update_drain_state(now)
            # FRFCFSScheduler._pick fused into the loop (the scheduler keeps
            # the reference implementation): oldest ready row-hit, else
            # oldest ready, scanning only banks with pending work.  Two
            # copies - preferred direction then fallback - so no per-slot
            # direction tuples are built.
            if sched.draining:
                by_bank, by_row = wbb, wbr
            else:
                by_bank, by_row = rbb, rbr
            req = best_ready = None
            for bank_id, bucket in by_bank.items():
                bank = banks[bank_id]
                if bank.busy_until > now:
                    continue
                open_row = bank.open_row
                if open_row is not None:
                    hits = by_row.get((bank_id, open_row))
                    if hits is not None:
                        cand = hits[0]
                        if req is None or cand.qseq < req.qseq:
                            req = cand
                        continue
                cand = bucket[0]
                if best_ready is None or cand.qseq < best_ready.qseq:
                    best_ready = cand
            if req is None:
                req = best_ready
            if req is None:
                if sched.draining:
                    by_bank, by_row = rbb, rbr
                else:
                    by_bank, by_row = wbb, wbr
                for bank_id, bucket in by_bank.items():
                    bank = banks[bank_id]
                    if bank.busy_until > now:
                        continue
                    open_row = bank.open_row
                    if open_row is not None:
                        hits = by_row.get((bank_id, open_row))
                        if hits is not None:
                            cand = hits[0]
                            if req is None or cand.qseq < req.qseq:
                                req = cand
                            continue
                    cand = bucket[0]
                    if best_ready is None or cand.qseq < best_ready.qseq:
                        best_ready = cand
                if req is None:
                    req = best_ready
            if req is None:
                break
            # NOTE: the buffer is probed at request *arrival* only (receive).
            # A request that missed and entered the queue is committed to the
            # bank path even if its row is prefetched meanwhile - this
            # mirrors the paper's design and is why BASE-HIT's queue-triggered
            # prefetches are largely wasted there (Fig. 7).
            bank = banks[req.bank]
            if bank.open_row == req.row:
                sched.row_hit_issues += 1
            else:
                sched.fcfs_issues += 1
            remove(req)
            result = bank.access(write if req.is_write else read, req.row, now)
            issued += 1
            # Engine.call_at inlined (the method stays the reference):
            # result.finish is structurally >= now, priority -1 orders the
            # completion ahead of same-cycle arrivals exactly as before.
            engine._seq = seq = engine._seq + 1
            heappush(heap, (result.finish, -1, seq, access_done, (req, result)))
            engine._strong += 1
            if q.staging:
                promote()
            if not rbb and not wbb:
                # Queues drained mid-scan: mirror next_request's empty fast
                # path (eager drain exit only).
                if sched.draining:
                    sched._update_drain_state(now)
                break
        self._inflight += issued
        if q.staging:
            promote()
        self._arm_wake()

    def _arm_wake(self) -> None:
        """Keep exactly one wake event at the earliest useful cycle.

        A completion event re-runs _try_issue anyway, but a wake is still
        needed while banks are busy solely due to prefetch transfers (which
        have no completion events) - so the timer is armed unconditionally.
        """
        engine, rb, wb, banks, heap, wake_fired = self._wake_ctx
        if not rb and not wb:
            return  # nothing queued: earliest_wakeup would return None
        # earliest_wakeup inlined (FRFCFSScheduler.earliest_wakeup holds the
        # reference semantics): soonest busy-until among banks with work,
        # None-equivalent bail-out when some such bank is already idle.
        now = engine.now
        t = None
        for bank_id in rb:
            b = banks[bank_id].busy_until
            if b <= now:
                return  # issueable right now; no timer needed
            if t is None or b < t:
                t = b
        for bank_id in wb:
            b = banks[bank_id].busy_until
            if b <= now:
                return
            if t is None or b < t:
                t = b
        wake = self._wake
        if wake is not None and not wake.cancelled:
            if wake.time <= t:
                return
            wake.cancel()
        # Engine.schedule_at inlined (the method stays the reference).  This
        # is the one hot site that needs a *cancellable* handle (the
        # cancel-then-reschedule pattern above), so it walks the Event pool
        # exactly as schedule_at does; t > now structurally - every bank
        # considered had busy_until > now.
        engine._seq = seq = engine._seq + 1
        pool = engine._pool
        if pool:
            ev = pool.pop()
            ev.time = t
            ev.priority = 1
            ev.seq = seq
            ev.fn = wake_fired
            ev.args = ()
            ev.cancelled = False
            ev.fired = False
            ev.weak = False
        else:
            ev = Event(t, 1, seq, wake_fired, (), engine=engine)
        heappush(heap, (t, 1, seq, ev))
        engine._strong += 1
        self._wake = ev

    def _wake_fired(self) -> None:
        self._wake = None
        self._try_issue()

    # ------------------------------------------------------------------
    # Completion + prefetch execution
    # ------------------------------------------------------------------
    def _access_done(self, req: MemoryRequest, result: AccessResult) -> None:
        engine, on_demand_access, respond_fn, c_reads, c_writes = self._done_ctx
        now = engine.now
        self._inflight -= 1
        if req.is_write:
            c_writes.value += 1
        else:
            c_reads.value += 1
        req.source = ServiceSource.BANK

        actions = on_demand_access(
            req.bank, req.row, req.column, req.is_write, result.outcome, now
        )
        if actions:
            for action in actions:
                self._execute_prefetch(action, now)

        respond_fn(req, now)
        self._try_issue()

    def _execute_prefetch(self, action: PrefetchAction, now: int) -> None:
        if self.buffer is None:
            return
        self._emit_pf_issue(
            self.vault_id, action.bank, action.row, action.provenance, now
        )
        bank = self.banks[action.bank]
        full = (1 << self.config.lines_per_row) - 1
        if action.line_mask == full:
            result = bank.fetch_row(action.row, now)
        else:
            result = bank.fetch_lines(
                action.row,
                _popcount(action.line_mask),
                now,
                precharge_after=action.precharge_after,
            )
        self._c_prefetch_rows.inc()
        self._c_prefetch_lines.inc(_popcount(action.line_mask))
        victim = self.buffer.insert(
            action.bank,
            action.row,
            action.line_mask,
            result.finish,
            now,
            provenance=action.provenance,
        )
        if action.seed_ref_mask:
            entry = self.buffer.get(action.bank, action.row)
            if entry is not None:
                entry.seed_ref(action.seed_ref_mask)
        self._emit_pf_fill(
            self.vault_id,
            action.bank,
            action.row,
            action.provenance,
            now,
            result.finish,
        )
        if victim is not None:
            self._emit_buf_replace(
                self.vault_id,
                action.bank,
                action.row,
                victim.bank,
                victim.row,
                self.buffer.policy.name,
                now,
            )
            self._emit_pf_evict(
                self.vault_id,
                victim.bank,
                victim.row,
                victim.provenance,
                victim.was_used,
                victim.utilization,
                now,
            )
        if victim is not None and victim.is_dirty:
            # Dirty prefetched rows are restored to their bank on eviction.
            self.banks[victim.bank].restore_row(victim.row, now)
            self._c_writebacks.inc()

    # ------------------------------------------------------------------
    # End-of-run reporting
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero all measurement counters (banks, buffer, scheduler, bus)
        while preserving simulation state - the warmup boundary."""
        self.stats.reset()
        for b in self.banks:
            b.reset_counters()
        if self.buffer is not None:
            self.buffer.reset_accounting()
        self.prefetcher.prefetches_issued = 0
        self.scheduler.row_hit_issues = 0
        self.scheduler.fcfs_issues = 0
        self.scheduler.drain_entries = 0
        self.scheduler.drain_cycles = 0
        self.tsv_bus.reservations = 0
        self.tsv_bus.busy_cycles = 0

    def finalize(self) -> None:
        """Flush accuracy accounting for rows still resident in the buffer."""
        if self.buffer is not None:
            self.buffer.finalize()

    @property
    def queue_occupancy(self) -> float:
        """Fraction of the combined read+write queue capacity in use (a
        telemetry gauge; polled, never maintained on the hot path)."""
        depth = self.queues.read_depth + self.queues.write_depth
        return len(self.queues) / depth if depth else 0.0

    @property
    def demand_accesses(self) -> int:
        """Bank-level demand accesses (buffer hits excluded)."""
        return sum(b.demand_accesses for b in self.banks)

    @property
    def row_conflicts(self) -> int:
        return sum(b.conflicts for b in self.banks)

    def conflict_rate(self) -> float:
        """Row-buffer conflicts per *demand request to the vault*, buffer
        hits included in the denominator: serving a request from the
        prefetch buffer is precisely how a scheme avoids a conflict, so the
        rate is measured against all traffic the vault absorbed."""
        total = self.demand_accesses + self._c_buf_hits.value
        return self.row_conflicts / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VaultController {self.vault_id} scheme={self.prefetcher.name} "
            f"pending={len(self.queues)}>"
        )
