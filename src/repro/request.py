"""The memory request record that flows core -> caches -> host -> vault.

One :class:`MemoryRequest` represents a 64 B cache-line transaction (an LLC
miss or a dirty writeback).  It carries its cube coordinates (decoded once at
the host controller), a small set of timestamps used by the metrics layer
(AMAT, Figure 8), and a completion callback that re-wakes the issuing core.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class ServiceSource(enum.Enum):
    """Where a request's data ultimately came from."""

    BANK = "bank"  # DRAM bank via the normal queue/scheduler path
    PREFETCH_BUFFER = "buffer"  # vault prefetch buffer hit
    ROW_IN_FLIGHT = "in_flight"  # merged with a row fetch already in progress


class MemoryRequest:
    """A single cache-line read or write presented to the HMC.

    Requests are poolable: front-ends that create one request per trace
    record at a high rate allocate through :meth:`acquire`, and the host
    controller releases delivered requests back to the freelist when the
    system declares them single-owner (``System`` enables recycling only
    when no component retains completed requests).  A released request must
    not be touched again through any retained reference.
    """

    __slots__ = (
        "req_id",
        "addr",
        "is_write",
        "core_id",
        "cube",
        "vault",
        "bank",
        "row",
        "column",
        "qseq",
        "issue_cycle",
        "host_cycle",
        "vault_arrive_cycle",
        "complete_cycle",
        "source",
        "callback",
        "meta",
    )

    _next_id = 0
    _pool: list = []

    def __init__(
        self,
        addr: int,
        is_write: bool,
        core_id: int = 0,
        issue_cycle: int = 0,
        callback: Optional[Callable[["MemoryRequest"], Any]] = None,
    ) -> None:
        MemoryRequest._next_id += 1
        self.req_id = MemoryRequest._next_id
        self.addr = addr
        self.is_write = is_write
        self.core_id = core_id
        # cube coordinates, filled by the host controller's address decode;
        # ``cube`` stays 0 on the single-cube path (only the fabric host
        # writes it, before any read - safe across pool recycling)
        self.cube = 0
        self.vault = -1
        self.bank = -1
        self.row = -1
        self.column = -1
        # vault-queue admission order (repro.vault.queues assigns it); the
        # FR-FCFS oldest-first tie-breaker, distinct from req_id because
        # link serialization can reorder arrivals relative to creation
        self.qseq = 0
        # timeline
        self.issue_cycle = issue_cycle  # left the LLC
        self.host_cycle = -1  # entered the HMC host controller
        self.vault_arrive_cycle = -1  # reached the vault controller
        self.complete_cycle = -1  # data back at the host
        self.source: Optional[ServiceSource] = None
        self.callback = callback
        self.meta: Optional[dict] = None

    @classmethod
    def acquire(
        cls,
        addr: int,
        is_write: bool,
        core_id: int = 0,
        issue_cycle: int = 0,
        callback: Optional[Callable[["MemoryRequest"], Any]] = None,
    ) -> "MemoryRequest":
        """Pooled constructor: reuse a released request when one is free.

        A reused object gets a fresh ``req_id`` and the caller-supplied
        fields; the coordinate and timeline slots keep their previous-life
        values.  That is invisible to the simulation - recycling is only
        enabled on the direct core->host path, where ``HostController.send``
        overwrites every coordinate and ``host_cycle`` before any read, the
        vault stamps ``vault_arrive_cycle``/``source``/``qseq`` on arrival,
        and ``complete_cycle`` is written at delivery - so results stay
        byte-identical to fresh allocation at a fraction of the re-init cost.
        """
        pool = cls._pool
        if pool:
            req = pool.pop()
            MemoryRequest._next_id += 1
            req.req_id = MemoryRequest._next_id
            req.addr = addr
            req.is_write = is_write
            req.core_id = core_id
            req.issue_cycle = issue_cycle
            req.callback = callback
            return req
        return cls(addr, is_write, core_id, issue_cycle, callback)

    @classmethod
    def release(cls, req: "MemoryRequest") -> None:
        """Return a delivered request to the freelist.  The caller asserts
        nothing else holds a live reference."""
        req.callback = None
        req.meta = None
        cls._pool.append(req)

    @property
    def latency(self) -> int:
        """Host-observed round-trip latency in cycles (valid once complete)."""
        if self.complete_cycle < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.complete_cycle - self.issue_cycle

    @property
    def is_complete(self) -> bool:
        return self.complete_cycle >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"<MemReq#{self.req_id} {kind} 0x{self.addr:x} "
            f"v{self.vault}b{self.bank}r{self.row}c{self.column}>"
        )
