"""The memory request record that flows core -> caches -> host -> vault.

One :class:`MemoryRequest` represents a 64 B cache-line transaction (an LLC
miss or a dirty writeback).  It carries its cube coordinates (decoded once at
the host controller), a small set of timestamps used by the metrics layer
(AMAT, Figure 8), and a completion callback that re-wakes the issuing core.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class ServiceSource(enum.Enum):
    """Where a request's data ultimately came from."""

    BANK = "bank"  # DRAM bank via the normal queue/scheduler path
    PREFETCH_BUFFER = "buffer"  # vault prefetch buffer hit
    ROW_IN_FLIGHT = "in_flight"  # merged with a row fetch already in progress


class MemoryRequest:
    """A single cache-line read or write presented to the HMC."""

    __slots__ = (
        "req_id",
        "addr",
        "is_write",
        "core_id",
        "vault",
        "bank",
        "row",
        "column",
        "issue_cycle",
        "host_cycle",
        "vault_arrive_cycle",
        "complete_cycle",
        "source",
        "callback",
        "meta",
    )

    _next_id = 0

    def __init__(
        self,
        addr: int,
        is_write: bool,
        core_id: int = 0,
        issue_cycle: int = 0,
        callback: Optional[Callable[["MemoryRequest"], Any]] = None,
    ) -> None:
        MemoryRequest._next_id += 1
        self.req_id = MemoryRequest._next_id
        self.addr = addr
        self.is_write = is_write
        self.core_id = core_id
        # cube coordinates, filled by the host controller's address decode
        self.vault = -1
        self.bank = -1
        self.row = -1
        self.column = -1
        # timeline
        self.issue_cycle = issue_cycle  # left the LLC
        self.host_cycle = -1  # entered the HMC host controller
        self.vault_arrive_cycle = -1  # reached the vault controller
        self.complete_cycle = -1  # data back at the host
        self.source: Optional[ServiceSource] = None
        self.callback = callback
        self.meta: Optional[dict] = None

    @property
    def latency(self) -> int:
        """Host-observed round-trip latency in cycles (valid once complete)."""
        if self.complete_cycle < 0:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.complete_cycle - self.issue_cycle

    @property
    def is_complete(self) -> bool:
        return self.complete_cycle >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (
            f"<MemReq#{self.req_id} {kind} 0x{self.addr:x} "
            f"v{self.vault}b{self.bank}r{self.row}c{self.column}>"
        )
