"""Parallel campaign execution: sharded, resumable experiment grids.

A campaign is a set of independent (workload, scheme, config, seed) cells —
a figure grid, a seed sweep, an ablation — executed across a
``multiprocessing`` worker pool with per-cell timeouts, bounded retry,
failure isolation, and a resumable JSONL manifest.  It is the execution
backend behind ``run_matrix(jobs=...)``, ``run_seeded(jobs=...)``,
``Sweep.run(jobs=...)`` and the ``python -m repro campaign`` command.

Usage::

    from repro.campaign import CampaignOptions, Manifest, grid_cells, run_campaign
    from repro.experiments.runner import ExperimentConfig

    cells = grid_cells(["HM1", "LM1"], ["base", "camps-mod"],
                       ExperimentConfig(refs_per_core=2000))
    res = run_campaign(cells, CampaignOptions(jobs=4, timeout=120, retries=1),
                       manifest=Manifest("campaign.jsonl"))
    res.raise_on_failure()
    matrix = res.matrix()   # deterministic: ordered by cell id

Interrupted?  Re-run with ``CampaignOptions(..., resume=True)`` and only the
unfinished cells execute.
"""

from repro.campaign.executor import (
    CampaignError,
    CampaignOptions,
    CampaignResult,
    execute_cell,
    matrix_digest,
    retry_delay,
    run_campaign,
    summarize,
)
from repro.campaign.manifest import (
    MANIFEST_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellRecord,
    ClaimRecord,
    Manifest,
    ManifestScan,
)
from repro.campaign.progress import CampaignProgress
from repro.campaign.spec import Cell, fabric_grid_cells, grid_cells

__all__ = [
    "Cell",
    "CellRecord",
    "ClaimRecord",
    "CampaignError",
    "CampaignOptions",
    "CampaignProgress",
    "CampaignResult",
    "Manifest",
    "ManifestScan",
    "MANIFEST_VERSION",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "execute_cell",
    "fabric_grid_cells",
    "grid_cells",
    "matrix_digest",
    "retry_delay",
    "run_campaign",
    "summarize",
]
