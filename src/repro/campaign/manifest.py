"""Resumable campaign manifests: one JSONL record per finished cell.

The manifest is the campaign's durable progress log.  Every completed or
failed cell appends exactly one line, flushed immediately, so a campaign
killed mid-run can be re-invoked with ``resume=True`` and re-execute only
the cells that never finished (or that finished with an error).

File layout::

    {"kind": "header", "version": 1, "cells": 8, "jobs": 4}
    {"cell_id": "...", "workload": "HM1", "scheme": "base", "status": "ok",
     "attempts": 1, "elapsed": 1.93, "summary": {...}}
    {"cell_id": "...", ..., "status": "timeout", "error": "..."}

The header may carry campaign metadata (cell count, worker count) so live
monitors (``repro monitor``) can report progress against a known total;
readers ignore keys they do not understand.

A header with an unknown version invalidates the whole file (it is rewritten
fresh rather than mixing incompatible records); unreadable lines are skipped,
so a record truncated by a crash costs one cell, not the campaign.

Work-stealing records
---------------------
``repro serve`` extends the same file into a multi-writer, lease-based work
queue.  Two additional record kinds interleave with terminal cell records::

    {"kind": "claim", "cell_id": "...", "worker": "s0", "gen": 2,
     "clock": 17, "lease": 41, "spec": {...}}
    {"kind": "tick", "worker": "s0", "clock": 18}

A *claim* announces that one scheduler generation owns a cell until the
logical clock passes ``lease``; *ticks* are scheduler heartbeats that
advance the clock.  The clock is logical — the max ``clock`` stamped on any
claim/tick — so lease expiry is driven by surviving schedulers making
progress, never by wall-clock skew between writers.  A claim whose owner
died (no renewals) expires after ``lease - clock`` ticks of the survivors
and the cell is stolen and re-run; ``spec`` carries enough of the cell to
rebuild it in a process that never saw the original submission.

Terminal records stay the authoritative exactly-once merge: claims and
ticks are invisible to :meth:`Manifest.records`, so every pre-serve reader
(resume, monitors, the HTML report) sees exactly the layout it always did.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

MANIFEST_VERSION = 1

#: terminal cell states recorded in the manifest
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: non-terminal record kinds (work-stealing queue overlay + tracing)
KIND_HEADER = "header"
KIND_CLAIM = "claim"
KIND_TICK = "tick"
KIND_SPAN = "span"


@dataclass
class CellRecord:
    """Terminal outcome of one cell (one manifest line)."""

    cell_id: str
    workload: str
    scheme: str
    status: str  # "ok" | "error" | "timeout"
    attempts: int
    elapsed: float
    summary: Optional[dict] = None  # _CACHED_FIELDS projection when ok
    error: Optional[str] = None
    cached: bool = False  # satisfied from the ResultCache, not simulated
    #: structured diagnosis from the integrity layer (repro.sim.integrity):
    #: reason, stuck component, violations, crash-dump path.  A diagnosed
    #: error is deterministic - resume skips the cell instead of retrying it.
    diagnosis: Optional[dict] = None
    #: path of the RunReport artifact (repro.obs.report) written for this
    #: cell, when the campaign ran with a report directory.  Cached and
    #: resumed cells carry no report (nothing was simulated).  Optional
    #: field within MANIFEST_VERSION 1: older readers ignore unknown keys.
    report: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass(frozen=True)
class ClaimRecord:
    """A lease on one cell held by one scheduler generation.

    ``gen`` is the worker/scheduler generation id (monotonic across
    re-attaches to the same manifest: a restarted scheduler claims with a
    higher generation, so duplicate claims resolve deterministically —
    higher generation wins, then higher clock, then worker name).  ``clock``
    is the logical timestamp at claim time and ``lease`` the logical expiry;
    ``spec`` is an optional portable cell description so a stealing peer can
    rebuild the cell without the original submission.
    """

    cell_id: str
    worker: str
    gen: int
    clock: int
    lease: int
    spec: Optional[dict] = None
    #: trace id of the submission that created the cell (repro.obs.spans).
    #: Carried in the claim so a *stolen* cell keeps its trace across
    #: processes and restarts; optional and ignored by older readers.
    trace: Optional[str] = None

    def beats(self, other: Optional["ClaimRecord"]) -> bool:
        """Claim-conflict resolution: higher (gen, clock, worker) wins."""
        if other is None:
            return True
        return (self.gen, self.clock, self.worker) > (
            other.gen,
            other.clock,
            other.worker,
        )


@dataclass
class ManifestScan:
    """Full parse of a manifest as a work queue: terminal records, the
    winning claim per cell, and the logical-clock high-water mark."""

    records: Dict[str, CellRecord] = field(default_factory=dict)
    claims: Dict[str, ClaimRecord] = field(default_factory=dict)
    clock: int = 0
    max_gen: int = 0

    def expired(self, cell_id: str) -> bool:
        """True when the cell is claimed, unfinished, and past its lease."""
        claim = self.claims.get(cell_id)
        if claim is None or cell_id in self.records:
            return False
        return claim.lease < self.clock


class Manifest:
    """Append-only JSONL progress log keyed by cell id."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> Dict[str, CellRecord]:
        """Parse the manifest; last record per cell wins.

        Returns ``{}`` for a missing file, a version-incompatible file, or a
        file with no parseable records.
        """
        if not self.path.exists():
            return {}
        out: Dict[str, CellRecord] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return {}
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write (crash mid-append): skip this cell
            if not isinstance(raw, dict):
                continue
            if raw.get("kind") == KIND_HEADER:
                if raw.get("version") != MANIFEST_VERSION:
                    return {}  # incompatible manifest: treat as empty
                continue
            if i == 0:
                return {}  # headerless file predates the manifest format
            if "kind" in raw:
                continue  # claim/tick/future overlay records: not terminal
            try:
                rec = CellRecord(
                    cell_id=raw["cell_id"],
                    workload=raw["workload"],
                    scheme=raw["scheme"],
                    status=raw["status"],
                    attempts=int(raw.get("attempts", 1)),
                    elapsed=float(raw.get("elapsed", 0.0)),
                    summary=raw.get("summary"),
                    error=raw.get("error"),
                    cached=bool(raw.get("cached", False)),
                    diagnosis=raw.get("diagnosis"),
                    report=raw.get("report"),
                )
            except (KeyError, TypeError, ValueError):
                continue
            out[rec.cell_id] = rec
        return out

    def scan(self) -> ManifestScan:
        """Parse the manifest as a work queue: terminal records, winning
        claims, and the logical-clock high-water mark.

        Torn lines (a crash mid-append — including a torn *claim* as the
        very last record) are skipped exactly as in :meth:`records`; a
        duplicate claim for one cell resolves by
        :meth:`ClaimRecord.beats` (higher generation wins).  Returns an
        empty scan for a missing or version-incompatible file.
        """
        out = ManifestScan()
        if not self.path.exists():
            return out
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return out
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write: costs one record, not the queue
            if not isinstance(raw, dict):
                continue
            kind = raw.get("kind")
            if kind == KIND_HEADER:
                if raw.get("version") != MANIFEST_VERSION:
                    return ManifestScan()
                continue
            if i == 0:
                return ManifestScan()  # headerless: predates the format
            if kind == KIND_TICK:
                try:
                    out.clock = max(out.clock, int(raw["clock"]))
                except (KeyError, TypeError, ValueError):
                    pass
                try:
                    if "gen" in raw:
                        out.max_gen = max(out.max_gen, int(raw["gen"]))
                except (TypeError, ValueError):
                    pass
                continue
            if kind == KIND_CLAIM:
                trace = raw.get("trace")
                try:
                    claim = ClaimRecord(
                        cell_id=raw["cell_id"],
                        worker=str(raw.get("worker", "?")),
                        gen=int(raw["gen"]),
                        clock=int(raw["clock"]),
                        lease=int(raw["lease"]),
                        spec=raw.get("spec"),
                        trace=trace if isinstance(trace, str) else None,
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                out.clock = max(out.clock, claim.clock)
                out.max_gen = max(out.max_gen, claim.gen)
                if claim.beats(out.claims.get(claim.cell_id)):
                    out.claims[claim.cell_id] = claim
                continue
            if kind is not None:
                continue  # unknown overlay kind from a newer writer
            try:
                rec = CellRecord(
                    cell_id=raw["cell_id"],
                    workload=raw["workload"],
                    scheme=raw["scheme"],
                    status=raw["status"],
                    attempts=int(raw.get("attempts", 1)),
                    elapsed=float(raw.get("elapsed", 0.0)),
                    summary=raw.get("summary"),
                    error=raw.get("error"),
                    cached=bool(raw.get("cached", False)),
                    diagnosis=raw.get("diagnosis"),
                    report=raw.get("report"),
                )
            except (KeyError, TypeError, ValueError):
                continue
            out.records[rec.cell_id] = rec
        return out

    def header(self) -> Optional[dict]:
        """The parsed header line, or None for a missing/invalid manifest."""
        try:
            with open(self.path) as fh:
                first = fh.readline()
        except OSError:
            return None
        try:
            raw = json.loads(first)
        except json.JSONDecodeError:
            return None
        if not isinstance(raw, dict) or raw.get("kind") != "header":
            return None
        if raw.get("version") != MANIFEST_VERSION:
            return None
        return raw

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def reset(self, meta: Optional[dict] = None) -> None:
        """Start a fresh manifest (header only), discarding old records.

        ``meta`` keys (e.g. ``cells``, ``jobs``) are merged into the header
        for consumers that want campaign totals without scanning records.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "header", "version": MANIFEST_VERSION}
        if meta:
            header.update({k: v for k, v in meta.items() if k not in header})
        with open(self.path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, record: CellRecord) -> None:
        """Durably append one terminal cell record."""
        payload = {k: v for k, v in asdict(record).items() if v is not None}
        self._append_line(payload, durable=True)

    def append_claim(self, claim: ClaimRecord) -> None:
        """Durably append one work-queue claim (or lease renewal)."""
        payload: dict = {
            "kind": KIND_CLAIM,
            "cell_id": claim.cell_id,
            "worker": claim.worker,
            "gen": claim.gen,
            "clock": claim.clock,
            "lease": claim.lease,
        }
        if claim.spec is not None:
            payload["spec"] = claim.spec
        if claim.trace is not None:
            payload["trace"] = claim.trace
        self._append_line(payload, durable=True)

    def append_span(self, payload: dict) -> None:
        """Append one tracing span record (:mod:`repro.obs.spans`).

        Spans are observability, not state: flushed but never fsynced (a
        crash loses at most the in-flight span), invisible to
        :meth:`records`/:meth:`scan` merging, and safe to interleave from
        many writers like every other overlay record.
        """
        if payload.get("kind") != KIND_SPAN:
            payload = {**payload, "kind": KIND_SPAN}
        self._append_line(payload, durable=False)

    def append_tick(
        self, worker: str, clock: int, gen: Optional[int] = None
    ) -> None:
        """Append one scheduler heartbeat advancing the logical clock.

        Ticks are frequent and individually disposable (the clock is a max
        over all of them), so they are flushed but not fsynced.  A tick may
        carry the writer's generation (the attach-time announcement): that
        publishes the generation even before the scheduler's first claim,
        so a later attach cannot hand the same generation out again.
        """
        payload: dict = {"kind": KIND_TICK, "worker": worker, "clock": clock}
        if gen is not None:
            payload["gen"] = gen
        self._append_line(payload, durable=gen is not None)

    def _append_line(self, payload: dict, durable: bool) -> None:
        """One-line O_APPEND write shared by every record kind.

        Multi-writer safe for the short lines the queue overlay emits:
        append-mode writes of a single buffered line land atomically on
        local filesystems, and readers tolerate torn lines regardless.
        A torn *trailing* line (a peer crashed mid-append) is healed with a
        newline first, so the tear stays confined to the crashed writer's
        record instead of corrupting ours too.  Raises ``OSError`` (e.g.
        ENOSPC) to the caller — the serve layer retries terminal records
        until they land.
        """
        if not self.path.exists():
            self.reset()
        with open(self.path, "ab") as fh:
            prefix = b""
            try:
                if fh.tell() > 0:
                    with open(self.path, "rb") as tail:
                        tail.seek(-1, os.SEEK_END)
                        if tail.read(1) != b"\n":
                            prefix = b"\n"
            except OSError:
                pass
            fh.write(prefix + json.dumps(payload).encode() + b"\n")
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
