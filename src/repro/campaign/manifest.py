"""Resumable campaign manifests: one JSONL record per finished cell.

The manifest is the campaign's durable progress log.  Every completed or
failed cell appends exactly one line, flushed immediately, so a campaign
killed mid-run can be re-invoked with ``resume=True`` and re-execute only
the cells that never finished (or that finished with an error).

File layout::

    {"kind": "header", "version": 1, "cells": 8, "jobs": 4}
    {"cell_id": "...", "workload": "HM1", "scheme": "base", "status": "ok",
     "attempts": 1, "elapsed": 1.93, "summary": {...}}
    {"cell_id": "...", ..., "status": "timeout", "error": "..."}

The header may carry campaign metadata (cell count, worker count) so live
monitors (``repro monitor``) can report progress against a known total;
readers ignore keys they do not understand.

A header with an unknown version invalidates the whole file (it is rewritten
fresh rather than mixing incompatible records); unreadable lines are skipped,
so a record truncated by a crash costs one cell, not the campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

MANIFEST_VERSION = 1

#: terminal cell states recorded in the manifest
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class CellRecord:
    """Terminal outcome of one cell (one manifest line)."""

    cell_id: str
    workload: str
    scheme: str
    status: str  # "ok" | "error" | "timeout"
    attempts: int
    elapsed: float
    summary: Optional[dict] = None  # _CACHED_FIELDS projection when ok
    error: Optional[str] = None
    cached: bool = False  # satisfied from the ResultCache, not simulated
    #: structured diagnosis from the integrity layer (repro.sim.integrity):
    #: reason, stuck component, violations, crash-dump path.  A diagnosed
    #: error is deterministic - resume skips the cell instead of retrying it.
    diagnosis: Optional[dict] = None
    #: path of the RunReport artifact (repro.obs.report) written for this
    #: cell, when the campaign ran with a report directory.  Cached and
    #: resumed cells carry no report (nothing was simulated).  Optional
    #: field within MANIFEST_VERSION 1: older readers ignore unknown keys.
    report: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class Manifest:
    """Append-only JSONL progress log keyed by cell id."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> Dict[str, CellRecord]:
        """Parse the manifest; last record per cell wins.

        Returns ``{}`` for a missing file, a version-incompatible file, or a
        file with no parseable records.
        """
        if not self.path.exists():
            return {}
        out: Dict[str, CellRecord] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return {}
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write (crash mid-append): skip this cell
            if not isinstance(raw, dict):
                continue
            if raw.get("kind") == "header":
                if raw.get("version") != MANIFEST_VERSION:
                    return {}  # incompatible manifest: treat as empty
                continue
            if i == 0:
                return {}  # headerless file predates the manifest format
            try:
                rec = CellRecord(
                    cell_id=raw["cell_id"],
                    workload=raw["workload"],
                    scheme=raw["scheme"],
                    status=raw["status"],
                    attempts=int(raw.get("attempts", 1)),
                    elapsed=float(raw.get("elapsed", 0.0)),
                    summary=raw.get("summary"),
                    error=raw.get("error"),
                    cached=bool(raw.get("cached", False)),
                    diagnosis=raw.get("diagnosis"),
                    report=raw.get("report"),
                )
            except (KeyError, TypeError, ValueError):
                continue
            out[rec.cell_id] = rec
        return out

    def header(self) -> Optional[dict]:
        """The parsed header line, or None for a missing/invalid manifest."""
        try:
            with open(self.path) as fh:
                first = fh.readline()
        except OSError:
            return None
        try:
            raw = json.loads(first)
        except json.JSONDecodeError:
            return None
        if not isinstance(raw, dict) or raw.get("kind") != "header":
            return None
        if raw.get("version") != MANIFEST_VERSION:
            return None
        return raw

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def reset(self, meta: Optional[dict] = None) -> None:
        """Start a fresh manifest (header only), discarding old records.

        ``meta`` keys (e.g. ``cells``, ``jobs``) are merged into the header
        for consumers that want campaign totals without scanning records.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "header", "version": MANIFEST_VERSION}
        if meta:
            header.update({k: v for k, v in meta.items() if k not in header})
        with open(self.path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, record: CellRecord) -> None:
        """Durably append one terminal cell record."""
        if not self.path.exists():
            self.reset()
        payload = {k: v for k, v in asdict(record).items() if v is not None}
        with open(self.path, "a") as fh:
            fh.write(json.dumps(payload) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
