"""Campaign cell specifications.

A *campaign* is a set of independent simulation cells — (workload, scheme,
config, seed) tuples — executed by :mod:`repro.campaign.executor` across a
worker pool.  :class:`Cell` is the unit of work: everything a worker needs
to rebuild the simulation in a fresh process, plus a deterministic
``cell_id`` that names the cell in manifests, caches and merged results.

The id reuses :meth:`repro.experiments.runner.ExperimentConfig.cache_key`
(human-readable prefix) and appends a short digest over the *full* cell
state — every ``HMCConfig`` field, any scheme constructor kwargs, and the
trace-generation config — so two cells that differ only in a field the
cache key does not cover still get distinct ids.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.experiments.runner import ExperimentConfig
from repro.hmc.config import HMCConfig


def _canonical(value: Any) -> Any:
    """JSON-encodable canonical form of a cell attribute."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _digest(payload: Any) -> str:
    text = json.dumps(_canonical(payload), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Cell:
    """One independent simulation: the campaign's unit of work.

    ``scheme_kwargs`` are forwarded to the scheme constructor (as in
    :class:`repro.system.System`); cells that carry them bypass the result
    cache, whose key does not cover scheme parameters.  ``trace_config``
    overrides the config used for *trace generation* only — sweeps generate
    traces under the default platform so every sweep point sees the same
    reference stream (matching :meth:`repro.experiments.sweep.Sweep.run`).
    """

    workload: str
    scheme: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    scheme_kwargs: Optional[Dict[str, Any]] = None
    trace_config: Optional[HMCConfig] = None
    #: fabric topology spec ("chain:4", "ring:2", ...); ``None`` runs the
    #: single-cube :class:`~repro.system.System` path.  When set, the cell's
    #: workload names a Table II mix replicated one-stream-per-cube (see
    #: :meth:`repro.workloads.multistream.MultiStreamSpec.per_cube`).
    topology: Optional[str] = None

    @property
    def cell_id(self) -> str:
        base = self.config.cache_key(self.workload, self.scheme)
        payload: Dict[str, Any] = {
            "hmc": self.config.hmc,
            "scheme_kwargs": self.scheme_kwargs,
            "trace_config": self.trace_config,
        }
        if self.topology is not None:
            # keyed in only when set: every pre-fabric cell id (caches,
            # manifests, resume state) must stay byte-identical
            payload["topology"] = self.topology
            base = f"{base}@{self.topology}"
        token = _digest(payload)
        return f"{base}|{token}"

    @property
    def cacheable(self) -> bool:
        """True when the shared :class:`ResultCache` key fully identifies
        this cell (no scheme kwargs, no trace-config override, no fabric
        topology - the cache key predates all three)."""
        return (
            self.scheme_kwargs is None
            and self.trace_config is None
            and self.topology is None
        )

    def describe(self) -> str:
        if self.topology is not None:
            return f"{self.workload}/{self.scheme}@{self.topology}"
        return f"{self.workload}/{self.scheme}"


def grid_cells(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: Optional[ExperimentConfig] = None,
) -> List[Cell]:
    """The (workloads x schemes) grid as a flat cell list, in the same
    (workload-major) order the serial :func:`run_matrix` loop uses."""
    cfg = config or ExperimentConfig()
    return [Cell(w, s, cfg) for w in workloads for s in schemes]


def fabric_grid_cells(
    topologies: Iterable[str],
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: Optional[ExperimentConfig] = None,
) -> List[Cell]:
    """The (topology x workload x scheme) scenario grid as a flat cell list.

    Every topology spec is validated up front (a typo should fail the
    campaign at build time, not after N-1 cells have run).  Order is
    topology-major so all cells of one fabric shape land adjacent in
    manifests and summaries.
    """
    from repro.fabric.topology import parse_topology

    specs = list(topologies)
    for spec in specs:
        parse_topology(spec)
    cfg = config or ExperimentConfig()
    return [
        Cell(w, s, cfg, topology=t)
        for t in specs
        for w in workloads
        for s in schemes
    ]
