"""Campaign cell specifications.

A *campaign* is a set of independent simulation cells — (workload, scheme,
config, seed) tuples — executed by :mod:`repro.campaign.executor` across a
worker pool.  :class:`Cell` is the unit of work: everything a worker needs
to rebuild the simulation in a fresh process, plus a deterministic
``cell_id`` that names the cell in manifests, caches and merged results.

The id reuses :meth:`repro.experiments.runner.ExperimentConfig.cache_key`
(human-readable prefix) and appends a short digest over the *full* cell
state — every ``HMCConfig`` field, any scheme constructor kwargs, and the
trace-generation config — so two cells that differ only in a field the
cache key does not cover still get distinct ids.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.experiments.runner import ExperimentConfig
from repro.hmc.config import HMCConfig


def _canonical(value: Any) -> Any:
    """JSON-encodable canonical form of a cell attribute."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _digest(payload: Any) -> str:
    text = json.dumps(_canonical(payload), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Cell:
    """One independent simulation: the campaign's unit of work.

    ``scheme_kwargs`` are forwarded to the scheme constructor (as in
    :class:`repro.system.System`); cells that carry them bypass the result
    cache, whose key does not cover scheme parameters.  ``trace_config``
    overrides the config used for *trace generation* only — sweeps generate
    traces under the default platform so every sweep point sees the same
    reference stream (matching :meth:`repro.experiments.sweep.Sweep.run`).
    """

    workload: str
    scheme: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    scheme_kwargs: Optional[Dict[str, Any]] = None
    trace_config: Optional[HMCConfig] = None

    @property
    def cell_id(self) -> str:
        base = self.config.cache_key(self.workload, self.scheme)
        token = _digest(
            {
                "hmc": self.config.hmc,
                "scheme_kwargs": self.scheme_kwargs,
                "trace_config": self.trace_config,
            }
        )
        return f"{base}|{token}"

    @property
    def cacheable(self) -> bool:
        """True when the shared :class:`ResultCache` key fully identifies
        this cell (no scheme kwargs, no trace-config override)."""
        return self.scheme_kwargs is None and self.trace_config is None

    def describe(self) -> str:
        return f"{self.workload}/{self.scheme}"


def grid_cells(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: Optional[ExperimentConfig] = None,
) -> List[Cell]:
    """The (workloads x schemes) grid as a flat cell list, in the same
    (workload-major) order the serial :func:`run_matrix` loop uses."""
    cfg = config or ExperimentConfig()
    return [Cell(w, s, cfg) for w in workloads for s in schemes]
