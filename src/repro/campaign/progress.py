"""Live campaign progress and ETA, built on the observability counters.

The reporter owns a :class:`repro.obs.CounterRegistry` with one gauge per
campaign statistic (done / ok / failed / cached / resumed / retried) under
the ``campaign`` scope, so tools that already consume registry snapshots
(exporters, tests) see campaign state through the same interface as
simulator counters.  When ``enabled`` it also prints one line per finished
cell with a wall-clock ETA extrapolated from the mean cell runtime divided
by the worker count.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.counters import CounterRegistry


def _fmt_duration(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"


class CampaignProgress:
    """Counts cell outcomes; optionally narrates them with an ETA."""

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        enabled: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.enabled = enabled
        self.stream = stream or sys.stdout
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.resumed = 0
        self.retried = 0
        self._executed = 0
        self._elapsed_sum = 0.0
        self._t0 = time.monotonic()
        self.registry = CounterRegistry()
        scope = self.registry.scope("campaign")
        scope.register("total", lambda: self.total)
        for name in ("done", "ok", "failed", "cached", "resumed", "retried"):
            scope.register(name, (lambda n=name: getattr(self, n)))

    # ------------------------------------------------------------------
    def cell_done(self, record: Any, source: str = "executed") -> None:
        """Count one terminal cell; ``source`` is executed/cached/resumed."""
        self.done += 1
        if record.ok:
            self.ok += 1
        else:
            self.failed += 1
        # Cache hits and resumed cells must never feed the rate estimate:
        # they complete in ~0s, so folding them into the mean would make
        # ETAs on resumed/warm-cache campaigns wildly optimistic.  The
        # record's own ``cached`` flag is honoured too, so a mislabelled
        # source cannot leak a 0s sample into the mean.
        if source == "cached" or getattr(record, "cached", False):
            self.cached += 1
        elif source == "resumed":
            self.resumed += 1
        else:
            self._executed += 1
            self._elapsed_sum += record.elapsed
        if not self.enabled:
            return
        note = "" if source == "executed" else f" ({source})"
        status = record.status if record.ok else record.status.upper()
        line = (
            f"  [{self.done}/{self.total}] {record.workload}/{record.scheme} "
            f"{status}{note} {record.elapsed:.1f}s"
        )
        diagnosis = getattr(record, "diagnosis", None)
        if diagnosis:
            line += f"  [{diagnosis.get('reason', 'integrity')}]"
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            line += f"  eta {_fmt_duration(eta)}"
        print(line, file=self.stream, flush=True)

    def retry(self, cell: Any, attempt: int, reason: str) -> None:
        self.retried += 1
        if self.enabled:
            print(
                f"  retrying {cell.describe()} (attempt {attempt} failed: "
                f"{reason})",
                file=self.stream,
                flush=True,
            )

    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate; None until one cell has *run*.

        The mean cell runtime is computed over executed cells only — cached
        and resumed cells are excluded (they finish in ~0s and would drag
        the mean toward zero).  The mean is divided by the *effective*
        parallelism ``min(jobs, remaining)``: with 3 cells left an 8-worker
        pool runs at most 3 of them, so dividing by 8 would understate the
        tail of every campaign.
        """
        if self._executed == 0:
            return None
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        mean = self._elapsed_sum / self._executed
        return remaining * mean / min(self.jobs, remaining)

    def wall_seconds(self) -> float:
        """Wall-clock seconds since the campaign started."""
        return time.monotonic() - self._t0

    def status(self) -> dict:
        """JSON-ready campaign totals for telemetry consumers."""
        eta = self.eta_seconds()
        return {
            "total": self.total,
            "done": self.done,
            "ok": self.ok,
            "failed": self.failed,
            "cached": self.cached,
            "resumed": self.resumed,
            "retried": self.retried,
            "executed": self._executed,
            "jobs": self.jobs,
            "eta_seconds": round(eta, 3) if eta is not None else None,
            "wall_seconds": round(self.wall_seconds(), 3),
        }

    def snapshot(self) -> dict:
        return self.registry.snapshot()
