"""Live campaign progress and ETA, built on the observability counters.

The reporter owns a :class:`repro.obs.CounterRegistry` with one gauge per
campaign statistic (done / ok / failed / cached / resumed / retried) under
the ``campaign`` scope, so tools that already consume registry snapshots
(exporters, tests) see campaign state through the same interface as
simulator counters.  When ``enabled`` it also prints one line per finished
cell with a wall-clock ETA extrapolated from the mean cell runtime divided
by the worker count.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.counters import CounterRegistry


def _fmt_duration(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"


class CampaignProgress:
    """Counts cell outcomes; optionally narrates them with an ETA."""

    def __init__(
        self,
        total: int,
        jobs: int = 1,
        enabled: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.enabled = enabled
        self.stream = stream or sys.stdout
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.resumed = 0
        self.retried = 0
        self._executed = 0
        self._elapsed_sum = 0.0
        self._t0 = time.monotonic()
        self.registry = CounterRegistry()
        scope = self.registry.scope("campaign")
        scope.register("total", lambda: self.total)
        for name in ("done", "ok", "failed", "cached", "resumed", "retried"):
            scope.register(name, (lambda n=name: getattr(self, n)))

    # ------------------------------------------------------------------
    def cell_done(self, record: Any, source: str = "executed") -> None:
        """Count one terminal cell; ``source`` is executed/cached/resumed."""
        self.done += 1
        if record.ok:
            self.ok += 1
        else:
            self.failed += 1
        if source == "cached":
            self.cached += 1
        elif source == "resumed":
            self.resumed += 1
        else:
            self._executed += 1
            self._elapsed_sum += record.elapsed
        if not self.enabled:
            return
        note = "" if source == "executed" else f" ({source})"
        status = record.status if record.ok else record.status.upper()
        line = (
            f"  [{self.done}/{self.total}] {record.workload}/{record.scheme} "
            f"{status}{note} {record.elapsed:.1f}s"
        )
        diagnosis = getattr(record, "diagnosis", None)
        if diagnosis:
            line += f"  [{diagnosis.get('reason', 'integrity')}]"
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            line += f"  eta {_fmt_duration(eta)}"
        print(line, file=self.stream, flush=True)

    def retry(self, cell: Any, attempt: int, reason: str) -> None:
        self.retried += 1
        if self.enabled:
            print(
                f"  retrying {cell.describe()} (attempt {attempt} failed: "
                f"{reason})",
                file=self.stream,
                flush=True,
            )

    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate; None until one cell has run."""
        if self._executed == 0:
            return None
        mean = self._elapsed_sum / self._executed
        remaining = self.total - self.done
        return remaining * mean / self.jobs

    def snapshot(self) -> dict:
        return self.registry.snapshot()
