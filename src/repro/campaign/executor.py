"""Sharded campaign execution across a multiprocessing worker pool.

:func:`run_campaign` takes a list of :class:`~repro.campaign.spec.Cell`
specs and drives them to terminal state:

* **Sharding** — up to ``jobs`` persistent worker processes, each fed one
  cell at a time over a pipe.  Workers are spawn-safe: the cell runner is a
  picklable module-level callable, so the pool works under both the ``fork``
  (default on Linux) and ``spawn`` start methods.
* **Failure isolation** — a cell that raises, or a worker that dies, yields
  a recorded ``error`` for that cell (and a respawned worker), never a dead
  campaign.
* **Timeout** — with ``jobs >= 2`` each attempt has a wall-clock budget;
  an overrunning worker is terminated and the cell recorded as ``timeout``
  (timeouts are terminal: a deterministic simulator that hung once will
  hang again, so retrying only multiplies the loss).
* **Retry** — crashed/raising attempts are retried up to ``retries`` times
  with exponential backoff before the error becomes terminal.
* **Resume** — with a :class:`~repro.campaign.manifest.Manifest` and
  ``resume=True``, cells already recorded ``ok`` are not re-executed.
* **Deterministic merge** — :meth:`CampaignResult.matrix` orders results by
  cell id, so serial and parallel campaigns over the same cells produce
  identical summaries regardless of completion order (pin with
  :func:`matrix_digest`).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.manifest import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellRecord,
    Manifest,
)
from repro.campaign.progress import CampaignProgress
from repro.campaign.spec import Cell
from repro.experiments.runner import _CACHED_FIELDS, ResultCache
from repro.metrics.collectors import ResultMatrix
from repro.obs import telemetry as _telemetry
from repro.obs.telemetry import publish_system
from repro.system import SimulationResult, System, SystemConfig

#: worker telemetry spec shipped to the child process:
#: (spool_dir, worker_name, heartbeat_interval)
TelemetrySpec = Tuple[str, str, float]

#: a cell runner maps (cell, attempt) -> summary dict (the _CACHED_FIELDS
#: projection); it must be a module-level callable so spawn can pickle it
CellRunner = Callable[[Cell, int], dict]


class CampaignError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_on_failure`."""


#: ceiling on any single retry delay, however deep the attempt count
MAX_RETRY_DELAY = 30.0


def retry_delay(
    cell_id: str, attempt: int, base: float, cap: float = MAX_RETRY_DELAY
) -> float:
    """Deterministic full-jitter backoff for one (cell, attempt).

    Classic exponential backoff retries every victim of a simultaneous
    failure (say, a worker host dying with eight cells in flight) at the
    same instant, stampeding whatever resource just recovered.  Full jitter
    draws uniformly from ``[0, base * 2**(attempt-1)]`` (capped) instead —
    and seeding the draw from ``(cell_id, attempt)`` keeps the schedule
    reproducible: the same cell retries at the same offsets in every run,
    while distinct cells de-synchronize.
    """
    import hashlib
    import random

    span = min(cap, base * (2 ** (max(attempt, 1) - 1)))
    if span <= 0.0:
        return 0.0
    seed = int.from_bytes(
        hashlib.sha256(f"{cell_id}#{attempt}".encode()).digest()[:8], "big"
    )
    return random.Random(seed).uniform(0.0, span)


def summarize(result: SimulationResult) -> dict:
    """Project a result onto the picklable persisted-summary fields."""
    return {f: getattr(result, f) for f in _CACHED_FIELDS}


def execute_cell(
    cell: Cell, attempt: int = 1, report_dir: Optional[str] = None
) -> dict:
    """Default cell runner: build the system, simulate, return the summary.

    Runs in the worker process; trace generation is seeded, so regenerating
    per cell yields byte-identical traces to the serial shared-trace loop.

    With ``report_dir`` set (``functools.partial`` keeps the runner
    picklable under spawn), the run carries a counter tracer and the
    default-epoch time series sampler and writes a
    :class:`~repro.obs.report.RunReport` to ``<report_dir>/<cell_id>.json``.
    Neither changes the returned summary: telemetry never perturbs
    simulation order, so cached and reported cells stay digest-identical.

    Cells carrying a ``topology`` spec run the multi-cube
    :class:`~repro.fabric.system.FabricSystem` path instead (same summary
    projection, same report/telemetry plumbing).
    """
    from repro.workloads.mixes import mix as make_mix

    if cell.topology is not None:
        return _execute_fabric_cell(cell, attempt, report_dir)
    cfg = cell.config
    trace_hmc = cell.trace_config if cell.trace_config is not None else cfg.hmc
    traces = make_mix(cell.workload, cfg.refs_per_core, seed=cfg.seed, config=trace_hmc)
    tracer = None
    epoch = None
    if report_dir is not None:
        from repro.obs import Tracer
        from repro.obs.timeseries import DEFAULT_EPOCH

        tracer = Tracer()
        epoch = DEFAULT_EPOCH
    system = System(
        traces,
        SystemConfig(
            hmc=cfg.hmc,
            scheme=cell.scheme,
            integrity=cfg.integrity,
            timeseries_epoch=epoch,
        ),
        workload=cell.workload,
        scheme_kwargs=cell.scheme_kwargs,
        tracer=tracer,
    )
    # Hand the live system to the telemetry sampler thread, if one is
    # armed for this process (a single is-None check otherwise — the
    # hot-path digests stay byte-identical with telemetry disabled).
    publish_system(system)
    try:
        result = system.run()
    finally:
        publish_system(None)
    if report_dir is not None:
        from repro.obs import build_run_report

        build_run_report(
            system, result, cell_id=cell.cell_id, attempt=attempt
        ).save(cell_report_path(report_dir, cell.cell_id))
    return summarize(result)


def _execute_fabric_cell(
    cell: Cell, attempt: int = 1, report_dir: Optional[str] = None
) -> dict:
    """Fabric cell runner (module-level: picklable under spawn).

    ``cell.workload`` names one Table II mix, replicated as one independent
    stream per cube (each with its own RNG stream, homed at its cube); the
    scheme runs per-vault in every cube.  Trace generation is seeded, so a
    cell reproduces byte-identically regardless of worker or attempt.
    """
    from repro.fabric import FabricConfig, FabricSystem, FabricSystemConfig
    from repro.workloads.multistream import MultiStreamSpec, build_stream_traces

    cfg = cell.config
    fabric = FabricConfig.from_spec(cell.topology, hmc=cfg.hmc)
    spec = MultiStreamSpec.per_cube(
        cell.workload, fabric.cubes, cfg.refs_per_core, seed=cfg.seed
    )
    traces = build_stream_traces(spec, fabric)
    tracer = None
    epoch = None
    if report_dir is not None:
        from repro.obs import Tracer
        from repro.obs.timeseries import DEFAULT_EPOCH

        tracer = Tracer()
        epoch = DEFAULT_EPOCH
    fsys = FabricSystem(
        traces,
        FabricSystemConfig(
            fabric=fabric, scheme=cell.scheme, timeseries_epoch=epoch
        ),
        # topology-qualified: ResultMatrix keys by (workload, scheme), so a
        # topology sweep of one mix must not collapse to a single entry
        workload=f"{cell.workload}@{cell.topology}",
        scheme_kwargs=cell.scheme_kwargs,
        tracer=tracer,
    )
    publish_system(fsys)
    try:
        result = fsys.run()
    finally:
        publish_system(None)
    if report_dir is not None:
        from repro.obs import build_run_report

        build_run_report(
            fsys,
            result,
            cell_id=cell.cell_id,
            attempt=attempt,
            topology=cell.topology,
        ).save(cell_report_path(report_dir, cell.cell_id))
    return summarize(result)


def cell_report_path(report_dir: Union[str, "os.PathLike"], cell_id: str) -> "Path":
    """Where :func:`execute_cell` writes a cell's RunReport artifact."""
    from pathlib import Path

    return Path(report_dir) / f"{cell_id}.json"


@dataclass(frozen=True)
class CampaignOptions:
    """Execution policy for one campaign."""

    jobs: int = 1
    timeout: Optional[float] = None  # per-attempt wall-clock seconds (jobs >= 2)
    retries: int = 0
    backoff: float = 0.1  # base retry delay; doubles per attempt
    resume: bool = False
    progress: bool = False
    start_method: Optional[str] = None  # default: fork if available, else spawn
    #: write per-worker heartbeat spools (implied by watch/telemetry_port)
    telemetry: bool = False
    #: spool directory; default ``<manifest>.telemetry`` next to the manifest
    telemetry_dir: Optional[str] = None
    #: seconds between heartbeats
    telemetry_interval: float = _telemetry.DEFAULT_INTERVAL
    #: serve /snapshot and /metrics on this port (0 = ephemeral)
    telemetry_port: Optional[int] = None
    #: render the live terminal status board in the campaign process
    watch: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")

    @property
    def telemetry_enabled(self) -> bool:
        return (
            self.telemetry
            or self.watch
            or self.telemetry_dir is not None
            or self.telemetry_port is not None
        )


@dataclass
class CampaignResult:
    """Terminal state of every cell plus campaign-level statistics."""

    cells: List[Cell]  # deduplicated, submission order
    records: Dict[str, CellRecord]  # by cell id
    stats: Dict[str, int]
    wall_seconds: float

    @property
    def failures(self) -> List[CellRecord]:
        return [r for r in self.records.values() if not r.ok]

    def raise_on_failure(self) -> None:
        bad = self.failures
        if bad:
            parts = []
            for r in bad[:5]:
                desc = f"{r.workload}/{r.scheme}: {r.status} ({r.error})"
                if r.diagnosis:
                    reason = r.diagnosis.get("reason", "integrity")
                    dump = r.diagnosis.get("crash_dump")
                    desc += f" [diagnosed: {reason}" + (
                        f", dump: {dump}]" if dump else "]"
                    )
                parts.append(desc)
            detail = "; ".join(parts)
            raise CampaignError(f"{len(bad)} cell(s) failed: {detail}")

    def result_for(self, cell_id: str) -> SimulationResult:
        rec = self.records[cell_id]
        if not rec.ok:
            raise CampaignError(
                f"cell {rec.workload}/{rec.scheme} ended {rec.status}: {rec.error}"
            )
        return SimulationResult(
            extra={"campaign": True, "cell_id": cell_id, "attempts": rec.attempts},
            **rec.summary,
        )

    def matrix(self) -> ResultMatrix:
        """Successful cells as a :class:`ResultMatrix`, ordered by cell id
        (deterministic merge: independent of completion order)."""
        out = ResultMatrix()
        for cid in sorted(r.cell_id for r in self.records.values() if r.ok):
            out.add(self.result_for(cid))
        return out


def matrix_digest(matrix: ResultMatrix) -> str:
    """Canonical digest of a matrix's persisted summaries.

    Serial and parallel campaigns over the same cells must agree on this
    value — it hashes the `_CACHED_FIELDS` projection of every result in
    sorted (workload, scheme) order, ignoring per-run ``extra`` annotations.
    """
    import hashlib
    import json

    items = []
    for key in sorted(matrix.results):
        r = matrix.results[key]
        items.append({f: getattr(r, f) for f in _CACHED_FIELDS})
    return hashlib.sha256(json.dumps(items, sort_keys=True).encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker pool plumbing
# ----------------------------------------------------------------------


def _worker_loop(
    conn: Any, runner: CellRunner, telemetry: Optional[TelemetrySpec] = None
) -> None:
    """Worker process body: run cells off the pipe until told to stop."""
    wt = None
    if telemetry is not None:
        spool_dir, worker_name, interval = telemetry
        try:
            wt = _telemetry.activate_worker(spool_dir, worker_name, interval)
        except OSError:
            wt = None  # unwritable spool dir: run blind, never refuse work
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        cell, attempt = task
        if wt is not None:
            wt.cell_start(cell, attempt)
        t0 = time.perf_counter()
        try:
            summary = runner(cell, attempt)
            payload: Tuple[str, Any, float] = (
                STATUS_OK,
                summary,
                time.perf_counter() - t0,
            )
        except Exception as exc:
            error: Any = traceback.format_exc(limit=8)
            # Integrity failures carry a structured diagnosis (and have
            # already written their crash dump in this process); ship it
            # across the pipe so the manifest records it.
            diagnosis = getattr(exc, "report", None)
            if isinstance(diagnosis, dict) and diagnosis:
                error = {"error": error, "diagnosis": diagnosis}
            payload = (
                STATUS_ERROR,
                error,
                time.perf_counter() - t0,
            )
        if wt is not None:
            wt.cell_end(payload[0], payload[2])
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
    if wt is not None:
        _telemetry.deactivate_worker()
    try:
        conn.close()
    except OSError:
        pass


def _default_start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class _Worker:
    """One pool slot: a process, its pipe, and the task it is running."""

    def __init__(
        self,
        ctx: Any,
        runner: CellRunner,
        telemetry: Optional[TelemetrySpec] = None,
    ) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_loop, args=(child_conn, runner, telemetry), daemon=True
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[Tuple[Cell, int]] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def assign(self, cell: Cell, attempt: int, timeout: Optional[float]) -> None:
        self.conn.send((cell, attempt))
        self.task = (cell, attempt)
        self.deadline = (time.monotonic() + timeout) if timeout else None

    def take_task(self) -> Tuple[Cell, int]:
        task = self.task
        assert task is not None
        self.task = None
        self.deadline = None
        return task

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2)
            if self.proc.is_alive():  # pragma: no cover - stubborn child
                self.proc.kill()
                self.proc.join(timeout=2)
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self) -> None:
        """Polite stop for an idle worker; escalates to kill."""
        if self.proc.is_alive() and not self.busy:
            try:
                self.conn.send(None)
                self.proc.join(timeout=2)
            except (BrokenPipeError, OSError):
                pass
        self.kill()


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------


class _Driver:
    """Shared bookkeeping for the serial and pooled execution paths."""

    def __init__(
        self,
        opts: CampaignOptions,
        cache: Optional[ResultCache],
        manifest: Optional[Manifest],
        progress: CampaignProgress,
        report_dir: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
    ) -> None:
        self.opts = opts
        self.cache = cache
        self.manifest = manifest
        self.progress = progress
        self.report_dir = report_dir
        self.telemetry_dir = telemetry_dir
        self.records: Dict[str, CellRecord] = {}

    def _worker_telemetry(self, slot: int) -> Optional[TelemetrySpec]:
        if self.telemetry_dir is None:
            return None
        return (self.telemetry_dir, f"w{slot}", self.opts.telemetry_interval)

    def record(self, rec: CellRecord, source: str = "executed") -> None:
        if (
            source == "executed"
            and rec.ok
            and self.report_dir is not None
            and rec.report is None
        ):
            # execute_cell writes the artifact at a deterministic path; the
            # record carries it so readers never reconstruct the layout
            rec.report = str(cell_report_path(self.report_dir, rec.cell_id))
        self.records[rec.cell_id] = rec
        if source != "resumed" and self.manifest is not None:
            self.manifest.append(rec)
        if (
            source == "executed"
            and rec.ok
            and self.cache is not None
            and self._cacheable.get(rec.cell_id, False)
        ):
            self.cache.put(
                self._cache_keys[rec.cell_id],
                SimulationResult(extra={}, **rec.summary),
            )
        self.progress.cell_done(rec, source)

    def prepare(self, cells: Sequence[Cell]) -> List[Cell]:
        """Resolve resume/cache hits; return the cells needing execution."""
        prior = (
            self.manifest.records()
            if (self.manifest is not None and self.opts.resume)
            else {}
        )
        self._cacheable: Dict[str, bool] = {}
        self._cache_keys: Dict[str, str] = {}
        pending: List[Cell] = []
        for cell in cells:
            cid = cell.cell_id
            self._cacheable[cid] = cell.cacheable
            self._cache_keys[cid] = cell.config.cache_key(cell.workload, cell.scheme)
            old = prior.get(cid)
            # Resume skips completed cells AND diagnosed failures: a cell
            # the integrity layer convicted (wedge, invariant violation) is
            # deterministic, so re-running it would reproduce the failure.
            # Undiagnosed errors/timeouts stay eligible for re-execution.
            if old is not None and (old.ok or old.diagnosis is not None):
                self.record(old, source="resumed")
                continue
            if self.cache is not None and cell.cacheable:
                hit = self.cache.get(self._cache_keys[cid])
                if hit is not None:
                    self.record(
                        CellRecord(
                            cell_id=cid,
                            workload=cell.workload,
                            scheme=cell.scheme,
                            status=STATUS_OK,
                            attempts=0,
                            elapsed=0.0,
                            summary=summarize(hit),
                            cached=True,
                        ),
                        source="cached",
                    )
                    continue
            pending.append(cell)
        return pending

    # ------------------------------------------------------------------
    def run_serial(self, pending: Sequence[Cell], runner: CellRunner) -> None:
        """In-process execution (jobs=1): today's serial path plus retry.

        Per-attempt timeouts need a separate process to interrupt; with one
        job the attempt runs inline and ``timeout`` is not enforced.
        """
        wt = None
        if self.telemetry_dir is not None:
            # one job: the "worker" heartbeats come from this process
            try:
                wt = _telemetry.activate_worker(
                    self.telemetry_dir, "w0", self.opts.telemetry_interval
                )
            except OSError:
                wt = None
        try:
            for cell in pending:
                attempt = 1
                while True:
                    if wt is not None:
                        wt.cell_start(cell, attempt)
                    t0 = time.perf_counter()
                    try:
                        summary = runner(cell, attempt)
                        elapsed = time.perf_counter() - t0
                        if wt is not None:
                            wt.cell_end(STATUS_OK, elapsed)
                        self.record(
                            CellRecord(
                                cell_id=cell.cell_id,
                                workload=cell.workload,
                                scheme=cell.scheme,
                                status=STATUS_OK,
                                attempts=attempt,
                                elapsed=elapsed,
                                summary=summary,
                            )
                        )
                        break
                    except Exception as exc:
                        elapsed = time.perf_counter() - t0
                        if wt is not None:
                            wt.cell_end(STATUS_ERROR, elapsed)
                        diagnosis = getattr(exc, "report", None)
                        if not (isinstance(diagnosis, dict) and diagnosis):
                            diagnosis = None
                        # A diagnosed integrity failure is deterministic -
                        # the same wedge or violation will recur - so
                        # retrying only multiplies the loss.  Record it
                        # terminal immediately.
                        if diagnosis is None and attempt <= self.opts.retries:
                            self.progress.retry(
                                cell, attempt, f"{type(exc).__name__}: {exc}"
                            )
                            time.sleep(
                                retry_delay(cell.cell_id, attempt, self.opts.backoff)
                            )
                            attempt += 1
                            continue
                        self.record(
                            CellRecord(
                                cell_id=cell.cell_id,
                                workload=cell.workload,
                                scheme=cell.scheme,
                                status=STATUS_ERROR,
                                attempts=attempt,
                                elapsed=elapsed,
                                error=f"{type(exc).__name__}: {exc}",
                                diagnosis=diagnosis,
                            )
                        )
                        break
        finally:
            if wt is not None:
                _telemetry.deactivate_worker()

    # ------------------------------------------------------------------
    def run_pool(self, pending: Sequence[Cell], runner: CellRunner) -> None:
        """Pooled execution with per-attempt timeouts and worker respawn."""
        opts = self.opts
        ctx = multiprocessing.get_context(opts.start_method or _default_start_method())
        tasks: deque = deque((cell, 1) for cell in pending)
        retries: List[Tuple[float, int, Cell, int]] = []  # (due, tiebreak, cell, attempt)
        tiebreak = 0
        workers = [
            _Worker(ctx, runner, telemetry=self._worker_telemetry(i))
            for i in range(min(opts.jobs, len(pending)))
        ]
        try:
            while tasks or retries or any(w.busy for w in workers):
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, cell, attempt = heapq.heappop(retries)
                    tasks.append((cell, attempt))
                # replace dead slots while work remains
                for i, w in enumerate(workers):
                    if not w.busy and not w.alive and (tasks or retries):
                        w.kill()
                        # same slot name: the respawn appends a fresh header
                        # (new generation) to the same spool file
                        workers[i] = _Worker(
                            ctx, runner, telemetry=self._worker_telemetry(i)
                        )
                for w in workers:
                    if tasks and not w.busy and w.alive:
                        cell, attempt = tasks.popleft()
                        try:
                            w.assign(cell, attempt, opts.timeout)
                        except (BrokenPipeError, OSError):
                            # worker died between polls: requeue, respawn next pass
                            tasks.appendleft((cell, attempt))
                busy = [w for w in workers if w.busy]
                if not busy:
                    if retries:
                        time.sleep(min(0.05, max(0.0, retries[0][0] - now)))
                    continue
                wait_for = 0.5
                deadlines = [w.deadline for w in busy if w.deadline is not None]
                if deadlines:
                    wait_for = min(wait_for, max(0.0, min(deadlines) - now))
                if retries:
                    wait_for = min(wait_for, max(0.0, retries[0][0] - now))
                ready = connection.wait([w.conn for w in busy], timeout=wait_for)
                for w in busy:
                    if w.conn in ready:
                        cell, attempt = w.take_task()
                        try:
                            status, payload, elapsed = w.conn.recv()
                        except (EOFError, OSError):
                            status, payload, elapsed = (
                                STATUS_ERROR,
                                f"worker process died (exitcode "
                                f"{w.proc.exitcode})",
                                0.0,
                            )
                        if status == STATUS_OK:
                            self.record(
                                CellRecord(
                                    cell_id=cell.cell_id,
                                    workload=cell.workload,
                                    scheme=cell.scheme,
                                    status=STATUS_OK,
                                    attempts=attempt,
                                    elapsed=elapsed,
                                    summary=payload,
                                )
                            )
                            continue
                        # Error payloads are a plain traceback string, or a
                        # {"error", "diagnosis"} dict from the integrity
                        # layer.  Diagnosed failures are deterministic and
                        # recorded terminal without burning retries.
                        diagnosis = None
                        error_text = payload
                        if isinstance(payload, dict):
                            diagnosis = payload.get("diagnosis")
                            error_text = payload.get("error", "")
                        if diagnosis is None and attempt <= opts.retries:
                            self.progress.retry(
                                cell, attempt, str(error_text).strip().splitlines()[-1]
                            )
                            tiebreak += 1
                            heapq.heappush(
                                retries,
                                (
                                    time.monotonic()
                                    + retry_delay(
                                        cell.cell_id, attempt, opts.backoff
                                    ),
                                    tiebreak,
                                    cell,
                                    attempt + 1,
                                ),
                            )
                        else:
                            self.record(
                                CellRecord(
                                    cell_id=cell.cell_id,
                                    workload=cell.workload,
                                    scheme=cell.scheme,
                                    status=STATUS_ERROR,
                                    attempts=attempt,
                                    elapsed=elapsed,
                                    error=str(error_text).strip(),
                                    diagnosis=diagnosis,
                                )
                            )
                # enforce per-attempt deadlines on the still-busy workers
                now = time.monotonic()
                for w in workers:
                    if w.busy and w.deadline is not None and now >= w.deadline:
                        cell, attempt = w.take_task()
                        w.kill()
                        self.record(
                            CellRecord(
                                cell_id=cell.cell_id,
                                workload=cell.workload,
                                scheme=cell.scheme,
                                status=STATUS_TIMEOUT,
                                attempts=attempt,
                                elapsed=float(opts.timeout or 0.0),
                                error=f"cell exceeded {opts.timeout:g}s wall-clock",
                            )
                        )
        finally:
            for w in workers:
                w.shutdown()


def run_campaign(
    cells: Sequence[Cell],
    options: Optional[CampaignOptions] = None,
    cache: Optional[ResultCache] = None,
    manifest: Optional[Manifest] = None,
    runner: CellRunner = execute_cell,
    report_dir: Optional[str] = None,
) -> CampaignResult:
    """Drive every cell to a terminal manifest record.

    ``cells`` are deduplicated by cell id (first spec wins).  ``cache`` is
    consulted before execution and updated (batched; flushed once at the
    end) for cacheable cells; pass ``None`` to run uncached.  Without
    ``resume`` an existing manifest file is rewritten fresh.  With
    ``report_dir``, every *executed* cell also writes a RunReport artifact
    there and its manifest record points at it (cached/resumed cells carry
    none - nothing was simulated).
    """
    opts = options or CampaignOptions()
    if report_dir is not None:
        import functools
        from pathlib import Path

        Path(report_dir).mkdir(parents=True, exist_ok=True)
        if runner is execute_cell:
            # partial of a module-level callable: still picklable under spawn
            runner = functools.partial(execute_cell, report_dir=str(report_dir))
    unique: Dict[str, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.cell_id, cell)
    ordered = list(unique.values())
    if manifest is not None and not opts.resume:
        manifest.reset(meta={"cells": len(ordered), "jobs": opts.jobs})
    progress = CampaignProgress(
        total=len(ordered), jobs=opts.jobs, enabled=opts.progress
    )

    telemetry_dir: Optional[str] = None
    if opts.telemetry_enabled:
        from pathlib import Path

        if opts.telemetry_dir is not None:
            tdir = Path(opts.telemetry_dir)
        elif manifest is not None:
            tdir = _telemetry.spool_dir_for(manifest.path)
        else:
            raise ValueError(
                "telemetry needs a manifest (spools live next to it) or an "
                "explicit telemetry_dir"
            )
        tdir.mkdir(parents=True, exist_ok=True)
        telemetry_dir = str(tdir)

    driver = _Driver(
        opts,
        cache,
        manifest,
        progress,
        report_dir=report_dir,
        telemetry_dir=telemetry_dir,
    )

    # Parent-side telemetry consumers: driver spool (campaign totals for
    # out-of-process monitors), live board, HTTP endpoint.  All are daemon
    # threads torn down in the finally block; none touches the simulation.
    consumers: List[Any] = []
    stats_extra: Dict[str, Any] = {}
    if telemetry_dir is not None:
        consumers.append(
            _telemetry.DriverTelemetry(
                telemetry_dir, progress.status, opts.telemetry_interval
            ).start()
        )
        if opts.watch or opts.telemetry_port is not None:
            aggregator = _telemetry.TelemetryAggregator(
                telemetry_dir,
                manifest_path=manifest.path if manifest is not None else None,
            )

            def snapshot_fn() -> dict:
                snap = aggregator.refresh().to_snapshot()
                # in-process totals beat the (slightly lagged) driver spool
                snap["campaign"] = progress.status()
                return snap

            if opts.telemetry_port is not None:
                server = _telemetry.TelemetryServer(
                    snapshot_fn, port=opts.telemetry_port
                ).start()
                consumers.append(server)
                stats_extra["telemetry_port"] = server.port
                if opts.progress or opts.watch:
                    print(
                        f"telemetry: {server.url}/snapshot and "
                        f"{server.url}/metrics",
                        flush=True,
                    )
            if opts.watch:
                from repro.obs.watch import WatchBoard

                consumers.append(
                    WatchBoard(
                        snapshot_fn,
                        interval=max(0.5, opts.telemetry_interval),
                    ).start()
                )

    t0 = time.perf_counter()
    try:
        pending = driver.prepare(ordered)
        if pending:
            if opts.jobs == 1:
                driver.run_serial(pending, runner)
            else:
                driver.run_pool(pending, runner)
    finally:
        if cache is not None:
            cache.flush()
        for consumer in reversed(consumers):
            try:
                consumer.stop()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
    stats = {
        "total": len(ordered),
        "ok": progress.ok,
        "failed": progress.failed,
        "executed": progress._executed,
        "cached": progress.cached,
        "resumed": progress.resumed,
        "retried": progress.retried,
        **stats_extra,
    }
    return CampaignResult(
        cells=ordered,
        records=driver.records,
        stats=stats,
        wall_seconds=time.perf_counter() - t0,
    )
