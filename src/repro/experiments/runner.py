"""Executes (workload mix x scheme) simulation cells.

A full figure needs up to 5 schemes x 12 mixes; each cell is an independent
simulation, but all schemes of one mix share the *same* generated traces
(that is what makes the normalized comparisons meaningful).  Completed cell
summaries are cached on disk keyed by every input that affects the result,
so re-running a bench or running several benches that share cells costs
nothing the second time.

Scale knobs come from the environment so the same benchmarks serve both
quick CI runs and full reproductions:

* ``REPRO_REFS``  - memory references per core per mix (default 4000)
* ``REPRO_SEED``  - trace generation seed (default 1)
* ``REPRO_CACHE`` - cache file path (default ``.repro_cache.json``;
  set to ``off`` to disable)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import repro
from repro.hmc.config import HMCConfig
from repro.metrics.collectors import ResultMatrix
from repro.system import SimulationResult, System, SystemConfig
from repro.workloads.mixes import mix as make_mix


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and platform parameters for one experiment run."""

    refs_per_core: int = field(default_factory=lambda: _env_int("REPRO_REFS", 4000))
    seed: int = field(default_factory=lambda: _env_int("REPRO_SEED", 1))
    hmc: HMCConfig = field(default_factory=HMCConfig)

    def cache_key(self, workload: str, scheme: str) -> str:
        t = self.hmc.timings
        parts = (
            repro.__version__,
            workload,
            scheme,
            self.refs_per_core,
            self.seed,
            self.hmc.vaults,
            self.hmc.banks_per_vault,
            self.hmc.pf_buffer_entries,
            self.hmc.pf_hit_latency,
            t.trcd,
            t.trp,
            t.tcl,
            t.tburst,
            t.trow_tsv,
        )
        return ":".join(str(p) for p in parts)


# Summary fields persisted to (and restored from) the cache.
_CACHED_FIELDS = [
    "scheme",
    "workload",
    "cycles",
    "core_ipc",
    "core_instructions",
    "conflict_rate",
    "row_conflicts",
    "demand_accesses",
    "buffer_hits",
    "prefetches_issued",
    "row_accuracy",
    "line_accuracy",
    "mean_memory_latency",
    "mean_read_latency",
    "energy_pj",
    "energy_breakdown",
    "link_utilization",
]


class ResultCache:
    """Tiny JSON file cache of simulation summaries."""

    def __init__(self, path: Optional[Path] = None) -> None:
        raw = os.environ.get("REPRO_CACHE", ".repro_cache.json")
        self.enabled = raw.lower() != "off"
        self.path = path or Path(raw if self.enabled else ".repro_cache.json")
        self._data: Dict[str, dict] = {}
        if self.enabled and self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                self._data = {}

    def get(self, key: str) -> Optional[SimulationResult]:
        if not self.enabled:
            return None
        raw = self._data.get(key)
        if raw is None:
            return None
        return SimulationResult(extra={"cached": True}, **{f: raw[f] for f in _CACHED_FIELDS})

    def put(self, key: str, result: SimulationResult) -> None:
        if not self.enabled:
            return
        self._data[key] = {f: getattr(result, f) for f in _CACHED_FIELDS}
        try:
            self.path.write_text(json.dumps(self._data))
        except OSError:
            pass  # caching is best-effort


_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def run_cell(
    workload: str,
    scheme: str,
    config: Optional[ExperimentConfig] = None,
    traces=None,
    cache: Optional[ResultCache] = None,
) -> SimulationResult:
    """Run one (mix, scheme) simulation, consulting the cache first."""
    cfg = config or ExperimentConfig()
    c = cache if cache is not None else default_cache()
    key = cfg.cache_key(workload, scheme)
    hit = c.get(key)
    if hit is not None:
        return hit
    if traces is None:
        traces = make_mix(workload, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc)
    result = System(
        traces, SystemConfig(hmc=cfg.hmc, scheme=scheme), workload=workload
    ).run()
    c.put(key, result)
    return result


def run_matrix(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: Optional[ExperimentConfig] = None,
    cache: Optional[ResultCache] = None,
    progress: bool = False,
) -> ResultMatrix:
    """Run the full (mixes x schemes) grid, sharing traces per mix."""
    cfg = config or ExperimentConfig()
    matrix = ResultMatrix()
    scheme_list = list(schemes)
    for w in workloads:
        traces = None
        for s in scheme_list:
            c = cache if cache is not None else default_cache()
            if c.get(cfg.cache_key(w, s)) is None and traces is None:
                traces = make_mix(w, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc)
            if progress:  # pragma: no cover - cosmetic
                print(f"  running {w} / {s} ...", flush=True)
            matrix.add(run_cell(w, s, cfg, traces=traces, cache=cache))
    return matrix
