"""Executes (workload mix x scheme) simulation cells.

A full figure needs up to 5 schemes x 12 mixes; each cell is an independent
simulation, but all schemes of one mix share the *same* generated traces
(that is what makes the normalized comparisons meaningful).  Completed cell
summaries are cached on disk keyed by every input that affects the result,
so re-running a bench or running several benches that share cells costs
nothing the second time.

Scale knobs come from the environment so the same benchmarks serve both
quick CI runs and full reproductions:

* ``REPRO_REFS``  - memory references per core per mix (default 4000)
* ``REPRO_SEED``  - trace generation seed (default 1)
* ``REPRO_CACHE`` - cache file path (default ``.repro_cache.json``;
  set to ``off`` to disable)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import repro
from repro.hmc.config import HMCConfig
from repro.metrics.collectors import ResultMatrix
from repro.system import SimulationResult, System, SystemConfig
from repro.workloads.mixes import mix as make_mix


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and platform parameters for one experiment run."""

    refs_per_core: int = field(default_factory=lambda: _env_int("REPRO_REFS", 4000))
    seed: int = field(default_factory=lambda: _env_int("REPRO_SEED", 1))
    hmc: HMCConfig = field(default_factory=HMCConfig)
    #: run cells under the integrity layer (repro.sim.integrity).  Execution
    #: policy, not a simulation input: results are identical with it on, so
    #: it never enters cache keys or cell ids.
    integrity: bool = False

    def cache_key(self, workload: str, scheme: str) -> str:
        t = self.hmc.timings
        parts = (
            repro.__version__,
            workload,
            scheme,
            self.refs_per_core,
            self.seed,
            self.hmc.vaults,
            self.hmc.banks_per_vault,
            self.hmc.pf_buffer_entries,
            self.hmc.pf_hit_latency,
            t.trcd,
            t.trp,
            t.tcl,
            t.tburst,
            t.trow_tsv,
        )
        key = ":".join(str(p) for p in parts)
        # Fault injection changes results, so it must key the cache - but
        # only when enabled, keeping fault-free keys (and every existing
        # cache entry) byte-identical to the pre-fault layout.
        f = self.hmc.faults
        if f.enabled:
            key += (
                f":faults=ber{f.ber}:drop{f.drop_prob}:fseed{f.seed}"
                f":mr{f.max_retries}:rl{f.retry_latency}:tl{f.retrain_latency}"
            )
        return key


# Summary fields persisted to (and restored from) the cache.  Bump
# _CACHE_SCHEMA whenever this list (or the meaning of a field) changes so
# stale cache files are invalidated wholesale instead of raising KeyError.
_CACHE_SCHEMA = 2

_CACHED_FIELDS = [
    "scheme",
    "workload",
    "cycles",
    "core_ipc",
    "core_instructions",
    "conflict_rate",
    "row_conflicts",
    "demand_accesses",
    "buffer_hits",
    "prefetches_issued",
    "row_accuracy",
    "line_accuracy",
    "mean_memory_latency",
    "mean_read_latency",
    "energy_pj",
    "energy_breakdown",
    "link_utilization",
]


class ResultCache:
    """JSON file cache of simulation summaries, safe for concurrent writers.

    Persistence is crash- and concurrency-safe: :meth:`flush` re-reads the
    file, merges this process's entries over whatever other workers wrote in
    the meantime, then atomically replaces the file via a temp file and
    ``os.replace`` — a killed or concurrent writer can never leave a torn or
    clobbered cache.  :meth:`put` only updates memory; callers batch any
    number of puts behind one :meth:`flush` (``run_cell`` flushes per cell,
    ``run_matrix`` and campaigns flush once per run, so a full matrix is not
    O(cells^2) in rewrite cost).

    The file records a schema version and the persisted field list; caches
    written before a ``_CACHED_FIELDS`` change (or in the pre-schema flat
    format) are invalidated on load instead of raising ``KeyError``.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        raw = os.environ.get("REPRO_CACHE", ".repro_cache.json")
        self.enabled = raw.lower() != "off"
        self.path = path or Path(raw if self.enabled else ".repro_cache.json")
        self._dirty = False
        self._data: Dict[str, dict] = (
            self._read_file(self.path) if self.enabled else {}
        )

    @staticmethod
    def _read_file(path: Path) -> Dict[str, dict]:
        """Entries from a cache file; {} for missing/corrupt/legacy files."""
        try:
            raw = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
        if not isinstance(raw, dict):
            return {}
        if raw.get("schema") != _CACHE_SCHEMA or raw.get("fields") != _CACHED_FIELDS:
            return {}  # legacy or foreign schema: invalidate wholesale
        entries = raw.get("entries")
        return entries if isinstance(entries, dict) else {}

    def get(self, key: str) -> Optional[SimulationResult]:
        if not self.enabled:
            return None
        raw = self._data.get(key)
        if raw is None:
            return None
        try:
            return SimulationResult(
                extra={"cached": True}, **{f: raw[f] for f in _CACHED_FIELDS}
            )
        except (KeyError, TypeError):
            return None  # malformed entry: treat as a miss

    def put(self, key: str, result: SimulationResult) -> None:
        """Record a summary in memory; persist on the next :meth:`flush`."""
        if not self.enabled:
            return
        self._data[key] = {f: getattr(result, f) for f in _CACHED_FIELDS}
        self._dirty = True

    def flush(self) -> None:
        """Merge-on-write persist: atomic, last-flusher-wins per entry."""
        if not (self.enabled and self._dirty):
            return
        merged = self._read_file(self.path)
        merged.update(self._data)
        self._data = merged
        payload = {
            "schema": _CACHE_SCHEMA,
            "fields": _CACHED_FIELDS,
            "entries": merged,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        except OSError:
            try:  # caching is best-effort
                tmp.unlink()
            except OSError:
                pass
        self._dirty = False


_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache


def run_cell(
    workload: str,
    scheme: str,
    config: Optional[ExperimentConfig] = None,
    traces=None,
    cache: Optional[ResultCache] = None,
    flush: bool = True,
) -> SimulationResult:
    """Run one (mix, scheme) simulation, consulting the cache first.

    ``flush=False`` defers cache persistence to the caller (batch loops
    flush once at the end instead of rewriting the file per cell).
    """
    cfg = config or ExperimentConfig()
    c = cache if cache is not None else default_cache()
    key = cfg.cache_key(workload, scheme)
    hit = c.get(key)
    if hit is not None:
        return hit
    if traces is None:
        traces = make_mix(workload, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc)
    result = System(
        traces,
        SystemConfig(hmc=cfg.hmc, scheme=scheme, integrity=cfg.integrity),
        workload=workload,
    ).run()
    c.put(key, result)
    if flush:
        c.flush()
    return result


def run_matrix(
    workloads: Iterable[str],
    schemes: Iterable[str],
    config: Optional[ExperimentConfig] = None,
    cache: Optional[ResultCache] = None,
    progress: bool = False,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    manifest=None,
) -> ResultMatrix:
    """Run the full (mixes x schemes) grid, sharing traces per mix.

    ``jobs=1`` (the default) runs serially in-process as always; ``jobs>1``
    shards the grid across a :mod:`repro.campaign` worker pool (with
    optional per-cell ``timeout``, ``retries`` and a resumable ``manifest``)
    and merges deterministically, so both paths produce identical summaries.
    """
    cfg = config or ExperimentConfig()
    c = cache if cache is not None else default_cache()
    matrix = ResultMatrix()
    workload_list = list(workloads)
    scheme_list = list(schemes)
    if jobs > 1:
        # Deferred import: repro.campaign imports this module.
        from repro.campaign import Cell, CampaignOptions, grid_cells, run_campaign

        res = run_campaign(
            grid_cells(workload_list, scheme_list, cfg),
            CampaignOptions(
                jobs=jobs, timeout=timeout, retries=retries, progress=progress
            ),
            cache=c,
            manifest=manifest,
        )
        res.raise_on_failure()
        # Same insertion order as the serial loop -> identical matrices.
        for w in workload_list:
            for s in scheme_list:
                matrix.add(res.result_for(Cell(w, s, cfg).cell_id))
        return matrix
    try:
        for w in workload_list:
            traces = None
            for s in scheme_list:
                if c.get(cfg.cache_key(w, s)) is None and traces is None:
                    traces = make_mix(
                        w, cfg.refs_per_core, seed=cfg.seed, config=cfg.hmc
                    )
                if progress:  # pragma: no cover - cosmetic
                    print(f"  running {w} / {s} ...", flush=True)
                matrix.add(run_cell(w, s, cfg, traces=traces, cache=c, flush=False))
    finally:
        c.flush()
    return matrix
