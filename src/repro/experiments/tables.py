"""Tables I and II of the paper, regenerated from the live configuration.

Table I is not an experiment - it *is* the default :class:`HMCConfig`; the
bench prints the live values so drift between paper and code is visible.
Table II lists the twelve mixes; the bench additionally measures each
constituent trace's MPKI to confirm the HM / LM classification holds for
the synthetic substitutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cpu.hierarchy import HierarchyParams
from repro.hmc.config import HMCConfig
from repro.workloads.mixes import MIXES, mix_names
from repro.workloads.spec import PROFILES
from repro.workloads.synthetic import generate_trace


def table1_text(config: Optional[HMCConfig] = None) -> str:
    """Render the live system configuration in the shape of Table I."""
    cfg = config or HMCConfig()
    t = cfg.timings
    h = HierarchyParams()
    rows = [
        ("Processor", "8 cores @ %.0f GHz, issue width 4, trace-driven OoO model"
         % t.cpu_freq_ghz),
        ("Caches", "L1(I/D) %dKB pvt %d-way lat %d | L2 %dKB pvt %d-way lat %d | "
         "L3 %dMB shrd %d-way lat %d, %dB lines"
         % (h.l1.size_bytes // 1024, h.l1.assoc, h.l1.hit_latency,
            h.l2.size_bytes // 1024, h.l2.assoc, h.l2.hit_latency,
            h.l3.size_bytes // (1 << 20), h.l3.assoc, h.l3.hit_latency,
            h.l3.line_bytes)),
        ("HMC", "%d DRAM layers equivalent, %d vaults, %d banks/vault, %dB rows"
         % (8, cfg.vaults, cfg.banks_per_vault, cfg.row_bytes)),
        ("DRAM", "DDR3-1600, queue (R/W) = %d/%d, tRCD=%d tRP=%d tCL=%d "
         "(memory cycles)"
         % (cfg.read_queue_depth, cfg.write_queue_depth, t.trcd, t.trp, t.tcl)),
        ("Serial links", "%d full-duplex links, %d lanes @ %.1f Gbps "
         "(%.2f B/CPU-cycle per direction)"
         % (cfg.links, cfg.link_lanes, cfg.link_gbps_per_lane,
            cfg.link_bytes_per_cycle)),
        ("PF buffer", "%dKB/vault, fully associative, %dB line, hit latency %d"
         % (cfg.pf_buffer_bytes // 1024, cfg.row_bytes, cfg.pf_hit_latency)),
        ("Addr mapping", "RoRaBaVaCo (row:rank:bank:vault:column)"),
        ("Scheduling", "FR-FCFS, open page policy"),
    ]
    width = max(len(k) for k, _ in rows)
    lines = ["Table I: experimental configuration", "=" * 36]
    lines += [f"{k:<{width}}  {v}" for k, v in rows]
    return "\n".join(lines)


def table2_rows(
    measure_mpki: bool = False,
    refs: int = 2000,
    seed: int = 1,
) -> List[Tuple[str, str, List[str], Dict[str, float]]]:
    """Table II: (mix id, category, benchmarks, measured per-bench MPKI).

    With ``measure_mpki`` the constituent benchmarks' traces are generated
    and their realized MPKI computed, verifying the HM / LM classes.
    """
    out = []
    for name in mix_names():
        benches = MIXES[name]
        mpki: Dict[str, float] = {}
        if measure_mpki:
            for b in sorted(set(benches)):
                trace = generate_trace(b, refs, seed=seed)
                mpki[b] = trace.mpki
        out.append((name, name[:2], benches, mpki))
    return out


def table2_text(measure_mpki: bool = False, refs: int = 2000, seed: int = 1) -> str:
    """Render Table II (optionally with measured MPKI per benchmark)."""
    lines = ["Table II: SPEC CPU2006 benchmark sets", "=" * 37]
    for name, cat, benches, mpki in table2_rows(measure_mpki, refs, seed):
        lines.append(f"{name} ({cat}): {', '.join(benches)}")
        if mpki:
            detail = ", ".join(
                f"{b}={v:.1f} (target {PROFILES[b].mpki:.0f}, {PROFILES[b].memory_intensity})"
                for b, v in sorted(mpki.items())
            )
            lines.append(f"    measured MPKI: {detail}")
    return "\n".join(lines)
