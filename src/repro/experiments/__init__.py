"""Experiment harness: one entry point per paper table and figure.

:mod:`repro.experiments.runner` executes (mix x scheme) simulation cells
with an on-disk summary cache; :mod:`repro.experiments.figures` computes the
data behind Figures 5-9; :mod:`repro.experiments.tables` reproduces Tables
I-II.  The ``benchmarks/`` directory wraps these in pytest-benchmark
entries, one per figure.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    run_cell,
    run_matrix,
)
from repro.experiments.figures import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    FigureData,
)
from repro.experiments.tables import table1_text, table2_rows
from repro.experiments.report import generate_report

__all__ = [
    "ExperimentConfig",
    "run_cell",
    "run_matrix",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "FigureData",
    "table1_text",
    "table2_rows",
    "generate_report",
]
