"""Markdown run report: measured vs. paper, generated from a result matrix.

``generate_report`` renders every figure's per-mix table plus a
measured-vs-paper comparison of the numbers the paper states in its text —
the machine-generated counterpart of the hand-written EXPERIMENTS.md.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.figures import (
    PAPER_FIG5_CAMPS_MOD_SPEEDUP,
    PAPER_FIG5_VS,
    PAPER_FIG6_REDUCTION_VS_BASEHIT,
    PAPER_FIG6_REDUCTION_VS_MMD,
    PAPER_FIG7_ACCURACY,
    PAPER_FIG9_ENERGY,
    FigureData,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.metrics.collectors import ResultMatrix


def _md_table(data: FigureData, fmt: str = "{:.3f}") -> List[str]:
    lines = [f"### {data.figure}: {data.title}", ""]
    header = "| workload | " + " | ".join(data.schemes) + " |"
    sep = "|" + "---|" * (len(data.schemes) + 1)
    lines += [header, sep]
    for w, row in data.per_workload.items():
        cells = " | ".join(fmt.format(row[s]) for s in data.schemes)
        lines.append(f"| {w} | {cells} |")
    for g, row in data.summary.items():
        cells = " | ".join(fmt.format(row[s]) for s in data.schemes)
        lines.append(f"| **{g}** | {cells} |")
    lines.append("")
    return lines


def _comparison_row(label: str, measured: float, paper: float) -> str:
    delta = measured - paper
    return f"| {label} | {measured:.3f} | {paper:.3f} | {delta:+.3f} |"


def generate_report(
    matrix: ResultMatrix,
    title: str = "CAMPS reproduction report",
    scale_note: Optional[str] = None,
) -> str:
    """Render the full measured-vs-paper markdown report."""
    f5 = figure5(matrix)
    f6 = figure6(matrix)
    f7 = figure7(matrix)
    f8 = figure8(matrix, schemes=["base", "mmd", "camps-mod"])
    f9 = figure9(matrix)

    lines: List[str] = [f"# {title}", ""]
    if scale_note:
        lines += [scale_note, ""]

    # headline comparison table
    lines += ["## Headline comparison (measured vs paper)", ""]
    lines += [
        "| quantity | measured | paper | delta |",
        "|---|---|---|---|",
    ]
    avg5 = f5.summary["AVG"]
    lines.append(
        _comparison_row(
            "CAMPS-MOD speedup over BASE (AVG)", avg5["camps-mod"], PAPER_FIG5_VS["base"]
        )
    )
    for grp in ("HM", "LM", "MX"):
        if grp in f5.summary:
            lines.append(
                _comparison_row(
                    f"CAMPS-MOD speedup over BASE ({grp})",
                    f5.summary[grp]["camps-mod"],
                    PAPER_FIG5_CAMPS_MOD_SPEEDUP[grp],
                )
            )
    avg6 = f6.summary["AVG"]
    if avg6.get("base-hit"):
        lines.append(
            _comparison_row(
                "CAMPS conflict reduction vs BASE-HIT",
                1 - avg6["camps"] / avg6["base-hit"],
                PAPER_FIG6_REDUCTION_VS_BASEHIT,
            )
        )
    if avg6.get("mmd"):
        lines.append(
            _comparison_row(
                "CAMPS conflict reduction vs MMD",
                1 - avg6["camps"] / avg6["mmd"],
                PAPER_FIG6_REDUCTION_VS_MMD,
            )
        )
    avg7 = f7.summary["AVG"]
    for scheme in ("base", "camps", "camps-mod"):
        lines.append(
            _comparison_row(
                f"prefetch accuracy ({scheme})",
                avg7[scheme],
                PAPER_FIG7_ACCURACY[scheme],
            )
        )
    avg9 = f9.summary["AVG"]
    for scheme in ("mmd", "camps-mod"):
        lines.append(
            _comparison_row(
                f"energy vs BASE ({scheme})", avg9[scheme], PAPER_FIG9_ENERGY[scheme]
            )
        )
    lines.append("")

    # ordering check
    order = sorted(avg5, key=avg5.get, reverse=True)
    lines += [
        "## Scheme ordering (Figure 5 AVG)",
        "",
        "measured: " + " > ".join(order),
        "paper:    camps-mod > camps > mmd > base-hit > base",
        "",
    ]

    # full figure tables
    lines += ["## Figures", ""]
    for data in (f5, f6, f7, f8, f9):
        lines += _md_table(data)
        for note in data.notes:
            lines.append(f"> {note}")
        lines.append("")

    return "\n".join(lines)
