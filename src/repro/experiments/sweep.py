"""Declarative parameter sweeps.

A :class:`Sweep` names one knob (an ``HMCConfig`` field, a ``DRAMTimings``
field, or a scheme constructor kwarg), lists its values, and runs a chosen
workload/scheme for each - the shape behind every ablation bench, exposed as
a first-class API and the ``python -m repro sweep`` command::

    Sweep("pf_buffer_entries", [4, 8, 16, 32]).run("HM1", "camps-mod")
    Sweep("timings.trow_tsv", [16, 48, 64]).run("HM1", "camps-mod")
    Sweep("scheme:utilization_threshold", [2, 4, 8]).run("HM1", "camps-mod")
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.camps import CampsParams
from repro.dram.timing import DRAMTimings
from repro.hmc.config import HMCConfig
from repro.system import SimulationResult, System, SystemConfig
from repro.workloads.mixes import mix as make_mix


@dataclass
class SweepPoint:
    """One knob value and its simulation outcome (vs. the shared baseline)."""

    value: Any
    result: SimulationResult
    speedup_vs_base: Optional[float] = None


@dataclass
class SweepResult:
    knob: str
    workload: str
    scheme: str
    points: List[SweepPoint] = field(default_factory=list)

    def best(self) -> SweepPoint:
        key = (
            (lambda p: p.speedup_vs_base)
            if self.points and self.points[0].speedup_vs_base is not None
            else (lambda p: p.result.geomean_ipc)
        )
        return max(self.points, key=key)

    def text(self) -> str:
        lines = [
            f"sweep of {self.knob} ({self.workload}, {self.scheme})",
            f"{'value':>10}{'ipc':>9}{'speedup':>9}{'conflicts':>10}"
            f"{'accuracy':>9}{'energy uJ':>11}",
        ]
        for p in self.points:
            spd = f"{p.speedup_vs_base:.3f}" if p.speedup_vs_base else "-"
            lines.append(
                f"{str(p.value):>10}{p.result.geomean_ipc:>9.3f}{spd:>9}"
                f"{p.result.conflict_rate:>10.3f}{p.result.row_accuracy:>9.2f}"
                f"{p.result.energy_pj / 1e6:>11.1f}"
            )
        lines.append(f"best: {self.knob}={self.best().value}")
        return "\n".join(lines)


class Sweep:
    """One-knob sweep specification.

    Knob syntax:

    * ``"<field>"``           - an :class:`HMCConfig` field
    * ``"timings.<field>"``   - a :class:`DRAMTimings` field
    * ``"scheme:<kwarg>"``    - a :class:`CampsParams` field passed to the
      scheme constructor (CAMPS-family schemes)
    """

    def __init__(self, knob: str, values: Sequence[Any]) -> None:
        if not values:
            raise ValueError("sweep needs at least one value")
        self.knob = knob
        self.values = list(values)
        self._validate()

    def _validate(self) -> None:
        if self.knob.startswith("scheme:"):
            name = self.knob.split(":", 1)[1]
            if name not in {f.name for f in dataclasses.fields(CampsParams)}:
                raise ValueError(f"unknown CampsParams field {name!r}")
        elif self.knob.startswith("timings."):
            name = self.knob.split(".", 1)[1]
            if name not in {f.name for f in dataclasses.fields(DRAMTimings) if f.init}:
                raise ValueError(f"unknown DRAMTimings field {name!r}")
        else:
            if self.knob not in {f.name for f in dataclasses.fields(HMCConfig)}:
                raise ValueError(f"unknown HMCConfig field {self.knob!r}")

    # ------------------------------------------------------------------
    def _configure(self, value: Any) -> (HMCConfig, Optional[Dict[str, Any]]):
        if self.knob.startswith("scheme:"):
            name = self.knob.split(":", 1)[1]
            params = CampsParams(**{name: value})
            return HMCConfig(), {"params": params}
        if self.knob.startswith("timings."):
            name = self.knob.split(".", 1)[1]
            timings = dataclasses.replace(DRAMTimings(), **{name: value})
            return HMCConfig(timings=timings), None
        return HMCConfig(**{self.knob: value}), None

    def run(
        self,
        workload: str,
        scheme: str = "camps-mod",
        refs_per_core: int = 2500,
        seed: int = 1,
        baseline_scheme: Optional[str] = "base",
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> SweepResult:
        """Run the sweep; the workload's traces are generated once (under
        the default config) and shared by every point and the baseline.

        With ``jobs>1`` the points (and their baselines) run as one
        :mod:`repro.campaign` — workers regenerate the same seeded traces,
        so results match the serial path.
        """
        if jobs > 1:
            return self._run_campaign(
                workload, scheme, refs_per_core, seed, baseline_scheme,
                jobs, timeout, retries,
            )
        traces = make_mix(workload, refs_per_core, seed=seed)
        out = SweepResult(self.knob, workload, scheme)
        for value in self.values:
            hmc, scheme_kwargs = self._configure(value)
            result = System(
                traces,
                SystemConfig(hmc=hmc, scheme=scheme),
                workload=workload,
                scheme_kwargs=scheme_kwargs,
            ).run()
            speedup = None
            if baseline_scheme:
                base = System(
                    traces,
                    SystemConfig(hmc=hmc, scheme=baseline_scheme),
                    workload=workload,
                ).run()
                speedup = result.speedup_vs(base)
            out.points.append(SweepPoint(value, result, speedup))
        return out

    def _run_campaign(
        self,
        workload: str,
        scheme: str,
        refs_per_core: int,
        seed: int,
        baseline_scheme: Optional[str],
        jobs: int,
        timeout: Optional[float],
        retries: int,
    ) -> SweepResult:
        """Sharded sweep: every point (and baseline) is one campaign cell.

        Sweep cells bypass the result cache — its key does not cover most
        swept knobs — and pin ``trace_config`` to the default platform so
        every point sees the same reference stream as the serial path.
        Identical baseline cells (scheme-kwarg sweeps) dedupe to one run.
        """
        from repro.campaign import Cell, CampaignOptions, run_campaign
        from repro.experiments.runner import ExperimentConfig

        trace_hmc = HMCConfig()
        pairs = []  # (value, point cell, baseline cell | None)
        for value in self.values:
            hmc, scheme_kwargs = self._configure(value)
            cfg = ExperimentConfig(refs_per_core=refs_per_core, seed=seed, hmc=hmc)
            point = Cell(
                workload, scheme, cfg,
                scheme_kwargs=scheme_kwargs, trace_config=trace_hmc,
            )
            base = (
                Cell(workload, baseline_scheme, cfg, trace_config=trace_hmc)
                if baseline_scheme
                else None
            )
            pairs.append((value, point, base))
        cells = [c for _, p, b in pairs for c in ((p, b) if b else (p,))]
        res = run_campaign(
            cells,
            CampaignOptions(jobs=jobs, timeout=timeout, retries=retries),
            cache=None,
        )
        res.raise_on_failure()
        out = SweepResult(self.knob, workload, scheme)
        for value, point, base in pairs:
            result = res.result_for(point.cell_id)
            speedup = (
                result.speedup_vs(res.result_for(base.cell_id)) if base else None
            )
            out.points.append(SweepPoint(value, result, speedup))
        return out
