"""The data behind every figure of the paper's evaluation (Figures 5-9).

Each ``figureN`` function takes a :class:`~repro.metrics.collectors.
ResultMatrix` covering the schemes and mixes that figure plots and returns a
:class:`FigureData` - per-workload series plus the HM/LM/MX/AVG summary the
paper quotes in its text - ready for printing or CSV export.

Paper reference values (for EXPERIMENTS.md comparison) are embedded as
``PAPER_*`` constants with the numbers the paper states explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.collectors import (
    ResultMatrix,
    accuracies,
    amat_reduction,
    conflict_rates,
    energy_normalized,
    group_geomean,
    group_mean,
    normalized_speedups,
)
from repro.metrics.report import format_table
from repro.workloads.mixes import mix_names

#: Schemes per figure, in the paper's plot order.
FIG5_SCHEMES = ["base", "base-hit", "mmd", "camps", "camps-mod"]
FIG6_SCHEMES = ["base-hit", "mmd", "camps", "camps-mod"]  # BASE has 0 by construction
FIG7_SCHEMES = ["base", "base-hit", "mmd", "camps", "camps-mod"]
FIG8_SCHEMES = ["mmd", "camps-mod"]
FIG9_SCHEMES = ["base", "mmd", "camps-mod"]

#: Numbers the paper states in its text (Section 5), for comparison.
PAPER_FIG5_CAMPS_MOD_SPEEDUP = {"HM": 1.249, "LM": 1.094, "MX": 1.196, "AVG": 1.179}
PAPER_FIG5_VS = {"base": 1.179, "base-hit": 1.168, "mmd": 1.087}
PAPER_FIG6_REDUCTION_VS_BASEHIT = 0.163
PAPER_FIG6_REDUCTION_VS_MMD = 0.136
PAPER_FIG7_ACCURACY = {
    "base": 0.372,  # 70.5% - 33.3%
    "base-hit": 0.421,  # 70.5% - 28.4%
    "mmd": 0.664,  # 70.5% - 4.1%
    "camps": 0.649,  # 1.5 points below MMD
    "camps-mod": 0.705,
}
PAPER_FIG8_AMAT_REDUCTION = {"camps-mod_vs_base": 0.26, "camps-mod_vs_mmd": 0.163}
PAPER_FIG9_ENERGY = {"base": 1.0, "mmd": 0.94, "camps-mod": 0.915}


@dataclass
class FigureData:
    """One figure's series plus summaries, in printable form."""

    figure: str
    title: str
    schemes: List[str]
    per_workload: Dict[str, Dict[str, float]]
    summary: Dict[str, Dict[str, float]]
    notes: List[str] = field(default_factory=list)

    def text(self, value_format: str = "{:.3f}") -> str:
        body = format_table(
            self.per_workload,
            self.schemes,
            f"{self.figure}: {self.title}",
            value_format=value_format,
            summary=self.summary,
        )
        if self.notes:
            body += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return body

    def avg(self, scheme: str) -> float:
        return self.summary["AVG"][scheme]


def _mixes(matrix: ResultMatrix) -> List[str]:
    """The matrix's workloads, in the paper's canonical order if they are
    Table II mixes."""
    canonical = [m for m in mix_names() if m in matrix.workloads()]
    return canonical or matrix.workloads()


def figure5(matrix: ResultMatrix, schemes: Sequence[str] = tuple(FIG5_SCHEMES)) -> FigureData:
    """Figure 5: normalized speedup over BASE (geomean per-core IPC)."""
    ws = _mixes(matrix)
    per = normalized_speedups(matrix, schemes, baseline="base", workloads=ws)
    summary = group_geomean(per, schemes)
    notes = [
        "paper: CAMPS-MOD vs BASE avg {:.1%} (HM {:.1%}, LM {:.1%}, MX {:.1%})".format(
            PAPER_FIG5_VS["base"] - 1,
            PAPER_FIG5_CAMPS_MOD_SPEEDUP["HM"] - 1,
            PAPER_FIG5_CAMPS_MOD_SPEEDUP["LM"] - 1,
            PAPER_FIG5_CAMPS_MOD_SPEEDUP["MX"] - 1,
        )
    ]
    return FigureData(
        "Figure 5",
        "normalized speedup over BASE (higher is better)",
        list(schemes),
        per,
        summary,
        notes,
    )


def figure6(matrix: ResultMatrix, schemes: Sequence[str] = tuple(FIG6_SCHEMES)) -> FigureData:
    """Figure 6: row-buffer conflict rate (lower is better).

    BASE is excluded just as in the paper: it precharges after copying every
    row so it has no row-buffer conflicts by construction.
    """
    ws = _mixes(matrix)
    per = conflict_rates(matrix, schemes, workloads=ws)
    summary = group_mean(per, schemes)
    camps = summary["AVG"].get("camps")
    notes = []
    if camps is not None:
        for ref, paper in (
            ("base-hit", PAPER_FIG6_REDUCTION_VS_BASEHIT),
            ("mmd", PAPER_FIG6_REDUCTION_VS_MMD),
        ):
            if ref in summary["AVG"] and summary["AVG"][ref]:
                red = 1 - camps / summary["AVG"][ref]
                notes.append(
                    f"CAMPS conflict reduction vs {ref}: measured {red:.1%}, "
                    f"paper {paper:.1%}"
                )
    return FigureData(
        "Figure 6",
        "row-buffer conflict rate (lower is better)",
        list(schemes),
        per,
        summary,
        notes,
    )


def figure7(
    matrix: ResultMatrix,
    schemes: Sequence[str] = tuple(FIG7_SCHEMES),
    line_level: bool = False,
) -> FigureData:
    """Figure 7: prefetching accuracy (higher is better).

    Row-level by default: a prefetched row counts as accurate when it served
    at least one demand before leaving the buffer (the prefetch unit in
    every whole-row scheme is the row).  ``line_level=True`` reports the
    fraction of prefetched cache lines referenced instead (fairer to the
    line-granularity MMD scheme).
    """
    ws = _mixes(matrix)
    per = accuracies(matrix, schemes, workloads=ws, line_level=line_level)
    summary = group_mean(per, schemes)
    notes = [
        "paper avg accuracy: "
        + ", ".join(f"{s}={v:.1%}" for s, v in PAPER_FIG7_ACCURACY.items())
    ]
    return FigureData(
        "Figure 7",
        ("line-level " if line_level else "") + "prefetching accuracy (higher is better)",
        list(schemes),
        per,
        summary,
        notes,
    )


def figure8(matrix: ResultMatrix, schemes: Sequence[str] = tuple(FIG8_SCHEMES)) -> FigureData:
    """Figure 8: reduction in average memory access time vs BASE."""
    ws = _mixes(matrix)
    per = amat_reduction(matrix, schemes, baseline="base", workloads=ws)
    summary = group_mean(per, schemes)
    notes = [
        "paper: CAMPS-MOD reduces AMAT by 26% vs BASE and 16.3% vs MMD on average"
    ]
    return FigureData(
        "Figure 8",
        "AMAT reduction vs BASE (higher is better)",
        list(schemes),
        per,
        summary,
        notes,
    )


def figure9(matrix: ResultMatrix, schemes: Sequence[str] = tuple(FIG9_SCHEMES)) -> FigureData:
    """Figure 9: HMC energy normalized to BASE (lower is better)."""
    ws = _mixes(matrix)
    per = energy_normalized(matrix, schemes, baseline="base", workloads=ws)
    summary = group_mean(per, schemes)
    notes = [
        "paper avg: MMD 0.940, CAMPS-MOD 0.915 (energy saved mostly on "
        "activate/precharge counts)"
    ]
    return FigureData(
        "Figure 9",
        "HMC energy normalized to BASE (lower is better)",
        list(schemes),
        per,
        summary,
        notes,
    )
