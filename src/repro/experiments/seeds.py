"""Multi-seed experiment aggregation: means and dispersion across seeds.

The paper reports single-run numbers; synthetic traces make seed sensitivity
a fair question, so this module runs the same (mixes x schemes) grid under
several seeds and reports per-cell mean +/- standard deviation of the Figure
5 metric, plus a stability verdict for the scheme ordering.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentConfig, ResultCache, run_matrix
from repro.metrics.collectors import normalized_speedups
from repro.sim.stats import geomean


@dataclass(frozen=True)
class SeededCell:
    """Mean and dispersion of one (workload, scheme) speedup across seeds."""

    mean: float
    std: float
    values: Tuple[float, ...]

    @property
    def low(self) -> float:
        return self.mean - self.std

    @property
    def high(self) -> float:
        return self.mean + self.std


@dataclass
class SeededSpeedups:
    """Figure-5 speedups aggregated over seeds."""

    seeds: List[int]
    schemes: List[str]
    per_workload: Dict[str, Dict[str, SeededCell]]

    def avg(self, scheme: str) -> SeededCell:
        """Geomean-over-workloads speedup per seed, then mean/std."""
        per_seed = []
        for i in range(len(self.seeds)):
            vals = [
                row[scheme].values[i] for row in self.per_workload.values()
            ]
            per_seed.append(geomean(vals))
        a = np.asarray(per_seed)
        return SeededCell(float(a.mean()), float(a.std()), tuple(per_seed))

    def ordering_stable(self) -> bool:
        """True when the AVG scheme ordering is identical under every seed."""
        orders = set()
        for i in range(len(self.seeds)):
            avg = {
                s: geomean(
                    [row[s].values[i] for row in self.per_workload.values()]
                )
                for s in self.schemes
            }
            orders.add(tuple(sorted(avg, key=avg.get, reverse=True)))
        return len(orders) == 1

    def text(self) -> str:
        lines = [
            f"speedups over BASE, mean +/- std across seeds {self.seeds}",
        ]
        header = f"{'workload':<10}" + "".join(f"{s:>20}" for s in self.schemes)
        lines += [header, "-" * len(header)]
        for w, row in self.per_workload.items():
            cells = "".join(
                f"{row[s].mean:>13.3f}+/-{row[s].std:<5.3f}" for s in self.schemes
            )
            lines.append(f"{w:<10}{cells}")
        avg_cells = "".join(
            f"{self.avg(s).mean:>13.3f}+/-{self.avg(s).std:<5.3f}"
            for s in self.schemes
        )
        lines.append("-" * len(header))
        lines.append(f"{'AVG':<10}{avg_cells}")
        lines.append(
            "scheme ordering stable across seeds: "
            + ("yes" if self.ordering_stable() else "NO")
        )
        return "\n".join(lines)


def run_seeded(
    workloads: Iterable[str],
    schemes: Sequence[str],
    base_config: Optional[ExperimentConfig] = None,
    seeds: Sequence[int] = (1, 2, 3),
    cache: Optional[ResultCache] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> SeededSpeedups:
    """Run the grid once per seed and aggregate Figure-5 speedups.

    With ``jobs>1`` all (seed x workload x scheme) cells form *one*
    campaign, so parallelism spans seeds as well as the grid.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    cfg0 = base_config or ExperimentConfig()
    workloads = list(workloads)
    schemes = list(schemes)
    per_seed: List[Dict[str, Dict[str, float]]] = []
    seed_configs = [dataclasses.replace(cfg0, seed=seed) for seed in seeds]
    if jobs > 1:
        from repro.campaign import Cell, CampaignOptions, grid_cells, run_campaign
        from repro.experiments.runner import default_cache
        from repro.metrics.collectors import ResultMatrix

        cells = [
            c for cfg in seed_configs for c in grid_cells(workloads, schemes, cfg)
        ]
        res = run_campaign(
            cells,
            CampaignOptions(jobs=jobs, timeout=timeout, retries=retries),
            cache=cache if cache is not None else default_cache(),
        )
        res.raise_on_failure()
        for cfg in seed_configs:
            matrix = ResultMatrix()
            for w in workloads:
                for s in schemes:
                    matrix.add(res.result_for(Cell(w, s, cfg).cell_id))
            per_seed.append(
                normalized_speedups(matrix, schemes, workloads=workloads)
            )
    else:
        for cfg in seed_configs:
            matrix = run_matrix(workloads, schemes, cfg, cache=cache)
            per_seed.append(
                normalized_speedups(matrix, schemes, workloads=workloads)
            )
    per_workload: Dict[str, Dict[str, SeededCell]] = {}
    for w in workloads:
        per_workload[w] = {}
        for s in schemes:
            vals = tuple(ps[w][s] for ps in per_seed)
            a = np.asarray(vals)
            per_workload[w][s] = SeededCell(float(a.mean()), float(a.std()), vals)
    return SeededSpeedups(list(seeds), schemes, per_workload)
