"""Live campaign telemetry: heartbeat spools, tailing, and aggregation.

A running campaign is observable through per-worker *spool files* written
next to the manifest.  Each worker process appends one compact JSON record
(a *heartbeat*) every ``interval`` seconds plus one record at every cell
boundary; the parent process — or a second terminal, or another host over a
shared filesystem — tails the spools with :class:`TelemetryAggregator` and
merges them into a single live :class:`CampaignView`.  Three consumers ship
on top of that view: ``repro campaign --watch`` (:mod:`repro.obs.watch`),
``repro monitor`` (same module, out of process), and ``--telemetry-port``
(:class:`TelemetryServer` serving ``/snapshot`` JSON and ``/metrics``
Prometheus text, see :mod:`repro.obs.promtext`).

Zero-cost contract
------------------
Telemetry follows the same rules as the rest of :mod:`repro.obs`:

* **Disabled** (no ``--watch`` / ``--telemetry`` / ``--telemetry-port``): no
  sampler thread exists and the only residue on the hot path is
  :func:`publish_system`'s single ``is None`` check per cell — the pinned
  hot-path digests are byte-identical.
* **Enabled**: sampling is *pull*-based.  A daemon thread wakes every
  ``interval`` seconds and reads live engine state (``engine.now`` and the
  monotonic schedule counter ``engine._seq`` both advance during
  :meth:`~repro.sim.engine.Engine.run`) under the GIL; nothing is written
  into the simulation, no engine events are scheduled, so event order and
  ``events_fired`` — and therefore the pinned digests — are unchanged.
  ``benchmarks/bench_telemetry_overhead.py`` enforces digest parity and the
  < 2 % paired overhead bound in CI.

Spool format
------------
One JSONL file per worker, ``telemetry-<worker>.jsonl``::

    {"kind": "header", "version": 1, "worker": "w0", "pid": 4242, "gen": "3f9c0a"}
    {"seq": 1, "ts": 1754556000.1, "phase": "start", "cell": {...}, ...}
    {"seq": 2, "ts": 1754556000.6, "phase": "running", "cycle": 51200, ...}
    {"seq": 3, "ts": 1754556001.9, "phase": "end", "status": "ok", ...}

Heartbeats carry *cumulative* worker state (``cells`` done/ok/failed
counters), never deltas, so a reader that misses records — torn trailing
line, crash, rotation — converges to the correct totals from any later
record.  ``gen`` identifies one writer session; a respawned worker (or a
rotation) appends a fresh header with a new ``gen``, and readers de-duplicate
by ``(gen, seq)``.  Rotation keeps the file bounded: when it exceeds
``max_bytes`` the writer atomically replaces it (``os.replace``) with a new
header — safe because state is cumulative.  The manifest stays the
authoritative exactly-once record of terminal cells; spools are a live,
lossy-but-convergent overlay.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

TELEMETRY_VERSION = 1

SPOOL_PREFIX = "telemetry-"
SPOOL_SUFFIX = ".jsonl"

#: worker-name of the parent-process spool (campaign-level totals and ETA)
DRIVER_WORKER = "driver"

#: seconds between heartbeats
DEFAULT_INTERVAL = 0.5

#: rotate a spool once it grows past this (cumulative records make the
#: history disposable, so the bound can be tight)
DEFAULT_MAX_SPOOL_BYTES = 512 * 1024

#: a worker whose newest heartbeat is older than this is flagged stale
DEFAULT_STALE_AFTER = 5.0

#: consecutive same-cycle running heartbeats before a worker is flagged
#: frozen (the cell's sim-clock stopped advancing between samples)
FROZEN_SAMPLES = 4


def spool_dir_for(manifest_path: Union[str, Path]) -> Path:
    """Canonical spool directory for a campaign manifest path."""
    return Path(str(manifest_path) + ".telemetry")


def spool_path(spool_dir: Union[str, Path], worker: str) -> Path:
    return Path(spool_dir) / f"{SPOOL_PREFIX}{worker}{SPOOL_SUFFIX}"


def rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if unreadable)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return peak * 1024 if peak < 1 << 40 else peak
    except Exception:
        return 0


# ----------------------------------------------------------------------
# Spool writer
# ----------------------------------------------------------------------


class TelemetrySpool:
    """Crash-safe append-only heartbeat writer for one worker.

    Every record is flushed to the OS immediately; cell-boundary records are
    additionally fsynced (same durability split as the manifest: boundaries
    are rare and precious, heartbeats are frequent and replaceable).
    """

    def __init__(
        self,
        path: Union[str, Path],
        worker: str,
        max_bytes: int = DEFAULT_MAX_SPOOL_BYTES,
    ) -> None:
        self.path = Path(path)
        self.worker = worker
        self.max_bytes = max_bytes
        self.gen = ""
        self._seq = 0
        self._fh: Optional[Any] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._open(fresh=not self.path.exists())

    def _header(self) -> dict:
        return {
            "kind": "header",
            "version": TELEMETRY_VERSION,
            "worker": self.worker,
            "pid": os.getpid(),
            "gen": self.gen,
        }

    def _open(self, fresh: bool) -> None:
        """(Re)open the spool and start a new generation.

        A surviving file is appended to — the new header line mid-file tells
        readers a new writer session began (worker respawn) without
        discarding records a tailer may not have consumed yet.
        """
        self.gen = uuid.uuid4().hex[:12]
        self._seq = 0
        mode = "w" if fresh else "a"
        self._fh = open(self.path, mode)
        self._fh.write(json.dumps(self._header()) + "\n")
        self._fh.flush()

    def append(self, record: dict, durable: bool = False) -> None:
        """Write one heartbeat; rotates first if the spool is over budget."""
        fh = self._fh
        if fh is None:
            return
        try:
            if fh.tell() > self.max_bytes:
                self._rotate()
                fh = self._fh
            self._seq += 1
            fh.write(json.dumps({"seq": self._seq, **record}) + "\n")
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        except (OSError, ValueError):  # pragma: no cover - disk trouble
            pass  # telemetry must never take the campaign down

    def _rotate(self) -> None:
        """Atomically replace the spool with a fresh single-header file.

        Heartbeat state is cumulative, so dropping history loses nothing a
        later record will not re-assert; readers notice the inode change and
        restart from offset zero in the new generation.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.gen = uuid.uuid4().hex[:12]
        self._seq = 0
        with open(tmp, "w") as fh:
            fh.write(json.dumps(self._header()) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except (OSError, ValueError):
                pass
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Tailing
# ----------------------------------------------------------------------


class JsonlTailer:
    """Incremental reader of a growing JSONL file.

    Each :meth:`poll` returns the records appended since the last poll.
    Handles the three failure shapes the spool/manifest writers can produce:

    * **torn trailing line** — an incomplete final line (no newline yet) is
      buffered, not parsed; it is emitted once the writer completes it;
    * **record appended mid-read** — only complete newline-terminated lines
      are consumed, so a concurrent append is picked up whole next poll;
    * **rotation / truncation** — an inode change or a shrink below the
      current offset resets the tailer to offset zero of the new file.  A
      truncate-and-rewrite that regrows *past* the current offset between
      polls (same inode, no observable shrink) is caught by the head
      anchor: the first bytes of the file are remembered and re-checked, so
      a replaced head resets the tailer instead of yielding bytes from a
      stale offset in the middle of unrelated content.

    Unparseable *complete* lines (torn by a crash mid-file) are skipped, as
    the manifest reader does.
    """

    #: bytes of the file head remembered to detect truncate-and-rewrite
    ANCHOR_BYTES = 64

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._pos = 0
        self._buf = b""
        self._sig: Optional[Tuple[int, int]] = None  # (st_dev, st_ino)
        self._anchor = b""  # head of the file identity we are tailing

    def _reset(self) -> None:
        self._pos = 0
        self._buf = b""
        self._anchor = b""

    def poll(self) -> List[dict]:
        try:
            st = os.stat(self.path)
        except OSError:
            self._reset()
            self._sig = None
            return []
        sig = (st.st_dev, st.st_ino)
        if sig != self._sig or st.st_size < self._pos:
            self._reset()
            self._sig = sig
        if st.st_size <= self._pos:
            return []
        try:
            with open(self.path, "rb") as fh:
                if self._anchor and fh.read(len(self._anchor)) != self._anchor:
                    # Same inode, size >= our offset, different head: the
                    # file was truncated and rewritten between polls.
                    # Restart from the new head rather than buffering
                    # garbage from the stale offset.
                    self._reset()
                fh.seek(self._pos)
                chunk = fh.read()
        except OSError:
            return []
        if self._pos == 0:
            self._anchor = chunk[: self.ANCHOR_BYTES]
        self._pos += len(chunk)
        data = self._buf + chunk
        lines = data.split(b"\n")
        self._buf = lines.pop()  # torn trailing line (b"" when newline-final)
        out: List[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(rec, dict):
                out.append(rec)
        return out


class SpoolTailer:
    """A :class:`JsonlTailer` that understands spool generations.

    Header lines switch the current ``(worker, pid, gen)``; data records are
    de-duplicated by ``(gen, seq)`` — append-only writers emit monotonically
    increasing ``seq`` per generation, so a re-read from offset zero (after
    rotation detection) can never double-count a record.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._tailer = JsonlTailer(path)
        self.worker: Optional[str] = None
        self.pid: Optional[int] = None
        self.gen: Optional[str] = None
        self._last_seq: Dict[str, int] = {}

    def poll(self) -> List[dict]:
        out: List[dict] = []
        for rec in self._tailer.poll():
            if rec.get("kind") == "header":
                if rec.get("version") != TELEMETRY_VERSION:
                    self.gen = None  # unknown format: ignore its records
                    continue
                self.worker = rec.get("worker", self.worker)
                self.pid = rec.get("pid", self.pid)
                self.gen = rec.get("gen")
                continue
            if self.gen is None:
                continue  # data before any valid header
            seq = rec.get("seq")
            if isinstance(seq, int):
                if seq <= self._last_seq.get(self.gen, 0):
                    continue  # already consumed (re-read after rotation)
                self._last_seq[self.gen] = seq
            rec = dict(rec)
            rec["worker"] = self.worker
            rec["pid"] = self.pid
            rec["gen"] = self.gen
            out.append(rec)
        return out


# ----------------------------------------------------------------------
# Worker-side sampler
# ----------------------------------------------------------------------


class WorkerTelemetry:
    """Heartbeat producer for one worker process (or the serial driver).

    A daemon thread samples every ``interval`` seconds; cell boundaries emit
    immediately.  The live :class:`~repro.system.System` is published by
    :func:`publish_system` from inside the cell runner; the sampler only
    *reads* it (``engine.now`` / ``engine._seq`` advance during the run), so
    the simulation never observes the telemetry.
    """

    def __init__(
        self,
        spool: TelemetrySpool,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self.spool = spool
        self.interval = interval
        self.system: Optional[Any] = None  # published by the cell runner
        self.cell: Optional[dict] = None
        self.cells_done = 0
        self.cells_ok = 0
        self.cells_failed = 0
        self._last_events: Optional[int] = None
        self._last_wall = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._exited = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerTelemetry":
        self.spool.append(self._record("idle"))
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def write_exit(self, reason: str) -> None:
        """Durably write the terminal exit record, at most once.

        ``reason`` lands in the record so monitors can distinguish a clean
        shutdown from a termination signal from a worker that simply went
        silent (hung / SIGKILLed: no exit record at all).
        """
        if self._exited:
            return
        self._exited = True
        rec = self._record("exit")
        rec["reason"] = reason
        self.spool.append(rec, durable=True)

    def stop(self, reason: str = "clean") -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.write_exit(reason)
        self.spool.close()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.spool.append(self._record("running" if self.cell else "idle"))
            except Exception:  # pragma: no cover - never kill the worker
                pass

    # -- cell boundaries ----------------------------------------------
    def cell_start(self, cell: Any, attempt: int) -> None:
        self.cell = {
            "id": cell.cell_id,
            "workload": cell.workload,
            "scheme": cell.scheme,
            "attempt": attempt,
        }
        self._last_events = None
        self.spool.append(self._record("start"))

    def cell_end(self, status: str, elapsed: float) -> None:
        self.cells_done += 1
        if status == "ok":
            self.cells_ok += 1
        else:
            self.cells_failed += 1
        rec = self._record("end")
        rec["status"] = status
        rec["elapsed"] = round(elapsed, 3)
        self.spool.append(rec, durable=True)
        self.cell = None
        self.system = None

    # -- sampling ------------------------------------------------------
    def _record(self, phase: str) -> dict:
        rec: dict = {
            "ts": time.time(),
            "phase": phase,
            "cells": {
                "done": self.cells_done,
                "ok": self.cells_ok,
                "failed": self.cells_failed,
            },
            "rss": rss_bytes(),
        }
        if self.cell is not None:
            rec["cell"] = dict(self.cell)
        system = self.system
        if system is not None and phase in ("running", "start", "end"):
            try:
                self._sample_system(system, rec)
            except Exception:
                pass  # a half-built system mid-cell must not kill sampling
        return rec

    def _sample_system(self, system: Any, rec: dict) -> None:
        engine = system.engine
        # engine.now and the schedule counter _seq advance *during* run();
        # events_fired only folds in at run exit, so it is useless live.
        cycle = int(engine.now)
        events = int(engine._seq)
        rec["cycle"] = cycle
        rec["events"] = events
        wall = time.monotonic()
        if self._last_events is not None and wall > self._last_wall:
            rate = (events - self._last_events) / (wall - self._last_wall)
            rec["eps"] = round(max(rate, 0.0), 1)
        self._last_events = events
        self._last_wall = wall
        counters: dict = {}
        watchdog = getattr(engine, "watchdog", None)
        if watchdog is not None:
            counters["integrity.stall_polls"] = int(
                getattr(watchdog, "_stuck_polls", 0)
            )
        host = getattr(system, "host", None)
        if host is not None and host.faults_enabled:
            faults = host.link_fault_summary()
            for key in ("crc_errors", "replays", "retrains", "dropped"):
                if key in faults:
                    counters[f"faults.{key}"] = faults[key]
        if counters:
            rec["counters"] = counters
        sampler = getattr(system, "timeseries", None)
        if sampler is not None:
            rec["samples"] = int(getattr(sampler, "samples_taken", 0))
            gauges: dict = {}
            for name, series in getattr(sampler, "_series", {}).items():
                n = len(series)
                if n:
                    idx = (series._idx - 1) % series.capacity
                    gauges[name] = round(float(series._values[idx]), 6)
            if gauges:
                rec["gauges"] = gauges


# -- module slot the cell runner publishes through ---------------------

_worker: Optional[WorkerTelemetry] = None
_prev_sigterm: Optional[Any] = None
_sigterm_installed = False


def _sigterm_exit_record(signum: int, frame: Any) -> None:
    """SIGTERM handler: durably record *why* this worker went quiet.

    Without this only a clean interpreter exit writes the terminal spool
    record, so ``--watch`` cannot tell "terminated" from "hung".  The
    record is written here, then the previous disposition is restored and
    the signal re-delivered so termination semantics are unchanged.
    """
    w = _worker
    if w is not None:
        try:
            w.write_exit("sigterm")
            w.spool.close()
        except Exception:
            pass
    prev = _prev_sigterm
    try:
        signal.signal(
            signal.SIGTERM, prev if prev is not None else signal.SIG_DFL
        )
    except (ValueError, TypeError, OSError):  # pragma: no cover
        os._exit(143)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_sigterm_handler() -> None:
    global _prev_sigterm, _sigterm_installed
    if _sigterm_installed:
        return
    try:
        _prev_sigterm = signal.signal(signal.SIGTERM, _sigterm_exit_record)
        _sigterm_installed = True
    except ValueError:
        pass  # not the main thread: clean exits still get their record


def _uninstall_sigterm_handler() -> None:
    global _prev_sigterm, _sigterm_installed
    if not _sigterm_installed:
        return
    try:
        signal.signal(
            signal.SIGTERM,
            _prev_sigterm if _prev_sigterm is not None else signal.SIG_DFL,
        )
    except ValueError:  # pragma: no cover - symmetric with install
        pass
    _prev_sigterm = None
    _sigterm_installed = False


def publish_system(system: Optional[Any]) -> None:
    """Hand the live system to the sampler thread, if one is armed.

    One attribute check when telemetry is disabled — the bound-noop pattern
    the hot-path digests rely on.
    """
    w = _worker
    if w is not None:
        w.system = system


def current_worker() -> Optional[WorkerTelemetry]:
    return _worker


def activate_worker(
    spool_dir: Union[str, Path],
    worker: str,
    interval: float = DEFAULT_INTERVAL,
    max_bytes: int = DEFAULT_MAX_SPOOL_BYTES,
) -> WorkerTelemetry:
    """Arm heartbeat telemetry for this process; replaces any prior sampler."""
    global _worker
    deactivate_worker()
    spool = TelemetrySpool(spool_path(spool_dir, worker), worker, max_bytes)
    _worker = WorkerTelemetry(spool, interval).start()
    _install_sigterm_handler()
    return _worker


def deactivate_worker() -> None:
    global _worker
    w = _worker
    _worker = None
    _uninstall_sigterm_handler()
    if w is not None:
        w.stop()


class DriverTelemetry:
    """Parent-process spool: campaign totals, ETA, and liveness.

    Workers only know their own cells; cached and resumed cells are resolved
    in the parent, so campaign-level accounting (and the ETA) is sampled
    from :class:`~repro.campaign.progress.CampaignProgress` here and written
    to the ``driver`` spool for out-of-process monitors.
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        status_fn: Callable[[], dict],
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self.spool = TelemetrySpool(
            spool_path(spool_dir, DRIVER_WORKER), DRIVER_WORKER
        )
        self.status_fn = status_fn
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _record(self, phase: str) -> dict:
        rec = {"ts": time.time(), "phase": phase, "rss": rss_bytes()}
        try:
            rec["campaign"] = self.status_fn()
        except Exception:
            pass
        return rec

    def start(self) -> "DriverTelemetry":
        self.spool.append(self._record("driving"))
        self._thread = threading.Thread(
            target=self._loop, name="repro-driver-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.spool.append(self._record("driving"))
            except Exception:  # pragma: no cover
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.spool.append(self._record("exit"), durable=True)
        self.spool.close()


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


class WorkerView:
    """Latest known state of one worker, with stall tracking."""

    def __init__(self, worker: str) -> None:
        self.worker = worker
        self.pid: Optional[int] = None
        self.record: dict = {}
        self.updated: float = 0.0  # local monotonic time of last record
        self._frozen = 0  # consecutive running samples with a frozen cycle

    def update(self, rec: dict, now: float) -> None:
        prev = self.record
        if (
            rec.get("phase") == "running"
            and prev.get("phase") == "running"
            and rec.get("cell", {}).get("id") == prev.get("cell", {}).get("id")
            and rec.get("cycle") is not None
            and rec.get("cycle") == prev.get("cycle")
        ):
            self._frozen += 1
        else:
            self._frozen = 0
        self.record = rec
        self.pid = rec.get("pid", self.pid)
        self.updated = now

    def age(self, now: float) -> float:
        return max(0.0, now - self.updated)

    def stall_reason(self, now: float, stale_after: float) -> Optional[str]:
        """Why this worker looks wedged, or None if it looks healthy."""
        phase = self.record.get("phase")
        if phase == "exit":
            return None
        stall_polls = (self.record.get("counters") or {}).get(
            "integrity.stall_polls", 0
        )
        if stall_polls:
            return f"watchdog: {stall_polls} stalled poll(s)"
        if phase == "running" and self._frozen >= FROZEN_SAMPLES:
            return f"sim-cycle frozen at {self.record.get('cycle')}"
        if self.age(now) > stale_after:
            return f"no heartbeat for {self.age(now):.0f}s"
        return None

    def to_dict(self, now: float, stale_after: float) -> dict:
        rec = self.record
        out = {
            "worker": self.worker,
            "pid": self.pid,
            "phase": rec.get("phase", "unknown"),
            "age_seconds": round(self.age(now), 3),
            "cells": rec.get("cells", {}),
            "rss": rec.get("rss", 0),
        }
        for key in (
            "cell",
            "cycle",
            "events",
            "eps",
            "counters",
            "gauges",
            "reason",
        ):
            if key in rec:
                out[key] = rec[key]
        stall = self.stall_reason(now, stale_after)
        out["stalled"] = stall is not None
        if stall:
            out["stall_reason"] = stall
        return out


class CampaignView:
    """Merged live state of one campaign: workers + manifest + driver."""

    def __init__(self, stale_after: float = DEFAULT_STALE_AFTER) -> None:
        self.workers: Dict[str, WorkerView] = {}
        self.campaign: dict = {}  # driver spool totals/ETA (in-parent truth)
        self.manifest_meta: dict = {}  # manifest header fields (cells, jobs)
        self.manifest_cells: Dict[str, dict] = {}  # cell_id -> last record
        self.stale_after = stale_after

    # -- derived -------------------------------------------------------
    def manifest_counts(self) -> dict:
        counts = {"done": 0, "ok": 0, "failed": 0, "cached": 0}
        for rec in self.manifest_cells.values():
            counts["done"] += 1
            if rec.get("status") == "ok":
                counts["ok"] += 1
            else:
                counts["failed"] += 1
            if rec.get("cached"):
                counts["cached"] += 1
        total = self.manifest_meta.get("cells")
        if isinstance(total, int):
            counts["total"] = total
        return counts

    def failures(self, limit: int = 5) -> List[dict]:
        """Most recent failed cells, with any watchdog diagnosis attached."""
        bad = [
            {
                "cell_id": cid,
                "workload": rec.get("workload"),
                "scheme": rec.get("scheme"),
                "status": rec.get("status"),
                "diagnosis": rec.get("diagnosis"),
            }
            for cid, rec in self.manifest_cells.items()
            if rec.get("status") != "ok"
        ]
        return bad[-limit:]

    def to_snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-ready snapshot served at ``/snapshot`` and rendered by UIs."""
        now = time.monotonic() if now is None else now
        workers = [
            self.workers[name].to_dict(now, self.stale_after)
            for name in sorted(self.workers)
            if name != DRIVER_WORKER
        ]
        return {
            "version": TELEMETRY_VERSION,
            "ts": time.time(),
            "campaign": dict(self.campaign),
            "manifest": self.manifest_counts(),
            "workers": workers,
            "failures": self.failures(),
        }


class TelemetryAggregator:
    """Tail every spool (and optionally the manifest) into a CampaignView.

    :meth:`refresh` is cheap and incremental — safe to call from a UI loop
    and an HTTP handler concurrently (internally serialized).
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        manifest_path: Optional[Union[str, Path]] = None,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        self.spool_dir = Path(spool_dir)
        self.view = CampaignView(stale_after=stale_after)
        self._tailers: Dict[str, SpoolTailer] = {}
        self._manifest_tailer = (
            JsonlTailer(manifest_path) if manifest_path is not None else None
        )
        self._lock = threading.Lock()

    def refresh(self) -> CampaignView:
        with self._lock:
            self._poll_spools()
            self._poll_manifest()
            return self.view

    def _poll_spools(self) -> None:
        try:
            names = sorted(os.listdir(self.spool_dir))
        except OSError:
            return
        now = time.monotonic()
        for name in names:
            if not (name.startswith(SPOOL_PREFIX) and name.endswith(SPOOL_SUFFIX)):
                continue
            tailer = self._tailers.get(name)
            if tailer is None:
                tailer = self._tailers[name] = SpoolTailer(self.spool_dir / name)
            for rec in tailer.poll():
                worker = rec.get("worker") or name[len(SPOOL_PREFIX) : -len(SPOOL_SUFFIX)]
                if worker == DRIVER_WORKER:
                    if "campaign" in rec:
                        self.view.campaign = rec["campaign"]
                    continue
                wv = self.view.workers.get(worker)
                if wv is None:
                    wv = self.view.workers[worker] = WorkerView(worker)
                wv.update(rec, now)

    def _poll_manifest(self) -> None:
        if self._manifest_tailer is None:
            return
        for rec in self._manifest_tailer.poll():
            if rec.get("kind") == "header":
                self.view.manifest_meta = {
                    k: v for k, v in rec.items() if k != "kind"
                }
                # rotation/reset: a fresh header voids prior cell records
                self.view.manifest_cells = {}
                continue
            cid = rec.get("cell_id")
            if isinstance(cid, str):
                self.view.manifest_cells[cid] = rec


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------


class TelemetryServer:
    """Stdlib HTTP thread serving ``/snapshot`` (JSON) and ``/metrics``
    (Prometheus text exposition, see :mod:`repro.obs.promtext`)."""

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.snapshot_fn = snapshot_fn
        self.host = host
        self.port = port  # replaced with the bound port by start()
        self._httpd: Optional[Any] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "TelemetryServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from repro.obs.promtext import render_metrics

        snapshot_fn = self.snapshot_fn

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/snapshot":
                        body = json.dumps(snapshot_fn()).encode()
                        ctype = "application/json"
                    elif path == "/metrics":
                        body = render_metrics(snapshot_fn()).encode()
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    else:
                        self.send_error(404, "unknown path")
                        return
                except Exception as exc:  # pragma: no cover - handler safety
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # keep campaign output clean

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
