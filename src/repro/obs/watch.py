"""Terminal UIs over live campaign telemetry.

Two consumers of :class:`~repro.obs.telemetry.CampaignView`:

* :class:`WatchBoard` — the in-process ``repro campaign --watch`` status
  board.  A daemon thread refreshes a multi-line panel (per-worker rows,
  campaign totals, ETA from non-cached cells, stall highlighting wired to
  the watchdog diagnosis) on an ANSI terminal; on a non-TTY stream it
  degrades to one plain status line per refresh interval so CI logs stay
  useful.
* :func:`run_monitor` — the out-of-process ``repro monitor`` loop: tails
  the same spool directory (plus the manifest) from a second terminal or
  another host over a shared filesystem and renders the same board.

Rendering is pure (:func:`render_board` takes a snapshot dict and returns
lines), so the tests never need a TTY or a live campaign.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, TextIO, Union

from repro.obs.telemetry import (
    DEFAULT_STALE_AFTER,
    TelemetryAggregator,
    spool_dir_for,
)

#: ANSI fragments (used only when the stream is a TTY)
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"


def _fmt_rate(eps: Optional[float]) -> str:
    if not eps:
        return "--"
    if eps >= 1e6:
        return f"{eps / 1e6:.1f}M/s"
    if eps >= 1e3:
        return f"{eps / 1e3:.0f}k/s"
    return f"{eps:.0f}/s"


def _fmt_rss(rss: Optional[int]) -> str:
    if not rss:
        return "--"
    return f"{rss / (1 << 20):.0f}MB"


def render_board(snapshot: dict, color: bool = False) -> List[str]:
    """Render a telemetry snapshot as terminal lines (pure function)."""

    def paint(text: str, code: str) -> str:
        return f"{code}{text}{_RESET}" if color else text

    campaign = snapshot.get("campaign") or {}
    manifest = snapshot.get("manifest") or {}
    total = campaign.get("total", manifest.get("total"))
    done = campaign.get("done", manifest.get("done", 0))
    lines: List[str] = []

    header = f"campaign: {done}/{total if total is not None else '?'} cells"
    parts = []
    for key in ("ok", "failed", "cached", "resumed", "retried"):
        value = campaign.get(key, manifest.get(key))
        if value:
            text = f"{value} {key}"
            if key == "failed":
                text = paint(text, _RED)
            parts.append(text)
    if parts:
        header += "  (" + ", ".join(parts) + ")"
    eta = campaign.get("eta_seconds")
    if eta is not None and total is not None and done < total:
        header += f"  eta {_fmt_duration(eta)}"
    lines.append(header)

    workers = snapshot.get("workers") or []
    name_w = max([len(str(w.get("worker", "?"))) for w in workers] + [6])
    for worker in workers:
        name = str(worker.get("worker", "?"))
        phase = worker.get("phase", "?")
        cell = worker.get("cell") or {}
        cells_done = (worker.get("cells") or {}).get("done", 0)
        if phase in ("running", "start") and cell:
            what = f"{cell.get('workload', '?')}/{cell.get('scheme', '?')}"
            attempt = cell.get("attempt", 1)
            if attempt and attempt > 1:
                what += f" (attempt {attempt})"
            detail = (
                f"{what:<24} cyc {worker.get('cycle', '--'):>12} "
                f"{_fmt_rate(worker.get('eps')):>8}"
            )
        elif phase in ("exit",):
            detail = paint("finished", _DIM)
        else:
            detail = paint(phase, _DIM)
        row = (
            f"  {name:<{name_w}}  {detail}  "
            f"[{cells_done} done, rss {_fmt_rss(worker.get('rss'))}]"
        )
        if worker.get("stalled"):
            reason = worker.get("stall_reason", "stalled")
            row += "  " + paint(f"STALLED: {reason}", _RED)
        lines.append(row)
    if not workers:
        lines.append("  (no worker heartbeats yet)")

    failures = snapshot.get("failures") or []
    for failure in failures[-3:]:
        desc = (
            f"  failed: {failure.get('workload', '?')}/"
            f"{failure.get('scheme', '?')} ({failure.get('status')})"
        )
        diagnosis = failure.get("diagnosis") or {}
        if diagnosis:
            reason = diagnosis.get("reason", "integrity")
            desc += f" [diagnosed: {reason}"
            stuck = diagnosis.get("stuck_component")
            if stuck:
                desc += f", stuck: {stuck}"
            desc += "]"
        lines.append(paint(desc, _YELLOW))
    return lines


def render_status_line(snapshot: dict) -> str:
    """One-line summary for non-TTY streams (CI logs, pipes)."""
    campaign = snapshot.get("campaign") or {}
    manifest = snapshot.get("manifest") or {}
    total = campaign.get("total", manifest.get("total", "?"))
    done = campaign.get("done", manifest.get("done", 0))
    running = [
        f"{(w.get('cell') or {}).get('workload', '?')}/"
        f"{(w.get('cell') or {}).get('scheme', '?')}"
        for w in snapshot.get("workers") or []
        if w.get("phase") in ("running", "start") and w.get("cell")
    ]
    stalled = sum(1 for w in snapshot.get("workers") or [] if w.get("stalled"))
    line = f"watch: {done}/{total} done"
    eta = campaign.get("eta_seconds")
    if eta is not None:
        line += f", eta {_fmt_duration(eta)}"
    if running:
        line += ", running " + " ".join(running[:4])
    if stalled:
        line += f", {stalled} STALLED"
    return line


class WatchBoard:
    """Threaded live board for an in-process campaign.

    ``snapshot_fn`` supplies the merged view (usually
    ``aggregator.refresh().to_snapshot()`` with the driver's own progress
    spliced in); the board only renders.
    """

    def __init__(
        self,
        snapshot_fn,
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
    ) -> None:
        self.snapshot_fn = snapshot_fn
        self.stream = stream or sys.stdout
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_height = 0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def start(self) -> "WatchBoard":
        self._thread = threading.Thread(
            target=self._loop, name="repro-watch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._render_once()  # final state stays on screen

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._render_once()
            except Exception:  # pragma: no cover - UI must not kill the run
                pass

    def _render_once(self) -> None:
        snapshot = self.snapshot_fn()
        if self._tty:
            lines = render_board(snapshot, color=True)
            out = ""
            if self._last_height:
                out += f"\x1b[{self._last_height}F\x1b[J"  # up + clear below
            out += "\n".join(lines) + "\n"
            self.stream.write(out)
            self._last_height = len(lines)
        else:
            self.stream.write(render_status_line(snapshot) + "\n")
        self.stream.flush()


# ----------------------------------------------------------------------
# repro monitor
# ----------------------------------------------------------------------


def resolve_monitor_paths(target: Union[str, Path]) -> tuple:
    """Map a monitor target onto ``(spool_dir, manifest_path)``.

    Accepts the manifest file itself, its spool directory, or a directory
    containing exactly one ``*.telemetry`` spool dir / one manifest-like
    JSONL file.
    """
    target = Path(target)
    if target.is_file():
        return spool_dir_for(target), target
    if target.name.endswith(".telemetry") and target.is_dir():
        manifest = Path(str(target)[: -len(".telemetry")])
        return target, (manifest if manifest.exists() else None)
    if target.is_dir():
        spools = sorted(target.glob("*.telemetry"))
        if len(spools) == 1:
            manifest = Path(str(spools[0])[: -len(".telemetry")])
            return spools[0], (manifest if manifest.exists() else None)
        manifests = sorted(
            p
            for p in target.glob("*.jsonl")
            if not p.name.startswith("telemetry-")
        )
        if len(manifests) == 1:
            return spool_dir_for(manifests[0]), manifests[0]
        raise FileNotFoundError(
            f"{target}: could not identify a campaign (found "
            f"{len(spools)} spool dirs, {len(manifests)} manifests); "
            "point at the manifest file itself"
        )
    raise FileNotFoundError(f"{target}: no such manifest or spool directory")


def monitor_done(view_snapshot: dict) -> bool:
    """True once every cell the manifest promised is terminal."""
    manifest = view_snapshot.get("manifest") or {}
    total = manifest.get("total")
    return isinstance(total, int) and total > 0 and manifest.get("done", 0) >= total


def run_monitor(
    target: Union[str, Path],
    interval: float = 1.0,
    once: bool = False,
    as_json: bool = False,
    stream: Optional[TextIO] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
    max_seconds: Optional[float] = None,
) -> dict:
    """Tail a campaign's spools from outside the campaign process.

    Returns the final snapshot (also printed as JSON with ``as_json``).
    Exits when the manifest reports every cell terminal, after one refresh
    with ``once``, or after ``max_seconds``.
    """
    stream = stream or sys.stdout
    spool_dir, manifest_path = resolve_monitor_paths(target)
    aggregator = TelemetryAggregator(
        spool_dir, manifest_path=manifest_path, stale_after=stale_after
    )
    tty = bool(getattr(stream, "isatty", lambda: False)())
    deadline = time.monotonic() + max_seconds if max_seconds else None
    last_height = 0
    while True:
        snapshot = aggregator.refresh().to_snapshot()
        finished = monitor_done(snapshot)
        if once or finished or (deadline and time.monotonic() >= deadline):
            if as_json:
                import json

                stream.write(json.dumps(snapshot, indent=2) + "\n")
            else:
                if tty and last_height:
                    stream.write(f"\x1b[{last_height}F\x1b[J")
                stream.write("\n".join(render_board(snapshot, color=tty)) + "\n")
            stream.flush()
            return snapshot
        if as_json:
            pass  # JSON mode only emits the terminal snapshot
        elif tty:
            lines = render_board(snapshot, color=True)
            out = ""
            if last_height:
                out += f"\x1b[{last_height}F\x1b[J"
            out += "\n".join(lines) + "\n"
            stream.write(out)
            last_height = len(lines)
        else:
            stream.write(render_status_line(snapshot) + "\n")
        stream.flush()
        time.sleep(interval)
