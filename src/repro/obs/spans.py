"""Causal span tracing across the campaign service.

A *trace* follows one submission through every stage of the service path:
the trace id is minted at ``POST /submit`` (or accepted from a client's
``traceparent`` header), stored on the job and on every cell the job
created, embedded in the work-stealing *claim* records — so a cell stolen
by a peer process after its owner died keeps the same trace — and stamped
on every per-stage :class:`Span`:

========  ============================================================
stage     what the span measures
========  ============================================================
admit     the submit handler: parse, dedupe, admission, dispatch
queue     a cell's dwell in its priority lane (admission -> launch)
claim     appending the lease claim to the shared manifest
steal     the instant a peer took over an orphaned cell (zero-width)
execute   one pool-worker attempt (crashes and timeouts included)
merge     appending the terminal record (the exactly-once merge)
========  ============================================================

Spans persist as ``{"kind": "span", ...}`` lines in the campaign manifest.
Every existing reader skips unknown ``kind`` values, so the schema addition
is backward-compatible, and :meth:`Manifest.records` never sees them — the
merged matrix (and therefore every pinned digest) is byte-identical with
tracing on or off.  Span appends are flushed but not fsynced: spans are
observability, losing one in a crash costs a timeline slice, not a cell.

Timing is monotonic for durations (``time.monotonic``/``perf_counter``
deltas) and wall-clock for span starts, so spans written by different
processes land on one mergeable timeline.  :func:`spans_to_chrome` renders
that timeline in the Chrome trace-event format the simulator's exporters
(:mod:`repro.obs.export`) already emit, and :func:`merge_chrome` folds
sim-level trace files into the same JSON so one Perfetto tab shows the
service stages *and* the per-bank simulator activity they contain.

With spans disabled (``ServeConfig.spans=False``) every hook degrades to a
single attribute check: no manifest lines, no in-memory stage totals, no
``critical_path`` in ``GET /jobs/<id>`` — and nothing else changes.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: manifest record kind for persisted spans (readers skip unknown kinds)
KIND_SPAN = "span"

#: service stages, in causal order
STAGE_ADMIT = "admit"
STAGE_QUEUE = "queue"
STAGE_CLAIM = "claim"
STAGE_STEAL = "steal"
STAGE_EXECUTE = "execute"
STAGE_MERGE = "merge"
STAGES = (
    STAGE_ADMIT,
    STAGE_QUEUE,
    STAGE_CLAIM,
    STAGE_STEAL,
    STAGE_EXECUTE,
    STAGE_MERGE,
)

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})"
    r"-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{16,64}$")


def mint_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def mint_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def parse_traceparent(header: Optional[str]) -> Optional[str]:
    """Trace id from a W3C ``traceparent`` header; None when unusable.

    Accepts the standard ``00-<trace>-<span>-<flags>`` shape (any version
    byte) or a bare hex trace id.  The all-zero trace id is invalid per the
    spec and rejected, so a client cannot accidentally connect unrelated
    submissions under the null trace.
    """
    if not header or not isinstance(header, str):
        return None
    header = header.strip().lower()
    m = _TRACEPARENT_RE.match(header)
    trace = m.group("trace") if m else None
    if trace is None and _TRACE_ID_RE.match(header):
        trace = header
    if trace is None or set(trace) == {"0"}:
        return None
    return trace


def format_traceparent(trace_id: str, span_id: Optional[str] = None) -> str:
    """Render a ``traceparent`` header value for propagation to a client."""
    return f"00-{trace_id:0>32}-{span_id or mint_span_id()}-01"


@dataclass
class Span:
    """One timed stage of one trace (possibly one cell's)."""

    trace_id: str
    name: str  # one of STAGES
    start: float  # wall-clock (time.time()) seconds at span start
    dur: float  # seconds (monotonic-derived); 0 renders as an instant
    worker: str = ""
    cell_id: Optional[str] = None
    span_id: str = field(default_factory=mint_span_id)
    parent_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict:
        """The manifest line for this span (``kind`` stamped by the log)."""
        payload: dict = {
            "kind": KIND_SPAN,
            "trace": self.trace_id,
            "name": self.name,
            "start": round(self.start, 6),
            "dur": round(self.dur, 6),
            "worker": self.worker,
            "span_id": self.span_id,
        }
        if self.cell_id is not None:
            payload["cell_id"] = self.cell_id
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_payload(cls, raw: dict) -> Optional["Span"]:
        """Rebuild a span from a manifest line; None for malformed input."""
        try:
            trace = raw["trace"]
            name = raw["name"]
            start = float(raw["start"])
            dur = float(raw["dur"])
        except (KeyError, TypeError, ValueError):
            return None
        if not isinstance(trace, str) or not isinstance(name, str):
            return None
        attrs = raw.get("attrs")
        return cls(
            trace_id=trace,
            name=name,
            start=start,
            dur=max(0.0, dur),
            worker=str(raw.get("worker", "")),
            cell_id=raw.get("cell_id"),
            span_id=str(raw.get("span_id", "")) or mint_span_id(),
            parent_id=raw.get("parent"),
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
        )


class SpanLog:
    """One node's span recorder: manifest persistence + live stage totals.

    ``manifest`` is any object with an ``append_span(payload)`` method (the
    campaign :class:`~repro.campaign.manifest.Manifest`); append failures
    (ENOSPC, torn disk) are swallowed — spans are disposable observability,
    never load-bearing.  ``by_cell`` accumulates per-cell stage seconds for
    the live ``critical_path`` attribution in ``GET /jobs/<id>``.
    """

    def __init__(self, manifest: Any, worker: str, enabled: bool = True) -> None:
        self.manifest = manifest
        self.worker = worker
        self.enabled = enabled
        #: cell_id -> stage -> cumulative seconds (attempts summed)
        self.by_cell: Dict[str, Dict[str, float]] = {}
        self.recorded = 0
        self.dropped = 0  # spans lost to append errors

    def record(
        self,
        name: str,
        trace_id: Optional[str],
        start: float,
        dur: float,
        cell_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Record one span; no-op (returns None) when disabled or traceless."""
        if not self.enabled or not trace_id:
            return None
        span = Span(
            trace_id=trace_id,
            name=name,
            start=start,
            dur=max(0.0, dur),
            worker=self.worker,
            cell_id=cell_id,
            parent_id=parent_id,
            attrs=attrs,
        )
        if cell_id is not None:
            stages = self.by_cell.setdefault(cell_id, {})
            stages[name] = stages.get(name, 0.0) + span.dur
        try:
            self.manifest.append_span(span.to_payload())
            self.recorded += 1
        except OSError:
            self.dropped += 1
        return span

    def stage_totals(self, cell_ids: Iterable[str]) -> Dict[str, float]:
        """Summed per-stage seconds across ``cell_ids`` (known cells only)."""
        totals: Dict[str, float] = {}
        for cid in cell_ids:
            for stage, dur in (self.by_cell.get(cid) or {}).items():
                totals[stage] = totals.get(stage, 0.0) + dur
        return totals

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "cells": len(self.by_cell),
        }


def read_spans(
    path: Any,
    trace_id: Optional[str] = None,
) -> List[Span]:
    """Parse every span record out of a manifest file, oldest first.

    Tolerates everything the manifest readers tolerate (torn lines, foreign
    record kinds); with ``trace_id`` only that trace's spans return.
    """
    spans: List[Span] = []
    try:
        lines = open(path).read().splitlines()
    except OSError:
        return spans
    for line in lines:
        line = line.strip()
        if not line or '"span"' not in line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(raw, dict) or raw.get("kind") != KIND_SPAN:
            continue
        span = Span.from_payload(raw)
        if span is None:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        spans.append(span)
    spans.sort(key=lambda s: (s.start, s.name))
    return spans


# ----------------------------------------------------------------------
# Critical-path attribution
# ----------------------------------------------------------------------


def attribution(stage_seconds: Dict[str, float]) -> Dict[str, float]:
    """Fractional wall-clock attribution per stage (sums to ~1.0).

    Input is summed per-stage seconds (e.g. :meth:`SpanLog.stage_totals`);
    zero-total input attributes nothing (empty dict), so callers can treat
    "no spans yet" and "spans disabled" identically.
    """
    total = sum(d for d in stage_seconds.values() if d > 0)
    if total <= 0:
        return {}
    return {
        stage: round(dur / total, 4)
        for stage, dur in stage_seconds.items()
        if dur > 0
    }


def critical_path_text(fractions: Dict[str, float]) -> str:
    """Render attribution as ``"queue 71% / execute 24% / merge 5%"``."""
    ordered = sorted(fractions.items(), key=lambda kv: (-kv[1], kv[0]))
    return " / ".join(f"{stage} {frac:.0%}" for stage, frac in ordered)


# ----------------------------------------------------------------------
# Chrome trace-event rendering (merges with repro.obs.export output)
# ----------------------------------------------------------------------

#: service-span pids start here; the simulator's exporters use vault ids
#: (0..n) plus DEVICE_PID=1000, so merged files never collide
SERVICE_PID_BASE = 2000


def spans_to_chrome(spans: Iterable[Span]) -> Dict[str, Any]:
    """Chrome trace-event JSON for service spans: one *process* per worker
    node, one *thread* per cell (thread 0 holds cell-less admit spans).

    Timestamps are microseconds since the earliest span start, so the file
    loads in Perfetto / ``chrome://tracing`` exactly like the simulator
    traces from :func:`repro.obs.export.chrome_trace`.
    """
    spans = list(spans)
    t0 = min((s.start for s in spans), default=0.0)
    workers = sorted({s.worker for s in spans})
    pid_of = {w: SERVICE_PID_BASE + i for i, w in enumerate(workers)}
    tid_of: Dict[tuple, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        pid = pid_of[span.worker]
        key = (span.worker, span.cell_id or "")
        if span.cell_id is None:
            tid = 0
        else:
            tid = tid_of.setdefault(key, len(
                [k for k in tid_of if k[0] == span.worker]
            ) + 1)
        record: Dict[str, Any] = {
            "name": span.name,
            "cat": "serve",
            "pid": pid,
            "tid": tid,
            "ts": round((span.start - t0) * 1e6, 1),
            "args": {
                "trace": span.trace_id,
                **({"cell": span.cell_id} if span.cell_id else {}),
                **span.attrs,
            },
        }
        if span.dur > 0:
            record["ph"] = "X"
            record["dur"] = round(span.dur * 1e6, 1)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        events.append(record)
    metadata: List[Dict[str, Any]] = []
    for worker in workers:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[worker],
                "args": {"name": f"serve {worker}" if worker else "serve"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of[worker],
                "tid": 0,
                "args": {"name": "scheduler"},
            }
        )
    for (worker, cell), tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid_of[worker],
                "tid": tid,
                "args": {"name": cell},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "wall-microseconds",
            "epoch_start": t0,
            "spans": len(spans),
            "traces": len({s.trace_id for s in spans}),
        },
    }


def merge_chrome(
    service_trace: Dict[str, Any],
    sim_traces: Iterable[Dict[str, Any]] = (),
) -> Dict[str, Any]:
    """Fold simulator Chrome traces into a service-span timeline.

    Simulator events keep their own pids/tids (vault ids + DEVICE_PID, all
    below :data:`SERVICE_PID_BASE`) and their own cycle clock — they appear
    as separate track groups in the same Perfetto tab.  ``otherData`` from
    each input is preserved under ``sim[<index>]``.
    """
    merged = {
        "traceEvents": list(service_trace.get("traceEvents", [])),
        "displayTimeUnit": service_trace.get("displayTimeUnit", "ms"),
        "otherData": dict(service_trace.get("otherData", {})),
    }
    for i, sim in enumerate(sim_traces):
        merged["traceEvents"].extend(sim.get("traceEvents", []))
        other = sim.get("otherData")
        if other:
            merged["otherData"][f"sim{i}"] = other
    return merged
