"""Trace exporters: Chrome trace-event JSON, JSONL, and a text summary.

Chrome trace format
    The emitted file loads directly in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.  Tracks map hardware structure: one *process* per
    vault (plus one for device-level traffic such as link transfers), one
    *thread* per bank, with thread 0 holding controller-level events (CT/RUT
    updates, buffer decisions, scheduler state).  Timestamps are CPU cycles.
    Events with a duration become complete ("X") slices; the rest are
    instants.

JSONL
    One JSON object per line per event - the format for ad-hoc analysis
    (``jq``, pandas) and for diffing two runs' decision streams.

Text summary
    A per-vault table of the hierarchical counter registry's headline
    values, plus event-kind and provenance tallies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.tracer import Tracer

#: pid used for device-level events (link traffic, engine spans)
DEVICE_PID = 1000

#: tid used for controller-level events inside a vault's process
CONTROLLER_TID = 0


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build the Chrome trace-event dict (``json.dump`` it yourself, or use
    :func:`write_chrome_trace`)."""
    trace_events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}
    seen_tids: set = set()

    for e in tracer.events:
        pid = e.vault if e.vault >= 0 else DEVICE_PID
        tid = e.bank + 1 if e.bank >= 0 else CONTROLLER_TID
        if pid not in seen_pids:
            seen_pids[pid] = f"vault {pid}" if pid != DEVICE_PID else "device"
        seen_tids.add((pid, tid))
        record: Dict[str, Any] = {
            "name": e.kind,
            "cat": e.kind.split(".", 1)[0],
            "pid": pid,
            "tid": tid,
            "ts": e.time,
        }
        if e.dur > 0:
            record["ph"] = "X"
            record["dur"] = e.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if e.args:
            record["args"] = e.args
        trace_events.append(record)

    metadata: List[Dict[str, Any]] = []
    for pid, name in sorted(seen_pids.items()):
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
    for pid, tid in sorted(seen_tids):
        tname = "ctrl" if tid == CONTROLLER_TID else f"bank {tid - 1}"
        if pid == DEVICE_PID:
            tname = "links"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            **tracer.meta,
            "clock": "cpu-cycles",
            "events_dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    p = Path(path)
    with p.open("w") as fh:
        json.dump(chrome_trace(tracer), fh)
    return p


def write_jsonl(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write one JSON object per event; returns the path written.

    The first line is a ``{"meta": ...}`` header carrying the tracer's run
    metadata plus the recorded/dropped totals - the Chrome exporter records
    these in ``otherData``, and without the header a JSONL log silently lost
    them (a truncated stream was indistinguishable from a complete one).
    """
    p = Path(path)
    with p.open("w") as fh:
        fh.write(
            json.dumps(
                {
                    "meta": dict(tracer.meta),
                    "events_recorded": len(tracer.events),
                    "events_dropped": tracer.dropped,
                }
            )
        )
        fh.write("\n")
        for e in tracer.events:
            fh.write(json.dumps(e.to_dict()))
            fh.write("\n")
    return p


def text_summary(tracer: Tracer, max_vaults: int = 32) -> str:
    """Human-readable digest: event tallies, provenance split, and the
    busiest per-vault counters from the registry."""
    lines: List[str] = []
    meta = " ".join(f"{k}={v}" for k, v in tracer.meta.items())
    lines.append(f"trace summary {meta}".rstrip())
    lines.append(
        f"  events recorded     {len(tracer.events)}"
        + (f" (+{tracer.dropped} dropped)" if tracer.dropped else "")
    )
    counts = tracer.event_counts()
    if counts:
        width = max(len(k) for k in counts)
        for kind, n in counts.items():
            lines.append(f"    {kind:<{width}}  {n}")
    prov = tracer.provenance_counts()
    if prov:
        lines.append("  prefetch provenance")
        pwidth = max(len(t) for t in prov)
        for tag, n in sorted(prov.items()):
            lines.append(f"    {tag:<{pwidth}}  {n}")

    snapshot = tracer.counters.snapshot()
    vault_names = sorted(
        (k for k in snapshot if k.startswith("vault")),
        key=lambda k: int(k[5:]),
    )[:max_vaults]
    if vault_names:
        # columns: the headline per-vault counters (skip per-bank subtrees)
        cols = [
            "demand_reads",
            "demand_writes",
            "buffer_hits",
            "prefetches_issued",
            "sched_row_hit_issues",
            "tsv_busy_cycles",
        ]
        present = [c for c in cols if any(c in snapshot[v] for v in vault_names)]
        header = "  " + f"{'vault':<8}" + "".join(f"{c:>22}" for c in present)
        lines.append("  per-vault counters")
        lines.append(header)
        for v in vault_names:
            row = snapshot[v]
            cells = "".join(f"{row.get(c, 0):>22.0f}" for c in present)
            lines.append("  " + f"{v:<8}" + cells)
    return "\n".join(lines)
