"""Epoch-windowed metrics time series.

A :class:`TimeseriesSampler` snapshots a configurable set of gauges every
``epoch`` cycles into ring-buffered NumPy series: raw counter values, per-epoch
rates, windowed ratios, and any subset of a
:class:`~repro.obs.counters.CounterRegistry` selected by fnmatch patterns.
:meth:`TimeseriesSampler.attach` wires the standard derived gauges the paper's
discussion sections reason about - prefetch-buffer hit rate, per-vault
row-conflict rate, queue occupancy, link/TSV utilization, drain-mode
residency.

The sampler follows the same zero-cost contract as the rest of
:mod:`repro.obs` (see :mod:`repro.obs.hooks`): it is *pull*-based, so an
unsampled run carries no sampler at all and pays nothing.  A sampled run pays
only its own epoch ticks, and those are engineered to leave the simulation
byte-identical to an unsampled one:

* the tick is a **weak handle-free** engine entry
  (:meth:`~repro.sim.engine.Engine.call_at` with ``weak=True``), so it never
  keeps :meth:`~repro.sim.engine.Engine.run` alive and can never extend
  ``engine.now`` past the last real event;
* the tick only *reads* component state - it mutates nothing the simulation
  observes (event ordering keys are ``(time, priority, seq)`` with a
  monotonic ``seq``, so the extra entries cannot reorder real events);
* each tick decrements ``engine._events_fired`` by one from inside its own
  callback, cancelling its contribution to the lifetime event count, so
  ``result.extra["events_fired"]`` - part of the pinned benchmark digest -
  matches the unsampled run exactly.

``benchmarks/bench_timeseries_overhead.py`` enforces the digest parity and
the < 3 % runtime overhead bound in CI.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.counters import CounterRegistry, _read
from repro.sim.arrays import BankArrays
from repro.sim.engine import Engine

Gauge = Callable[[], float]

#: default sampling period (cycles); chosen so the quick benchmark mix takes
#: a few dozen samples, a full-length run a few hundred, and the per-tick
#: cost stays well inside the < 3 % overhead budget
DEFAULT_EPOCH = 2048

#: default ring capacity per series; a full-length run wraps and keeps the
#: most recent window rather than growing without bound
DEFAULT_CAPACITY = 4096


class Series:
    """A named ring buffer of ``(cycle, value)`` samples.

    Appends are O(1) into preallocated NumPy arrays; once ``capacity``
    samples have been taken the oldest are overwritten.  :attr:`times` /
    :attr:`values` return chronologically unrolled copies.
    """

    __slots__ = ("name", "capacity", "_times", "_values", "_idx", "_n")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._times = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.float64)
        self._idx = 0
        self._n = 0

    def append(self, time: int, value: float) -> None:
        idx = self._idx
        self._times[idx] = time
        self._values[idx] = value
        self._idx = (idx + 1) % self.capacity
        if self._n < self.capacity:
            self._n += 1

    def __len__(self) -> int:
        return self._n

    @property
    def wrapped(self) -> bool:
        """True once old samples have been overwritten."""
        return self._n == self.capacity and self._idx != 0

    def _unroll(self, arr: np.ndarray) -> np.ndarray:
        if self._n < self.capacity:
            return arr[: self._n].copy()
        idx = self._idx
        if idx == 0:
            return arr.copy()
        return np.concatenate((arr[idx:], arr[:idx]))

    @property
    def times(self) -> np.ndarray:
        """Sample cycles, oldest first."""
        return self._unroll(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values, oldest first."""
        return self._unroll(self._values)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict of the unrolled samples.

        Values are rounded to 9 decimal places (vectorized), which keeps the
        JSON artifact compact - gauges are rates and ratios, so trailing
        float noise would otherwise dominate the encoding - and keeps this
        call cheap enough to run inside result collection.
        """
        return {
            "times": self.times.tolist(),
            "values": np.round(self.values, 9).tolist(),
            "wrapped": self.wrapped,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Series {self.name} n={self._n}/{self.capacity}>"


class _BankScan:
    """One fused per-tick pass over every bank's access counters.

    The standard wiring needs per-vault windowed conflict rates (one series
    per vault) *and* the device-wide access total (the buffer hit-rate
    denominator), all from the same three bank attributes.  The gather and
    the per-vault fold ride the shared NumPy state-array layer
    (:class:`repro.sim.arrays.BankArrays`): one outcome gather refills the
    counter arrays, and the epoch deltas / windowed rates are vectorized
    instead of re-looped per vault per tick - the bench's < 3 % overhead
    bound depends on the tick staying linear in banks with the arithmetic
    in C.  The layer is read-only over simulation state, so sampled runs
    stay byte-identical to unsampled ones (the module-docstring contract).
    """

    __slots__ = ("_arrays", "_series", "_prev_conf", "_prev_acc",
                 "total_accesses")

    def __init__(self, vaults: List[Any], series: List[Series]) -> None:
        self._arrays = BankArrays(vaults)
        self._series = series
        n = len(vaults)
        self._prev_conf = np.zeros(n, dtype=np.int64)
        self._prev_acc = np.zeros(n, dtype=np.int64)
        self.total_accesses = 0
        self.tick(None)  # baseline pass: seed prev sums, append nothing

    def tick(self, now: Optional[int]) -> None:
        arrays = self._arrays
        arrays.refresh_outcomes()
        conf, acc = arrays.vault_outcome_sums()
        if now is not None:
            dc = conf - self._prev_conf
            da = acc - self._prev_acc
            # int64/int64 -> float64 matches the scalar quotient exactly at
            # these magnitudes; where= leaves 0.0 for idle vaults.
            rates = np.divide(
                dc, da, out=np.zeros(len(da), dtype=np.float64), where=da != 0
            )
            for series, rate in zip(self._series, rates.tolist()):
                series.append(now, rate)
        self._prev_conf = conf
        self._prev_acc = acc
        self.total_accesses = int(acc.sum())


class TimeseriesSampler:
    """Samples registered gauges every ``epoch`` cycles into :class:`Series`.

    Register gauges before :meth:`start`; each tick appends one sample per
    series at the tick's cycle.  Three gauge flavors cover the useful shapes:

    * :meth:`track` - sample a callable's value directly (occupancies,
      cumulative accuracies);
    * :meth:`track_rate` - per-cycle rate of a cumulative counter over the
      last epoch (throughputs, utilizations of busy-cycle counters);
    * :meth:`track_ratio` - windowed quotient of two cumulative counters'
      epoch deltas (hit rates, conflict rates), 0 when the denominator
      did not move.
    """

    def __init__(
        self,
        engine: Engine,
        epoch: int = DEFAULT_EPOCH,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        self.engine = engine
        self.epoch = epoch
        self.capacity = capacity
        self._series: Dict[str, Series] = {}
        self._trackers: List[Tuple[Series, Gauge]] = []
        #: batched samplers run at the start of every tick, before the
        #: per-series gauges; each receives the tick cycle and may append to
        #: several series at once (e.g. :class:`_BankScan`)
        self._batch: List[Callable[[Optional[int]], None]] = []
        self.samples_taken = 0
        self._armed = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _new_series(self, name: str) -> Series:
        if name in self._series:
            raise ValueError(f"duplicate series {name!r}")
        s = Series(name, self.capacity)
        self._series[name] = s
        return s

    def track(self, name: str, fn: Gauge) -> Series:
        """Sample ``fn()`` directly each epoch."""
        s = self._new_series(name)
        self._trackers.append((s, fn))
        return s

    def track_rate(self, name: str, fn: Gauge) -> Series:
        """Sample the per-cycle rate of a cumulative counter: each epoch
        records ``(fn() - previous) / epoch``."""
        s = self._new_series(name)
        epoch = self.epoch
        state = [float(fn())]

        def sample() -> float:
            cur = float(fn())
            rate = (cur - state[0]) / epoch
            state[0] = cur
            return rate

        self._trackers.append((s, sample))
        return s

    def track_ratio(self, name: str, num_fn: Gauge, den_fn: Gauge) -> Series:
        """Sample the windowed quotient of two cumulative counters: each
        epoch records ``Δnum / Δden`` (0.0 when ``Δden`` is 0)."""
        s = self._new_series(name)
        state = [float(num_fn()), float(den_fn())]

        def sample() -> float:
            n, d = float(num_fn()), float(den_fn())
            dn, dd = n - state[0], d - state[1]
            state[0], state[1] = n, d
            return dn / dd if dd else 0.0

        self._trackers.append((s, sample))
        return s

    def track_registry(
        self, registry: CounterRegistry, *patterns: str, sep: str = "."
    ) -> List[Series]:
        """Track every registry counter whose flattened name matches one of
        the fnmatch ``patterns`` (e.g. ``"vault*.buffer_hits"``).

        Sources are resolved once here; ticks read them directly instead of
        re-flattening the tree.  Counters are cumulative, so the tracked
        value is the running total - combine with :meth:`track_rate` flavors
        via explicit gauges when a windowed view is wanted.
        """
        made: List[Series] = []
        for path in sorted(registry._sources):
            bucket = registry._sources[path]
            for cname in bucket:
                flat = sep.join(path + (cname,))
                if not any(fnmatchcase(flat, p) for p in patterns):
                    continue
                source = bucket[cname]
                made.append(self.track(flat, lambda src=source: _read(src)))
        return made

    # ------------------------------------------------------------------
    # Standard wiring
    # ------------------------------------------------------------------
    def attach(self, system: Any) -> None:
        """Wire the standard derived gauges against a built
        :class:`~repro.system.System` (before :meth:`~repro.system.System.run`).

        Registers: prefetch-buffer hit rate and row accuracy, per-vault
        row-conflict rate, mean queue occupancy, link and TSV utilization,
        and drain-mode residency - each windowed per epoch where the
        underlying counters are cumulative.
        """
        device = system.device
        host = system.host
        vaults = device.vaults
        epoch = self.epoch

        # One fused bank pass per tick fills every per-vault conflict-rate
        # series and the hit-rate denominator (see _BankScan).  Stable
        # objects (counters, buses, schedulers) are resolved once here so
        # ticks do plain attribute reads, not dict lookups.
        vault_series = [
            self._new_series(f"vault{vc.vault_id}.conflict_rate")
            for vc in vaults
        ]
        scan = _BankScan(vaults, vault_series)
        self._batch.append(scan.tick)
        buf_hits = [vc.stats.counter("buffer_hits") for vc in vaults]

        self.track_ratio(
            "buffer.hit_rate",
            lambda: sum(c.value for c in buf_hits),
            lambda: sum(c.value for c in buf_hits) + scan.total_accesses,
        )
        self.track("prefetch.row_accuracy", device.prefetch_row_accuracy)
        queue_groups = [vc.queues for vc in vaults]
        nvaults = len(vaults)
        self.track(
            "queues.occupancy",
            lambda: sum(
                len(q) / (q.read_depth + q.write_depth) for q in queue_groups
            )
            / nvaults,
        )

        links = host.links
        link_cap = 2 * len(links) * epoch  # both directions of every link
        self.track_rate(
            "link.utilization",
            lambda: sum(l.total_busy_cycles for l in links) / link_cap * epoch,
        )
        buses = [vc.tsv_bus for vc in vaults]
        tsv_cap = nvaults * epoch
        self.track_rate(
            "tsv.utilization",
            lambda: sum(bus.busy_cycles for bus in buses) / tsv_cap * epoch,
        )
        engine = self.engine
        schedulers = [vc.scheduler for vc in vaults]
        self.track_rate(
            "sched.drain_residency",
            lambda: sum(s.drain_cycles_at(engine.now) for s in schedulers)
            / tsv_cap
            * epoch,
        )


    def attach_fabric(self, fsys: Any) -> None:
        """Wire the standard fabric gauges against a built
        :class:`~repro.fabric.system.FabricSystem` (before ``run``).

        Registers per-cube windowed conflict rates (one series per cube,
        not per vault - 8 cubes of 32 vaults would swamp the payload),
        host- and inter-cube-link utilization, the mean hop count, and the
        fabric-wide windowed buffer hit rate.
        """
        host = fsys.host
        devices = fsys.devices
        epoch = self.epoch

        for c, device in enumerate(devices):
            banks = [b for vc in device.vaults for b in vc.banks]
            self.track_ratio(
                f"cube{c}.conflict_rate",
                lambda banks=banks: sum(b.conflicts for b in banks),
                lambda banks=banks: sum(
                    b.hits + b.empties + b.conflicts for b in banks
                ),
            )
        buf_hits = [
            vc.stats.counter("buffer_hits")
            for device in devices
            for vc in device.vaults
        ]
        all_banks = [
            b for device in devices for vc in device.vaults for b in vc.banks
        ]
        self.track_ratio(
            "buffer.hit_rate",
            lambda: sum(c.value for c in buf_hits),
            lambda: sum(c.value for c in buf_hits)
            + sum(b.hits + b.empties + b.conflicts for b in all_banks),
        )

        links = host.links
        link_cap = 2 * len(links) * epoch
        self.track_rate(
            "host.link_utilization",
            lambda: sum(l.total_busy_cycles for l in links) / link_cap * epoch,
        )
        flinks = host.fabric_links
        if flinks:
            flink_cap = 2 * len(flinks) * epoch
            self.track_rate(
                "fabric.link_utilization",
                lambda: sum(l.total_busy_cycles for l in flinks)
                / flink_cap
                * epoch,
            )
            routers = host.routers
            self.track_rate(
                "fabric.hop_flit_rate",
                lambda: float(sum(r.hop_flits for r in routers)),
            )
        hop_hist = host.hop_hist
        self.track("fabric.mean_hops", lambda: hop_hist.mean)

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first epoch tick (idempotent; call before the run)."""
        if not self._armed:
            self._armed = True
            self.engine.call_at(
                self.engine.now + self.epoch, self._tick, weak=True
            )

    def _tick(self) -> None:
        now = self.engine.now
        for batch in self._batch:
            batch(now)
        for series, fn in self._trackers:
            series.append(now, fn())
        self.samples_taken += 1
        engine = self.engine
        # The tick must be invisible to result digests: events_fired is part
        # of SimulationResult.extra, so cancel this firing's contribution.
        # run() folds its local counter into _events_fired only on exit, so
        # the in-callback decrement nets out exactly.
        engine._events_fired -= 1
        engine.call_at(now + self.epoch, self._tick, weak=True)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def series(self) -> Dict[str, Series]:
        """All registered series by name."""
        return dict(self._series)

    def get(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict embedding every series (RunReport's ``series``)."""
        return {
            "epoch": self.epoch,
            "capacity": self.capacity,
            "samples_taken": self.samples_taken,
            "series": {
                name: s.to_payload() for name, s in sorted(self._series.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimeseriesSampler epoch={self.epoch} "
            f"series={len(self._series)} n={self.samples_taken}>"
        )
