"""The Tracer: near-zero-overhead structured event recording.

Design rules, in priority order:

1. **Cost nothing when absent.**  Every instrumented component holds a
   ``tracer`` attribute that defaults to ``None``; each hook site is guarded
   by a single ``if self.tracer is not None`` check, so an un-traced
   simulation does exactly one attribute load + identity test per hook.
   ``benchmarks/bench_obs_overhead.py`` holds this to within noise of the
   uninstrumented engine loop.
2. **Cost little when present.**  ``_push`` appends one ``__slots__`` object
   to a list; no dict merging, no formatting, no I/O.  Export happens after
   the run.
3. **Answer "why".**  Prefetch events carry the provenance tag of the
   decision path that issued them (utilization- vs conflict-triggered for
   CAMPS), so a trace is a complete audit log of the scheme's choices.

Wiring is duck-typed: :meth:`Tracer.wire_system` walks a built
:class:`~repro.system.System` and installs itself on the engine, host,
vault controllers, schedulers, prefetchers and banks, then registers the
existing statistics counters into the hierarchical
:class:`~repro.obs.counters.CounterRegistry` (device → vault → bank).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs import events as ev
from repro.obs.counters import CounterRegistry
from repro.obs.events import TraceEvent

#: CommandKind.value -> trace event kind (see repro.dram.commands)
_COMMAND_KINDS: Dict[str, str] = {
    "ACT": ev.BANK_ACT,
    "PRE": ev.BANK_PRE,
    "RD": ev.BANK_READ,
    "WR": ev.BANK_WRITE,
    "ROWF": ev.TSV_XFER,
    "ROWR": ev.TSV_XFER,
    "REF": ev.BANK_REFRESH,
}


class Tracer:
    """Collects :class:`TraceEvent` records plus a counter registry.

    ``capacity`` bounds memory: once the event list is full further events
    are counted in ``dropped`` instead of stored (the counters keep
    aggregating regardless).  ``engine_spans`` additionally records one
    event per engine callback fired - complete visibility, high volume -
    and is off by default.
    """

    def __init__(self, capacity: int = 2_000_000, engine_spans: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.engine_spans = engine_spans
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self.counters = CounterRegistry()
        self.meta: Dict[str, Any] = {}
        self._engine = None  # set by wire_system; used for summary()

    # ------------------------------------------------------------------
    # Core emit path
    # ------------------------------------------------------------------
    def _push(
        self,
        kind: str,
        time: int,
        dur: int = 0,
        vault: int = -1,
        bank: int = -1,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(kind, time, dur, vault, bank, args))

    # ------------------------------------------------------------------
    # Typed hooks (thin wrappers so call sites stay one-liners)
    # ------------------------------------------------------------------
    def bank_command(self, vault: int, bank: int, command: Any, row: int, time: int) -> None:
        """One DRAM command primitive (``command`` is a CommandKind)."""
        kind = _COMMAND_KINDS.get(command.value, ev.BANK_ACT)
        self._push(kind, time, vault=vault, bank=bank, args={"row": row})

    def bank_conflict(
        self, vault: int, bank: int, open_row: int, new_row: int, time: int
    ) -> None:
        self._push(
            ev.BANK_CONFLICT,
            time,
            vault=vault,
            bank=bank,
            args={"open_row": open_row, "row": new_row},
        )

    def rut_threshold(
        self, vault: int, bank: int, row: int, utilization: int, time: int
    ) -> None:
        self._push(
            ev.RUT_THRESHOLD,
            time,
            vault=vault,
            bank=bank,
            args={"row": row, "utilization": utilization},
        )

    def ct_insert(self, vault: int, bank: int, row: int, time: int) -> None:
        self._push(ev.CT_INSERT, time, vault=vault, bank=bank, args={"row": row})

    def ct_hit(self, vault: int, bank: int, row: int, time: int) -> None:
        self._push(ev.CT_HIT, time, vault=vault, bank=bank, args={"row": row})

    def ct_evict(self, vault: int, bank: int, row: int, time: int) -> None:
        self._push(ev.CT_EVICT, time, vault=vault, bank=bank, args={"row": row})

    def prefetch_issue(
        self, vault: int, bank: int, row: int, provenance: str, time: int
    ) -> None:
        self._push(
            ev.PF_ISSUE,
            time,
            vault=vault,
            bank=bank,
            args={"row": row, "provenance": provenance},
        )

    def prefetch_fill(
        self, vault: int, bank: int, row: int, provenance: str, start: int, finish: int
    ) -> None:
        """The row streaming into the buffer (a span: start → finish)."""
        self._push(
            ev.PF_FILL,
            start,
            dur=max(0, finish - start),
            vault=vault,
            bank=bank,
            args={"row": row, "provenance": provenance},
        )

    def prefetch_hit(
        self,
        vault: int,
        bank: int,
        row: int,
        provenance: str,
        time: int,
        in_flight: bool = False,
    ) -> None:
        self._push(
            ev.PF_HIT,
            time,
            vault=vault,
            bank=bank,
            args={"row": row, "provenance": provenance, "in_flight": in_flight},
        )

    def prefetch_evict(
        self,
        vault: int,
        bank: int,
        row: int,
        provenance: str,
        used: bool,
        utilization: int,
        time: int,
    ) -> None:
        self._push(
            ev.PF_EVICT,
            time,
            vault=vault,
            bank=bank,
            args={
                "row": row,
                "provenance": provenance,
                "used": used,
                "utilization": utilization,
            },
        )

    def buffer_replace(
        self,
        vault: int,
        new_bank: int,
        new_row: int,
        victim_bank: int,
        victim_row: int,
        policy: str,
        time: int,
    ) -> None:
        """A replacement decision: which resident row made room for which."""
        self._push(
            ev.BUF_REPLACE,
            time,
            vault=vault,
            bank=new_bank,
            args={
                "row": new_row,
                "victim_bank": victim_bank,
                "victim_row": victim_row,
                "policy": policy,
            },
        )

    def link_tx(
        self, link: int, direction: str, nbytes: int, start: int, finish: int
    ) -> None:
        self._push(
            ev.LINK_TX,
            start,
            dur=max(0, finish - start),
            args={"link": link, "direction": direction, "bytes": nbytes},
        )

    def link_retry(self, direction: str, replays: int, nbytes: int, time: int) -> None:
        """One packet's error episode: NAK'd and replayed ``replays`` times."""
        self._push(
            ev.LINK_RETRY,
            time,
            args={"direction": direction, "replays": replays, "bytes": nbytes},
        )

    def link_retrain(self, direction: str, time: int) -> None:
        """Bounded retries exhausted: the link paid a retraining penalty."""
        self._push(ev.LINK_RETRAIN, time, args={"direction": direction})

    def sched_drain(self, vault: int, draining: bool, pending_writes: int, time: int) -> None:
        self._push(
            ev.SCHED_DRAIN,
            time,
            vault=vault,
            args={"draining": draining, "pending_writes": pending_writes},
        )

    def engine_fire(self, time: int, fn: Callable[..., Any]) -> None:
        """One engine callback fired (only recorded in ``engine_spans`` mode)."""
        name = getattr(fn, "__qualname__", None) or repr(fn)
        self._push(ev.ENGINE_FIRE, time, args={"fn": name})

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def wire_system(self, system: Any) -> None:
        """Install this tracer on every instrumented component of a built
        (not yet run) :class:`~repro.system.System` and register the
        component counters into the device → vault → bank registry."""
        engine = system.engine
        engine.tracer = self
        self._engine = engine
        self.meta.setdefault("scheme", system.config.scheme)
        self.meta.setdefault("workload", system.workload)

        device = system.device
        host = system.host
        host.tracer = self

        dev_scope = self.counters.scope("device")
        dev_scope.register("events_fired", lambda: engine.events_fired)
        dev_scope.register("cycles", lambda: engine.now)
        dev_scope.register("crossbar_traversals", lambda: device.crossbar.traversals)
        host_scope = self.counters.scope("host")
        for name, counter in host.stats.counters.items():
            host_scope.register(name, counter)
        for link in host.links:
            ls = host_scope.scope(f"link{link.link_id}")
            for d in (link.request, link.response):
                d.tracer = self
                direction = d.name.rsplit(".", 1)[-1]
                ls.register(f"{direction}_packets", (lambda d=d: d.packets))
                ls.register(f"{direction}_bytes", (lambda d=d: d.bytes_sent))
                if d.retry is not None:
                    ls.register(f"{direction}_replays", (lambda d=d: d.retry.replays))
                    ls.register(f"{direction}_retrains", (lambda d=d: d.retry.retrains))

        for vc in device.vaults:
            vc.tracer = self
            vc.scheduler.tracer = self
            vc.prefetcher.tracer = self
            for bank in vc.banks:
                bank.tracer = self
            vs = self.counters.scope(f"vault{vc.vault_id}")
            for name, counter in vc.stats.counters.items():
                vs.register(name, counter)
            vs.register("sched_row_hit_issues", lambda vc=vc: vc.scheduler.row_hit_issues)
            vs.register("sched_fcfs_issues", lambda vc=vc: vc.scheduler.fcfs_issues)
            vs.register("sched_drain_entries", lambda vc=vc: vc.scheduler.drain_entries)
            vs.register("tsv_busy_cycles", lambda vc=vc: vc.tsv_bus.busy_cycles)
            vs.register("prefetches_issued", lambda vc=vc: vc.prefetcher.prefetches_issued)
            for stat_name, fn in vc.prefetcher.observed_stats().items():
                vs.register(stat_name, fn)
            for bank in vc.banks:
                bs = vs.scope(f"bank{bank.bank_id}")
                for attr in ("acts", "pres", "reads", "writes", "conflicts", "hits", "empties"):
                    bs.register(attr, (lambda b=bank, a=attr: getattr(b, a)))

    def wire_fabric(self, fsys: Any) -> None:
        """Install this tracer on a built (not yet run)
        :class:`~repro.fabric.system.FabricSystem`.

        The registry is kept bounded for 8-cube fabrics: per-link counters
        for host and inter-cube links, per-cube aggregates plus router
        forwarding counters - no per-bank fan-out (32 vaults x 16 banks x 8
        cubes would dwarf every other scope combined).
        """
        engine = fsys.engine
        engine.tracer = self
        self._engine = engine
        self.meta.setdefault("scheme", fsys.config.scheme)
        self.meta.setdefault("workload", fsys.workload)
        self.meta.setdefault("topology", fsys.fabric.spec)

        host = fsys.host
        host.tracer = self
        dev_scope = self.counters.scope("device")
        dev_scope.register("events_fired", lambda: engine.events_fired)
        dev_scope.register("cycles", lambda: engine.now)
        host_scope = self.counters.scope("host")
        for name, counter in host.stats.counters.items():
            host_scope.register(name, counter)
        for link in (*host.links, *host.fabric_links):
            ls = host_scope.scope(f"link{link.link_id}")
            for d in (link.request, link.response):
                d.tracer = self
                direction = d.name.rsplit(".", 1)[-1]
                ls.register(f"{direction}_packets", (lambda d=d: d.packets))
                ls.register(f"{direction}_bytes", (lambda d=d: d.bytes_sent))
                if d.retry is not None:
                    ls.register(f"{direction}_replays", (lambda d=d: d.retry.replays))
                    ls.register(f"{direction}_retrains", (lambda d=d: d.retry.retrains))

        for c, device in enumerate(fsys.devices):
            router = host.routers[c]
            cs = self.counters.scope(f"cube{c}")
            cs.register("demand_accesses", (lambda dev=device: dev.demand_accesses))
            cs.register("row_conflicts", (lambda dev=device: dev.row_conflicts))
            cs.register("buffer_hits", (lambda dev=device: dev.buffer_hits))
            cs.register(
                "prefetches_issued", (lambda dev=device: dev.prefetches_issued())
            )
            cs.register(
                "crossbar_traversals", (lambda dev=device: dev.crossbar.traversals)
            )
            cs.register("router_local_requests", (lambda r=router: r.local_requests))
            cs.register(
                "router_forwarded_requests", (lambda r=router: r.forwarded_requests)
            )
            cs.register(
                "router_forwarded_responses",
                (lambda r=router: r.forwarded_responses),
            )
            cs.register("router_hop_flits", (lambda r=router: r.hop_flits))
            for vc in device.vaults:
                vc.tracer = self
                vc.scheduler.tracer = self
                vc.prefetcher.tracer = self
                for bank in vc.banks:
                    bank.tracer = self

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def event_counts(self) -> Dict[str, int]:
        """Recorded events per kind (display order, zero-kinds omitted)."""
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return {k: counts[k] for k in ev.ALL_KINDS if k in counts}

    def provenance_counts(self) -> Dict[str, int]:
        """Issued prefetches per provenance tag."""
        counts: Dict[str, int] = {}
        for e in self.events:
            if e.kind == ev.PF_ISSUE and e.args:
                tag = e.args.get("provenance", "?")
                counts[tag] = counts.get(tag, 0) + 1
        return counts

    def summary(self) -> Dict[str, Any]:
        """Compact end-of-run digest (lands in SimulationResult.extra)."""
        out: Dict[str, Any] = {
            "events_recorded": len(self.events),
            "events_dropped": self.dropped,
            "by_kind": self.event_counts(),
            "prefetch_provenance": self.provenance_counts(),
        }
        out.update(self.meta)
        if self._engine is not None and self._engine.wall_seconds:
            out["engine_events_per_sec"] = round(self._engine.events_per_sec)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer events={len(self.events)} dropped={self.dropped} "
            f"counters={len(self.counters)}>"
        )
