"""Typed trace events for the observability subsystem.

Every recordable occurrence in the simulator is one :class:`TraceEvent` with
a dot-namespaced ``kind`` drawn from the constants below.  Kinds are plain
strings (not enums) so the hot emit path pays no attribute lookups and the
exporters can group by prefix (``bank.*``, ``pf.*``) with a split.

Prefetch events carry a **provenance tag** identifying which decision path
issued the prefetch - the paper's two trigger mechanisms:

* :data:`PROV_UTILIZATION` - the RUT utilization counter crossed the
  threshold (a high-utilization open row was moved to the buffer).
* :data:`PROV_CONFLICT` - the activated row had a Conflict Table entry
  (a conflict-prone row was fetched preemptively).

Other schemes use their own tags (``"base"``, ``"queue"``, ``"mmd"``) so a
trace always answers *why* each row entered the buffer.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

# --- bank command / row-buffer events ---------------------------------------
BANK_ACT = "bank.act"  # ACTIVATE command
BANK_PRE = "bank.pre"  # PRECHARGE command
BANK_READ = "bank.read"  # column READ
BANK_WRITE = "bank.write"  # column WRITE
BANK_REFRESH = "bank.refresh"  # per-bank REFRESH
BANK_CONFLICT = "bank.conflict"  # demand access found a different row open

# --- CAMPS profiling-table events -------------------------------------------
RUT_THRESHOLD = "rut.threshold"  # utilization counter crossed the threshold
CT_INSERT = "ct.insert"  # displaced row entered the Conflict Table
CT_HIT = "ct.hit"  # activated row found in the CT (conflict-prone)
CT_EVICT = "ct.evict"  # LRU eviction from a full CT

# --- prefetch lifecycle ------------------------------------------------------
PF_ISSUE = "pf.issue"  # decision made: fetch this row to the buffer
PF_FILL = "pf.fill"  # row streaming over the TSVs into the buffer
PF_HIT = "pf.hit"  # demand access served from the prefetch buffer
PF_EVICT = "pf.evict"  # row left the buffer (replacement / invalidate)
BUF_REPLACE = "buf.replace"  # replacement decision (victim choice)

# --- transfers ---------------------------------------------------------------
LINK_TX = "link.tx"  # packet serialized onto an external serial link
LINK_RETRY = "link.retry"  # CRC/drop episode: NAK'd packet replayed from the retry buffer
LINK_RETRAIN = "link.retrain"  # bounded retries exhausted: link retraining penalty
TSV_XFER = "tsv.xfer"  # row/line transfer over a vault's internal TSVs

# --- scheduler / engine ------------------------------------------------------
SCHED_DRAIN = "sched.drain"  # write-drain mode toggled
ENGINE_FIRE = "engine.fire"  # one engine callback fired (spans mode only)

# --- provenance tags ---------------------------------------------------------
PROV_UTILIZATION = "utilization"
PROV_CONFLICT = "conflict"

#: every kind the exporters know how to label, in display order
ALL_KINDS = (
    BANK_ACT,
    BANK_PRE,
    BANK_READ,
    BANK_WRITE,
    BANK_REFRESH,
    BANK_CONFLICT,
    RUT_THRESHOLD,
    CT_INSERT,
    CT_HIT,
    CT_EVICT,
    PF_ISSUE,
    PF_FILL,
    PF_HIT,
    PF_EVICT,
    BUF_REPLACE,
    LINK_TX,
    LINK_RETRY,
    LINK_RETRAIN,
    TSV_XFER,
    SCHED_DRAIN,
    ENGINE_FIRE,
)


class TraceEvent:
    """One recorded occurrence.

    ``time`` and ``dur`` are in CPU cycles (the engine's clock).  ``vault``
    and ``bank`` place the event on a track; ``-1`` means device-level (no
    vault) or controller-level (no bank).  ``args`` carries event-specific
    payload (row, provenance, byte counts, ...) and may be None.
    """

    __slots__ = ("kind", "time", "dur", "vault", "bank", "args")

    def __init__(
        self,
        kind: str,
        time: int,
        dur: int = 0,
        vault: int = -1,
        bank: int = -1,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.time = time
        self.dur = dur
        self.vault = vault
        self.bank = bank
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form (the JSONL exporter's record shape)."""
        d: Dict[str, Any] = {"kind": self.kind, "time": self.time}
        if self.dur:
            d["dur"] = self.dur
        if self.vault >= 0:
            d["vault"] = self.vault
        if self.bank >= 0:
            d["bank"] = self.bank
        if self.args:
            d.update(self.args)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loc = f"v{self.vault}" + (f"b{self.bank}" if self.bank >= 0 else "")
        return f"<TraceEvent {self.kind} t={self.time} {loc} {self.args or ''}>"
