"""Zero-cost instrumentation: the shared no-op emit target.

Instrumented components do not test ``if self.tracer is not None`` on hot
paths.  Instead each component exposes ``tracer`` as a property whose setter
rebinds one per-site emit attribute per hook to either a *bound tracer
method* (tracing on) or :func:`noop` (tracing off), resolved once at wiring
time.  The hot path then pays exactly one attribute load + one call, and the
disabled path executes no branches at all.

Contract for new components (see docs/API.md, "Instrumentation contract"):

1. Store the tracer in a private ``_tracer`` attribute; expose it through a
   ``tracer`` property so :meth:`repro.obs.tracer.Tracer.wire_system`'s plain
   ``component.tracer = self`` assignment triggers the rebind.
2. In the setter, rebind every emit attribute:
   ``self._emit_x = tracer.x if tracer is not None else noop``.
3. Call ``self._emit_x(...)`` unconditionally at the hook site - never guard
   it with a tracer check.
4. Initialise ``_tracer = None`` and run the rebind once in ``__init__`` so
   the attributes exist before wiring.
"""

from __future__ import annotations

from typing import Any


def noop(*args: Any, **kwargs: Any) -> None:
    """Do-nothing emit target bound into unwired instrumentation sites."""
    return None
