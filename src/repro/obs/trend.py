"""Benchmark history store and rolling-median regression detection.

Every benchmark run appends one JSONL record to ``BENCH_history.jsonl`` via
:func:`append_entry` (digest, wall time, calibration-normalized wall time,
git SHA, timestamp).  ``repro bench-trend`` loads the history and flags any
benchmark whose newest normalized time regressed against the rolling median
of its previous runs — the median absorbs the occasional noisy run that a
latest-vs-previous comparison would misread.

Normalization: benchmarks that measure a calibration score (dict-churn ops/s
on the host, see ``benchmarks/bench_hotpath.py``) record
``normalized = wall * calibration / 1e6`` so entries from machines of
different speeds share one scale; benchmarks without calibration record the
raw wall time and trend analysis is only meaningful per-machine.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

HISTORY_VERSION = 1

#: default history file, next to the BENCH_*.json artifacts at the repo root
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: how many prior runs feed the rolling median
DEFAULT_WINDOW = 8

#: latest/median ratio above which a benchmark is flagged (25 % — wall-time
#: medians on shared CI runners jitter by ~10 %, so a tighter gate would cry
#: wolf)
DEFAULT_TOLERANCE = 0.25


def git_sha() -> str:
    """Short commit SHA of the working tree, or "unknown" outside git."""
    env_sha = os.environ.get("GITHUB_SHA")
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return env_sha[:12] if env_sha else "unknown"


def append_entry(
    path: Union[str, Path],
    bench: str,
    wall_seconds: float,
    normalized: Optional[float] = None,
    digest: Optional[str] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Append one benchmark result to the history file; returns the record."""
    record = {
        "v": HISTORY_VERSION,
        "bench": bench,
        "wall_seconds": round(float(wall_seconds), 6),
        "normalized": round(float(normalized), 6)
        if normalized is not None
        else round(float(wall_seconds), 6),
        "digest": digest,
        "git_sha": git_sha(),
        "ts": time.time(),
    }
    if meta:
        record["meta"] = meta
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps({k: v for k, v in record.items() if v is not None}) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return record


def load_history(path: Union[str, Path]) -> List[dict]:
    """Read the history tolerantly: bad/torn lines are skipped, order kept."""
    path = Path(path)
    if not path.exists():
        return []
    out: List[dict] = []
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(rec, dict) or rec.get("v") != HISTORY_VERSION:
            continue
        if not isinstance(rec.get("bench"), str):
            continue
        try:
            rec["normalized"] = float(rec.get("normalized", rec.get("wall_seconds")))
        except (TypeError, ValueError):
            continue
        if not math.isfinite(rec["normalized"]) or rec["normalized"] <= 0:
            continue
        out.append(rec)
    return out


@dataclass
class BenchTrend:
    """Trend verdict for one benchmark name."""

    bench: str
    runs: int
    latest: float  # newest normalized time
    median: Optional[float]  # rolling median of the prior window
    ratio: Optional[float]  # latest / median
    regressed: bool
    latest_sha: str

    def describe(self) -> str:
        if self.median is None:
            return (
                f"{self.bench}: {self.latest:.3f}s normalized "
                f"({self.runs} run(s), no baseline yet)"
            )
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.bench}: {self.latest:.3f}s vs median {self.median:.3f}s "
            f"over {self.runs - 1} prior run(s) "
            f"(x{self.ratio:.2f}, {verdict}, {self.latest_sha})"
        )


def trend_report(
    entries: List[dict],
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[BenchTrend]:
    """Per-benchmark rolling-median verdicts, sorted by name.

    The newest entry per benchmark is compared against the median of up to
    ``window`` runs immediately before it.  A single run has no baseline
    and can never regress.
    """
    by_bench: Dict[str, List[dict]] = {}
    for rec in entries:
        by_bench.setdefault(rec["bench"], []).append(rec)
    out: List[BenchTrend] = []
    for bench in sorted(by_bench):
        runs = by_bench[bench]
        latest = runs[-1]
        prior = [r["normalized"] for r in runs[:-1]][-window:]
        median = statistics.median(prior) if prior else None
        ratio = (latest["normalized"] / median) if median else None
        out.append(
            BenchTrend(
                bench=bench,
                runs=len(runs),
                latest=latest["normalized"],
                median=median,
                ratio=ratio,
                regressed=bool(ratio is not None and ratio > 1.0 + tolerance),
                latest_sha=str(latest.get("git_sha", "unknown")),
            )
        )
    return out
