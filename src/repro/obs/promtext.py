"""Prometheus text exposition for campaign telemetry snapshots.

:func:`render_metrics` turns a :meth:`CampaignView.to_snapshot
<repro.obs.telemetry.CampaignView.to_snapshot>` dict into the Prometheus
text exposition format (version 0.0.4) served at ``/metrics``.
:func:`parse_exposition` is a strict-enough parser used by the tests and the
CI smoke job to assert the output is actually scrapeable — every sample line
must match the exposition grammar and agree with its ``# TYPE`` declaration.

Most metrics are gauges (campaign state is a snapshot, and counters reset
when a campaign restarts); the serve layer's queue-age and service-time
distributions render as real Prometheus *histogram* families — cumulative
``_bucket{le=...}`` series ending in the mandatory ``+Inf`` bucket plus
``_sum``/``_count``.  The ``repro_`` prefix namespaces everything.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one sample line: name{labels} value  (labels optional)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt_value(value: object) -> Optional[str]:
    try:
        num = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    if math.isnan(num):
        return "NaN"
    if math.isinf(num):
        return "+Inf" if num > 0 else "-Inf"
    if num == int(num) and abs(num) < 1e15:
        return str(int(num))
    return repr(num)


def _sanitize(name: str) -> str:
    """Fold an arbitrary counter/gauge name into a metric-safe suffix."""
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not out or not _METRIC_RE.match(out):
        out = "_" + out
    return out


class _Family:
    """One metric family: HELP/TYPE header plus its sample lines."""

    def __init__(self, name: str, help_text: str, kind: str = "gauge") -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.samples: List[str] = []

    @staticmethod
    def _labels(labels: Dict[str, str]) -> str:
        if not labels:
            return ""
        inner = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
        )
        return "{" + inner + "}"

    def add(self, value: object, labels: Optional[Dict[str, str]] = None) -> None:
        text = _fmt_value(value)
        if text is None:
            return
        self.samples.append(f"{self.name}{self._labels(labels or {})} {text}")

    def add_histogram(
        self, snap: dict, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """One histogram series from a :meth:`LogHistogram.snapshot
        <repro.serve.admission.LogHistogram.snapshot>` dict: cumulative
        ``_bucket`` lines (``+Inf`` last) plus ``_sum`` and ``_count``."""
        base = dict(labels or {})
        for bucket in snap.get("buckets") or []:
            le = _fmt_value(bucket.get("le"))
            count = _fmt_value(bucket.get("count"))
            if le is None or count is None:
                continue
            sample_labels = self._labels({**base, "le": le})
            self.samples.append(f"{self.name}_bucket{sample_labels} {count}")
        total = _fmt_value(snap.get("sum", 0.0))
        count = _fmt_value(snap.get("count", 0))
        if total is not None and count is not None:
            self.samples.append(f"{self.name}_sum{self._labels(base)} {total}")
            self.samples.append(f"{self.name}_count{self._labels(base)} {count}")

    def render(self) -> List[str]:
        if not self.samples:
            return []
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
            *self.samples,
        ]


def render_metrics(snapshot: dict) -> str:
    """Render a telemetry snapshot as Prometheus text exposition."""
    fams: Dict[str, _Family] = {}

    def fam(name: str, help_text: str, kind: str = "gauge") -> _Family:
        f = fams.get(name)
        if f is None:
            f = fams[name] = _Family(name, help_text, kind)
        return f

    campaign = snapshot.get("campaign") or {}
    for key in ("total", "done", "ok", "failed", "cached", "resumed", "retried"):
        if key in campaign:
            fam(
                f"repro_campaign_cells_{key}",
                f"Campaign cells in state '{key}' (from the driver process).",
            ).add(campaign[key])
    if campaign.get("eta_seconds") is not None:
        fam(
            "repro_campaign_eta_seconds",
            "Estimated wall-clock seconds until the campaign completes.",
        ).add(campaign["eta_seconds"])
    if campaign.get("wall_seconds") is not None:
        fam(
            "repro_campaign_wall_seconds",
            "Wall-clock seconds since the campaign started.",
        ).add(campaign["wall_seconds"])

    manifest = snapshot.get("manifest") or {}
    for key, value in sorted(manifest.items()):
        fam(
            f"repro_manifest_cells_{key}",
            f"Terminal cells counted as '{key}' in the manifest.",
        ).add(value)

    serve = snapshot.get("serve") or {}
    if serve:
        fam(
            "repro_serve_draining",
            "1 while the service is draining (refusing submissions).",
        ).add(1 if serve.get("draining") else 0)
        fam(
            "repro_serve_inflight_cells",
            "Cells currently executing in the service's worker pool.",
        ).add(serve.get("inflight", 0))
        q_fam = fam(
            "repro_serve_queued_cells",
            "Admitted cells waiting for a worker, per priority lane.",
        )
        for lane, value in sorted((serve.get("pending") or {}).items()):
            q_fam.add(value, {"lane": str(lane)})
        j_fam = fam(
            "repro_serve_jobs",
            "Service jobs by lifecycle state.",
        )
        for state, value in sorted((serve.get("jobs") or {}).items()):
            j_fam.add(value, {"state": str(state)})
        admission = serve.get("admission") or {}
        fam(
            "repro_serve_shed_total",
            "Submissions shed with 429 since the service started.",
        ).add(admission.get("shed_total", 0))
        fam(
            "repro_serve_admitted_cells_total",
            "Cells admitted past load shedding since the service started.",
        ).add(admission.get("admitted_cells", 0))
        fam(
            "repro_serve_cell_seconds_ema",
            "Smoothed per-cell service time used for retry_after hints.",
        ).add(admission.get("cell_seconds"))
        r_fam = fam(
            "repro_serve_retry_after_seconds",
            "retry_after a shed submission would receive right now, per lane.",
        )
        for lane, value in sorted((admission.get("retry_after") or {}).items()):
            r_fam.add(value, {"lane": str(lane)})
        for metric, key, help_text in (
            (
                "repro_serve_queue_age_seconds",
                "queue_age",
                "Time admitted cells sat queued in their lane before dispatch.",
            ),
            (
                "repro_serve_service_time_seconds",
                "service_time",
                "Wall-clock execution time of completed cells, per lane.",
            ),
        ):
            lanes = admission.get(key) or {}
            if lanes:
                h_fam = fam(metric, help_text, kind="histogram")
                for lane, hist in sorted(lanes.items()):
                    h_fam.add_histogram(hist, {"lane": str(lane)})
        spans = serve.get("spans") or {}
        if spans:
            fam(
                "repro_serve_spans_recorded_total",
                "Tracing spans this node appended to the manifest.",
            ).add(spans.get("recorded", 0))
            fam(
                "repro_serve_spans_dropped_total",
                "Tracing spans lost to manifest append failures.",
            ).add(spans.get("dropped", 0))
        fam(
            "repro_serve_stolen_cells_total",
            "Orphaned cells this node stole after their owner's lease expired.",
        ).add(serve.get("stolen_total", 0))
        fam(
            "repro_serve_quarantined_cells_total",
            "Diagnosed-terminal cells quarantined instead of retried.",
        ).add(serve.get("quarantined_total", 0))
        fam(
            "repro_serve_completed_cells_total",
            "Cells this node executed to a terminal state (cache hits excluded).",
        ).add(serve.get("completed_cells", 0))
        fam(
            "repro_serve_unrecorded_cells",
            "Finished cells whose manifest append is still failing (ENOSPC).",
        ).add(serve.get("unrecorded", 0))
        fam(
            "repro_serve_logical_clock",
            "This node's work-stealing logical clock.",
        ).add(serve.get("clock", 0))
        if serve.get("admission_p99_seconds") is not None:
            fam(
                "repro_serve_admission_p99_seconds",
                "99th percentile submit handling latency on this node.",
            ).add(serve["admission_p99_seconds"])

    workers = snapshot.get("workers") or []
    w_age = fam(
        "repro_worker_heartbeat_age_seconds",
        "Seconds since the worker's newest heartbeat.",
    )
    w_stalled = fam(
        "repro_worker_stalled",
        "1 when the worker looks wedged (stale, frozen cycle, or watchdog).",
    )
    w_cells = fam(
        "repro_worker_cells_done",
        "Cells this worker has driven to a terminal state.",
    )
    w_rss = fam("repro_worker_rss_bytes", "Worker resident set size.")
    w_cycle = fam(
        "repro_worker_sim_cycle", "Current simulation cycle of the running cell."
    )
    w_events = fam(
        "repro_worker_sim_events",
        "Events scheduled so far in the running cell's engine.",
    )
    w_eps = fam(
        "repro_worker_events_per_second",
        "Live event-scheduling rate of the running cell.",
    )
    w_info = fam(
        "repro_worker_info",
        "Identity of each worker's running cell (value is always 1).",
    )
    w_counter = fam(
        "repro_worker_counter",
        "Retry/fault/integrity counters sampled from the worker's simulator.",
    )
    w_gauge = fam(
        "repro_worker_gauge",
        "Latest value of each attached timeseries gauge.",
    )
    for worker in workers:
        labels = {"worker": str(worker.get("worker", "?"))}
        w_age.add(worker.get("age_seconds"), labels)
        w_stalled.add(1 if worker.get("stalled") else 0, labels)
        w_cells.add((worker.get("cells") or {}).get("done", 0), labels)
        w_rss.add(worker.get("rss"), labels)
        if "cycle" in worker:
            w_cycle.add(worker["cycle"], labels)
        if "events" in worker:
            w_events.add(worker["events"], labels)
        if "eps" in worker:
            w_eps.add(worker["eps"], labels)
        info = {**labels, "phase": str(worker.get("phase", "unknown"))}
        cell = worker.get("cell") or {}
        if cell:
            info["workload"] = str(cell.get("workload", "?"))
            info["scheme"] = str(cell.get("scheme", "?"))
        w_info.add(1, info)
        for name, value in sorted((worker.get("counters") or {}).items()):
            w_counter.add(value, {**labels, "counter": _sanitize(name)})
        for name, value in sorted((worker.get("gauges") or {}).items()):
            w_gauge.add(value, {**labels, "gauge": _sanitize(name)})

    lines: List[str] = []
    for name in sorted(fams):
        lines.extend(fams[name].render())
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation (tests / CI smoke)
# ----------------------------------------------------------------------


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse exposition text; raise ``ValueError`` on any malformed line.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(labels_dict, float_value), ...]}}``.  Histogram/summary component
    samples (``<family>_bucket``, ``_sum``, ``_count``) associate with their
    base family and land under its ``"series"`` dict keyed by suffix.
    Enforces the parts of the format a scraper depends on: metric/label name
    grammar, quoted+escaped label values, parseable float values, TYPE
    declared before samples — and full histogram semantics (cumulative
    monotone buckets, a ``+Inf`` bucket, ``_count`` equal to the ``+Inf``
    count, a ``_sum`` per series).
    """
    families: Dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _METRIC_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _METRIC_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {parts[3]!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels"), lineno)
        raw = m.group("value")
        try:
            value = float(raw)  # accepts NaN / +Inf / -Inf spellings too
        except ValueError:
            raise ValueError(f"line {lineno}: bad value {raw!r}")
        family = families.get(name)
        suffix = ""
        if family is None or family["type"] is None:
            # histogram/summary component samples carry a suffixed name;
            # associate them with the declared base family
            for cand in ("_bucket", "_sum", "_count"):
                if not name.endswith(cand):
                    continue
                base = families.get(name[: -len(cand)])
                if base is None or base["type"] not in ("histogram", "summary"):
                    continue
                if cand == "_bucket" and base["type"] != "histogram":
                    continue
                family, suffix = base, cand
                break
        if family is None or family["type"] is None:
            raise ValueError(f"line {lineno}: sample before TYPE for {name!r}")
        if suffix:
            family.setdefault("series", {}).setdefault(suffix, []).append(
                (labels, value)
            )
        else:
            family["samples"].append((labels, value))
    for name, family in families.items():
        if family["type"] == "histogram":
            _validate_histogram(name, family)
    return families


def _validate_histogram(name: str, family: dict) -> None:
    """Histogram semantics a scraper silently miscounts without."""
    series = family.get("series") or {}
    buckets = series.get("_bucket") or []
    if not buckets:
        raise ValueError(f"histogram {name!r} has no _bucket samples")
    groups: Dict[tuple, List[Tuple[float, float]]] = {}
    for labels, value in buckets:
        le_raw = labels.get("le")
        if le_raw is None:
            raise ValueError(f"histogram {name!r}: _bucket without 'le' label")
        try:
            le = float(le_raw)
        except ValueError:
            raise ValueError(f"histogram {name!r}: unparseable le {le_raw!r}")
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        groups.setdefault(key, []).append((le, value))
    sums = {
        tuple(sorted(labels.items())): value
        for labels, value in series.get("_sum") or []
    }
    counts = {
        tuple(sorted(labels.items())): value
        for labels, value in series.get("_count") or []
    }
    for key, rows in groups.items():
        where = f"{name}{dict(key)}"
        rows.sort(key=lambda r: r[0])
        if not math.isinf(rows[-1][0]):
            raise ValueError(f"histogram {where}: missing +Inf bucket")
        values = [v for _, v in rows]
        if any(a > b for a, b in zip(values, values[1:])):
            raise ValueError(f"histogram {where}: buckets not cumulative")
        if key not in sums:
            raise ValueError(f"histogram {where}: missing _sum")
        if key not in counts:
            raise ValueError(f"histogram {where}: missing _count")
        if counts[key] != values[-1]:
            raise ValueError(
                f"histogram {where}: _count {counts[key]} != "
                f"+Inf bucket {values[-1]}"
            )


def _parse_labels(raw: Optional[str], lineno: int) -> Dict[str, str]:
    if not raw:
        return {}
    out: Dict[str, str] = {}
    # split on commas not inside quotes
    parts: List[str] = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and depth_quote:
            current += raw[i : i + 2]
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current:
        parts.append(current)
    for part in parts:
        m = _LABEL_PAIR_RE.match(part)
        if m is None:
            raise ValueError(f"line {lineno}: malformed label pair {part!r}")
        key = m.group("key")
        if not _LABEL_RE.match(key):
            raise ValueError(f"line {lineno}: bad label name {key!r}")
        out[key] = (
            m.group("value")
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
    return out
