"""Versioned run-report artifacts and run-to-run diffing.

A :class:`RunReport` is the durable record of one simulation: a config
digest, the headline summary metrics, the full flattened counter tree, and
any time series the run sampled - one JSON file per run, written by
``repro run --report`` and per campaign cell by ``repro campaign
--report-dir``.  Reports are the input to ``repro diff`` (metric deltas and
subsystem attribution) and ``repro report`` (the HTML dashboard,
:mod:`repro.obs.html`).

The format is versioned (:data:`RUN_REPORT_VERSION`); readers reject
higher-versioned files instead of misparsing them.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

RUN_REPORT_VERSION = 1

#: summary metrics captured from a SimulationResult, in display order
SUMMARY_FIELDS = (
    "cycles",
    "geomean_ipc",
    "conflict_rate",
    "row_conflicts",
    "demand_accesses",
    "buffer_hits",
    "prefetches_issued",
    "row_accuracy",
    "line_accuracy",
    "mean_memory_latency",
    "mean_read_latency",
    "energy_pj",
    "link_utilization",
)


def _jsonable(obj: Any) -> Any:
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    return str(obj)


def config_digest(config: Any) -> str:
    """Short stable digest of a configuration object.

    Canonical-JSON SHA-256, truncated to 12 hex chars - the same shape as
    the campaign layer's cell digests, computed locally so :mod:`repro.obs`
    never imports :mod:`repro.campaign` (the dependency runs the other way).
    """
    canon = json.dumps(
        _jsonable(config), sort_keys=True, separators=(",", ":"), default=_jsonable
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


@dataclass
class RunReport:
    """Everything one run leaves behind for offline analysis."""

    workload: str
    scheme: str
    config_digest: str
    summary: Dict[str, float]
    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    version: int = RUN_REPORT_VERSION

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.scheme}@{self.config_digest}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        result: Any,
        config: Any = None,
        tracer: Any = None,
        sampler: Any = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        """Build a report from a finished run.

        ``result`` is a :class:`~repro.system.SimulationResult`; ``config``
        the :class:`~repro.system.SystemConfig` (digested, not embedded);
        ``tracer`` contributes its counter registry, ``sampler`` its series
        payload (either may be None).
        """
        summary: Dict[str, float] = {}
        for name in SUMMARY_FIELDS:
            value = getattr(result, name, None)
            if value is None:
                continue
            summary[name] = float(value)
        counters: Dict[str, float] = {}
        if tracer is not None:
            counters = {
                k: float(v) for k, v in tracer.counters.flatten().items()
            }
        series: Dict[str, Any] = {}
        if sampler is not None:
            series = sampler.to_payload()
        return cls(
            workload=result.workload,
            scheme=result.scheme,
            config_digest=config_digest(config) if config is not None else "",
            summary=summary,
            counters=counters,
            series=series,
            meta=dict(meta or {}),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "workload": self.workload,
            "scheme": self.scheme,
            "config_digest": self.config_digest,
            "summary": self.summary,
            "counters": self.counters,
            "series": self.series,
            "meta": self.meta,
        }

    def save(self, path: Union[str, Path]) -> Path:
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("w") as fh:
            json.dump(self.to_dict(), fh)
            fh.write("\n")
        return p

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        with Path(path).open() as fh:
            raw = json.load(fh)
        version = int(raw.get("version", 0))
        if version > RUN_REPORT_VERSION:
            raise ValueError(
                f"run report {path} has version {version}; this build reads "
                f"<= {RUN_REPORT_VERSION}"
            )
        return cls(
            workload=raw.get("workload", ""),
            scheme=raw.get("scheme", ""),
            config_digest=raw.get("config_digest", ""),
            summary={k: float(v) for k, v in raw.get("summary", {}).items()},
            counters={k: float(v) for k, v in raw.get("counters", {}).items()},
            series=raw.get("series", {}),
            meta=raw.get("meta", {}),
            version=version,
        )


def build_run_report(system: Any, result: Any, **meta: Any) -> RunReport:
    """Convenience: build a report straight from a finished ``System``."""
    return RunReport.from_run(
        result,
        config=system.config,
        tracer=system.tracer,
        sampler=getattr(system, "timeseries", None),
        meta=meta or None,
    )


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------

#: subsystems counters are attributed to, in fallback order
SUBSYSTEMS = (
    "buffer/prefetch",
    "bank",
    "scheduler",
    "link",
    "tsv/bus",
    "host/queues",
    "device",
)


def subsystem_of(name: str) -> str:
    """Map a flattened counter name onto a subsystem bucket."""
    leaf = name.rsplit(".", 1)[-1]
    if (
        "buffer" in leaf
        or "prefetch" in leaf
        or "writeback" in leaf
        # CAMPS table state (Conflict Table / Row Utilization Table) belongs
        # to the prefetching scheme, not the vault datapath
        or leaf.startswith(("ct_", "rut_"))
    ):
        return "buffer/prefetch"
    if ".bank" in name:
        return "bank"
    if leaf.startswith("sched_") or "drain" in leaf:
        return "scheduler"
    if "link" in name:
        return "link"
    if "tsv" in leaf:
        return "tsv/bus"
    if name.startswith("host.") or "queue" in leaf:
        return "host/queues"
    return "device"


@dataclass
class MetricDelta:
    """One metric's change from run A to run B."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change, |delta| / max(|a|, |b|); 0 when both are 0."""
        scale = max(abs(self.a), abs(self.b))
        return abs(self.delta) / scale if scale else 0.0


@dataclass
class SeriesDivergence:
    """Where two runs' series for the same metric pull apart."""

    name: str
    first_cycle: Optional[int]  # first aligned sample exceeding tolerance
    max_gap: float
    aligned_samples: int


@dataclass
class ReportDiff:
    """Structured comparison of two :class:`RunReport` artifacts."""

    a_label: str
    b_label: str
    metrics: List[MetricDelta]
    counters: List[MetricDelta]
    subsystems: List[Tuple[str, float, int]]  # (name, score, aggregated leaves)
    divergences: List[SeriesDivergence]

    def top_subsystem(self) -> Optional[str]:
        """The subsystem contributing most to the delta (None if no diff)."""
        for name, score, _ in self.subsystems:
            if score > 0:
                return name
        return None

    def to_text(self, max_counters: int = 10) -> str:
        lines = [f"diff {self.a_label} -> {self.b_label}"]
        lines.append("  summary metrics")
        for m in self.metrics:
            mark = "  " if m.rel < 0.001 else "* "
            lines.append(
                f"    {mark}{m.name:<22} {m.a:>14.6g} -> {m.b:>14.6g}"
                f"  ({m.delta:+.6g}, {m.rel * 100:.2f}%)"
            )
        if self.subsystems:
            lines.append("  subsystem attribution (max aggregated metric delta)")
            for name, score, n in self.subsystems:
                lines.append(f"    {name:<16} {score * 100:7.2f}%  ({n} metrics)")
        moved = [c for c in self.counters if c.rel >= 0.001]
        if moved:
            lines.append(f"  top counter deltas ({len(moved)} changed)")
            for c in moved[:max_counters]:
                lines.append(
                    f"    {c.name:<40} {c.a:>12.6g} -> {c.b:>12.6g}"
                    f"  ({c.rel * 100:.1f}%)"
                )
        diverged = [d for d in self.divergences if d.first_cycle is not None]
        if diverged:
            lines.append(f"  series divergence ({len(diverged)} series)")
            for d in diverged[:max_counters]:
                lines.append(
                    f"    {d.name:<28} from cycle {d.first_cycle}"
                    f"  (max gap {d.max_gap:.4g})"
                )
            if len(diverged) > max_counters:
                lines.append(f"    ... and {len(diverged) - max_counters} more")
        return "\n".join(lines)


def _series_map(report: RunReport) -> Dict[str, Dict[str, Any]]:
    """Inner ``name -> samples`` map, tolerating degenerate payloads.

    Hand-edited or partially-written artifacts can carry ``"series": null``
    (outer or inner) — treat every non-dict shape as "no series" rather
    than raising mid-diff.
    """
    outer = report.series
    if not isinstance(outer, dict):
        return {}
    inner = outer.get("series")
    return inner if isinstance(inner, dict) else {}


def has_series(report: RunReport) -> bool:
    """True when the report carries at least one sampled series."""
    return bool(_series_map(report))


def _diverge(name: str, sa: Dict[str, Any], sb: Dict[str, Any]) -> SeriesDivergence:
    ta = {int(t): v for t, v in zip(sa.get("times", []), sa.get("values", []))}
    first: Optional[int] = None
    max_gap = 0.0
    aligned = 0
    for t, vb in zip(sb.get("times", []), sb.get("values", [])):
        va = ta.get(int(t))
        if va is None:
            continue
        aligned += 1
        if math.isnan(va) or math.isnan(vb):
            continue
        gap = abs(vb - va)
        if gap > max_gap:
            max_gap = gap
        # tolerance scales with magnitude; exact zeros stay exact
        if first is None and gap > 1e-9 + 1e-6 * max(abs(va), abs(vb)):
            first = int(t)
    return SeriesDivergence(name, first, max_gap, aligned)


#: per-instance scope segments collapsed by :func:`_leaf_key`
_INSTANCE = re.compile(r"(vault|bank|link)\d+")

#: aggregated leaves smaller than this are damped in the subsystem score
#: (a 0 -> 2 blip would otherwise claim a perfect relative delta)
_MIN_SCALE = 16.0


def _leaf_key(name: str) -> str:
    """Collapse instance indices: ``vault3.bank7.acts`` -> ``vault*.bank*.acts``."""
    return _INSTANCE.sub(lambda m: m.group(1) + "*", name)


def _subsystem_scores(
    counters: List[MetricDelta],
) -> List[Tuple[str, float, int]]:
    """Rank subsystems by their most-changed *aggregated* metric.

    Per-instance counters are summed across vaults/banks/links first, so a
    single noisy bank cannot speak for the bank subsystem and the hundreds
    of per-bank counters cannot outvote the handful of buffer counters by
    sheer count.  Each subsystem then scores as the maximum relative delta
    over its aggregated leaves, damped toward zero for leaves whose total
    magnitude is below ``_MIN_SCALE`` (small-count noise).
    """
    agg: Dict[str, List[float]] = {}
    for c in counters:
        bucket = agg.setdefault(_leaf_key(c.name), [0.0, 0.0])
        bucket[0] += c.a
        bucket[1] += c.b
    grouped: Dict[str, Tuple[float, int]] = {}
    for leaf, (a, b) in agg.items():
        scale = max(abs(a), abs(b))
        rel = abs(b - a) / scale if scale else 0.0
        score = rel * min(1.0, scale / _MIN_SCALE)
        sub = subsystem_of(leaf)
        best, n = grouped.get(sub, (0.0, 0))
        grouped[sub] = (max(best, score), n + 1)
    return sorted(
        ((name, score, n) for name, (score, n) in grouped.items()),
        key=lambda t: t[1],
        reverse=True,
    )


def diff_reports(a: RunReport, b: RunReport) -> ReportDiff:
    """Align two reports and rank what changed.

    Summary metrics and counters are matched by name (missing on either
    side is skipped); counters are additionally attributed to subsystems
    via :func:`_subsystem_scores`.
    """
    metrics = [
        MetricDelta(k, a.summary[k], b.summary[k])
        for k in SUMMARY_FIELDS
        if k in a.summary and k in b.summary
    ]
    counters = [
        MetricDelta(k, a.counters[k], b.counters[k])
        for k in sorted(set(a.counters) & set(b.counters))
        if not (math.isnan(a.counters[k]) or math.isnan(b.counters[k]))
    ]
    counters.sort(key=lambda m: m.rel, reverse=True)
    subsystems = _subsystem_scores(counters)

    sa, sb = _series_map(a), _series_map(b)
    divergences = [_diverge(name, sa[name], sb[name]) for name in sorted(set(sa) & set(sb))]
    return ReportDiff(
        a_label=a.label,
        b_label=b.label,
        metrics=metrics,
        counters=counters,
        subsystems=subsystems,
        divergences=divergences,
    )
