"""Self-contained HTML dashboard for run reports.

Renders one or more :class:`~repro.obs.report.RunReport` artifacts into a
single HTML file with **no external assets** - styles are inline CSS and
every chart is inline SVG, so the file opens offline and attaches cleanly to
a CI run.  Charts:

* per-metric sparklines for the headline time series (buffer hit rate,
  prefetch accuracy, queue occupancy, link/TSV utilization, drain
  residency);
* a per-vault grid of row-conflict-rate sparklines;
* a vaults x banks conflict heatmap from the final counter tree;
* a summary table across all reports, and - when a campaign manifest is
  supplied - a workload x scheme comparison table.

Series are downsampled to at most :data:`MAX_POINTS` polyline points per
sparkline, which keeps even many-report dashboards well under 2 MB.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.report import RunReport

#: maximum polyline points per sparkline (stride-downsampled above this)
MAX_POINTS = 240

#: headline series drawn at the top of each report section, in order
HEADLINE_SERIES = (
    "buffer.hit_rate",
    "prefetch.row_accuracy",
    "queues.occupancy",
    "link.utilization",
    "tsv.utilization",
    "sched.drain_residency",
)

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 24px; color: #1a1a2e; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
h3 { font-size: 13px; margin: 12px 0 4px; color: #444; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { border: 1px solid #d5d5e0; padding: 3px 9px; text-align: right; }
th { background: #eef0f6; font-weight: 600; }
td.l, th.l { text-align: left; }
.spark { display: inline-block; margin: 2px 10px 6px 0; vertical-align: top; }
.spark .t { font-size: 11px; color: #555; }
.grid { display: flex; flex-wrap: wrap; }
.muted { color: #888; font-size: 11px; }
svg { background: #fafbfd; border: 1px solid #e3e5ee; }
"""


def _esc(text: Any) -> str:
    return _html.escape(str(text))


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _downsample(xs: Sequence[float], ys: Sequence[float]) -> Tuple[List[float], List[float]]:
    n = len(xs)
    if n <= MAX_POINTS:
        return list(xs), list(ys)
    stride = -(-n // MAX_POINTS)  # ceil division
    keep = list(range(0, n, stride))
    if keep[-1] != n - 1:
        keep.append(n - 1)  # the final sample anchors the line's end
    return [xs[i] for i in keep], [ys[i] for i in keep]


def sparkline(
    times: Sequence[float],
    values: Sequence[float],
    width: int = 220,
    height: int = 42,
) -> str:
    """One series as an inline SVG polyline with a min-max label."""
    times, values = _downsample(times, values)
    finite = [v for v in values if v == v]  # drop NaNs
    if not times or not finite:
        return '<svg width="%d" height="%d"></svg>' % (width, height)
    t0, t1 = times[0], times[-1]
    lo, hi = min(finite), max(finite)
    tspan = (t1 - t0) or 1
    vspan = (hi - lo) or 1
    pad = 3
    pts = []
    for t, v in zip(times, values):
        if v != v:
            continue
        x = pad + (t - t0) / tspan * (width - 2 * pad)
        y = height - pad - (v - lo) / vspan * (height - 2 * pad)
        pts.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="#3b6ecc" stroke-width="1.3" '
        f'points="{" ".join(pts)}"/></svg>'
    )


def _spark_block(name: str, payload: Dict[str, Any], **kw: Any) -> str:
    times = payload.get("times", [])
    values = payload.get("values", [])
    finite = [v for v in values if v == v]
    lo = _fmt(min(finite)) if finite else "-"
    hi = _fmt(max(finite)) if finite else "-"
    last = _fmt(finite[-1]) if finite else "-"
    return (
        '<div class="spark">'
        f'<div class="t">{_esc(name)}</div>'
        f"{sparkline(times, values, **kw)}"
        f'<div class="muted">min {lo} &middot; max {hi} &middot; last {last}</div>'
        "</div>"
    )


def _heat_color(frac: float) -> str:
    """White -> deep red ramp; frac in [0, 1]."""
    frac = min(1.0, max(0.0, frac))
    r = 255 - int(75 * frac)
    g = int(245 * (1 - frac))
    b = int(240 * (1 - frac))
    return f"rgb({r},{g},{b})"


def bank_conflict_heatmap(report: RunReport, cell: int = 11) -> str:
    """Vaults x banks grid of final per-bank conflict counts as SVG."""
    grid: Dict[Tuple[int, int], float] = {}
    for name, value in report.counters.items():
        parts = name.split(".")
        if len(parts) != 3 or parts[2] != "conflicts":
            continue
        v, b = parts[0], parts[1]
        if not (v.startswith("vault") and b.startswith("bank")):
            continue
        try:
            grid[(int(v[5:]), int(b[4:]))] = value
        except ValueError:
            continue
    if not grid:
        return '<p class="muted">no per-bank counters in this report</p>'
    nv = max(k[0] for k in grid) + 1
    nb = max(k[1] for k in grid) + 1
    peak = max(grid.values()) or 1.0
    left, top = 46, 16
    width = left + nb * cell + 4
    height = top + nv * cell + 4
    rects = []
    for (v, b), count in grid.items():
        rects.append(
            f'<rect x="{left + b * cell}" y="{top + v * cell}" '
            f'width="{cell - 1}" height="{cell - 1}" '
            f'fill="{_heat_color(count / peak)}">'
            f"<title>vault{v} bank{b}: {count:.0f} conflicts</title></rect>"
        )
    labels = [
        f'<text x="4" y="{top + v * cell + cell - 2}" font-size="8" '
        f'fill="#666">v{v}</text>'
        for v in range(0, nv, max(1, nv // 8))
    ]
    labels.append(
        f'<text x="{left}" y="11" font-size="8" fill="#666">'
        f"banks 0-{nb - 1} &rarr; (peak {peak:.0f})</text>"
    )
    return (
        f'<svg width="{width}" height="{height}">'
        + "".join(labels)
        + "".join(rects)
        + "</svg>"
    )


def _summary_table(reports: Sequence[RunReport]) -> str:
    keys: List[str] = []
    for r in reports:
        for k in r.summary:
            if k not in keys:
                keys.append(k)
    head = "<tr><th class='l'>run</th>" + "".join(f"<th>{_esc(k)}</th>" for k in keys)
    rows = [head + "</tr>"]
    for r in reports:
        cells = "".join(
            f"<td>{_fmt(r.summary[k]) if k in r.summary else '-'}</td>" for k in keys
        )
        rows.append(f"<tr><td class='l'>{_esc(r.label)}</td>{cells}</tr>")
    return "<table>" + "".join(rows) + "</table>"


def load_manifest_rows(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read finished cells from a campaign manifest (JSONL, last-record-wins).

    Parsed structurally (header lines carry ``manifest_version``; cell
    records carry ``cell_id``) so the renderer does not depend on
    :mod:`repro.campaign` - the import runs the other way around.
    """
    latest: Dict[str, Dict[str, Any]] = {}
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if "cell_id" in raw:
                latest[raw["cell_id"]] = raw
    return [r for r in latest.values() if r.get("status") == "ok"]


def _campaign_table(rows: List[Dict[str, Any]], metric: str = "geomean_ipc") -> str:
    workloads = sorted({r.get("workload", "?") for r in rows})
    schemes = sorted({r.get("scheme", "?") for r in rows})
    cell: Dict[Tuple[str, str], float] = {}
    for r in rows:
        summary = r.get("summary") or {}
        if metric in summary:
            cell[(r.get("workload", "?"), r.get("scheme", "?"))] = summary[metric]
    head = (
        f"<tr><th class='l'>workload \\ scheme ({_esc(metric)})</th>"
        + "".join(f"<th>{_esc(s)}</th>" for s in schemes)
        + "</tr>"
    )
    body = []
    for w in workloads:
        cells = "".join(
            f"<td>{_fmt(cell[(w, s)]) if (w, s) in cell else '-'}</td>"
            for s in schemes
        )
        body.append(f"<tr><td class='l'>{_esc(w)}</td>{cells}</tr>")
    return "<table>" + head + "".join(body) + "</table>"


def _report_section(report: RunReport) -> str:
    parts = [f"<h2>{_esc(report.label)}</h2>"]
    if report.meta:
        meta = " &middot; ".join(f"{_esc(k)}={_esc(v)}" for k, v in report.meta.items())
        parts.append(f'<p class="muted">{meta}</p>')
    series = report.series.get("series", {}) if report.series else {}
    headliners = [n for n in HEADLINE_SERIES if n in series]
    if headliners:
        epoch = report.series.get("epoch")
        parts.append(f"<h3>headline series (epoch {epoch} cycles)</h3>")
        parts.append(
            '<div class="grid">'
            + "".join(_spark_block(n, series[n]) for n in headliners)
            + "</div>"
        )
    vault_series = sorted(
        (n for n in series if n.startswith("vault") and n.endswith(".conflict_rate")),
        key=lambda n: int(n[5:].split(".", 1)[0]),
    )
    if vault_series:
        parts.append("<h3>per-vault row-conflict rate</h3>")
        parts.append(
            '<div class="grid">'
            + "".join(
                _spark_block(n, series[n], width=120, height=30)
                for n in vault_series
            )
            + "</div>"
        )
    parts.append("<h3>bank-conflict heatmap (final counts)</h3>")
    parts.append(bank_conflict_heatmap(report))
    return "".join(parts)


def render_html(
    reports: Iterable[RunReport],
    manifest_rows: Optional[List[Dict[str, Any]]] = None,
    title: str = "repro run report",
) -> str:
    """Render the dashboard; returns the complete HTML document."""
    reports = list(reports)
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if reports:
        parts.append("<h2>summary</h2>")
        parts.append(_summary_table(reports))
    if manifest_rows:
        parts.append("<h2>campaign comparison</h2>")
        parts.append(_campaign_table(manifest_rows))
    for report in reports:
        parts.append(_report_section(report))
    parts.append("</body></html>")
    return "".join(parts)


def write_html(
    path: Union[str, Path],
    reports: Iterable[RunReport],
    manifest: Optional[Union[str, Path]] = None,
    title: str = "repro run report",
) -> Path:
    """Render and write the dashboard; returns the path written."""
    rows = load_manifest_rows(manifest) if manifest else None
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_html(reports, manifest_rows=rows, title=title))
    return p
