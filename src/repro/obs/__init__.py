"""Observability: structured tracing, hierarchical counters, exporters.

The subsystem answers the per-event questions the end-of-run aggregates
cannot: *why* was this row prefetched (utilization- or conflict-triggered),
why did a conflict-prone row miss the Conflict Table, which resident row did
CAMPS-MOD evict and with what utilization.  Attach a :class:`Tracer` to a
:class:`~repro.system.System` and every decision point in the simulator
records a typed event; afterwards export the stream as a Chrome trace
(Perfetto / ``chrome://tracing``), JSONL, or a text summary.

Usage::

    from repro import mix, System, SystemConfig
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    system = System(mix("HM1", 3000), SystemConfig(scheme="camps-mod"),
                    workload="HM1", tracer=tracer)
    result = system.run()
    write_chrome_trace(tracer, "out.json")
    print(result.extra["trace_summary"]["prefetch_provenance"])

When no tracer is attached every hook in the simulator is a no-op behind a
single attribute check - see ``benchmarks/bench_obs_overhead.py``.
"""

from repro.obs.counters import CounterRegistry, CounterScope
from repro.obs.events import (
    ALL_KINDS,
    PROV_CONFLICT,
    PROV_UTILIZATION,
    TraceEvent,
)
from repro.obs.export import (
    chrome_trace,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.html import render_html, write_html
from repro.obs.report import (
    RunReport,
    ReportDiff,
    build_run_report,
    diff_reports,
    has_series,
)
from repro.obs.promtext import parse_exposition, render_metrics
from repro.obs.spans import (
    Span,
    SpanLog,
    attribution,
    critical_path_text,
    format_traceparent,
    merge_chrome,
    mint_trace_id,
    parse_traceparent,
    read_spans,
    spans_to_chrome,
)
from repro.obs.telemetry import (
    CampaignView,
    JsonlTailer,
    TelemetryAggregator,
    TelemetryServer,
    TelemetrySpool,
    WorkerTelemetry,
    publish_system,
    spool_dir_for,
)
from repro.obs.timeseries import DEFAULT_EPOCH, Series, TimeseriesSampler
from repro.obs.tracer import Tracer
from repro.obs.trend import append_entry, load_history, trend_report

__all__ = [
    "Tracer",
    "TraceEvent",
    "CounterRegistry",
    "CounterScope",
    "ALL_KINDS",
    "PROV_UTILIZATION",
    "PROV_CONFLICT",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "text_summary",
    "Series",
    "TimeseriesSampler",
    "DEFAULT_EPOCH",
    "RunReport",
    "ReportDiff",
    "build_run_report",
    "diff_reports",
    "has_series",
    "render_html",
    "write_html",
    "TelemetrySpool",
    "JsonlTailer",
    "TelemetryAggregator",
    "TelemetryServer",
    "WorkerTelemetry",
    "CampaignView",
    "publish_system",
    "spool_dir_for",
    "render_metrics",
    "parse_exposition",
    "Span",
    "SpanLog",
    "attribution",
    "critical_path_text",
    "format_traceparent",
    "merge_chrome",
    "mint_trace_id",
    "parse_traceparent",
    "read_spans",
    "spans_to_chrome",
    "append_entry",
    "load_history",
    "trend_report",
]
