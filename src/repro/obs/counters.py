"""Hierarchical counter registry: device → vault → bank.

Components *register* their existing counters (or zero-cost gauge callables)
into a :class:`CounterRegistry` at wiring time; nothing is read until a
snapshot is requested, so registration adds no hot-path work.  The registry
is how the exporters and the per-vault text summary see one coherent tree of
statistics without every reporting site re-walking the object graph.

Sources may be:

* an object with a ``.value`` attribute (``repro.sim.stats.Counter``),
* a zero-argument callable returning a number (a *gauge*),
* a plain number (frozen at registration; rarely useful outside tests).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple, Union

Source = Union[Callable[[], float], Any]
Path = Tuple[str, ...]


def _read(source: Source) -> float:
    if callable(source):
        # A gauge that raises at snapshot time (e.g. a component already
        # torn down) degrades to NaN instead of killing the whole snapshot:
        # end-of-run reporting must never be the thing that crashes a run.
        try:
            return source()
        except Exception:
            return float("nan")
    value = getattr(source, "value", source)
    return value


class CounterScope:
    """A named node in the registry tree; hands out child scopes."""

    def __init__(self, registry: "CounterRegistry", path: Path) -> None:
        self._registry = registry
        self.path = path

    def scope(self, name: str) -> "CounterScope":
        return CounterScope(self._registry, self.path + (name,))

    def register(self, name: str, source: Source) -> None:
        """Attach a counter/gauge at this scope (read lazily at snapshot)."""
        self._registry.register(self.path, name, source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterScope {'.'.join(self.path) or '(root)'}>"


class CounterRegistry:
    """Tree of named statistic sources, read lazily on snapshot."""

    def __init__(self) -> None:
        self._sources: Dict[Path, Dict[str, Source]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def scope(self, *path: str) -> CounterScope:
        """Get a scope handle, e.g. ``registry.scope("vault3", "bank7")``."""
        return CounterScope(self, tuple(path))

    def register(self, path: Path, name: str, source: Source) -> None:
        if not name:
            raise ValueError("counter name must be non-empty")
        bucket = self._sources.setdefault(tuple(path), {})
        if name in bucket:
            raise ValueError(
                f"duplicate counter {name!r} at scope {'.'.join(path) or '(root)'}"
            )
        bucket[name] = source

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(b) for b in self._sources.values())

    def items(self) -> Iterator[Tuple[Path, str, float]]:
        """Yield ``(path, name, value)`` in sorted path order."""
        for path in sorted(self._sources):
            bucket = self._sources[path]
            for name in bucket:
                yield path, name, _read(bucket[name])

    def flatten(self, sep: str = ".") -> Dict[str, float]:
        """Flat ``"vault3.bank7.acts" -> value`` view of the whole tree."""
        out: Dict[str, float] = {}
        for path, name, value in self.items():
            out[sep.join(path + (name,))] = value
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Nested-dict view: scopes become dicts, counters become values.

        A name used as both a counter and a scope at the same level (e.g. a
        ``links`` counter next to a ``links`` scope) is legal: the counter
        value moves under the scope dict's ``""`` key so neither silently
        shadows the other.
        """
        root: Dict[str, Any] = {}
        for path, name, value in self.items():
            node = root
            for part in path:
                child = node.get(part)
                if not isinstance(child, dict):
                    # a counter already claimed this name: keep its value
                    # under the reserved "" key of the new scope dict
                    child = {} if child is None else {"": child}
                    node[part] = child
                node = child
            prior = node.get(name)
            if isinstance(prior, dict):
                prior[""] = value
            else:
                node[name] = value
        return root

    def scopes(self, prefix: str = "") -> List[str]:
        """Dotted names of registered scopes, optionally prefix-filtered."""
        names = sorted(".".join(p) for p in self._sources)
        if prefix:
            names = [n for n in names if n.startswith(prefix)]
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterRegistry scopes={len(self._sources)} counters={len(self)}>"
