"""Configuration for link fault injection.

The HMC 2.1 transaction layer protects every flit with a CRC and keeps
transmitted packets in a per-link *retry buffer* until the far end
acknowledges them; a CRC mismatch (or a packet lost outright) triggers a
link-level retry: the receiver NAKs, the transmitter replays the buffered
packet.  Repeated failures force a *link retraining* sequence - a long
re-initialization of the SerDes lanes - after which transmission resumes.

:class:`LinkFaultConfig` parameterizes that error process for the simulator's
serial links.  The defaults model a healthy link (no faults); campaigns
enable degradation by setting a bit-error rate and/or a packet-drop
probability.  Injection is driven by a seeded RNG (one independent stream
per link direction), so two runs with the same seed produce identical fault
sequences, retry counts and results - campaigns stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkFaultConfig:
    """Fault-injection parameters for the external serial links.

    ``ber`` is the per-bit error probability: a packet of ``n`` bytes is
    corrupted with probability ``1 - (1 - ber) ** (8 * n)`` (any flipped bit
    fails the packet CRC).  ``drop_prob`` models whole-packet loss.  Either
    event consumes one retry-buffer replay; after ``max_retries`` failed
    replays of the same packet the link retrains (``retrain_latency``) and
    the final replay succeeds - the transaction layer is lossless, faults
    only cost time.
    """

    ber: float = 0.0  # per-bit error probability
    drop_prob: float = 0.0  # whole-packet drop probability
    seed: int = 0  # base seed; per-direction streams are derived
    max_retries: int = 8  # failed replays before the link retrains
    retry_latency: int = 24  # NAK round-trip + replay start, in CPU cycles
    retrain_latency: int = 2000  # SerDes retraining penalty, in CPU cycles
    retry_buffer_flits: int = 32  # retry-buffer capacity (occupancy stat)

    def __post_init__(self) -> None:
        for name in ("ber", "drop_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        for name in ("retry_latency", "retrain_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.retry_buffer_flits < 1:
            raise ValueError("retry_buffer_flits must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any fault process is active."""
        return self.ber > 0.0 or self.drop_prob > 0.0
